"""Figure 4 (right) — k-Means runtime vs cluster count.

Benchmarks the HyPer Operator across the paper's cluster sweep
(k ∈ {3, 5, 10, 25, 50}) and all systems at k=10. Full sweep:
``python -m repro.bench fig4_clusters``.
"""

import pytest

from repro.bench.experiments import (
    KMEANS_SYSTEMS,
    run_kmeans,
    setup_kmeans,
)
from repro.datagen.vectors import KMEANS_CLUSTER_SWEEP

from conftest import run_or_skip, scaled


@pytest.fixture(scope="module")
def setups():
    n = scaled(4_000_000)
    return {
        k: setup_kmeans(n, 10, k, 3) for k in KMEANS_CLUSTER_SWEEP
    }


@pytest.mark.parametrize("k", KMEANS_CLUSTER_SWEEP)
def test_operator_cluster_sweep(benchmark, setups, k):
    benchmark.group = "fig4-kmeans-clusters-operator"
    run_or_skip(benchmark, run_kmeans, setups[k], "HyPer Operator")


@pytest.mark.parametrize("system", KMEANS_SYSTEMS)
def test_all_systems_at_k10(benchmark, setups, system):
    benchmark.group = "fig4-kmeans-k10"
    run_or_skip(benchmark, run_kmeans, setups[10], system)
