"""Shared setup for the pytest-benchmark suite.

Every benchmark reuses the runners from :mod:`repro.bench.experiments`
(the same code behind ``python -m repro.bench``) at one fixed,
laptop-sized configuration per figure — scale 1/1000 of the paper's
sizes by default, overridable via the REPRO_BENCH_SCALE environment
variable. The full sweeps (all sizes of every figure) are run with the
CLI; the pytest suite pins one representative point per series so the
whole run stays in the minutes range.
"""

import os

import pytest

from repro.bench.experiments import (
    setup_kmeans,
    setup_naive_bayes,
    setup_pagerank,
)

#: Fraction of the paper's data sizes used by the pytest benchmarks.
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.001"))


def scaled(paper_n: int) -> int:
    return max(int(paper_n * SCALE), 16)


@pytest.fixture(scope="module")
def kmeans_default_setup():
    """The Table 1 center point: n=4M (scaled), d=10, k=5, 3 iters."""
    return setup_kmeans(scaled(4_000_000), 10, 5, 3)


@pytest.fixture(scope="module")
def pagerank_small_setup():
    """The paper's smallest LDBC point (11k vertices / 452k edges),
    scaled; damping 0.85, 45 iterations."""
    return setup_pagerank(scaled(11_000 * 10), scaled(452_000 * 10))


@pytest.fixture(scope="module")
def naive_bayes_setup():
    return setup_naive_bayes(scaled(4_000_000), 10)


def run_or_skip(benchmark, runner, setup, system, rounds=3):
    """Benchmark one series member, skipping capped systems."""
    if runner(setup, system) is None:
        pytest.skip(f"{system} is over its size cap at this scale")
    benchmark.pedantic(
        lambda: runner(setup, system), rounds=rounds, iterations=1
    )
