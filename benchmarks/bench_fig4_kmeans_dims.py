"""Figure 4 (middle) — k-Means runtime vs dimensionality.

Benchmarks the HyPer Operator across the paper's dimension sweep
(d ∈ {3, 5, 10, 25, 50}) and all systems at d=25. Full sweep:
``python -m repro.bench fig4_dims``.
"""

import pytest

from repro.bench.experiments import (
    KMEANS_SYSTEMS,
    run_kmeans,
    setup_kmeans,
)
from repro.datagen.vectors import KMEANS_DIMENSION_SWEEP

from conftest import run_or_skip, scaled


@pytest.fixture(scope="module")
def setups():
    n = scaled(4_000_000)
    return {
        d: setup_kmeans(n, d, 5, 3) for d in KMEANS_DIMENSION_SWEEP
    }


@pytest.mark.parametrize("d", KMEANS_DIMENSION_SWEEP)
def test_operator_dimension_sweep(benchmark, setups, d):
    benchmark.group = "fig4-kmeans-dims-operator"
    run_or_skip(benchmark, run_kmeans, setups[d], "HyPer Operator")


@pytest.mark.parametrize("system", KMEANS_SYSTEMS)
def test_all_systems_at_d25(benchmark, setups, system):
    benchmark.group = "fig4-kmeans-d25"
    run_or_skip(benchmark, run_kmeans, setups[25], system)
