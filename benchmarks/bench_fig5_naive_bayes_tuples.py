"""Figure 5 (middle) — Naive Bayes training runtime vs tuples.

Benchmarks all six series at the n=4M (scaled), d=10 point. Full tuple
sweep: ``python -m repro.bench fig5_nb_tuples``.
"""

import pytest

from repro.bench.experiments import NAIVE_BAYES_SYSTEMS, run_naive_bayes

from conftest import run_or_skip


@pytest.mark.parametrize("system", NAIVE_BAYES_SYSTEMS)
def test_naive_bayes_by_system(benchmark, naive_bayes_setup, system):
    benchmark.group = "fig5-naive-bayes-n4M-scaled"
    run_or_skip(benchmark, run_naive_bayes, naive_bayes_setup, system)
