"""Figure 5 (left) — PageRank by system on an LDBC-like graph.

The paper's marquee result (92x over Spark in their testbed): the CSR
operator versus relational-join iteration and the external systems.
Full graph-size sweep: ``python -m repro.bench fig5_pagerank``.
"""

import pytest

from repro.bench.experiments import PAGERANK_SYSTEMS, run_pagerank
from repro.bench.runner import measure

from conftest import run_or_skip


@pytest.mark.parametrize("system", PAGERANK_SYSTEMS)
def test_pagerank_by_system(benchmark, pagerank_small_setup, system):
    benchmark.group = "fig5-pagerank"
    rounds = 3 if system == "HyPer Operator" else 1
    run_or_skip(
        benchmark, run_pagerank, pagerank_small_setup, system, rounds
    )


def test_operator_beats_relational_iteration(pagerank_small_setup):
    """Section 8.4.2: the CSR operator is far faster than the SQL
    formulation, whose time goes into per-iteration hash joins."""
    setup = pagerank_small_setup
    operator = measure(lambda: run_pagerank(setup, "HyPer Operator"), 2)
    iterate = measure(lambda: run_pagerank(setup, "HyPer Iterate"), 1)
    assert operator * 3 < iterate


def test_operator_beats_spark_like(pagerank_small_setup):
    setup = pagerank_small_setup
    operator = measure(lambda: run_pagerank(setup, "HyPer Operator"), 2)
    spark = measure(lambda: run_pagerank(setup, "Spark-like"), 1)
    assert operator < spark
