"""Figure 4 (left) — k-Means runtime by system, tuple sweep.

pytest-benchmark pins the Table 1 center point (4M tuples scaled, d=10,
k=5, 3 iterations) and benchmarks all six series. The full tuple sweep
(160k..500M scaled) is printed by::

    python -m repro.bench fig4_tuples
"""

import pytest

from repro.bench.experiments import KMEANS_SYSTEMS, run_kmeans

from conftest import run_or_skip


@pytest.mark.parametrize("system", KMEANS_SYSTEMS)
def test_kmeans_tuples_center_point(
    benchmark, kmeans_default_setup, system
):
    benchmark.group = "fig4-kmeans-n4M-scaled"
    run_or_skip(benchmark, run_kmeans, kmeans_default_setup, system)


def test_expected_ordering(kmeans_default_setup):
    """The paper's headline shape at this point: the in-core operator
    beats the SQL formulations, and ITERATE beats the recursive CTE."""
    from repro.bench.runner import measure

    setup = kmeans_default_setup
    operator = measure(lambda: run_kmeans(setup, "HyPer Operator"), 3)
    iterate = measure(lambda: run_kmeans(setup, "HyPer Iterate"), 3)
    recursive = measure(lambda: run_kmeans(setup, "HyPer SQL"), 3)
    assert operator < iterate
    assert iterate < recursive * 1.25  # allow jitter; usually strictly <
