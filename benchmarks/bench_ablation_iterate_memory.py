"""Ablation §5.1/§8.4.1 — ITERATE vs recursive CTE.

Two claims from the paper, measured on the same k-Means-in-SQL workload:

* memory: the CTE's working set grows with the iteration count (n*i
  live tuples) while ITERATE stays at 2n;
* time: the non-appending form is also faster (smaller intermediates).

CLI variant with the full iteration sweep:
``python -m repro.bench ablation_iterate``.
"""

import pytest

from repro.bench.experiments import setup_kmeans
from repro.bench.runner import measure
from repro.workloads import kmeans_iterate_sql, kmeans_recursive_sql

from conftest import scaled

ITERATIONS = 6


@pytest.fixture(scope="module")
def world():
    setup = setup_kmeans(scaled(4_000_000), 10, 5)
    iterate_sql = kmeans_iterate_sql(
        "data", "centers", setup.features, ITERATIONS
    )
    recursive_sql = kmeans_recursive_sql(
        "data", "centers", setup.features, ITERATIONS
    )
    return setup, iterate_sql, recursive_sql


def test_bench_iterate(benchmark, world):
    setup, iterate_sql, _rc = world
    benchmark.group = "ablation-iterate-vs-cte"
    benchmark.pedantic(
        lambda: setup.db.execute(iterate_sql), rounds=3, iterations=1
    )


def test_bench_recursive_cte(benchmark, world):
    setup, _it, recursive_sql = world
    benchmark.group = "ablation-iterate-vs-cte"
    benchmark.pedantic(
        lambda: setup.db.execute(recursive_sql), rounds=3, iterations=1
    )


def test_memory_claim(world):
    """ITERATE keeps 2k live working tuples; the CTE accumulates
    k*(iterations+1)."""
    setup, iterate_sql, recursive_sql = world
    k = 5
    setup.db.execute(iterate_sql)
    iterate_peak = setup.db.last_stats.peak_live_tuples
    setup.db.execute(recursive_sql)
    recursive_peak = setup.db.last_stats.peak_live_tuples
    assert iterate_peak == 2 * k
    assert recursive_peak == k * (ITERATIONS + 1)
    assert recursive_peak > iterate_peak


def test_time_claim(world):
    setup, iterate_sql, recursive_sql = world
    iterate_time = measure(lambda: setup.db.execute(iterate_sql), 2)
    recursive_time = measure(lambda: setup.db.execute(recursive_sql), 2)
    assert iterate_time < recursive_time * 1.2
