"""Figure 5 (right) — Naive Bayes training runtime vs dimensions.

Benchmarks the training operator across the paper's dimension sweep and
the layer-3 SQL variant at d=25 for contrast (the SQL form scans the
training relation once per attribute). Full sweep:
``python -m repro.bench fig5_nb_dims``.
"""

import pytest

from repro.bench.experiments import run_naive_bayes, setup_naive_bayes
from repro.datagen.vectors import KMEANS_DIMENSION_SWEEP

from conftest import run_or_skip, scaled


@pytest.fixture(scope="module")
def setups():
    n = scaled(4_000_000)
    return {d: setup_naive_bayes(n, d) for d in KMEANS_DIMENSION_SWEEP}


@pytest.mark.parametrize("d", KMEANS_DIMENSION_SWEEP)
def test_operator_dimension_sweep(benchmark, setups, d):
    benchmark.group = "fig5-nb-dims-operator"
    run_or_skip(benchmark, run_naive_bayes, setups[d], "HyPer Operator")


@pytest.mark.parametrize("d", (5, 25))
def test_sql_dimension_scaling(benchmark, setups, d):
    """The layer-3 gap grows with d: one scan per attribute."""
    benchmark.group = "fig5-nb-dims-sql"
    run_or_skip(benchmark, run_naive_bayes, setups[d], "HyPer SQL")
