"""Table 1 — generating the k-Means dataset grid.

The paper's Table 1 is the experiment inventory, not a timing table;
this benchmark validates that every (scaled) grid point materialises and
measures the data-generation + bulk-load path (the "fast data loading"
HyPer property of section 3).
"""

import pytest

import repro
from repro.datagen.vectors import load_vector_table, table1_experiments

from conftest import SCALE


def test_grid_is_complete():
    experiments = table1_experiments(SCALE)
    assert len(experiments) == 16
    sweeps = {e.sweep for e in experiments}
    assert sweeps == {"tuples", "dimensions", "clusters"}


@pytest.mark.parametrize(
    "experiment",
    [e for e in table1_experiments(SCALE) if e.sweep == "tuples"][:4],
    ids=lambda e: f"n{e.n}xd{e.d}",
)
def test_bulk_load(benchmark, experiment):
    db = repro.Database()

    def load():
        load_vector_table(db, "data", experiment.n, experiment.d, seed=0)
        return db.row_count("data")

    rows = benchmark.pedantic(load, rounds=3, iterations=1)
    assert rows == experiment.n
