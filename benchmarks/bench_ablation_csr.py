"""Ablation §6.3/§8.4.2 — the CSR graph index vs relational joins.

The k-Means operator-vs-iterate gap is small but PageRank's is large;
the paper attributes it to the operator's CSR index replacing
per-iteration hash joins. This benchmark isolates that: the same
PageRank on the same graph, (a) via the CSR operator and (b) via the
relational formulation, at growing iteration counts — the joins are
per-iteration, the CSR build is once.

CLI variant: ``python -m repro.bench ablation_csr``.
"""

import pytest

from repro.bench.experiments import setup_pagerank
from repro.bench.runner import measure
from repro.workloads import pagerank_iterate_sql

from conftest import scaled


@pytest.fixture(scope="module")
def world():
    return setup_pagerank(scaled(110_000), scaled(4_520_000))


def _operator_sql(iterations):
    return (
        "SELECT * FROM PAGERANK((SELECT src, dest FROM edges), "
        f"0.85, 0.0, {iterations})"
    )


@pytest.mark.parametrize("iterations", (5, 15, 45))
def test_bench_csr_operator(benchmark, world, iterations):
    benchmark.group = f"ablation-csr-{iterations}iters"
    sql = _operator_sql(iterations)
    benchmark.pedantic(
        lambda: world.db.execute(sql), rounds=3, iterations=1
    )


@pytest.mark.parametrize("iterations", (5, 15))
def test_bench_relational_joins(benchmark, world, iterations):
    benchmark.group = f"ablation-csr-{iterations}iters"
    sql = pagerank_iterate_sql("edges", 0.85, iterations)
    benchmark.pedantic(
        lambda: world.db.execute(sql), rounds=1, iterations=1
    )


def test_gap_grows_with_iterations(world):
    """More iterations widen the gap: joins repeat, the CSR build
    amortises."""
    def ratio(iterations):
        operator = measure(
            lambda: world.db.execute(_operator_sql(iterations)), 2
        )
        joins = measure(
            lambda: world.db.execute(
                pagerank_iterate_sql("edges", 0.85, iterations)
            ),
            1,
        )
        return joins / operator

    assert ratio(15) > ratio(2)
