"""Figure 1 — the four integration layers on one k-Means workload.

Performance must increase with integration depth: external tool and UDF
driver at the bottom, SQL in the middle, the in-core operator on top.
CLI variant: ``python -m repro.bench fig1_layers``.
"""

import pytest

from repro.bench.experiments import run_kmeans
from repro.bench.runner import measure

from conftest import run_or_skip

LAYERS = [
    ("layer1-external-tool", "External tool"),
    ("layer2-udf-driver", "MADlib-like"),
    ("layer3-sql-recursive-cte", "HyPer SQL"),
    ("layer3-sql-iterate", "HyPer Iterate"),
    ("layer4-in-core-operator", "HyPer Operator"),
]


@pytest.mark.parametrize("label,system", LAYERS, ids=[l for l, _ in LAYERS])
def test_layer(benchmark, kmeans_default_setup, label, system):
    benchmark.group = "fig1-layers"
    rounds = 1 if system == "MADlib-like" else 3
    run_or_skip(benchmark, run_kmeans, kmeans_default_setup, system, rounds)


def test_deeper_integration_is_faster(kmeans_default_setup):
    """The paper's Figure 1 ordering within the database: UDF driver
    (layer 2) < SQL (layer 3) < operator (layer 4)."""
    setup = kmeans_default_setup
    udf_driver = measure(lambda: run_kmeans(setup, "MADlib-like"), 1)
    sql = measure(lambda: run_kmeans(setup, "HyPer Iterate"), 2)
    operator = measure(lambda: run_kmeans(setup, "HyPer Operator"), 2)
    assert operator < sql < udf_driver
