"""Ablation §7 — lambda compilation inside one operator.

Three variants of the identical k-Means run:

* the default distance, fused into the operator's kernel;
* a user SQL lambda, compiled to vectorised code (the paper's "no
  virtual function calls" claim);
* a lambda whose body calls a black-box Python UDF — correct, but
  executed row-at-a-time because the engine cannot inspect it
  (section 4.1's layer-2 cost, reproduced inside layer 4).

CLI variant: ``python -m repro.bench ablation_lambda``.
"""

import pytest

from repro.bench.experiments import setup_kmeans
from repro.bench.runner import measure
from repro.types import DOUBLE

from conftest import scaled

D = 4


@pytest.fixture(scope="module")
def world():
    setup = setup_kmeans(scaled(1_000_000), D, 5, 3)

    def metric_udf(*values):
        total = 0.0
        for i in range(D):
            diff = values[i] - values[D + i]
            total += diff * diff
        return total

    setup.db.create_function(
        "py_metric", metric_udf, DOUBLE, arity=2 * D
    )
    feats = ", ".join(setup.features)
    lam = " + ".join(f"(a.{f} - b.{f})^2" for f in setup.features)
    args = ", ".join(
        [f"a.{f}" for f in setup.features]
        + [f"b.{f}" for f in setup.features]
    )
    queries = {
        "fused-default": (
            f"SELECT * FROM KMEANS((SELECT {feats} FROM data), "
            f"(SELECT {feats} FROM centers), 3)"
        ),
        "compiled-lambda": (
            f"SELECT * FROM KMEANS((SELECT {feats} FROM data), "
            f"(SELECT {feats} FROM centers), LAMBDA(a, b) {lam}, 3)"
        ),
        "udf-lambda": (
            f"SELECT * FROM KMEANS((SELECT {feats} FROM data), "
            f"(SELECT {feats} FROM centers), "
            f"LAMBDA(a, b) py_metric({args}), 3)"
        ),
    }
    return setup, queries


@pytest.mark.parametrize(
    "variant", ("fused-default", "compiled-lambda", "udf-lambda")
)
def test_bench_variant(benchmark, world, variant):
    setup, queries = world
    benchmark.group = "ablation-lambda"
    rounds = 1 if variant == "udf-lambda" else 3
    benchmark.pedantic(
        lambda: setup.db.execute(queries[variant]),
        rounds=rounds,
        iterations=1,
    )


def test_compiled_lambda_near_fused(world):
    """A compiled lambda costs little over the fused default..."""
    setup, queries = world
    fused = measure(lambda: setup.db.execute(queries["fused-default"]), 3)
    compiled = measure(
        lambda: setup.db.execute(queries["compiled-lambda"]), 3
    )
    assert compiled < fused * 12


def test_udf_lambda_much_slower(world):
    """...while a black-box UDF body is interpretation-bound."""
    setup, queries = world
    compiled = measure(
        lambda: setup.db.execute(queries["compiled-lambda"]), 2
    )
    udf = measure(lambda: setup.db.execute(queries["udf-lambda"]), 1)
    assert udf > compiled * 3
