"""Quickstart: the engine in five minutes.

Creates tables, runs transactional SQL, and exercises the paper's three
signature features — the ITERATE construct, an in-core analytics
operator, and a lambda expression — all from plain SQL.

Run:  python examples/quickstart.py
"""

import repro


def main() -> None:
    db = repro.connect()

    # --- ordinary SQL: DDL, DML, transactions --------------------------
    db.execute("CREATE TABLE points (x FLOAT, y FLOAT, tag VARCHAR)")
    db.insert_rows(
        "points",
        [
            (0.0, 0.1, "a"), (0.2, 0.0, "a"), (0.1, 0.2, "a"),
            (5.0, 5.1, "b"), (5.2, 4.9, "b"), (4.9, 5.0, "b"),
        ],
    )
    with db.transaction():
        db.execute("UPDATE points SET x = x + 0.01 WHERE tag = 'a'")

    result = db.execute(
        "SELECT tag, count(*) AS n, avg(x) AS cx, avg(y) AS cy "
        "FROM points GROUP BY tag ORDER BY tag"
    )
    print("per-tag summary:")
    for row in result:
        print("  ", row)

    # --- the ITERATE construct (paper Listing 1) ------------------------
    # Smallest three-digit multiple of seven, computed by a
    # non-appending iteration in SQL.
    answer = db.execute(
        'SELECT * FROM ITERATE((SELECT 7 "x"),'
        " (SELECT x + 7 FROM iterate),"
        " (SELECT x FROM iterate WHERE x >= 100))"
    ).scalar()
    print(f"\nITERATE: smallest 3-digit multiple of 7 = {answer}")

    # --- an in-core analytics operator with a lambda (Listing 3) --------
    centers = db.execute(
        "SELECT * FROM KMEANS("
        "  (SELECT x, y FROM points),"
        "  (SELECT x, y FROM points LIMIT 2),"
        "  LAMBDA(a, b) (a.x - b.x)^2 + (a.y - b.y)^2,"
        "  10)"
    )
    print("\nk-Means centers (cluster, x, y, size):")
    for row in centers:
        print("  ", row)

    # --- operators compose with relational post-processing --------------
    # The operator's output is a relation: filter it like any table.
    big = db.execute(
        "SELECT x, y FROM KMEANS((SELECT x, y FROM points),"
        " (SELECT x, y FROM points LIMIT 2), 10)"
        " WHERE size >= 3 ORDER BY x"
    )
    print("\ncenters of clusters with >= 3 members:")
    for row in big:
        print("  ", row)


if __name__ == "__main__":
    main()
