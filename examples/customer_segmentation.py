"""Customer segmentation: k-Means with a custom distance lambda.

The scenario from the paper's motivation: analytics directly on live
transactional data — no export, no stale copies. We segment customers
by annual spend and visit frequency while orders keep being inserted,
then post-process the clusters in the *same* SQL statement.

Shows:
* SQL pre-processing feeding an analytics operator (a join + GROUP BY
  computes the feature vectors inline),
* a lambda re-weighting the distance metric (spend counts double),
* the same query via the ITERATE construct for comparison,
* snapshot isolation: a concurrent insert does not disturb the running
  analysis.

Run:  python examples/customer_segmentation.py
"""

import numpy as np

import repro
from repro.workloads import kmeans_iterate_sql


def load_customers(db: repro.Database, n_customers: int = 500) -> None:
    rng = np.random.default_rng(7)
    db.execute(
        "CREATE TABLE customers (cid BIGINT, name VARCHAR, "
        "region VARCHAR)"
    )
    db.execute(
        "CREATE TABLE orders (cid BIGINT, amount FLOAT, visits INTEGER)"
    )
    regions = ["north", "south", "east", "west"]
    db.insert_rows(
        "customers",
        [
            (i, f"customer-{i}", regions[i % 4])
            for i in range(n_customers)
        ],
    )
    # Three behavioural groups: bargain hunters, regulars, big spenders.
    group = rng.integers(0, 3, n_customers)
    spend_mean = np.asarray([120.0, 900.0, 4200.0])[group]
    visit_mean = np.asarray([2.0, 12.0, 6.0])[group]
    rows = []
    for cid in range(n_customers):
        for _ in range(int(rng.integers(1, 4))):
            rows.append(
                (
                    cid,
                    float(max(rng.normal(spend_mean[cid], 50.0), 1.0)),
                    int(max(rng.normal(visit_mean[cid], 1.0), 1)),
                )
            )
    db.insert_rows("orders", rows)


FEATURES_SQL = (
    "SELECT sum(o.amount) / 1000.0 AS spend, "
    "       avg(o.visits) AS visits "
    "FROM orders o GROUP BY o.cid"
)


def main() -> None:
    db = repro.connect()
    load_customers(db)

    # Layer 4: the operator, with a lambda doubling the weight of spend.
    segments = db.execute(
        f"SELECT * FROM KMEANS(({FEATURES_SQL}), "
        f"({FEATURES_SQL} ORDER BY spend LIMIT 3), "
        "LAMBDA(a, b) 2.0 * (a.spend - b.spend)^2 "
        "+ (a.visits - b.visits)^2, 20) "
        "ORDER BY spend"
    )
    print("customer segments (cluster, spend[k$], visits, size):")
    for row in segments:
        print(
            f"  cluster {row[0]}: spend≈{row[1]:7.2f}k$ "
            f"visits≈{row[2]:5.1f}  ({row[3]} customers)"
        )

    # The same segmentation via the layer-3 ITERATE construct: first
    # materialise features with ids (the SQL formulation needs a key).
    db.execute(
        "CREATE TABLE features AS "
        "SELECT o.cid AS id, sum(o.amount) / 1000.0 AS spend, "
        "CAST(avg(o.visits) AS FLOAT) AS visits "
        "FROM orders o GROUP BY o.cid"
    )
    db.execute(
        "CREATE TABLE seeds AS "
        "SELECT id AS cid, spend, visits FROM features "
        "ORDER BY spend LIMIT 3"
    )
    sql = kmeans_iterate_sql(
        "features", "seeds", ["spend", "visits"], 20
    )
    iterate_segments = db.execute(sql)
    print("\nsame clustering via ITERATE (cid, spend, visits):")
    for row in iterate_segments:
        print(f"  {row[0]}: ({row[1]:7.2f}, {row[2]:5.1f})")

    # Snapshot isolation (paper section 3): a long-running analytical
    # transaction keeps seeing its snapshot while OLTP writes commit.
    analysis = db.txns.begin()  # the analyst's snapshot
    writer = db.txns.begin()  # a concurrent order coming in
    writer.insert_rows("orders", [(0, 99.0, 1)])
    writer.commit()
    seen_by_analysis = analysis.read("orders").row_count
    analysis.commit()
    total_now = db.execute("SELECT count(*) FROM orders").scalar()
    print(
        f"\nanalysis snapshot saw {seen_by_analysis} orders; "
        f"table now holds {total_now} "
        "(the concurrent insert never disturbed the analysis)"
    )


if __name__ == "__main__":
    main()
