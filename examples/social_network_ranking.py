"""Social-network influencer ranking: PageRank inside SQL.

An LDBC-style person-knows-person graph lives in ordinary tables. One
SQL statement ranks everyone with the in-core PageRank operator (CSR
index, section 6.3) and joins the ranks back to the person table —
pre-processing, the analytical operator, and post-processing in a
single query plan (paper Figure 2a).

Also shows the edge-weight lambda: ranking where close friendships
(higher interaction counts) carry more weight.

Run:  python examples/social_network_ranking.py
"""

import numpy as np

import repro
from repro.datagen.graphs import generate_social_graph


def main() -> None:
    db = repro.connect()
    n_people, n_edges = 2_000, 24_000
    src, dst = generate_social_graph(n_people, n_edges, seed=11)

    db.execute(
        "CREATE TABLE person (id BIGINT, name VARCHAR, city VARCHAR)"
    )
    cities = ["munich", "venice", "utrecht", "oslo"]
    db.insert_rows(
        "person",
        [
            (i, f"person-{i}", cities[i % len(cities)])
            for i in range(n_people)
        ],
    )
    rng = np.random.default_rng(3)
    db.execute(
        "CREATE TABLE knows (src BIGINT, dest BIGINT, "
        "interactions INTEGER)"
    )
    db.load_columns(
        "knows",
        {
            "src": src,
            "dest": dst,
            "interactions": rng.integers(1, 50, len(src)),
        },
    )

    # --- who matters? Rank + join back to persons, one statement -------
    top = db.execute(
        "SELECT p.name, p.city, r.rank "
        "FROM PAGERANK((SELECT src, dest FROM knows), 0.85, 0.0001) r "
        "JOIN person p ON p.id = r.vertex "
        "ORDER BY r.rank DESC LIMIT 5"
    )
    print("top influencers (uniform edges):")
    for name, city, rank in top:
        print(f"  {name:<12} {city:<8} rank={rank:.5f}")

    # --- weighted variant: a lambda defines edge weights (section 4.3) --
    weighted = db.execute(
        "SELECT p.name, r.rank "
        "FROM PAGERANK((SELECT src, dest, interactions FROM knows), "
        "0.85, 0.0001, 100, LAMBDA(e) CAST(e.interactions AS FLOAT)) r "
        "JOIN person p ON p.id = r.vertex "
        "ORDER BY r.rank DESC LIMIT 5"
    )
    print("\ntop influencers (interaction-weighted edges):")
    for name, rank in weighted:
        print(f"  {name:<12} rank={rank:.5f}")

    # --- post-processing: average influence per city ---------------------
    by_city = db.execute(
        "SELECT p.city, avg(r.rank) AS avg_rank, count(*) AS people "
        "FROM PAGERANK((SELECT src, dest FROM knows), 0.85, 0.0001) r "
        "JOIN person p ON p.id = r.vertex "
        "GROUP BY p.city ORDER BY avg_rank DESC"
    )
    print("\ninfluence by city:")
    for city, avg_rank, people in by_city:
        print(f"  {city:<8} avg rank={avg_rank:.6f}  ({people} people)")


if __name__ == "__main__":
    main()
