"""Spam classification: the two-phase model/apply pattern in SQL.

The paper observes (section 1) that most analytics boil down to a
model-application approach: build a model, store it, apply it. Here the
Naive Bayes training operator produces the model *as a relation*
(section 6.2), we store it in an ordinary table, and the predict
operator applies it to fresh messages — all SQL, fully transactional.

Run:  python examples/spam_classification.py
"""

import numpy as np

import repro


def synthesize_messages(rng, n: int, spam_fraction: float = 0.4):
    """Feature vectors for messages: (exclamations, caps_ratio,
    link_count, length). Spam skews loud, shouty, linky, short."""
    is_spam = rng.random(n) < spam_fraction
    exclamations = np.where(
        is_spam, rng.normal(6.0, 2.0, n), rng.normal(0.6, 0.5, n)
    )
    caps_ratio = np.where(
        is_spam, rng.normal(0.5, 0.15, n), rng.normal(0.08, 0.05, n)
    )
    links = np.where(
        is_spam, rng.normal(3.2, 1.0, n), rng.normal(0.4, 0.4, n)
    )
    length = np.where(
        is_spam, rng.normal(220.0, 60.0, n), rng.normal(640.0, 180.0, n)
    )
    return (
        is_spam.astype(np.int32),
        np.clip(exclamations, 0.0, None),
        np.clip(caps_ratio, 0.0, 1.0),
        np.clip(links, 0.0, None),
        np.clip(length, 10.0, None),
    )


FEATURES = "exclaims, caps_ratio, links, length"


def main() -> None:
    db = repro.connect()
    rng = np.random.default_rng(42)

    for table in ("mail_train", "mail_new"):
        db.execute(
            f"CREATE TABLE {table} (is_spam INTEGER, exclaims FLOAT, "
            "caps_ratio FLOAT, links FLOAT, length FLOAT)"
        )
    spam, ex, caps, links, length = synthesize_messages(rng, 4_000)
    db.load_columns(
        "mail_train",
        {
            "is_spam": spam, "exclaims": ex, "caps_ratio": caps,
            "links": links, "length": length,
        },
    )
    spam2, ex2, caps2, links2, length2 = synthesize_messages(rng, 1_000)
    db.load_columns(
        "mail_new",
        {
            "is_spam": spam2, "exclaims": ex2, "caps_ratio": caps2,
            "links": links2, "length": length2,
        },
    )

    # --- phase 1: train, store the model as a relation -------------------
    db.execute(
        "CREATE TABLE spam_model AS "
        "SELECT * FROM NAIVE_BAYES_TRAIN("
        f"(SELECT is_spam, {FEATURES} FROM mail_train))"
    )
    print("model relation (class, attribute, prior, mean, stddev):")
    for row in db.execute(
        "SELECT class, attribute, prior, mean, stddev "
        "FROM spam_model ORDER BY class, attribute"
    ):
        klass, attribute, prior, mean, std = row
        print(
            f"  {klass}  {attribute:<10} prior={prior:.3f} "
            f"mean={mean:8.3f} std={std:7.3f}"
        )

    # --- phase 2: apply the stored model to new messages ----------------
    # The predict operator returns rows in input order; align with the
    # held-back true labels to report accuracy.
    predictions = db.execute(
        "SELECT label FROM NAIVE_BAYES_PREDICT("
        "(SELECT * FROM spam_model), "
        f"(SELECT {FEATURES} FROM mail_new))"
    )
    predicted = [row[0] for row in predictions]
    actual = spam2.tolist()
    correct = sum(
        1 for p, a in zip(predicted, actual) if p == a
    )
    print(
        f"\nclassified {len(predicted)} new messages, "
        f"accuracy {100.0 * correct / len(predicted):.1f}%"
    )

    # --- the whole pipeline as ONE statement -----------------------------
    flagged = db.execute(
        "SELECT count(*) FROM NAIVE_BAYES_PREDICT("
        "  (SELECT * FROM NAIVE_BAYES_TRAIN("
        f"     (SELECT is_spam, {FEATURES} FROM mail_train))),"
        f"  (SELECT {FEATURES} FROM mail_new)) "
        "WHERE label = 1"
    ).scalar()
    print(f"one-statement train+predict flags {flagged} messages as spam")


if __name__ == "__main__":
    main()
