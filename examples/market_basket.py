"""Market-basket analysis: frequent itemsets with a-priori in SQL.

The paper notes that a-priori "works well in SQL" (section 4.2): support
counting is GROUP BY, candidate extension is a self-join. This example
mines a synthetic supermarket log entirely through the layer-3 driver,
then derives association rules with plain SQL over the result — and
everything stays transactional: new purchases arriving mid-analysis do
not disturb it.

Run:  python examples/market_basket.py
"""

import numpy as np

import repro
from repro.workloads import apriori

PRODUCTS = [
    "bread", "milk", "eggs", "beer", "diapers", "cola",
    "chips", "salsa", "coffee", "butter",
]

#: Pairs engineered to co-occur (the "signal" the mining should find).
BUNDLES = [("chips", "salsa"), ("beer", "diapers"), ("bread", "butter")]


def synthesize_baskets(db: repro.Database, n_baskets: int = 800) -> None:
    rng = np.random.default_rng(21)
    db.execute("CREATE TABLE baskets (tid INTEGER, item VARCHAR)")
    rows: list[tuple[int, str]] = []
    for tid in range(n_baskets):
        basket = set(
            rng.choice(PRODUCTS, size=rng.integers(1, 4), replace=False)
        )
        for left, right in BUNDLES:
            if rng.random() < 0.25:
                basket.update((left, right))
        rows.extend((tid, item) for item in sorted(basket))
    db.insert_rows("baskets", rows)


def main() -> None:
    db = repro.connect()
    synthesize_baskets(db)
    total = db.execute(
        "SELECT count(DISTINCT tid) FROM baskets"
    ).scalar()
    min_support = int(total * 0.15)
    print(f"{total} baskets, min support {min_support}\n")

    itemsets = apriori(db, "baskets", min_support, max_size=3)
    pairs = [fs for fs in itemsets if len(fs.items) == 2]
    print("frequent pairs (item, item, support):")
    for fs in sorted(pairs, key=lambda f: -f.support):
        print(f"  {fs.items[0]:<8} + {fs.items[1]:<8} {fs.support}")

    # Association rules via SQL over the kept level tables:
    # confidence(A -> B) = support(A, B) / support(A).
    apriori(db, "baskets", min_support, max_size=2, keep_tables=True)
    rules = db.execute(
        "SELECT p.i1, p.i2, "
        "CAST(p.support AS FLOAT) / s.support AS confidence "
        "FROM apriori_l2 p JOIN apriori_l1 s ON p.i1 = s.i1 "
        "ORDER BY confidence DESC LIMIT 5"
    )
    print("\ntop rules (A -> B, confidence):")
    for left, right, confidence in rules:
        print(f"  {left:<8} -> {right:<8} {confidence:.2f}")

    engineered = {tuple(sorted(b)) for b in BUNDLES}
    found = {fs.items for fs in pairs}
    hits = engineered & found
    print(
        f"\nmining recovered {len(hits)}/{len(engineered)} "
        f"engineered bundles: {sorted(hits)}"
    )


if __name__ == "__main__":
    main()
