# Convenience targets; everything assumes PYTHONPATH=src.

PY := PYTHONPATH=src python
N ?= 1000
START ?= 0
WORKERS ?= 4

.PHONY: test test-all fuzz fuzz-parallel bench bench-topn bench-durability obs-smoke metrics-smoke chaos battery server-smoke crash-battery

# The tier-1 suite runs three times: fully serial, with a 4-worker
# pool (the serial-equivalence contract of the morsel-driven executor,
# docs/parallelism.md), and with the hot-path stack — plan cache,
# kernel cache, fused pipelines, zone maps — disabled
# (docs/performance.md), proving the caches never change results.
# The third leg also forces raw storage so cache-off and encoding-off
# are covered together; the battery leg then cross-checks the TPC-H
# query shapes plus an encoded-vs-raw fuzz sweep (docs/storage.md).
test: obs-smoke
	REPRO_WORKERS=1 $(PY) -m pytest -x -q
	REPRO_WORKERS=4 $(PY) -m pytest -x -q
	REPRO_PLAN_CACHE=0 REPRO_ENCODING=raw REPRO_WORKERS=1 $(PY) -m pytest -x -q
	$(MAKE) battery
	$(MAKE) chaos
	$(MAKE) crash-battery
	$(MAKE) server-smoke
	$(PY) -m repro.bench.topn --smoke
	$(PY) -m repro.bench.durability --smoke

# TPC-H-shaped SQL battery (tests/sql_battery/) under raw and encoded
# storage, serial and 4 workers, vs the SQLite oracle — plus a
# string-heavy encoded-vs-raw differential fuzz sweep.
battery:
	$(PY) -m pytest -x -q -m battery
	$(PY) -m repro.testing.fuzz --seeds 50 --encoding-check \
		--schema strings

# Seeded fault-injection battery (docs/robustness.md): every injected
# fault must be tolerated or fail typed with statement atomicity
# (checked against an uninjected twin), then a chaos-armed differential
# fuzz leg against SQLite.
chaos:
	$(PY) -m repro.testing.chaos --seeds 260 --start 1
	$(PY) -m repro.testing.fuzz --seeds 25 --chaos

# Kill-point crash-recovery battery (docs/durability.md): 200 seeded
# scenarios — SIGKILL mid-append, kill mid-commit-stream, torn-write
# truncation, injected fsync failure, bit rot in log and snapshot —
# each recovered and diffed against an acknowledged-prefix twin; plus
# the crash-marked pytest slice (server restart cycle included) and a
# fuzzer leg that recovers a fresh database from the WAL after every
# generated statement.
crash-battery:
	$(PY) -m repro.testing.crash --seeds 200 --jobs 8
	$(PY) -m pytest -x -q -m crash
	$(PY) -m repro.testing.fuzz --seeds 25 --durability-check

# Multi-session server battery (docs/server.md): a live server on an
# ephemeral port, 8 concurrent client sessions of mixed DML / query /
# analytics checked against a serial twin, a forced typed
# ADMISSION_REJECTED under a wedged executor, an HTTP /metrics scrape,
# and clean shutdown — all under a hard watchdog (exit 2 on overrun,
# so a hung server can never hang CI).
server-smoke:
	$(PY) -m repro.server.smoke

# Observability smoke battery: runs a tiny end-to-end workload,
# validates the Prometheus exposition (format, TYPE lines, histogram
# and quantile-summary series), round-trips a Chrome-trace export
# through json.loads plus a schema check, checks the query history
# store recorded the workload, and forces a statement timeout to
# verify the flight recorder dumps a loadable bundle.
obs-smoke:
	$(PY) -m repro.obs.export --check

# Back-compat alias (pre-flight-recorder name).
metrics-smoke: obs-smoke

test-all:
	$(PY) -m pytest -q -m ""

# --cache-check runs every statement cold, plan-cached, and on a
# cache-disabled twin; any leg disagreeing is a divergence.
fuzz:
	$(PY) -m repro.testing.fuzz --seeds $(N) --start $(START) \
		--cache-check -v

# Differential fuzzing of the parallel paths: tiny morsels, zero
# cardinality threshold, $(WORKERS) worker threads vs the SQLite oracle.
fuzz-parallel:
	$(PY) -m repro.testing.fuzz --seeds 200 --start $(START) \
		--workers $(WORKERS) --cache-check -v

bench:
	$(PY) -m repro.bench all --scale 0.001

# Adaptive-optimization benchmark (docs/performance.md): fused top-N
# vs full sort at 1M rows, and cardinality feedback vs static plans on
# TPC-H-shaped joins. Writes results/BENCH_topn.json and
# results/TOPN.md.
bench-topn:
	$(PY) -m repro.bench.topn

# Durability benchmark (docs/durability.md): recovery time vs
# committed history with and without checkpointing, and the
# per-commit fsync overhead of durable mode. Writes
# results/BENCH_durability.json and results/DURABILITY.md.
bench-durability:
	$(PY) -m repro.bench.durability
