# Convenience targets; everything assumes PYTHONPATH=src.

PY := PYTHONPATH=src python
N ?= 1000
START ?= 0

.PHONY: test test-all fuzz bench metrics-smoke

test: metrics-smoke
	$(PY) -m pytest -x -q

# Runs a tiny end-to-end workload and validates the Prometheus
# exposition the engine produces (format, TYPE lines, histogram series).
metrics-smoke:
	$(PY) -m repro.obs.export --check

test-all:
	$(PY) -m pytest -q -m ""

fuzz:
	$(PY) -m repro.testing.fuzz --seeds $(N) --start $(START) -v

bench:
	$(PY) -m repro.bench all --scale 0.001
