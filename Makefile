# Convenience targets; everything assumes PYTHONPATH=src.

PY := PYTHONPATH=src python
N ?= 1000
START ?= 0

.PHONY: test test-all fuzz bench

test:
	$(PY) -m pytest -x -q

test-all:
	$(PY) -m pytest -q -m ""

fuzz:
	$(PY) -m repro.testing.fuzz --seeds $(N) --start $(START) -v

bench:
	$(PY) -m repro.bench all --scale 0.001
