"""Naive Bayes train/predict operators, the model, and the stats ops."""

import math

import numpy as np
import pytest

import repro
from repro.analytics.naive_bayes import (
    naive_bayes_predict,
    naive_bayes_train,
)
from repro.errors import AnalyticsError, BindError


@pytest.fixture
def labelled(db):
    db.execute(
        "CREATE TABLE train (label INTEGER, f1 FLOAT, f2 FLOAT)"
    )
    db.insert_rows(
        "train",
        [
            (0, 1.0, 2.0), (0, 1.2, 2.2), (0, 0.8, 1.8),
            (1, 5.0, 9.0), (1, 5.2, 9.2), (1, 4.8, 8.8),
        ],
    )
    return db


class TestTrainOperator:
    def test_model_shape(self, labelled):
        result = labelled.execute(
            "SELECT * FROM NAIVE_BAYES_TRAIN("
            "(SELECT label, f1, f2 FROM train)) "
            "ORDER BY class, attribute"
        )
        assert result.columns == [
            "class", "attribute", "prior", "mean", "stddev", "count",
        ]
        assert len(result.rows) == 4  # 2 classes x 2 attributes

    def test_laplace_smoothed_prior(self, labelled):
        # PR(c) = (|c| + 1) / (|D| + |C|) = (3 + 1)/(6 + 2) = 0.5
        priors = {
            row[0]: row[2]
            for row in labelled.execute(
                "SELECT class, attribute, prior FROM NAIVE_BAYES_TRAIN("
                "(SELECT label, f1, f2 FROM train))"
            ).rows
        }
        assert priors[0] == pytest.approx(0.5)
        assert priors[1] == pytest.approx(0.5)

    def test_unbalanced_prior(self, db):
        db.execute("CREATE TABLE t (label INTEGER, f FLOAT)")
        db.insert_rows("t", [(0, 1.0)] * 7 + [(1, 2.0)] * 1)
        rows = db.execute(
            "SELECT class, prior FROM NAIVE_BAYES_TRAIN("
            "(SELECT label, f FROM t)) ORDER BY class"
        ).rows
        assert rows[0][1] == pytest.approx((7 + 1) / (8 + 2))
        assert rows[1][1] == pytest.approx((1 + 1) / (8 + 2))

    def test_moments(self, labelled):
        rows = labelled.execute(
            "SELECT mean, stddev FROM NAIVE_BAYES_TRAIN("
            "(SELECT label, f1, f2 FROM train)) "
            "WHERE class = 0 AND attribute = 'f1'"
        ).rows
        mean, std = rows[0]
        assert mean == pytest.approx(1.0)
        assert std == pytest.approx(
            math.sqrt(((0.0) ** 2 + 0.2**2 + 0.2**2) / 3)
        )

    def test_varchar_labels(self, db):
        db.execute("CREATE TABLE t (label VARCHAR, f FLOAT)")
        db.insert_rows("t", [("ham", 1.0), ("spam", 9.0)])
        rows = db.execute(
            "SELECT class FROM NAIVE_BAYES_TRAIN("
            "(SELECT label, f FROM t)) ORDER BY class"
        ).rows
        assert rows == [("ham",), ("spam",)]

    def test_needs_label_plus_feature(self, db):
        db.execute("CREATE TABLE t (label INTEGER)")
        with pytest.raises(BindError):
            db.execute(
                "SELECT * FROM NAIVE_BAYES_TRAIN((SELECT label FROM t))"
            )

    def test_empty_training_set_rejected(self, db):
        db.execute("CREATE TABLE t (label INTEGER, f FLOAT)")
        with pytest.raises(AnalyticsError, match="empty"):
            db.execute(
                "SELECT * FROM NAIVE_BAYES_TRAIN("
                "(SELECT label, f FROM t))"
            )

    def test_null_label_rejected(self, db):
        db.execute("CREATE TABLE t (label INTEGER, f FLOAT)")
        db.insert_rows("t", [(None, 1.0)])
        with pytest.raises(AnalyticsError, match="NULL"):
            db.execute(
                "SELECT * FROM NAIVE_BAYES_TRAIN("
                "(SELECT label, f FROM t))"
            )


class TestPredictOperator:
    def test_roundtrip_classifies_training_data(self, labelled):
        rows = labelled.execute(
            "SELECT * FROM NAIVE_BAYES_PREDICT("
            "(SELECT * FROM NAIVE_BAYES_TRAIN("
            "(SELECT label, f1, f2 FROM train))), "
            "(SELECT f1, f2 FROM train))"
        ).rows
        predicted = [row[-1] for row in rows]
        assert predicted == [0, 0, 0, 1, 1, 1]

    def test_predict_includes_data_columns(self, labelled):
        result = labelled.execute(
            "SELECT * FROM NAIVE_BAYES_PREDICT("
            "(SELECT * FROM NAIVE_BAYES_TRAIN("
            "(SELECT label, f1, f2 FROM train))), "
            "(SELECT f1, f2 FROM train))"
        )
        assert result.columns == ["f1", "f2", "label"]

    def test_model_storable_in_table(self, labelled):
        labelled.execute(
            "CREATE TABLE model AS SELECT * FROM NAIVE_BAYES_TRAIN("
            "(SELECT label, f1, f2 FROM train))"
        )
        rows = labelled.execute(
            "SELECT label FROM NAIVE_BAYES_PREDICT("
            "(SELECT * FROM model), (SELECT f1, f2 FROM train))"
        ).rows
        assert [r[0] for r in rows] == [0, 0, 0, 1, 1, 1]

    def test_malformed_model_rejected(self, db):
        db.execute("CREATE TABLE fake (a INTEGER, b INTEGER)")
        with pytest.raises(BindError, match="model"):
            db.execute(
                "SELECT * FROM NAIVE_BAYES_PREDICT("
                "(SELECT a, b FROM fake), (SELECT a FROM fake))"
            )

    def test_attribute_order_independent(self, labelled):
        # The predict data may present attributes in any order; they
        # are matched by name to the model.
        rows = labelled.execute(
            "SELECT label FROM NAIVE_BAYES_PREDICT("
            "(SELECT * FROM NAIVE_BAYES_TRAIN("
            "(SELECT label, f1, f2 FROM train))), "
            "(SELECT f2, f1 FROM train))"
        ).rows
        assert [r[0] for r in rows] == [0, 0, 0, 1, 1, 1]


class TestLibraryAPI:
    def test_train_and_predict(self):
        labels = np.asarray([0, 0, 1, 1])
        matrix = np.asarray([[1.0], [1.2], [8.0], [8.2]])
        model = naive_bayes_train(labels, matrix)
        out = naive_bayes_predict(
            model, np.asarray([[1.1], [7.9]])
        )
        assert out.tolist() == [0, 1]

    def test_prior_affects_ties(self):
        # Identical likelihoods: the more frequent class wins.
        labels = np.asarray([0, 0, 0, 1])
        matrix = np.asarray([[1.0], [1.0], [1.0], [1.0]])
        model = naive_bayes_train(labels, matrix)
        assert model.predict(np.asarray([[1.0]]))[0] == 0

    def test_degenerate_variance_guarded(self):
        labels = np.asarray([0, 1])
        matrix = np.asarray([[1.0], [2.0]])  # zero in-class variance
        model = naive_bayes_train(labels, matrix)
        out = model.predict(np.asarray([[1.0], [2.0]]))
        assert out.tolist() == [0, 1]

    def test_shape_validation(self):
        with pytest.raises(AnalyticsError):
            naive_bayes_train(np.asarray([0]), np.zeros((2, 1)))


class TestStatsOperators:
    def test_column_stats(self, db):
        db.execute("CREATE TABLE t (a FLOAT, b FLOAT)")
        db.insert_rows("t", [(1.0, 10.0), (3.0, 30.0), (None, 20.0)])
        rows = db.execute(
            "SELECT * FROM COLUMN_STATS((SELECT a, b FROM t)) "
            "ORDER BY attribute"
        ).rows
        a_row = rows[0]
        assert a_row[0] == "a"
        assert a_row[1] == 2  # count skips NULL
        assert a_row[2] == pytest.approx(2.0)  # mean
        assert a_row[4] == 1.0 and a_row[5] == 3.0  # min, max

    def test_column_stats_rejects_strings(self, db):
        db.execute("CREATE TABLE t (s VARCHAR)")
        with pytest.raises(BindError):
            db.execute("SELECT * FROM COLUMN_STATS((SELECT s FROM t))")

    def test_grouped_stats(self, db):
        db.execute("CREATE TABLE t (k VARCHAR, x FLOAT)")
        db.insert_rows(
            "t", [("a", 1.0), ("a", 3.0), ("b", 10.0)]
        )
        rows = db.execute(
            "SELECT key, count, mean FROM GROUPED_STATS("
            "(SELECT k, x FROM t)) ORDER BY key"
        ).rows
        assert rows == [("a", 2, 2.0), ("b", 1, 10.0)]

    def test_grouped_stats_matches_nb_moments(self, labelled):
        """The shared building block: GROUPED_STATS computes exactly the
        per-class moments NB training uses (section 6.2)."""
        stats = {
            (row[0], row[1]): (row[3], row[4])
            for row in labelled.execute(
                "SELECT key, attribute, count, mean, stddev "
                "FROM GROUPED_STATS((SELECT label, f1, f2 FROM train))"
            ).rows
        }
        model = {
            (row[0], row[1]): (row[3], row[4])
            for row in labelled.execute(
                "SELECT class, attribute, prior, mean, stddev "
                "FROM NAIVE_BAYES_TRAIN("
                "(SELECT label, f1, f2 FROM train))"
            ).rows
        }
        for key, (mean, std) in model.items():
            assert stats[key][0] == pytest.approx(mean)
            assert stats[key][1] == pytest.approx(std)
