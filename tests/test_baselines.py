"""Unit tests for the competitor-system simulators."""

import numpy as np
import pytest

import repro
from repro.baselines.external import ExternalToolClient
from repro.baselines.matlab_like import (
    matlab_like_kmeans,
    matlab_like_naive_bayes_train,
    matlab_like_pagerank,
)
from repro.baselines.spark_like import SparkLikeContext
from repro.errors import AnalyticsError


class TestSparkLike:
    def test_partitioning_covers_all_rows(self):
        sc = SparkLikeContext(4, serialized_cache=False)
        parts = sc.parallelize(np.arange(10).reshape(10, 1))
        assert sum(len(p) for p in parts) == 10

    def test_serialized_cache_blocks_are_bytes(self):
        sc = SparkLikeContext(2)
        parts = sc.parallelize(np.arange(4).reshape(4, 1))
        assert all(isinstance(p, bytes) for p in parts)

    def test_task_counter_and_bytes_shipped(self):
        sc = SparkLikeContext(4)
        sc.kmeans(np.random.default_rng(0).random((40, 2)),
                  np.asarray([[0.5, 0.5]]), 2)
        assert sc.tasks_run == 8  # 4 partitions x 2 iterations
        assert sc.bytes_shipped > 0

    def test_result_independent_of_partition_count(self):
        rng = np.random.default_rng(1)
        points = rng.random((200, 3))
        centers = points[:3].copy()
        one = SparkLikeContext(1).kmeans(points, centers, 4)
        many = SparkLikeContext(16).kmeans(points, centers, 4)
        assert np.allclose(one, many)

    def test_pagerank_partition_independence(self):
        rng = np.random.default_rng(2)
        src = rng.integers(0, 30, 200)
        dst = rng.integers(0, 30, 200)
        ids1, r1 = SparkLikeContext(1).pagerank(src, dst, 0.85, 10)
        ids2, r2 = SparkLikeContext(8).pagerank(src, dst, 0.85, 10)
        assert np.array_equal(ids1, ids2)
        assert np.allclose(r1, r2)

    def test_invalid_partition_count(self):
        with pytest.raises(AnalyticsError):
            SparkLikeContext(0)

    def test_nb_train_shapes(self):
        labels = np.asarray([0, 1, 0, 1])
        matrix = np.asarray([[1.0], [5.0], [1.2], [5.2]])
        classes, priors, means, stds = SparkLikeContext(
            2
        ).naive_bayes_train(labels, matrix)
        assert classes.tolist() == [0, 1]
        assert priors.sum() == pytest.approx(1.0)
        assert means.shape == (2, 1)


class TestMatlabLike:
    def test_kmeans_converges_early(self):
        points = [[0.0], [0.1], [9.0], [9.1]]
        centers = matlab_like_kmeans(points, [[0.0], [9.0]], 50)
        assert centers[0][0] == pytest.approx(0.05)
        assert centers[1][0] == pytest.approx(9.05)

    def test_kmeans_requires_centers(self):
        with pytest.raises(AnalyticsError):
            matlab_like_kmeans([[1.0]], [], 3)

    def test_pagerank_distribution(self):
        ranks = matlab_like_pagerank(
            [(0, 1), (1, 2), (2, 0)], 0.85, 20
        )
        assert sum(ranks.values()) == pytest.approx(1.0)

    def test_nb_empty_rejected(self):
        with pytest.raises(AnalyticsError):
            matlab_like_naive_bayes_train([], [])

    def test_nb_priors_smoothed(self):
        model = matlab_like_naive_bayes_train(
            [0, 0, 1], [[1.0], [1.0], [2.0]]
        )
        assert model[0]["prior"][0] == pytest.approx((2 + 1) / (3 + 2))


class TestExternalTool:
    def test_transfer_bytes_counted(self, db):
        db.execute("CREATE TABLE pts (x FLOAT)")
        db.insert_rows("pts", [(float(i),) for i in range(100)])
        client = ExternalToolClient(db)
        client.kmeans("SELECT x FROM pts", "SELECT x FROM pts LIMIT 2", 2)
        assert client.bytes_transferred > 100 * 8

    def test_results_written_back(self, db):
        db.execute("CREATE TABLE pts (x FLOAT)")
        db.insert_rows("pts", [(0.0,), (0.2,), (8.0,), (8.2,)])
        db.execute("CREATE TABLE result (x FLOAT)")
        client = ExternalToolClient(db)
        client.kmeans(
            "SELECT x FROM pts", "SELECT x FROM pts LIMIT 2",
            10, result_table="result",
        )
        rows = sorted(db.execute("SELECT x FROM result").rows)
        assert rows[0][0] == pytest.approx(0.1)
        assert rows[1][0] == pytest.approx(8.1)

    def test_pagerank_roundtrip(self, db):
        db.execute("CREATE TABLE e (src INTEGER, dest INTEGER)")
        db.insert_rows("e", [(0, 1), (1, 0)])
        db.execute("CREATE TABLE pr (v BIGINT, rank FLOAT)")
        client = ExternalToolClient(db)
        ids, ranks = client.pagerank(
            "SELECT src, dest FROM e", 0.85, 10, result_table="pr"
        )
        assert db.execute("SELECT count(*) FROM pr").scalar() == 2
        assert ranks.sum() == pytest.approx(1.0)

    def test_stale_data_hazard_demonstrated(self, db):
        """The layer-1 weakness the paper opens with: the exported copy
        does not see later updates."""
        db.execute("CREATE TABLE pts (x FLOAT)")
        db.insert_rows("pts", [(1.0,)])
        client = ExternalToolClient(db)
        exported = client._export("SELECT x FROM pts")
        db.insert_rows("pts", [(2.0,)])  # arrives after the export
        assert len(exported) == 1
        assert db.execute("SELECT count(*) FROM pts").scalar() == 2
