"""Per-operator execution statistics via ``Database.explain_analyze``.

Row counts are asserted exactly against hand-computed plans on the
shared ``people_db`` fixture; timings can only be bounded (non-negative,
parents enclosing children — the profiler measures inclusive time).
"""

import pytest

import repro
from repro.errors import BindError
from repro.workloads.kmeans_sql import (
    kmeans_iterate_sql,
    kmeans_recursive_sql,
)
from repro.workloads.naive_bayes_sql import naive_bayes_train_sql
from repro.workloads.pagerank_sql import (
    pagerank_iterate_sql,
    pagerank_recursive_sql,
)


def test_scan_filter_counts(people_db):
    analyzed = people_db.explain_analyze(
        "SELECT name FROM people WHERE age > 30"
    )
    scan = analyzed.find("Scan(people)")
    filt = analyzed.find("Filter")
    assert scan is not None and filt is not None
    assert scan.rows_out == 5
    assert scan.rows_in == 0  # leaves have no input
    assert filt.rows_in == 5
    assert filt.rows_out == 2  # alice (34), carol (41); NULL age drops
    assert len(analyzed.result) == 2


def test_scan_filter_join_aggregate_counts(people_db):
    analyzed = people_db.explain_analyze(
        "SELECT city, count(*) AS n FROM people "
        "JOIN orders ON id = person_id "
        "WHERE age > 20 GROUP BY city"
    )
    assert analyzed.find("Scan(people)").rows_out == 5
    assert analyzed.find("Scan(orders)").rows_out == 5
    # age > 20 keeps alice, bob, carol, erin (dave's NULL age drops).
    assert analyzed.find("Filter").rows_out == 4
    # Orders matching those people: 100, 101 (alice), 102 (bob),
    # 103 (carol); order 104 dangles.
    join = analyzed.find("HashJoin")
    assert join is not None
    assert join.rows_out == 4
    agg = analyzed.find("HashAggregate")
    assert agg.rows_in == 4
    assert agg.rows_out == 2  # munich, venice
    assert sorted(analyzed.result.rows) == [("munich", 3), ("venice", 1)]


def test_sort_and_limit_counts(people_db):
    # ORDER BY + LIMIT fuses into a single bounded top-N sort operator.
    analyzed = people_db.explain_analyze(
        "SELECT name FROM people ORDER BY name LIMIT 3"
    )
    topn = analyzed.find("TopNSort")
    assert topn is not None
    assert topn.rows_in == 5
    assert topn.rows_out == 3
    assert len(analyzed.result) == 3


def test_sort_and_limit_counts_unfused(people_db_fullsort):
    analyzed = people_db_fullsort.explain_analyze(
        "SELECT name FROM people ORDER BY name LIMIT 3"
    )
    sort = analyzed.find("Sort")
    limit = analyzed.find("Limit")
    assert sort.rows_in == 5 or sort.rows_out == 5
    assert limit.rows_out == 3
    assert len(analyzed.result) == 3


def test_timings_non_negative_and_nested(people_db):
    analyzed = people_db.explain_analyze(
        "SELECT city, count(*) FROM people "
        "JOIN orders ON id = person_id GROUP BY city ORDER BY city"
    )
    for node in analyzed.operators():
        assert node.elapsed_s >= 0.0
        assert node.self_s >= 0.0
        assert node.calls >= 1
        # Inclusive timing: a parent's clock runs while its children
        # produce, so it must enclose each child's.
        for child in node.children:
            assert node.elapsed_s >= child.elapsed_s
    assert analyzed.total_s >= analyzed.root.elapsed_s


def test_rows_in_is_sum_of_children(people_db):
    analyzed = people_db.explain_analyze(
        "SELECT p.name FROM people p, orders o WHERE p.id = o.person_id"
    )
    for node in analyzed.operators():
        assert node.rows_in == sum(c.rows_out for c in node.children)


def test_subquery_plans_are_profiled(people_db):
    analyzed = people_db.explain_analyze(
        "SELECT name FROM people "
        "WHERE id IN (SELECT person_id FROM orders)"
    )
    assert analyzed.subplans, "IN-subquery plan should be profiled"
    assert analyzed.find("Scan(orders)") is not None
    assert len(analyzed.result) == 3  # alice, bob, carol


def test_format_is_readable(people_db):
    analyzed = people_db.explain_analyze("SELECT count(*) FROM people")
    text = analyzed.format()
    assert "total time" in text
    assert "HashAggregate" in text
    assert "rows_out=1" in text
    assert str(analyzed) == text


def test_result_matches_plain_execute(people_db):
    sql = (
        "SELECT city, avg(age) FROM people GROUP BY city "
        "ORDER BY city NULLS LAST"
    )
    analyzed = people_db.explain_analyze(sql)
    assert analyzed.result.rows == people_db.execute(sql).rows


def test_rejects_non_select(people_db):
    with pytest.raises(BindError):
        people_db.explain_analyze("INSERT INTO people VALUES (9, 'x', 1, 'y')")
    with pytest.raises(BindError):
        people_db.explain_analyze(
            "SELECT 1; SELECT 2"
        )


# ---------------------------------------------------------------------------
# Workload coverage: every physical operator the three paper workloads
# use must show up with stats in explain_analyze output.
# ---------------------------------------------------------------------------


@pytest.fixture
def workload_db(db: repro.Database) -> repro.Database:
    db.execute("CREATE TABLE pts (id INTEGER, x FLOAT, y FLOAT)")
    db.insert_rows(
        "pts",
        [(1, 0.0, 0.0), (2, 0.2, 0.1), (3, 5.0, 5.0), (4, 5.1, 4.9)],
    )
    db.execute("CREATE TABLE ctr (cid INTEGER, x FLOAT, y FLOAT)")
    db.insert_rows("ctr", [(0, 0.0, 0.0), (1, 5.0, 5.0)])
    db.execute("CREATE TABLE edges (src INTEGER, dest INTEGER)")
    db.insert_rows("edges", [(1, 2), (2, 3), (3, 1), (1, 3)])
    db.execute("CREATE TABLE train (label VARCHAR, f1 FLOAT, f2 FLOAT)")
    db.insert_rows(
        "train",
        [("a", 1.0, 2.0), ("a", 1.1, 2.1), ("b", 5.0, 6.0)],
    )
    return db


def test_kmeans_layers_are_profiled(workload_db):
    iterate = workload_db.explain_analyze(
        kmeans_iterate_sql("pts", "ctr", ["x", "y"], 3)
    )
    assert iterate.find("Iterate") is not None
    assert iterate.find("WorkingTable") is not None
    assert iterate.find("HashAggregate") is not None

    recursive = workload_db.explain_analyze(
        kmeans_recursive_sql("pts", "ctr", ["x", "y"], 3)
    )
    assert recursive.find("RecursiveCTE") is not None

    operator = workload_db.explain_analyze(
        "SELECT * FROM KMEANS((SELECT x, y FROM pts), "
        "(SELECT x, y FROM ctr), 3)"
    )
    func = operator.find("TableFunction(kmeans)")
    assert func is not None
    assert func.rows_out == 2  # one row per centroid
    assert func.rows_in == 6  # 4 points + 2 seed centers


def test_pagerank_layers_are_profiled(workload_db):
    operator = workload_db.explain_analyze(
        "SELECT * FROM PAGERANK((SELECT src, dest FROM edges), "
        "0.85, 0.0, 5)"
    )
    func = operator.find("TableFunction(pagerank)")
    assert func is not None
    assert func.rows_in == 4  # edge list
    assert func.rows_out == 3  # one rank per vertex

    iterate = workload_db.explain_analyze(
        pagerank_iterate_sql("edges", 0.85, 5)
    )
    assert iterate.find("Iterate") is not None

    recursive = workload_db.explain_analyze(
        pagerank_recursive_sql("edges", 0.85, 5)
    )
    assert recursive.find("RecursiveCTE") is not None


def test_naive_bayes_layers_are_profiled(workload_db):
    operator = workload_db.explain_analyze(
        "SELECT * FROM NAIVE_BAYES_TRAIN("
        "(SELECT label, f1, f2 FROM train))"
    )
    func = operator.find("TableFunction(naive_bayes_train)")
    assert func is not None
    assert func.rows_in == 3  # training rows

    sql_form = workload_db.explain_analyze(
        naive_bayes_train_sql("train", "label", ["f1", "f2"])
    )
    assert sql_form.find("SetOp") is not None
    assert sql_form.find("HashAggregate") is not None
