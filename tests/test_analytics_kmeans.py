"""The k-Means operator (SQL level) and the library kernel."""

import numpy as np
import pytest

import repro
from repro.analytics.kmeans import kmeans
from repro.errors import AnalyticsError, BindError


@pytest.fixture
def clustered(db):
    """Two well-separated blobs plus the centers table."""
    rng = np.random.default_rng(0)
    db.execute("CREATE TABLE pts (x FLOAT, y FLOAT)")
    blob_a = rng.normal(0.0, 0.1, (30, 2))
    blob_b = rng.normal(5.0, 0.1, (30, 2))
    db.load_columns(
        "pts",
        {
            "x": np.concatenate([blob_a[:, 0], blob_b[:, 0]]),
            "y": np.concatenate([blob_a[:, 1], blob_b[:, 1]]),
        },
    )
    db.execute("CREATE TABLE seeds (x FLOAT, y FLOAT)")
    db.insert_rows("seeds", [(0.0, 0.0), (5.0, 5.0)])
    return db


class TestOperatorSQL:
    def test_finds_blob_centers(self, clustered):
        rows = clustered.execute(
            "SELECT * FROM KMEANS((SELECT x, y FROM pts), "
            "(SELECT x, y FROM seeds), 20) ORDER BY x"
        ).rows
        assert len(rows) == 2
        cluster0 = rows[0]
        assert cluster0[1] == pytest.approx(0.0, abs=0.2)
        assert cluster0[3] == 30  # size
        assert rows[1][1] == pytest.approx(5.0, abs=0.2)

    def test_output_schema(self, clustered):
        result = clustered.execute(
            "SELECT * FROM KMEANS((SELECT x, y FROM pts), "
            "(SELECT x, y FROM seeds), 5)"
        )
        assert result.columns == ["cluster", "x", "y", "size"]

    def test_lambda_euclidean_matches_default(self, clustered):
        default = clustered.execute(
            "SELECT x, y FROM KMEANS((SELECT x, y FROM pts), "
            "(SELECT x, y FROM seeds), 10) ORDER BY x"
        ).rows
        explicit = clustered.execute(
            "SELECT x, y FROM KMEANS((SELECT x, y FROM pts), "
            "(SELECT x, y FROM seeds), "
            "LAMBDA(a, b) (a.x - b.x)^2 + (a.y - b.y)^2, 10) ORDER BY x"
        ).rows
        for d_row, e_row in zip(default, explicit):
            assert d_row == pytest.approx(e_row)

    def test_manhattan_lambda_changes_semantics(self, clustered):
        # k-Medians-flavoured distance (paper section 7): still runs,
        # converges to sane centers.
        rows = clustered.execute(
            "SELECT * FROM KMEANS((SELECT x, y FROM pts), "
            "(SELECT x, y FROM seeds), "
            "LAMBDA(a, b) abs(a.x - b.x) + abs(a.y - b.y), 10) "
            "ORDER BY x"
        ).rows
        assert rows[0][1] == pytest.approx(0.0, abs=0.2)

    def test_weighted_lambda(self, clustered):
        rows = clustered.execute(
            "SELECT count(*) FROM KMEANS((SELECT x, y FROM pts), "
            "(SELECT x, y FROM seeds), "
            "LAMBDA(a, b) 10.0 * (a.x - b.x)^2 + (a.y - b.y)^2, 5)"
        )
        assert rows.scalar() == 2

    def test_subquery_preprocessing(self, clustered):
        # Arbitrary pre-processing: filter one blob away, one center.
        rows = clustered.execute(
            "SELECT * FROM KMEANS("
            "(SELECT x, y FROM pts WHERE x < 2), "
            "(SELECT x, y FROM seeds LIMIT 1), 10)"
        ).rows
        assert len(rows) == 1
        assert rows[0][3] == 30

    def test_postprocessing_in_same_query(self, clustered):
        total = clustered.execute(
            "SELECT sum(size) FROM KMEANS((SELECT x, y FROM pts), "
            "(SELECT x, y FROM seeds), 5)"
        ).scalar()
        assert total == 60

    def test_dimension_mismatch_rejected(self, clustered):
        with pytest.raises(BindError, match="dimensions"):
            clustered.execute(
                "SELECT * FROM KMEANS((SELECT x, y FROM pts), "
                "(SELECT x FROM seeds), 3)"
            )

    def test_non_numeric_input_rejected(self, db):
        db.execute("CREATE TABLE t (s VARCHAR)")
        with pytest.raises(BindError):
            db.execute(
                "SELECT * FROM KMEANS((SELECT s FROM t), "
                "(SELECT s FROM t), 3)"
            )

    def test_bad_max_iterations(self, clustered):
        with pytest.raises(BindError, match="positive"):
            clustered.execute(
                "SELECT * FROM KMEANS((SELECT x, y FROM pts), "
                "(SELECT x, y FROM seeds), 0)"
            )

    def test_null_data_rejected(self, db):
        db.execute("CREATE TABLE t (x FLOAT)")
        db.insert_rows("t", [(1.0,), (None,)])
        with pytest.raises(AnalyticsError, match="NULL"):
            db.execute(
                "SELECT * FROM KMEANS((SELECT x FROM t), "
                "(SELECT x FROM t WHERE x IS NOT NULL), 3)"
            )

    def test_deterministic(self, clustered):
        sql = (
            "SELECT * FROM KMEANS((SELECT x, y FROM pts), "
            "(SELECT x, y FROM seeds), 7) ORDER BY cluster"
        )
        assert clustered.execute(sql).rows == clustered.execute(sql).rows


class TestLibraryKernel:
    def test_convergence_stops_early(self):
        points = np.asarray([[0.0], [0.1], [10.0], [10.1]])
        centers = np.asarray([[0.0], [10.0]])
        out, assign, sizes, iterations = kmeans(
            points, centers, max_iterations=100
        )
        assert iterations < 100
        assert sorted(sizes.tolist()) == [2, 2]

    def test_assignment_is_nearest(self):
        points = np.asarray([[0.0], [1.0], [9.0]])
        centers = np.asarray([[0.0], [10.0]])
        _out, assign, _sizes, _it = kmeans(points, centers, 1)
        assert assign.tolist() == [0, 0, 1]

    def test_empty_cluster_keeps_center(self):
        points = np.asarray([[0.0], [0.1]])
        centers = np.asarray([[0.0], [100.0]])
        out, _assign, sizes, _it = kmeans(points, centers, 5)
        assert sizes.tolist() == [2, 0]
        assert out[1, 0] == 100.0  # untouched

    def test_custom_metric(self):
        points = np.asarray([[0.0], [4.0]])
        centers = np.asarray([[1.0], [5.0]])

        def inverted(pts, center):
            # Prefer the FARTHEST center: distances negated.
            diff = pts - center
            return -np.einsum("ij,ij->i", diff, diff)

        _out, assign, _sizes, _it = kmeans(
            points, centers, 1, metric=inverted
        )
        assert assign.tolist() == [1, 0]

    def test_single_point(self):
        out, assign, sizes, _it = kmeans(
            np.asarray([[3.0, 4.0]]), np.asarray([[0.0, 0.0]]), 5
        )
        assert out.tolist() == [[3.0, 4.0]]

    def test_validation(self):
        with pytest.raises(AnalyticsError):
            kmeans(np.zeros((2, 2)), np.zeros((1, 3)), 3)
        with pytest.raises(AnalyticsError):
            kmeans(np.zeros(3), np.zeros((1, 1)), 3)
        with pytest.raises(AnalyticsError):
            kmeans(np.zeros((2, 1)), np.zeros((1, 1)), 0)

    def test_matches_chunked_processing(self):
        """Chunked morsel execution must be equivalent to one pass."""
        import importlib

        km = importlib.import_module("repro.analytics.kmeans")

        rng = np.random.default_rng(5)
        points = rng.random((1000, 3))
        centers = points[:4].copy()
        saved = km.UPDATE_CHUNK_ROWS
        try:
            km.UPDATE_CHUNK_ROWS = 64
            chunked = kmeans(points, centers, 5)
            km.UPDATE_CHUNK_ROWS = 1_000_000
            whole = kmeans(points, centers, 5)
        finally:
            km.UPDATE_CHUNK_ROWS = saved
        assert np.allclose(chunked[0], whole[0])
        assert (chunked[1] == whole[1]).all()


class TestEdgeInputs:
    def test_more_centers_than_points(self, db):
        db.execute("CREATE TABLE p (x FLOAT)")
        db.insert_rows("p", [(1.0,), (2.0,)])
        db.execute("CREATE TABLE c (x FLOAT)")
        db.insert_rows("c", [(0.0,), (1.5,), (9.0,)])
        rows = db.execute(
            "SELECT * FROM KMEANS((SELECT x FROM p), "
            "(SELECT x FROM c), 5)"
        ).rows
        assert len(rows) == 3
        assert sum(r[-1] for r in rows) == 2  # all points assigned

    def test_empty_data_keeps_centers(self, db):
        db.execute("CREATE TABLE p (x FLOAT)")
        db.execute("CREATE TABLE c (x FLOAT)")
        db.insert_rows("c", [(0.0,), (1.0,)])
        rows = db.execute(
            "SELECT * FROM KMEANS((SELECT x FROM p), "
            "(SELECT x FROM c), 5)"
        ).rows
        assert [r[1] for r in rows] == [0.0, 1.0]
        assert all(r[-1] == 0 for r in rows)

    def test_zero_centers_rejected(self, db):
        from repro.errors import AnalyticsError

        db.execute("CREATE TABLE p (x FLOAT)")
        db.insert_rows("p", [(1.0,)])
        db.execute("CREATE TABLE c (x FLOAT)")
        with pytest.raises(AnalyticsError, match="at least one"):
            db.execute(
                "SELECT * FROM KMEANS((SELECT x FROM p), "
                "(SELECT x FROM c), 5)"
            )
