"""The benchmark harness: runner utilities and experiment runners."""

import pytest

from repro.bench.experiments import (
    KMEANS_SYSTEMS,
    run_kmeans,
    run_naive_bayes,
    run_pagerank,
    setup_kmeans,
    setup_naive_bayes,
    setup_pagerank,
)
from repro.bench.runner import BenchResult, SeriesTable, measure


class TestRunner:
    def test_measure_returns_positive(self):
        assert measure(lambda: sum(range(100))) > 0

    def test_measure_best_of_repeats(self):
        calls = []

        def fn():
            calls.append(1)

        measure(fn, repeat=3)
        assert len(calls) == 3

    def test_series_table_format(self):
        table = SeriesTable("Demo", "x", ["sysA", "sysB"])
        table.record("sysA", 1, 0.5)
        table.record("sysB", 1, None, "over cap")
        table.record("sysA", 2, 1.25)
        text = table.format()
        assert "Demo" in text
        assert "0.5000s" in text
        assert "—" in text

    def test_lookup(self):
        table = SeriesTable("T", "x", ["a"])
        table.record("a", 10, 0.1)
        assert table.lookup("a", 10).seconds == 0.1
        assert table.lookup("a", 99) is None

    def test_x_values_preserve_order(self):
        table = SeriesTable("T", "x", ["a"])
        for x in (3, 1, 2, 1):
            table.record("a", x, 0.0)
        assert table.x_values() == [3, 1, 2]


class TestExperimentRunners:
    def test_kmeans_all_systems_run(self):
        setup = setup_kmeans(300, 3, 2, 2)
        for system in KMEANS_SYSTEMS:
            assert run_kmeans(setup, system) is not None

    def test_kmeans_caps_apply(self):
        setup = setup_kmeans(300, 3, 2, 2)
        # Force the data over the interpreted caps.
        setup.n = 10**9
        setup.matlab_points = []
        assert run_kmeans(setup, "MATLAB-like") is None
        assert run_kmeans(setup, "MADlib-like") is None

    def test_kmeans_unknown_system(self):
        setup = setup_kmeans(50, 2, 2, 1)
        with pytest.raises(ValueError):
            run_kmeans(setup, "Oracle")

    def test_pagerank_all_systems_run(self):
        setup = setup_pagerank(60, 600, iterations=5)
        for system in KMEANS_SYSTEMS:
            assert run_pagerank(setup, system) is not None

    def test_naive_bayes_all_systems_run(self):
        setup = setup_naive_bayes(300, 3)
        for system in KMEANS_SYSTEMS:
            assert run_naive_bayes(setup, system) is not None

    def test_external_tool_system(self):
        setup = setup_kmeans(100, 2, 2, 2)
        assert run_kmeans(setup, "External tool") is not None


class TestCLI:
    def test_unknown_experiment_rejected(self):
        from repro.bench.__main__ import main

        with pytest.raises(SystemExit):
            main(["no_such_experiment"])

    def test_fig1_runs_at_tiny_scale(self, capsys, tmp_path):
        from repro.bench.__main__ import main

        assert main(
            ["fig1_layers", "--scale", "0.00005",
             "--results-dir", str(tmp_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "layer 4: in-core operator" in out

    def test_table1_runs(self, capsys, tmp_path):
        from repro.bench.__main__ import main

        assert main(
            ["table1", "--scale", "0.0001",
             "--results-dir", str(tmp_path)]
        ) == 0
        assert "Table 1" in capsys.readouterr().out

    def test_bench_json_embeds_metrics_snapshot(self, capsys, tmp_path):
        import json

        from repro.bench.__main__ import main

        assert main(
            ["fig1_layers", "--scale", "0.00005",
             "--results-dir", str(tmp_path)]
        ) == 0
        capsys.readouterr()
        payload = json.loads(
            (tmp_path / "BENCH_fig1_layers.json").read_text()
        )
        assert payload["experiment"] == "fig1_layers"
        assert payload["results"]
        # The experiment's sessions mirror into the global registry,
        # which the runner snapshots into the result file.
        counters = payload["metrics"]["counters"]
        assert counters["txn_commits_total"] > 0
        assert counters["exec_rows_scanned_total"] > 0
