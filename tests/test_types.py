"""Unit tests for the SQL type system."""

import numpy as np
import pytest

from repro.errors import BindError
from repro.types import (
    BIGINT,
    BOOLEAN,
    DATE,
    DOUBLE,
    INTEGER,
    NULLTYPE,
    SQLType,
    TypeKind,
    VARCHAR,
    can_implicitly_cast,
    coerce_scalar,
    common_supertype,
    infer_literal_type,
    python_type_of,
    type_from_name,
)


class TestTypeNames:
    def test_integer_aliases(self):
        for name in ("INTEGER", "INT", "int4", "smallint"):
            assert type_from_name(name) == INTEGER

    def test_bigint_aliases(self):
        for name in ("BIGINT", "int8"):
            assert type_from_name(name) == BIGINT

    def test_double_aliases(self):
        for name in ("FLOAT", "DOUBLE", "real", "numeric", "decimal"):
            assert type_from_name(name) == DOUBLE

    def test_varchar_with_width(self):
        t = type_from_name("VARCHAR", 500)
        assert t.kind is TypeKind.VARCHAR
        assert t.width == 500
        assert str(t) == "VARCHAR(500)"

    def test_text_alias(self):
        assert type_from_name("text") == VARCHAR

    def test_boolean(self):
        assert type_from_name("bool") == BOOLEAN

    def test_unknown_name_raises(self):
        with pytest.raises(BindError, match="unknown type"):
            type_from_name("blob")


class TestSupertype:
    def test_same_type(self):
        assert common_supertype(INTEGER, INTEGER) == INTEGER

    def test_numeric_promotion(self):
        assert common_supertype(INTEGER, BIGINT) == BIGINT
        assert common_supertype(INTEGER, DOUBLE) == DOUBLE
        assert common_supertype(BIGINT, DOUBLE) == DOUBLE

    def test_promotion_symmetric(self):
        assert common_supertype(DOUBLE, INTEGER) == DOUBLE

    def test_null_yields_other(self):
        assert common_supertype(NULLTYPE, VARCHAR) == VARCHAR
        assert common_supertype(INTEGER, NULLTYPE) == INTEGER

    def test_varchar_width_unification(self):
        narrow = SQLType(TypeKind.VARCHAR, 10)
        wide = SQLType(TypeKind.VARCHAR, 20)
        assert common_supertype(narrow, wide) == VARCHAR

    def test_incompatible_raises(self):
        with pytest.raises(BindError, match="incompatible"):
            common_supertype(INTEGER, VARCHAR)
        with pytest.raises(BindError):
            common_supertype(BOOLEAN, DOUBLE)


class TestImplicitCast:
    def test_null_casts_anywhere(self):
        assert can_implicitly_cast(NULLTYPE, VARCHAR)
        assert can_implicitly_cast(NULLTYPE, BOOLEAN)

    def test_widening_allowed(self):
        assert can_implicitly_cast(INTEGER, DOUBLE)
        assert can_implicitly_cast(INTEGER, BIGINT)

    def test_narrowing_rejected(self):
        assert not can_implicitly_cast(DOUBLE, INTEGER)
        assert not can_implicitly_cast(BIGINT, INTEGER)

    def test_cross_family_rejected(self):
        assert not can_implicitly_cast(VARCHAR, INTEGER)
        assert not can_implicitly_cast(BOOLEAN, INTEGER)


class TestLiteralInference:
    def test_none(self):
        assert infer_literal_type(None) == NULLTYPE

    def test_bool_before_int(self):
        # bool is a subclass of int in Python; must map to BOOLEAN.
        assert infer_literal_type(True) == BOOLEAN

    def test_small_int(self):
        assert infer_literal_type(42) == INTEGER

    def test_large_int(self):
        assert infer_literal_type(2**40) == BIGINT

    def test_negative_boundary(self):
        assert infer_literal_type(-(2**31)) == INTEGER
        assert infer_literal_type(2**31) == BIGINT

    def test_float(self):
        assert infer_literal_type(1.5) == DOUBLE

    def test_str(self):
        assert infer_literal_type("x") == VARCHAR

    def test_numpy_scalars(self):
        assert infer_literal_type(np.int32(5)) == INTEGER
        assert infer_literal_type(np.float64(5.0)) == DOUBLE

    def test_unsupported_raises(self):
        with pytest.raises(BindError):
            infer_literal_type(object())


class TestCoerce:
    def test_none_passthrough(self):
        assert coerce_scalar(None, INTEGER) is None

    def test_int_to_double(self):
        assert coerce_scalar(3, DOUBLE) == 3.0

    def test_float_to_int(self):
        assert coerce_scalar(3.7, INTEGER) == 3

    def test_str_to_bool(self):
        assert coerce_scalar("true", BOOLEAN) is True
        assert coerce_scalar("F", BOOLEAN) is False

    def test_bad_bool_string(self):
        with pytest.raises(BindError):
            coerce_scalar("maybe", BOOLEAN)

    def test_to_varchar(self):
        assert coerce_scalar(12, VARCHAR) == "12"

    def test_bad_numeric_string(self):
        with pytest.raises(BindError):
            coerce_scalar("abc", INTEGER)

    def test_date_is_int_backed(self):
        assert coerce_scalar(19000, DATE) == 19000


class TestNumpyMapping:
    def test_dtypes(self):
        assert INTEGER.numpy_dtype() == np.dtype(np.int32)
        assert BIGINT.numpy_dtype() == np.dtype(np.int64)
        assert DOUBLE.numpy_dtype() == np.dtype(np.float64)
        assert BOOLEAN.numpy_dtype() == np.dtype(np.bool_)
        assert VARCHAR.numpy_dtype() == np.dtype(object)

    def test_python_types(self):
        assert python_type_of(INTEGER) is int
        assert python_type_of(DOUBLE) is float
        assert python_type_of(VARCHAR) is str
        assert python_type_of(BOOLEAN) is bool

    def test_numeric_flags(self):
        assert INTEGER.is_numeric and INTEGER.is_integral
        assert DOUBLE.is_numeric and not DOUBLE.is_integral
        assert not VARCHAR.is_numeric
