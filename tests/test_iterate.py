"""The ITERATE construct (paper section 5.1) and recursive CTEs."""

import pytest

import repro
from repro.errors import BindError, IterationLimitError


class TestIterate:
    def test_listing1(self, db):
        assert db.execute(
            'SELECT * FROM ITERATE((SELECT 7 "x"),'
            " (SELECT x + 7 FROM iterate),"
            " (SELECT x FROM iterate WHERE x >= 100))"
        ).scalar() == 105

    def test_stop_checked_before_first_step(self, db):
        # Initial state already satisfies the stop condition: zero steps.
        assert db.execute(
            "SELECT * FROM ITERATE((SELECT 200 AS x),"
            " (SELECT x + 1 FROM iterate),"
            " (SELECT x FROM iterate WHERE x >= 100))"
        ).scalar() == 200

    def test_boolean_stop_column(self, db):
        assert db.execute(
            "SELECT * FROM ITERATE((SELECT 1 AS x),"
            " (SELECT x * 2 FROM iterate),"
            " (SELECT x > 50 FROM iterate))"
        ).scalar() == 64

    def test_boolean_stop_all_false_continues(self, db):
        # A stop query returning rows that are all FALSE must continue.
        assert db.execute(
            "SELECT * FROM ITERATE((SELECT 1 AS x),"
            " (SELECT x + 1 FROM iterate),"
            " (SELECT x >= 5 FROM iterate))"
        ).scalar() == 5

    def test_working_relation_replaced_not_appended(self, db):
        result = db.execute(
            "SELECT count(*) FROM ITERATE((SELECT 1 AS x),"
            " (SELECT x + 1 FROM iterate),"
            " (SELECT x FROM iterate WHERE x >= 10))"
        )
        assert result.scalar() == 1  # one tuple, not ten

    def test_multi_row_working_relation(self, db):
        db.execute("CREATE TABLE seeds (v INTEGER)")
        db.insert_rows("seeds", [(1,), (2,), (3,)])
        rows = db.execute(
            "SELECT * FROM ITERATE((SELECT v FROM seeds),"
            " (SELECT v * 2 FROM iterate),"
            " (SELECT 1 FROM iterate WHERE v >= 8)) ORDER BY v"
        ).rows
        # The stop fires as soon as ANY row satisfies it: after the
        # second round the relation is (4, 8, 12) and 8 >= 8.
        assert rows == [(4,), (8,), (12,)]

    def test_aggregation_in_step(self, db):
        # Collapse the relation to a single row in the first step.
        db.execute("CREATE TABLE vals (v INTEGER)")
        db.insert_rows("vals", [(1,), (2,), (3,)])
        assert db.execute(
            "SELECT * FROM ITERATE((SELECT sum(v) AS s FROM vals),"
            " (SELECT s * 10 FROM iterate),"
            " (SELECT s FROM iterate WHERE s >= 600))"
        ).scalar() == 600

    def test_iterate_composes_with_postprocessing(self, db):
        assert db.execute(
            "SELECT x * 100 FROM ITERATE((SELECT 1 AS x),"
            " (SELECT x + 1 FROM iterate),"
            " (SELECT x FROM iterate WHERE x >= 3)) WHERE x > 0"
        ).scalar() == 300

    def test_iterate_with_alias(self, db):
        assert db.execute(
            "SELECT it.x FROM ITERATE((SELECT 5 AS x),"
            " (SELECT x FROM iterate),"
            " (SELECT x FROM iterate)) AS it"
        ).scalar() == 5

    def test_infinite_loop_guard(self, db):
        small = repro.Database(max_iterations=50)
        with pytest.raises(IterationLimitError):
            small.execute(
                "SELECT * FROM ITERATE((SELECT 1 AS x),"
                " (SELECT x FROM iterate),"
                " (SELECT x FROM iterate WHERE x > 99))"
            )

    def test_step_schema_coerced_to_init(self, db):
        # Step yields DOUBLE where init had INTEGER-compatible value.
        value = db.execute(
            "SELECT * FROM ITERATE((SELECT 1.0 AS x),"
            " (SELECT x + 1 FROM iterate),"
            " (SELECT x FROM iterate WHERE x >= 3))"
        ).scalar()
        assert value == 3.0

    def test_step_arity_mismatch_rejected(self, db):
        with pytest.raises(BindError):
            db.execute(
                "SELECT * FROM ITERATE((SELECT 1 AS x),"
                " (SELECT x, x FROM iterate),"
                " (SELECT x FROM iterate))"
            )

    def test_peak_live_tuples_is_two_rounds(self, db):
        db.execute("CREATE TABLE seeds (v INTEGER)")
        db.insert_rows("seeds", [(i,) for i in range(10)])
        db.execute(
            "SELECT * FROM ITERATE((SELECT v FROM seeds),"
            " (SELECT v + 1 FROM iterate),"
            " (SELECT 1 FROM iterate WHERE v >= 14))"
        )
        assert db.last_stats.peak_live_tuples == 20  # 2n, not n*i


class TestRecursiveCTE:
    def test_counting(self, db):
        assert db.execute(
            "WITH RECURSIVE t(n) AS (SELECT 1 UNION ALL "
            "SELECT n + 1 FROM t WHERE n < 10) SELECT sum(n) FROM t"
        ).scalar() == 55

    def test_union_distinct_reaches_fixpoint(self, db):
        # With UNION (not ALL), revisiting rows terminates recursion.
        db.execute("CREATE TABLE edges (a INTEGER, b INTEGER)")
        db.insert_rows("edges", [(1, 2), (2, 3), (3, 1)])  # a cycle
        rows = db.execute(
            "WITH RECURSIVE reach(v) AS ("
            "SELECT 1 UNION "
            "SELECT e.b FROM reach r JOIN edges e ON e.a = r.v) "
            "SELECT v FROM reach ORDER BY v"
        ).rows
        assert rows == [(1,), (2,), (3,)]

    def test_transitive_closure(self, db):
        db.execute("CREATE TABLE edges (a INTEGER, b INTEGER)")
        db.insert_rows("edges", [(1, 2), (2, 3), (3, 4)])
        rows = db.execute(
            "WITH RECURSIVE paths(src, dst) AS ("
            "SELECT a, b FROM edges UNION "
            "SELECT p.src, e.b FROM paths p JOIN edges e ON p.dst = e.a) "
            "SELECT count(*) FROM paths"
        )
        assert rows.scalar() == 6  # 1->2,1->3,1->4,2->3,2->4,3->4

    def test_each_round_sees_previous_round_only(self, db):
        # Standard SQL semantics: the step reads last round's rows, so
        # doubling per round yields powers of two, not a blow-up.
        rows = db.execute(
            "WITH RECURSIVE t(n, r) AS ("
            "SELECT 1, 0 UNION ALL "
            "SELECT n * 2, r + 1 FROM t WHERE r < 4) "
            "SELECT n FROM t ORDER BY n"
        ).rows
        assert [r[0] for r in rows] == [1, 2, 4, 8, 16]

    def test_infinite_recursion_guard(self):
        small = repro.Database(max_iterations=20)
        with pytest.raises(IterationLimitError):
            small.execute(
                "WITH RECURSIVE t(n) AS (SELECT 1 UNION ALL "
                "SELECT n FROM t) SELECT count(*) FROM t"
            )

    def test_memory_grows_with_iterations(self, db):
        db.execute(
            "WITH RECURSIVE t(n) AS (SELECT 1 UNION ALL "
            "SELECT n + 1 FROM t WHERE n < 50) SELECT count(*) FROM t"
        )
        # Appending semantics: all 50 rounds stay live.
        assert db.last_stats.peak_live_tuples == 50

    def test_nonrecursive_with_recursive_keyword(self, db):
        # WITH RECURSIVE on a CTE that never self-references.
        assert db.execute(
            "WITH RECURSIVE c AS (SELECT 42 AS x) SELECT x FROM c"
        ).scalar() == 42

    def test_requires_union_shape(self, db):
        with pytest.raises(BindError, match="UNION"):
            db.execute(
                "WITH RECURSIVE t(n) AS (SELECT n + 1 FROM t) "
                "SELECT * FROM t"
            )


class TestIterateVsRecursiveEquivalence:
    def test_same_final_relation(self, db):
        """The paper's point: for replace-style algorithms both forms
        compute the same result; ITERATE just keeps it smaller."""
        it = db.execute(
            "SELECT * FROM ITERATE((SELECT 2 AS x),"
            " (SELECT x * x FROM iterate),"
            " (SELECT x FROM iterate WHERE x >= 256))"
        ).scalar()
        rc = db.execute(
            "WITH RECURSIVE t(x, it) AS ("
            "SELECT 2, 0 UNION ALL "
            "SELECT x * x, it + 1 FROM t WHERE x < 256) "
            "SELECT x FROM t ORDER BY it DESC LIMIT 1"
        ).scalar()
        assert it == rc == 256


class TestIterationCounting:
    """``ExecutionStats.iterations`` counts executed rounds uniformly
    across ITERATE, recursive CTEs, and iterative analytics."""

    def test_iterate_counts_rounds(self, db):
        db.execute(
            "SELECT * FROM ITERATE((SELECT 1 AS x),"
            " (SELECT x + 1 FROM iterate),"
            " (SELECT x FROM iterate WHERE x >= 5))"
        )
        # 1 -> 2 -> 3 -> 4 -> 5: four step executions.
        assert db.last_stats.iterations == 4

    def test_iterate_zero_rounds(self, db):
        db.execute(
            "SELECT * FROM ITERATE((SELECT 200 AS x),"
            " (SELECT x + 1 FROM iterate),"
            " (SELECT x FROM iterate WHERE x >= 100))"
        )
        assert db.last_stats.iterations == 0

    def test_recursive_cte_counts_rounds(self, db):
        db.execute(
            "WITH RECURSIVE t(n) AS (SELECT 1 UNION ALL "
            "SELECT n + 1 FROM t WHERE n < 10) SELECT count(*) FROM t"
        )
        # Nine producing rounds plus the final empty round.
        assert db.last_stats.iterations == 10

    def test_counts_survive_iteration_limit(self):
        small = repro.Database(max_iterations=50)
        with pytest.raises(IterationLimitError):
            small.execute(
                "SELECT * FROM ITERATE((SELECT 1 AS x),"
                " (SELECT x FROM iterate),"
                " (SELECT x FROM iterate WHERE x > 99))"
            )
        # Per-round counting: the aborted statement's rounds stay
        # observable in both last_stats and the metrics registry.
        assert small.last_stats.iterations == 50
        counters = small.metrics.snapshot()["counters"]
        assert counters["exec_iterations_total"] == 50

    def test_kmeans_counts_iterations(self, db):
        db.execute("CREATE TABLE pts (x FLOAT, y FLOAT)")
        db.insert_rows(
            "pts", [(0.0, 0.0), (0.2, 0.1), (5.0, 5.0), (5.1, 4.9)]
        )
        db.execute("CREATE TABLE seeds (x FLOAT, y FLOAT)")
        db.insert_rows("seeds", [(1.0, 1.0), (4.0, 4.0)])
        db.execute(
            "SELECT * FROM KMEANS((SELECT x, y FROM pts), "
            "(SELECT x, y FROM seeds), 10)"
        )
        assert db.last_stats.iterations >= 1


class TestNesting:
    def test_iterate_inside_iterate_step(self, db):
        rows = db.execute(
            "SELECT * FROM ITERATE("
            "(SELECT 1 AS outer_v),"
            "(SELECT outer_v + inner_sum FROM iterate, ("
            "  SELECT sum(x) AS inner_sum FROM ITERATE("
            "    (SELECT 1 AS x), (SELECT x + 1 FROM iterate),"
            "    (SELECT x FROM iterate WHERE x >= 3)) inner_it) s),"
            "(SELECT outer_v FROM iterate WHERE outer_v > 5))"
        ).rows
        assert rows == [(7,)]  # 1 -> +6 (= 1+2+3) once

    def test_iterate_inside_recursive_cte_step(self, db):
        assert db.execute(
            "WITH RECURSIVE r(n) AS ("
            "SELECT 1 UNION ALL "
            "SELECT n + (SELECT x FROM ITERATE((SELECT 1 AS x),"
            "  (SELECT x + 1 FROM iterate),"
            "  (SELECT x FROM iterate WHERE x >= 2))) "
            "FROM r WHERE n < 5) "
            "SELECT max(n) FROM r"
        ).scalar() == 5

    def test_window_function_inside_iterate_step(self, db):
        assert db.execute(
            "SELECT * FROM ITERATE("
            "(SELECT 1 AS v),"
            "(SELECT rn + v FROM (SELECT v, row_number() OVER "
            "(ORDER BY v) AS rn FROM iterate) t),"
            "(SELECT v FROM iterate WHERE v >= 4))"
        ).scalar() == 4
