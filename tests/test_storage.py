"""Unit tests for columns, batches, table versions, and the catalog."""

import numpy as np
import pytest

from repro.errors import CatalogError, ExecutionError
from repro.storage import (
    Catalog,
    Column,
    ColumnBatch,
    ColumnSchema,
    Table,
    TableData,
    TableSchema,
)
from repro.types import BOOLEAN, DOUBLE, INTEGER, VARCHAR


class TestColumn:
    def test_from_values_with_nulls(self):
        col = Column.from_values([1, None, 3], INTEGER)
        assert len(col) == 3
        assert col.null_count() == 1
        assert col.to_pylist() == [1, None, 3]

    def test_from_values_no_nulls_drops_mask(self):
        col = Column.from_values([1, 2], INTEGER)
        assert col.valid is None

    def test_all_valid_mask_normalised_to_none(self):
        col = Column(
            np.asarray([1, 2], dtype=np.int32), INTEGER,
            np.asarray([True, True]),
        )
        assert col.valid is None

    def test_all_null(self):
        col = Column.all_null(4, DOUBLE)
        assert col.null_count() == 4
        assert col.to_pylist() == [None] * 4

    def test_constant(self):
        col = Column.constant(7, 3, INTEGER)
        assert col.to_pylist() == [7, 7, 7]

    def test_constant_none(self):
        assert Column.constant(None, 2, INTEGER).null_count() == 2

    def test_take_preserves_nulls(self):
        col = Column.from_values([1, None, 3], INTEGER)
        taken = col.take(np.asarray([2, 1, 1, 0]))
        assert taken.to_pylist() == [3, None, None, 1]

    def test_filter(self):
        col = Column.from_values([1, 2, 3], INTEGER)
        kept = col.filter(np.asarray([True, False, True]))
        assert kept.to_pylist() == [1, 3]

    def test_slice(self):
        col = Column.from_values([1, 2, 3, 4], INTEGER)
        assert col.slice(1, 3).to_pylist() == [2, 3]

    def test_concat(self):
        a = Column.from_values([1, 2], INTEGER)
        b = Column.from_values([None, 4], INTEGER)
        merged = Column.concat([a, b])
        assert merged.to_pylist() == [1, 2, None, 4]

    def test_concat_empty_list_raises(self):
        with pytest.raises(ExecutionError):
            Column.concat([])

    def test_cast_int_to_double(self):
        col = Column.from_values([1, None], INTEGER).cast(DOUBLE)
        assert col.to_pylist() == [1.0, None]
        assert col.sql_type == DOUBLE

    def test_cast_to_varchar(self):
        col = Column.from_values([True, None], BOOLEAN)
        text = col.cast(VARCHAR)
        assert text.to_pylist() == ["true", None]

    def test_cast_varchar_to_int(self):
        col = Column.from_values(["12", None], VARCHAR).cast(INTEGER)
        assert col.to_pylist() == [12, None]

    def test_cast_bad_string_raises(self):
        col = Column.from_values(["x"], VARCHAR)
        with pytest.raises(Exception):
            col.cast(INTEGER)

    def test_value_at_returns_python_types(self):
        col = Column.from_values([1], INTEGER)
        assert type(col.value_at(0)) is int
        dcol = Column.from_values([1.5], DOUBLE)
        assert type(dcol.value_at(0)) is float


class TestColumnBatch:
    def test_ragged_rejected(self):
        with pytest.raises(ExecutionError, match="ragged"):
            ColumnBatch(
                {
                    "a": Column.from_values([1], INTEGER),
                    "b": Column.from_values([1, 2], INTEGER),
                }
            )

    def test_rows_iteration(self):
        batch = ColumnBatch(
            {
                "a": Column.from_values([1, 2], INTEGER),
                "b": Column.from_values(["x", None], VARCHAR),
            }
        )
        assert list(batch.rows()) == [(1, "x"), (2, None)]

    def test_project_reorders(self):
        batch = ColumnBatch(
            {
                "a": Column.from_values([1], INTEGER),
                "b": Column.from_values([2], INTEGER),
            }
        )
        assert batch.project(["b", "a"]).names() == ["b", "a"]

    def test_rename(self):
        batch = ColumnBatch({"a": Column.from_values([1], INTEGER)})
        assert batch.rename({"a": "z"}).names() == ["z"]

    def test_with_columns_overrides(self):
        batch = ColumnBatch({"a": Column.from_values([1], INTEGER)})
        updated = batch.with_columns(
            {"a": Column.from_values([9], INTEGER)}
        )
        assert list(updated.rows()) == [(9,)]

    def test_empty_layout(self):
        batch = ColumnBatch.empty({"a": INTEGER, "b": VARCHAR})
        assert len(batch) == 0
        assert batch.names() == ["a", "b"]

    def test_concat_batches(self):
        one = ColumnBatch({"a": Column.from_values([1], INTEGER)})
        two = ColumnBatch({"a": Column.from_values([2], INTEGER)})
        assert list(ColumnBatch.concat([one, two]).rows()) == [(1,), (2,)]


class TestSchema:
    def test_duplicate_column_rejected(self):
        with pytest.raises(CatalogError, match="duplicate"):
            TableSchema.of(("a", INTEGER), ("A", DOUBLE))

    def test_lookup_case_insensitive(self):
        schema = TableSchema.of(("Name", VARCHAR), ("Age", INTEGER))
        assert schema.index_of("name") == 0
        assert schema.column("AGE").sql_type == INTEGER

    def test_missing_column_raises(self):
        schema = TableSchema.of(("a", INTEGER))
        with pytest.raises(CatalogError, match="no such column"):
            schema.index_of("b")

    def test_str(self):
        schema = TableSchema(
            (ColumnSchema("a", INTEGER, not_null=True),)
        )
        assert "NOT NULL" in str(schema)


class TestTableData:
    def _schema(self):
        return TableSchema.of(("id", INTEGER), ("name", VARCHAR))

    def test_from_rows(self):
        data = TableData.from_rows(
            self._schema(), [(1, "a"), (2, None)]
        )
        assert data.row_count == 2
        assert list(data.rows()) == [(1, "a"), (2, None)]

    def test_arity_mismatch(self):
        with pytest.raises(CatalogError):
            TableData.from_rows(self._schema(), [(1,)])

    def test_not_null_enforced(self):
        schema = TableSchema(
            (ColumnSchema("id", INTEGER, not_null=True),)
        )
        with pytest.raises(CatalogError, match="NOT NULL"):
            TableData.from_rows(schema, [(None,)])

    def test_append_is_copy_on_write(self):
        base = TableData.from_rows(self._schema(), [(1, "a")])
        extended = base.append_rows([(2, "b")])
        assert base.row_count == 1
        assert extended.row_count == 2

    def test_delete_where(self):
        data = TableData.from_rows(
            self._schema(), [(1, "a"), (2, "b"), (3, "c")]
        )
        kept = data.delete_where(np.asarray([True, False, True]))
        assert [r[0] for r in kept.rows()] == [1, 3]

    def test_scan_morsels(self):
        data = TableData.from_rows(
            self._schema(), [(i, "x") for i in range(10)]
        )
        batches = list(data.scan(morsel_rows=4))
        assert [len(b) for b in batches] == [4, 4, 2]

    def test_scan_empty_yields_layout(self):
        data = TableData.empty(self._schema())
        batches = list(data.scan())
        assert len(batches) == 1
        assert batches[0].names() == ["id", "name"]

    def test_replace_columns(self):
        data = TableData.from_rows(self._schema(), [(1, "a")])
        new = data.replace_columns(
            {0: Column.from_values([9], INTEGER)}
        )
        assert list(new.rows()) == [(9, "a")]


class TestTableVersions:
    def test_version_visibility(self):
        table = Table("t", TableSchema.of(("a", INTEGER)), created_ts=1)
        v2 = TableData.from_rows(table.schema, [(1,)])
        table.install(5, v2)
        assert table.data_at(1).row_count == 0
        assert table.data_at(5).row_count == 1
        assert table.data_at(99).row_count == 1

    def test_not_visible_before_creation(self):
        table = Table("t", TableSchema.of(("a", INTEGER)), created_ts=3)
        assert not table.visible_at(2)
        assert table.visible_at(3)

    def test_non_monotonic_install_rejected(self):
        table = Table("t", TableSchema.of(("a", INTEGER)), created_ts=5)
        with pytest.raises(CatalogError):
            table.install(4, TableData.empty(table.schema))

    def test_truncate_history(self):
        table = Table("t", TableSchema.of(("a", INTEGER)), created_ts=1)
        for ts in (2, 3, 4):
            table.install(ts, TableData.empty(table.schema))
        dropped = table.truncate_history(keep_after_ts=3)
        assert dropped == 2  # versions at ts 1 and 2 are unreachable
        assert table.data_at(3) is not None


class TestCatalog:
    def test_create_and_lookup(self):
        catalog = Catalog()
        catalog.create_table("t", TableSchema.of(("a", INTEGER)))
        assert catalog.has_table("T")
        assert catalog.table_names() == ["t"]

    def test_duplicate_create(self):
        catalog = Catalog()
        schema = TableSchema.of(("a", INTEGER))
        catalog.create_table("t", schema)
        with pytest.raises(CatalogError):
            catalog.create_table("t", schema)
        catalog.create_table("t", schema, if_not_exists=True)  # no raise

    def test_drop_and_snapshot_visibility(self):
        catalog = Catalog()
        catalog.create_table("t", TableSchema.of(("a", INTEGER)))
        ts_before_drop = catalog.current_ts
        catalog.drop_table("t")
        assert not catalog.has_table("t")
        assert catalog.has_table("t", ts=ts_before_drop)

    def test_drop_missing(self):
        catalog = Catalog()
        with pytest.raises(CatalogError):
            catalog.drop_table("nope")
        catalog.drop_table("nope", if_exists=True)

    def test_install_bumps_ts(self):
        catalog = Catalog()
        table = catalog.create_table("t", TableSchema.of(("a", INTEGER)))
        before = catalog.current_ts
        ts = catalog.install(
            [("t", TableData.from_rows(table.schema, [(1,)]))]
        )
        assert ts == before + 1
        assert catalog.data("t").row_count == 1

    def test_vacuum_removes_dropped(self):
        catalog = Catalog()
        catalog.create_table("t", TableSchema.of(("a", INTEGER)))
        catalog.drop_table("t")
        freed = catalog.vacuum(catalog.current_ts)
        assert freed >= 1
        assert "t" not in catalog.table_names()
