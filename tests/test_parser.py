"""Unit tests for the SQL parser (AST shapes and error cases)."""

import pytest

from repro.errors import ParseError
from repro.sql import ast
from repro.sql.parser import parse_sql, parse_statement


def select(sql) -> ast.SelectStatement:
    stmt = parse_statement(sql)
    assert isinstance(stmt, ast.SelectStatement)
    return stmt


def core(sql) -> ast.SelectCore:
    body = select(sql).body
    assert isinstance(body, ast.SelectCore)
    return body


class TestSelectCore:
    def test_select_items_and_aliases(self):
        c = core("SELECT a, b AS bee, c cee FROM t")
        assert [i.alias for i in c.items] == [None, "bee", "cee"]

    def test_string_alias_hyper_style(self):
        c = core('SELECT 7 "x"')
        assert c.items[0].alias == "x"

    def test_star(self):
        c = core("SELECT * FROM t")
        assert isinstance(c.items[0].expr, ast.Star)

    def test_qualified_star(self):
        c = core("SELECT t.* FROM t")
        assert c.items[0].expr.table == "t"

    def test_distinct(self):
        assert core("SELECT DISTINCT a FROM t").distinct
        assert not core("SELECT ALL a FROM t").distinct

    def test_where_group_having(self):
        c = core(
            "SELECT a, count(*) FROM t WHERE a > 0 GROUP BY a "
            "HAVING count(*) > 1"
        )
        assert c.where is not None
        assert len(c.group_by) == 1
        assert c.having is not None

    def test_no_from(self):
        c = core("SELECT 1")
        assert c.from_clause is None


class TestExpressions:
    def test_precedence_mul_over_add(self):
        expr = core("SELECT 1 + 2 * 3").items[0].expr
        assert isinstance(expr, ast.Binary) and expr.op == "+"
        assert isinstance(expr.right, ast.Binary) and expr.right.op == "*"

    def test_power_right_associative(self):
        expr = core("SELECT 2 ^ 3 ^ 2").items[0].expr
        assert expr.op == "^"
        assert isinstance(expr.right, ast.Binary)
        assert expr.right.op == "^"

    def test_unary_minus_folds_literal(self):
        expr = core("SELECT -5").items[0].expr
        assert isinstance(expr, ast.Literal) and expr.value == -5

    def test_comparison_chain_left_assoc(self):
        expr = core("SELECT a = b").items[0].expr
        assert expr.op == "="

    def test_not_equals_normalised(self):
        expr = core("SELECT a != b").items[0].expr
        assert expr.op == "<>"

    def test_and_or_precedence(self):
        expr = core("SELECT a OR b AND c").items[0].expr
        assert expr.op == "or"
        assert isinstance(expr.right, ast.Binary) and expr.right.op == "and"

    def test_not(self):
        expr = core("SELECT NOT a").items[0].expr
        assert isinstance(expr, ast.Unary) and expr.op == "not"

    def test_between(self):
        expr = core("SELECT a BETWEEN 1 AND 2").items[0].expr
        assert isinstance(expr, ast.Between)

    def test_not_between(self):
        expr = core("SELECT a NOT BETWEEN 1 AND 2").items[0].expr
        assert expr.negated

    def test_in_list(self):
        expr = core("SELECT a IN (1, 2, 3)").items[0].expr
        assert isinstance(expr, ast.InList) and len(expr.items) == 3

    def test_in_subquery(self):
        expr = core("SELECT a IN (SELECT b FROM t)").items[0].expr
        assert isinstance(expr, ast.InSubquery)

    def test_like(self):
        expr = core("SELECT a LIKE 'x%'").items[0].expr
        assert isinstance(expr, ast.Like)

    def test_is_null_and_not_null(self):
        assert not core("SELECT a IS NULL").items[0].expr.negated
        assert core("SELECT a IS NOT NULL").items[0].expr.negated

    def test_case_searched(self):
        expr = core(
            "SELECT CASE WHEN a THEN 1 WHEN b THEN 2 ELSE 3 END"
        ).items[0].expr
        assert isinstance(expr, ast.Case)
        assert expr.operand is None and len(expr.whens) == 2

    def test_case_simple(self):
        expr = core("SELECT CASE a WHEN 1 THEN 'x' END").items[0].expr
        assert expr.operand is not None

    def test_case_requires_when(self):
        with pytest.raises(ParseError):
            parse_statement("SELECT CASE ELSE 1 END")

    def test_cast(self):
        expr = core("SELECT CAST(a AS INTEGER)").items[0].expr
        assert isinstance(expr, ast.Cast)
        assert expr.type_name == "integer"

    def test_cast_with_width(self):
        expr = core("SELECT CAST(a AS VARCHAR(10))").items[0].expr
        assert expr.width == 10

    def test_exists(self):
        expr = core("SELECT EXISTS (SELECT 1)").items[0].expr
        assert isinstance(expr, ast.Exists)

    def test_scalar_subquery(self):
        expr = core("SELECT (SELECT max(a) FROM t)").items[0].expr
        assert isinstance(expr, ast.ScalarSubquery)

    def test_function_call(self):
        expr = core("SELECT coalesce(a, b, 0)").items[0].expr
        assert isinstance(expr, ast.FunctionCall)
        assert len(expr.args) == 3

    def test_count_star(self):
        expr = core("SELECT count(*)").items[0].expr
        assert isinstance(expr.args[0], ast.Star)

    def test_count_distinct(self):
        expr = core("SELECT count(DISTINCT a)").items[0].expr
        assert expr.distinct

    def test_concat_operator(self):
        expr = core("SELECT a || b").items[0].expr
        assert expr.op == "||"


class TestFromClause:
    def test_join_on(self):
        c = core("SELECT * FROM a JOIN b ON a.x = b.x")
        assert isinstance(c.from_clause, ast.Join)
        assert c.from_clause.kind == "inner"

    def test_left_join(self):
        c = core("SELECT * FROM a LEFT OUTER JOIN b ON a.x = b.x")
        assert c.from_clause.kind == "left"

    def test_cross_join(self):
        c = core("SELECT * FROM a CROSS JOIN b")
        assert c.from_clause.kind == "cross"
        assert c.from_clause.condition is None

    def test_comma_join(self):
        c = core("SELECT * FROM a, b, c")
        outer = c.from_clause
        assert outer.kind == "cross"
        assert outer.left.kind == "cross"

    def test_using(self):
        c = core("SELECT * FROM a JOIN b USING (x, y)")
        assert c.from_clause.using == ["x", "y"]

    def test_join_requires_condition(self):
        with pytest.raises(ParseError, match="ON or USING"):
            parse_statement("SELECT * FROM a JOIN b")

    def test_derived_table(self):
        c = core("SELECT * FROM (SELECT 1) AS sub(one)")
        assert isinstance(c.from_clause, ast.SubqueryRef)
        assert c.from_clause.column_aliases == ["one"]

    def test_values_in_from(self):
        c = core("SELECT * FROM (VALUES (1, 'a'), (2, 'b')) v(n, s)")
        ref = c.from_clause
        assert isinstance(ref, ast.ValuesRef)
        assert len(ref.rows) == 2
        assert ref.column_aliases == ["n", "s"]

    def test_table_alias(self):
        c = core("SELECT * FROM people p")
        assert c.from_clause.alias == "p"


class TestIterate:
    def test_listing1(self):
        c = core(
            'SELECT * FROM ITERATE((SELECT 7 "x"),'
            " (SELECT x+7 FROM iterate),"
            " (SELECT x FROM iterate WHERE x >= 100))"
        )
        ref = c.from_clause
        assert isinstance(ref, ast.IterateRef)

    def test_iterate_as_working_table_name(self):
        c = core("SELECT iterate.x FROM iterate")
        assert isinstance(c.from_clause, ast.TableRef)
        assert c.from_clause.name == "iterate"
        assert c.items[0].expr.table == "iterate"

    def test_iterate_requires_three_queries(self):
        with pytest.raises(ParseError):
            parse_statement(
                "SELECT * FROM ITERATE((SELECT 1), (SELECT 2))"
            )


class TestTableFunctions:
    def test_kmeans_with_lambda(self):
        c = core(
            "SELECT * FROM KMEANS((SELECT x FROM d), (SELECT x FROM c),"
            " λ(a, b) (a.x - b.x)^2, 3)"
        )
        fn = c.from_clause
        assert isinstance(fn, ast.TableFunction)
        assert fn.name == "kmeans"
        assert fn.args[0].query is not None
        assert fn.args[2].lambda_expr is not None
        assert fn.args[3].scalar is not None

    def test_ascii_lambda_spelling(self):
        c = core("SELECT * FROM F((SELECT 1), LAMBDA(e) e.x + 1)")
        lam = c.from_clause.args[1].lambda_expr
        assert lam.params == ["e"]

    def test_lambda_body_stops_at_comma(self):
        c = core("SELECT * FROM F(LAMBDA(a) a.x + 1, 5)")
        assert c.from_clause.args[1].scalar is not None

    def test_pagerank_listing2(self):
        c = core(
            "SELECT * FROM PAGE_RANK((SELECT src, dest FROM edges), "
            "0.85, 0.0001)"
        )
        fn = c.from_clause
        assert fn.name == "page_rank"
        assert len(fn.args) == 3


class TestSetOpsAndCTEs:
    def test_union_all_chain(self):
        body = select("SELECT 1 UNION ALL SELECT 2 UNION SELECT 3").body
        assert isinstance(body, ast.SetOp)
        assert body.op == "union"
        assert body.left.op == "union_all"

    def test_intersect_except(self):
        assert select("SELECT 1 INTERSECT SELECT 2").body.op == "intersect"
        assert select("SELECT 1 EXCEPT SELECT 2").body.op == "except"

    def test_cte(self):
        stmt = select("WITH t AS (SELECT 1) SELECT * FROM t")
        assert len(stmt.ctes) == 1
        assert not stmt.ctes[0].recursive

    def test_recursive_cte_with_columns(self):
        stmt = select(
            "WITH RECURSIVE t(n) AS (SELECT 1 UNION ALL "
            "SELECT n+1 FROM t WHERE n < 3) SELECT * FROM t"
        )
        assert stmt.ctes[0].recursive
        assert stmt.ctes[0].column_names == ["n"]

    def test_multiple_ctes(self):
        stmt = select(
            "WITH a AS (SELECT 1), b AS (SELECT 2) SELECT * FROM a, b"
        )
        assert [c.name for c in stmt.ctes] == ["a", "b"]


class TestOrderLimit:
    def test_order_by_directions(self):
        stmt = select("SELECT a, b FROM t ORDER BY a DESC, b ASC")
        assert stmt.order_by[0].descending
        assert not stmt.order_by[1].descending

    def test_nulls_first_last(self):
        stmt = select("SELECT a FROM t ORDER BY a NULLS FIRST")
        assert stmt.order_by[0].nulls_last is False

    def test_limit_offset(self):
        stmt = select("SELECT a FROM t LIMIT 5 OFFSET 2")
        assert stmt.limit.value == 5
        assert stmt.offset.value == 2


class TestOtherStatements:
    def test_create_table(self):
        stmt = parse_statement(
            "CREATE TABLE t (a INTEGER NOT NULL, b VARCHAR(10), "
            "c FLOAT PRIMARY KEY)"
        )
        assert isinstance(stmt, ast.CreateTable)
        assert stmt.columns[0].not_null
        assert stmt.columns[1].width == 10
        assert stmt.columns[2].not_null  # PRIMARY KEY implies NOT NULL

    def test_create_table_if_not_exists(self):
        stmt = parse_statement("CREATE TABLE IF NOT EXISTS t (a INT)")
        assert stmt.if_not_exists

    def test_create_table_as(self):
        stmt = parse_statement("CREATE TABLE t AS SELECT 1 AS one")
        assert stmt.as_query is not None

    def test_drop(self):
        assert parse_statement("DROP TABLE t").if_exists is False
        assert parse_statement("DROP TABLE IF EXISTS t").if_exists

    def test_insert_values(self):
        stmt = parse_statement("INSERT INTO t (a, b) VALUES (1, 2), (3, 4)")
        assert stmt.columns == ["a", "b"]
        assert len(stmt.rows) == 2

    def test_insert_select(self):
        stmt = parse_statement("INSERT INTO t SELECT * FROM s")
        assert stmt.query is not None

    def test_update(self):
        stmt = parse_statement("UPDATE t SET a = 1, b = b + 1 WHERE c")
        assert len(stmt.assignments) == 2
        assert stmt.where is not None

    def test_delete(self):
        stmt = parse_statement("DELETE FROM t WHERE a < 0")
        assert isinstance(stmt, ast.Delete)

    def test_transactions(self):
        kinds = [type(s).__name__ for s in parse_sql("BEGIN; COMMIT; ROLLBACK")]
        assert kinds == [
            "BeginTransaction", "CommitTransaction", "RollbackTransaction",
        ]

    def test_script_with_semicolons(self):
        assert len(parse_sql(";;SELECT 1;; SELECT 2;")) == 2

    def test_single_statement_enforced(self):
        with pytest.raises(ParseError):
            parse_statement("SELECT 1; SELECT 2")


class TestParseErrors:
    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT",
            "SELECT FROM t",
            "SELECT * FROM",
            "SELECT * FROM t WHERE",
            "CREATE TABLE",
            "INSERT INTO",
            "SELECT * FROM (SELECT 1",
            "FOO BAR",
            "SELECT a FROM t GROUP",
            "UPDATE t SET",
        ],
    )
    def test_malformed(self, sql):
        with pytest.raises(ParseError):
            parse_sql(sql)
