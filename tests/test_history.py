"""Tests for the query history store (src/repro/obs/history.py).

Covers the always-on per-statement records, the per-fingerprint
plan-feedback index (the acceptance surface: observed per-operator
cardinalities for a repeated parameterized query), the slow-query log,
JSONL spill, and the bounded-ring/LRU behaviour of the store itself.
"""

import json
import os

import pytest

import repro
from repro.errors import QueryTimeout
from repro.obs.history import (
    QueryHistory,
    QueryRecord,
    load_jsonl,
    resolve_history_path,
    resolve_slow_ms,
)
from repro.plan.cache import sql_fingerprint


class TestAlwaysOnRecords:
    def test_every_statement_leaves_a_record(self, db):
        db.execute("CREATE TABLE t (v INTEGER)")
        db.execute("INSERT INTO t VALUES (1)")
        db.executemany("INSERT INTO t VALUES (?)", [(2,), (3,)])
        db.execute("SELECT sum(v) FROM t")
        sqls = [r.sql for r in db.history(100)]
        assert sqls == [
            "CREATE TABLE t (v INTEGER)",
            "INSERT INTO t VALUES (1)",
            "INSERT INTO t VALUES (?)",
            "SELECT sum(v) FROM t",
        ]

    def test_record_fields(self, db):
        db.execute("CREATE TABLE t (v INTEGER)")
        db.insert_rows("t", [(1,), (2,)])
        db.execute("SELECT v FROM t WHERE v > 1")
        rec = db.history(1)[0]
        assert rec.sql == "SELECT v FROM t WHERE v > 1"
        assert rec.fingerprint == sql_fingerprint(rec.sql)
        assert rec.rows == 1
        assert rec.verdict == "ok"
        assert rec.error is None
        assert rec.duration_s > 0
        assert rec.started_at > 0
        assert rec.workers == db.workers
        assert rec.encoding == db.encoding
        # Phase timings come from the statement span's children.
        assert "execute" in rec.phases

    def test_errors_are_recorded_too(self, db):
        with pytest.raises(Exception):
            db.execute("SELECT * FROM no_such_table")
        rec = db.history(1)[0]
        assert rec.error is not None
        assert rec.rows == 0

    def test_history_is_callable_and_sized(self, db):
        db.execute("CREATE TABLE t (v INTEGER)")
        for _ in range(5):
            db.execute("SELECT count(*) FROM t")
        assert len(db.history(3)) == 3
        assert db.history(0) == []
        # Callable shorthand equals .recent().
        assert [r.sql for r in db.history(4)] == [
            r.sql for r in db.history.recent(4)
        ]

    def test_counter_tracks_records(self, db):
        before = db.metrics.counter("history_records_total").value
        db.execute("CREATE TABLE t (v INTEGER)")
        db.execute("SELECT count(*) FROM t")
        after = db.metrics.counter("history_records_total").value
        assert after == before + 2


class TestPlanFeedback:
    """The acceptance surface: ``history.by_fingerprint(fp)`` returns
    observed per-operator cardinalities for a repeated parameterized
    query."""

    def _run_repeated(self, db):
        db.execute("CREATE TABLE t (v INTEGER)")
        db.insert_rows("t", [(i,) for i in range(100)])
        sql = "SELECT v FROM t WHERE v > ?"
        for threshold in (90, 50, 10):
            db.execute(sql, [threshold])
        return sql_fingerprint(sql)

    def test_by_fingerprint_collects_repeated_statement(self, db):
        fp = self._run_repeated(db)
        records = db.history.by_fingerprint(fp)
        assert len(records) == 3
        # Parameterized re-runs share one fingerprint...
        assert {r.fingerprint for r in records} == {fp}
        # ...and oldest-first order preserves the run sequence.
        assert [r.rows for r in records] == [9, 49, 89]

    def test_records_carry_observed_operator_cardinalities(self, db):
        fp = self._run_repeated(db)
        for record, expected_rows in zip(
            db.history.by_fingerprint(fp), (9, 49, 89)
        ):
            assert record.operators, "profiled run lost its operators"
            ops = {op["op"]: op for op in record.operators}
            scan_like = [
                op for op in record.operators
                if op["observed_rows"] == 100
            ]
            assert scan_like, f"no scan observation in {sorted(ops)}"
            assert any(
                op["observed_rows"] == expected_rows
                for op in record.operators
            )

    def test_operators_carry_estimates_and_q_error(self, db):
        fp = self._run_repeated(db)
        record = db.history.by_fingerprint(fp)[-1]
        estimated = [
            op for op in record.operators
            if op["estimated_rows"] is not None
        ]
        assert estimated, "no operator carried a cardinality estimate"
        for op in estimated:
            assert op["q_error"] >= 1.0
        assert record.max_q_error >= 1.0

    def test_observed_cardinalities_aggregates(self, db):
        fp = self._run_repeated(db)
        feedback = db.history.observed_cardinalities(fp)
        assert feedback
        # Every aggregated operator saw all three executions.
        for label, slot in feedback.items():
            assert slot["executions"] == 3, label
            assert slot["mean_rows"] >= 0
        # The filter's observed truth: mean over 9/49/89 rows.
        means = sorted(s["mean_rows"] for s in feedback.values())
        assert 49.0 in means

    def test_cache_hit_flag_flips_on_repeat(self, db):
        fp = self._run_repeated(db)
        hits = [r.cache_hit for r in db.history.by_fingerprint(fp)]
        if db.plan_cache_active():
            assert hits == [False, True, True]
        else:
            assert hits == [False, False, False]

    def test_fingerprints_lists_index(self, db):
        fp = self._run_repeated(db)
        assert fp in db.history.fingerprints()


class TestGovernorOutcomes:
    def test_timeout_verdict_recorded(self):
        db = repro.Database(timeout_ms=0.01)
        with pytest.raises(QueryTimeout):
            db.execute(
                "SELECT * FROM ITERATE((SELECT 1 AS n),"
                " (SELECT n + 1 FROM iterate),"
                " (SELECT n FROM iterate WHERE n >= 1000000))"
            )
        rec = db.history(1)[0]
        assert rec.verdict == "timeout"
        assert rec.error is not None
        assert rec.checkpoints >= 1

    def test_ok_verdict_on_success(self, db):
        db.execute("CREATE TABLE t (v INTEGER)")
        assert db.history(1)[0].verdict == "ok"


class TestSlowLog:
    def test_slow_threshold_flags_statements(self):
        db = repro.Database(slow_ms=0.000001)
        db.execute("CREATE TABLE t (v INTEGER)")
        db.execute("SELECT count(*) FROM t")
        assert all(r.slow for r in db.history(10))
        assert len(db.history.slow(10)) == 2

    def test_no_threshold_means_no_slow_log(self, db):
        db.execute("CREATE TABLE t (v INTEGER)")
        assert db.history.slow(10) == []

    def test_env_threshold(self, monkeypatch):
        monkeypatch.setenv("REPRO_SLOW_MS", "0.000001")
        db = repro.Database()
        db.execute("CREATE TABLE t (v INTEGER)")
        assert db.history.slow(10)

    def test_env_threshold_must_be_numeric(self, monkeypatch):
        monkeypatch.setenv("REPRO_SLOW_MS", "fast")
        with pytest.raises(ValueError):
            resolve_slow_ms()

    def test_explicit_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SLOW_MS", "5000")
        assert resolve_slow_ms(1.5) == 1.5
        assert resolve_slow_ms() == 5000.0
        assert resolve_slow_ms(0) is None


class TestJsonlSpill:
    def test_spill_and_load_round_trip(self, tmp_path):
        path = str(tmp_path / "history.jsonl")
        db = repro.Database(history=path)
        db.execute("CREATE TABLE t (v INTEGER)")
        db.insert_rows("t", [(1,), (2,)])
        db.execute("SELECT sum(v) FROM t")
        loaded = load_jsonl(path)
        assert len(loaded) == len(db.history(100))
        assert loaded[-1].sql == "SELECT sum(v) FROM t"
        assert loaded[-1].rows == 1
        assert loaded[-1].verdict == "ok"
        # Operators survive the round trip.
        assert loaded[-1].operators == db.history(1)[0].operators

    def test_spill_lines_are_plain_json(self, tmp_path):
        path = str(tmp_path / "history.jsonl")
        db = repro.Database(history=path)
        db.execute("CREATE TABLE t (v INTEGER)")
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                payload = json.loads(line)
                assert "sql" in payload and "verdict" in payload

    def test_env_spill_path(self, tmp_path, monkeypatch):
        path = str(tmp_path / "env.jsonl")
        monkeypatch.setenv("REPRO_HISTORY", path)
        db = repro.Database()
        db.execute("CREATE TABLE t (v INTEGER)")
        assert os.path.exists(path)
        assert resolve_history_path("explicit") == "explicit"

    def test_spill_failure_latches_not_raises(self, tmp_path):
        store = QueryHistory(
            spill_path=str(tmp_path / "no_dir" / "x.jsonl")
        )
        store.record(_record("SELECT 1"))
        assert store.spill_error is not None
        # Recording keeps working in memory.
        store.record(_record("SELECT 2"))
        assert len(store) == 2


def _record(sql, fingerprint=None, **kwargs):
    defaults = dict(
        sql=sql,
        fingerprint=fingerprint or sql_fingerprint(sql),
        started_at=1.0,
        duration_s=0.001,
    )
    defaults.update(kwargs)
    return QueryRecord(**defaults)


class TestStoreBounds:
    def test_ring_is_bounded(self):
        store = QueryHistory(capacity=4)
        for i in range(10):
            store.record(_record(f"SELECT {i}"))
        assert len(store) == 4
        assert [r.sql for r in store.recent(10)] == [
            "SELECT 6", "SELECT 7", "SELECT 8", "SELECT 9"
        ]

    def test_per_fingerprint_bucket_is_bounded(self):
        store = QueryHistory(per_fingerprint=2)
        for i in range(5):
            store.record(_record("SELECT ?", rows=i))
        bucket = store.by_fingerprint(sql_fingerprint("SELECT ?"))
        assert [r.rows for r in bucket] == [3, 4]

    def test_fingerprint_index_evicts_lru(self):
        store = QueryHistory(max_fingerprints=2)
        store.record(_record("SELECT 1"))
        store.record(_record("SELECT 2"))
        store.record(_record("SELECT 1"))  # refresh 1
        store.record(_record("SELECT 3"))  # evicts 2
        assert store.by_fingerprint(sql_fingerprint("SELECT 2")) == []
        assert store.by_fingerprint(sql_fingerprint("SELECT 1"))
        assert store.by_fingerprint(sql_fingerprint("SELECT 3"))

    def test_clear(self):
        store = QueryHistory()
        store.record(_record("SELECT 1"))
        store.clear()
        assert len(store) == 0
        assert store.fingerprints() == []

    def test_record_round_trips_through_dict(self):
        rec = _record(
            "SELECT 1",
            operators=[{
                "op": "Scan(t)", "estimated_rows": 10.0,
                "observed_rows": 12, "q_error": 1.2,
            }],
            verdict="timeout",
            error="boom",
            slow=True,
        )
        clone = QueryRecord.from_dict(rec.to_dict())
        assert clone.to_dict() == rec.to_dict()
        assert clone.max_q_error == 1.2
        assert "SLOW" in clone.format()
        assert "timeout" in clone.format()
