"""Tests for the flight recorder (src/repro/obs/flight.py) and its
CLI renderer (python -m repro.obs.dump).

A bundle must appear — and be loadable — for every way a statement can
die under the governor, for chaos-injected faults, and for worker
crashes survived by serial retry.
"""

import json
import os

import pytest

import repro
from repro.errors import (
    InjectedFault,
    MemoryBudgetExceeded,
    QueryCancelled,
    QueryTimeout,
)
from repro.obs.dump import main as dump_main
from repro.obs.flight import (
    BUNDLE_SCHEMA,
    FlightRecorder,
    format_bundle,
    load_bundle,
    resolve_flight_dir,
    validate_bundle,
)
from repro.testing.chaos import ChaosInjector

SLOW_ITERATE = (
    "SELECT * FROM ITERATE((SELECT 1 AS n),"
    " (SELECT n + 1 FROM iterate),"
    " (SELECT n FROM iterate WHERE n >= 1000000))"
)


def _bundles(directory):
    return sorted(
        os.path.join(directory, n)
        for n in os.listdir(directory)
        if n.startswith("flightrec-") and n.endswith(".json")
    )


class TestGovernorDumps:
    def test_timeout_dumps_loadable_bundle(self, tmp_path):
        db = repro.Database(timeout_ms=0.01, flight_dir=str(tmp_path))
        with pytest.raises(QueryTimeout):
            db.execute(SLOW_ITERATE)
        paths = _bundles(str(tmp_path))
        assert len(paths) == 1
        bundle = load_bundle(paths[0])
        assert bundle["reason"] == "timeout"
        assert bundle["error"]["type"] == "QueryTimeout"
        assert bundle["governor"]["verdict"] == "timeout"
        # The failing statement's own span tree is embedded...
        assert bundle["trace"]["name"] == "statement"
        assert bundle["trace"]["attributes"]["sql"] == SLOW_ITERATE
        # ...and the history tail already includes the dying statement.
        assert bundle["history"][-1]["verdict"] == "timeout"
        assert db.flight.bundles_written == 1
        assert db.flight.last_bundle_path == paths[0]

    def test_memory_budget_dumps_oom_bundle(self, tmp_path):
        db = repro.Database(
            memory_budget_mb=0.0001, flight_dir=str(tmp_path)
        )
        db.execute("CREATE TABLE t (v INTEGER)")
        db.insert_rows("t", [(i,) for i in range(5000)])
        with pytest.raises(MemoryBudgetExceeded):
            db.execute("SELECT count(*) FROM t t1, t t2 WHERE t1.v = t2.v")
        bundle = load_bundle(_bundles(str(tmp_path))[-1])
        assert bundle["reason"] == "oom"
        assert bundle["governor"]["verdict"] == "oom"

    def test_injected_fault_dumps_bundle(self, tmp_path):
        injector = ChaosInjector("operator_raise", 1)
        db = repro.Database(chaos=injector, flight_dir=str(tmp_path))
        db.execute("CREATE TABLE t (v INTEGER)")
        db.insert_rows("t", [(1,), (2,)])
        injector.arm()
        with pytest.raises(InjectedFault):
            db.execute("SELECT sum(v) FROM t")
        bundle = load_bundle(_bundles(str(tmp_path))[-1])
        assert bundle["reason"] == "injected_fault"
        assert bundle["error"]["type"] == "InjectedFault"

    def test_injected_cancel_dumps_bundle(self, tmp_path):
        injector = ChaosInjector("cancel", 1)
        db = repro.Database(chaos=injector, flight_dir=str(tmp_path))
        db.execute("CREATE TABLE t (v INTEGER)")
        db.insert_rows("t", [(i,) for i in range(10)])
        injector.arm()
        with pytest.raises(QueryCancelled):
            db.execute("SELECT sum(v) FROM t")
        bundle = load_bundle(_bundles(str(tmp_path))[-1])
        assert bundle["reason"] == "cancelled"

    def test_worker_crash_dumps_bundle(self, tmp_path):
        injector = ChaosInjector("worker_crash", 1)
        db = repro.Database(
            chaos=injector,
            flight_dir=str(tmp_path),
            workers=2,
            parallel_threshold=0,
            morsel_rows=16,
        )
        db.execute("CREATE TABLE t (v INTEGER)")
        db.insert_rows("t", [(i,) for i in range(100)])
        injector.arm()
        # The statement *succeeds* (serial retry) — the bundle is the
        # only evidence the crash happened.
        result = db.execute("SELECT sum(v) FROM t WHERE v >= 0")
        assert result.rows[0][0] == 4950
        assert injector.fired
        bundle = load_bundle(_bundles(str(tmp_path))[-1])
        assert bundle["reason"] == "worker_crash"
        assert bundle["error"] is not None

    def test_ok_statements_dump_nothing(self, tmp_path):
        db = repro.Database(flight_dir=str(tmp_path))
        db.execute("CREATE TABLE t (v INTEGER)")
        db.execute("SELECT count(*) FROM t")
        assert _bundles(str(tmp_path)) == []
        # Plain execution errors are not post-mortem events either.
        with pytest.raises(Exception):
            db.execute("SELECT * FROM no_such_table")
        assert _bundles(str(tmp_path)) == []

    def test_bundle_counter_labels_reason(self, tmp_path):
        db = repro.Database(timeout_ms=0.01, flight_dir=str(tmp_path))
        with pytest.raises(QueryTimeout):
            db.execute(SLOW_ITERATE)
        counter = db.metrics.counter(
            "flightrec_bundles_total", reason="timeout"
        )
        assert counter.value == 1


class TestRecorderUnit:
    def test_bundle_shape_and_validation(self):
        recorder = FlightRecorder(config={"workers": 2})
        bundle = recorder.build_bundle(
            "timeout", error=QueryTimeout("too slow")
        )
        assert validate_bundle(bundle) == []
        assert bundle["schema"] == BUNDLE_SCHEMA
        assert bundle["config"] == {"workers": 2}
        assert bundle["error"] == {
            "type": "QueryTimeout", "message": "too slow",
        }

    def test_validate_flags_problems(self):
        assert validate_bundle([]) == ["bundle is not a JSON object"]
        problems = validate_bundle({"schema": "other"})
        assert any("missing key" in p for p in problems)
        assert any("unknown schema" in p for p in problems)
        bad_trace = FlightRecorder().build_bundle("x")
        bad_trace["trace"] = {"not": "a span"}
        assert validate_bundle(bad_trace) == ["trace is not a span tree"]

    def test_load_bundle_rejects_non_bundle(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text(json.dumps({"schema": "nope"}))
        with pytest.raises(ValueError):
            load_bundle(str(path))

    def test_dump_never_raises_on_bad_directory(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file where the directory should go")
        recorder = FlightRecorder(directory=str(blocker))
        path = recorder.dump("timeout")
        assert path is None
        assert recorder.last_write_error is not None
        assert recorder.bundles_written == 0
        # The bundle is still retained for in-memory post-mortems.
        assert recorder.last_bundle["reason"] == "timeout"

    def test_prune_keeps_newest(self, tmp_path):
        recorder = FlightRecorder(directory=str(tmp_path), keep=3)
        for _ in range(6):
            recorder.dump("timeout")
        names = [os.path.basename(p) for p in _bundles(str(tmp_path))]
        assert len(names) == 3
        # Sequence numbers embed write order: the newest three survive.
        assert [n.split("-")[3] for n in names] == [
            "0004", "0005", "0006"
        ]

    def test_resolve_flight_dir(self, monkeypatch):
        monkeypatch.delenv("REPRO_FLIGHTREC", raising=False)
        assert resolve_flight_dir("x") == "x"
        assert resolve_flight_dir() == os.path.join(
            "results", "flightrec"
        )
        monkeypatch.setenv("REPRO_FLIGHTREC", "/tmp/fr")
        assert resolve_flight_dir() == "/tmp/fr"
        assert resolve_flight_dir("explicit") == "explicit"

    def test_format_bundle_renders_sections(self, tmp_path):
        db = repro.Database(timeout_ms=0.01, flight_dir=str(tmp_path))
        with pytest.raises(QueryTimeout):
            db.execute(SLOW_ITERATE)
        text = format_bundle(load_bundle(_bundles(str(tmp_path))[0]))
        assert "reason='timeout'" in text
        assert "governor: verdict=timeout" in text
        assert "failing statement trace:" in text
        assert "statement" in text
        assert "history tail" in text


class TestDumpCli:
    def _make_bundle_dir(self, tmp_path):
        db = repro.Database(timeout_ms=0.01, flight_dir=str(tmp_path))
        with pytest.raises(QueryTimeout):
            db.execute(SLOW_ITERATE)
        return str(tmp_path)

    def test_renders_newest_by_default(self, tmp_path, capsys):
        directory = self._make_bundle_dir(tmp_path)
        assert dump_main(["--dir", directory]) == 0
        out = capsys.readouterr().out
        assert "flight-recorder bundle" in out
        assert "reason='timeout'" in out

    def test_renders_explicit_paths(self, tmp_path, capsys):
        directory = self._make_bundle_dir(tmp_path)
        path = _bundles(directory)[0]
        assert dump_main([path]) == 0
        assert path in capsys.readouterr().out

    def test_list_mode(self, tmp_path, capsys):
        directory = self._make_bundle_dir(tmp_path)
        assert dump_main(["--dir", directory, "--list"]) == 0
        assert _bundles(directory)[0] in capsys.readouterr().out

    def test_empty_directory_fails(self, tmp_path, capsys):
        assert dump_main(["--dir", str(tmp_path)]) == 1
        assert "no bundles" in capsys.readouterr().err

    def test_broken_bundle_fails(self, tmp_path, capsys):
        path = tmp_path / "flightrec-1-1-0001-x.json"
        path.write_text("{not json")
        assert dump_main([str(path)]) == 1
