"""Direct tests of physical operators and execution machinery."""

import numpy as np
import pytest

import repro
from repro.errors import ExecutionError
from repro.exec.common import (
    concat_batches,
    factorize,
    group_member_lists,
    group_representatives,
)
from repro.exec.physical import ExecutionContext, materialize
from repro.exec.planner import build_physical, execute_plan
from repro.plan import logical as lp
from repro.sql.parser import parse_statement
from repro.storage.column import Column, ColumnBatch
from repro.types import INTEGER, VARCHAR


class TestCommonKernels:
    def test_group_representatives_first_occurrence(self):
        codes = np.asarray([1, 0, 1, 2, 0], dtype=np.int64)
        reps = group_representatives(codes, 3)
        assert reps.tolist() == [1, 0, 3]

    def test_group_member_lists(self):
        codes = np.asarray([1, 0, 1, 2], dtype=np.int64)
        order, offsets = group_member_lists(codes, 3)
        members = {
            g: sorted(order[offsets[g]:offsets[g + 1]].tolist())
            for g in range(3)
        }
        assert members == {0: [1], 1: [0, 2], 2: [3]}

    def test_factorize_empty(self):
        codes, count = factorize([Column.from_values([], INTEGER)])
        assert len(codes) == 0 and count == 0

    def test_factorize_null_string_sentinel_safe(self):
        # A string equal to the internal sentinel must not collide
        # with NULL.
        col = Column.from_values(["\0__null__", None], VARCHAR)
        codes, count = factorize([col])
        assert codes[0] != codes[1]

    def test_concat_batches_skips_empty(self):
        layout = {"a": INTEGER}
        empty = ColumnBatch.empty(layout)
        full = ColumnBatch({"a": Column.from_values([1], INTEGER)})
        merged = concat_batches([empty, full, empty], ["a"])
        assert len(merged) == 1


class TestMaterialize:
    def test_empty_output_layout(self):
        cols = [lp.PlanColumn("a", "s1", INTEGER)]
        batch = materialize([], cols)
        assert len(batch) == 0
        assert batch.names() == ["s1"]

    def test_missing_slot_detected(self):
        cols = [lp.PlanColumn("a", "s1", INTEGER)]
        wrong = ColumnBatch({"other": Column.from_values([1], INTEGER)})
        with pytest.raises(ExecutionError, match="missing"):
            materialize([wrong], cols)


def plan_for(db, sql):
    txn = db.txns.begin()
    plan = db._plan_select(parse_statement(sql), txn)
    ctx = db._make_exec_context(txn)
    return plan, ctx, txn


class TestExecutionContext:
    def test_morsel_size_respected(self, db):
        db.execute("CREATE TABLE t (a INTEGER)")
        db.insert_rows("t", [(i,) for i in range(10)])
        small = repro.Database(morsel_rows=3)
        small.execute("CREATE TABLE t (a INTEGER)")
        small.insert_rows("t", [(i,) for i in range(10)])
        plan, ctx, txn = plan_for(small, "SELECT a FROM t")
        op = build_physical(plan, ctx)
        batches = list(op.execute(ctx.new_eval_context()))
        assert [len(b) for b in batches] == [3, 3, 3, 1]
        txn.rollback()

    def test_working_table_outside_iteration_raises(self, db):
        node = lp.LogicalWorkingTableRef(
            "ghost", [lp.PlanColumn("x", "s", INTEGER)]
        )
        ctx = ExecutionContext(read_table=lambda n: None)
        from repro.exec.scan import WorkingTableOp

        op = WorkingTableOp(node, ctx)
        with pytest.raises(ExecutionError, match="outside"):
            list(op.execute(ctx.new_eval_context()))

    def test_execute_plan_helper(self, db):
        db.execute("CREATE TABLE t (a INTEGER)")
        db.insert_rows("t", [(5,)])
        plan, ctx, txn = plan_for(db, "SELECT a + 1 FROM t")
        batch = execute_plan(plan, ctx)
        assert list(batch.rows()) == [(6,)]
        txn.rollback()

    def test_stats_batches_zero_default(self):
        ctx = ExecutionContext(read_table=lambda n: None)
        assert ctx.stats.peak_live_tuples == 0
        ctx.stats.observe_live_tuples(7)
        ctx.stats.observe_live_tuples(3)
        assert ctx.stats.peak_live_tuples == 7


class TestPlanExplain:
    def test_explain_tree_structure(self, people_db):
        text = people_db.explain(
            "SELECT city, count(*) FROM people WHERE age > 1 "
            "GROUP BY city ORDER BY 2 DESC LIMIT 3"
        )
        for fragment in (
            "Limit", "Sort", "Aggregate", "Filter", "Scan people",
        ):
            assert fragment in text
        # Deeper operators are indented further.
        lines = text.splitlines()
        assert lines[0].startswith("Limit")
        assert lines[-1].strip().startswith("Scan")

    def test_explain_statement_via_sql(self, people_db):
        rows = people_db.execute("EXPLAIN SELECT id FROM people").rows
        assert any("Scan people" in row[0] for row in rows)

    def test_join_explain_shows_method(self, people_db):
        text = people_db.explain(
            "SELECT 1 FROM people p JOIN orders o ON p.id = o.person_id"
        )
        assert "HashJoin" in text

    def test_analytics_explain(self, db):
        db.execute("CREATE TABLE pts (x FLOAT)")
        text = db.explain(
            "SELECT * FROM KMEANS((SELECT x FROM pts), "
            "(SELECT x FROM pts), 3)"
        )
        assert "AnalyticsOperator kmeans" in text

    def test_iterate_explain(self, db):
        text = db.explain(
            "SELECT * FROM ITERATE((SELECT 1 AS x),"
            " (SELECT x FROM iterate), (SELECT x FROM iterate))"
        )
        assert "Iterate" in text
        assert "WorkingTable" in text


class TestLimitStreaming:
    def test_limit_stops_pulling(self):
        """LIMIT over a morsel scan must not materialise everything."""
        db = repro.Database(morsel_rows=10)
        db.execute("CREATE TABLE t (a INTEGER)")
        db.insert_rows("t", [(i,) for i in range(1000)])
        rows = db.execute("SELECT a FROM t LIMIT 5").rows
        assert len(rows) == 5
        # rows_scanned counts the full table (scan registers the whole
        # snapshot) but batches stop early — verify via physical pull.
        plan, ctx, txn = plan_for(db, "SELECT a FROM t LIMIT 5")
        op = build_physical(plan, ctx)
        batches = list(op.execute(ctx.new_eval_context()))
        assert sum(len(b) for b in batches) == 5
        txn.rollback()
