"""The public Database / QueryResult API surface."""

import numpy as np
import pytest

import repro
from repro.errors import BindError, CatalogError, TransactionError


class TestExecute:
    def test_multi_statement_returns_last(self, db):
        result = db.execute(
            "CREATE TABLE t (a INTEGER); INSERT INTO t VALUES (1); "
            "SELECT a FROM t"
        )
        assert result.rows == [(1,)]

    def test_empty_script_rejected(self, db):
        with pytest.raises(BindError):
            db.execute("   ")

    def test_query_alias(self, db):
        assert db.query("SELECT 1").scalar() == 1


class TestQueryResult:
    def test_columns_and_types(self, people_db):
        result = people_db.execute(
            "SELECT name, age FROM people LIMIT 1"
        )
        assert result.columns == ["name", "age"]
        assert [str(t) for t in result.types] == ["VARCHAR", "INTEGER"]

    def test_fetch_interface(self, people_db):
        result = people_db.execute(
            "SELECT id FROM people ORDER BY id"
        )
        assert result.fetchone() == (1,)
        assert len(result.fetchall()) == 5
        assert len(result) == 5
        assert list(iter(result))[0] == (1,)

    def test_scalar_errors(self, people_db):
        with pytest.raises(ValueError):
            people_db.execute("SELECT id FROM people").scalar()
        with pytest.raises(ValueError):
            people_db.execute("SELECT id, name FROM people LIMIT 1").scalar()

    def test_column_access_numpy(self, people_db):
        col = people_db.execute(
            "SELECT age FROM people ORDER BY id"
        ).column("age")
        assert isinstance(col.values, np.ndarray)
        assert col.null_count() == 1

    def test_to_dict(self, people_db):
        data = people_db.execute(
            "SELECT id, name FROM people ORDER BY id LIMIT 2"
        ).to_dict()
        assert data == {"id": [1, 2], "name": ["alice", "bob"]}

    def test_missing_column_keyerror(self, people_db):
        with pytest.raises(KeyError):
            people_db.execute("SELECT id FROM people").column("nope")

    def test_rowcount_for_dml(self, db):
        db.execute("CREATE TABLE t (a INTEGER)")
        assert db.execute("INSERT INTO t VALUES (1), (2)").rowcount == 2


class TestIntrospection:
    def test_table_names(self, people_db):
        assert people_db.table_names() == ["orders", "people"]

    def test_table_schema(self, people_db):
        schema = people_db.table_schema("people")
        assert schema.names() == ["id", "name", "age", "city"]

    def test_row_count(self, people_db):
        assert people_db.row_count("people") == 5

    def test_explain(self, people_db):
        text = people_db.explain(
            "SELECT name FROM people WHERE age > 30"
        )
        assert "Scan people" in text
        assert "Filter" in text

    def test_explain_rejects_dml(self, people_db):
        with pytest.raises(BindError):
            people_db.explain("DELETE FROM people")


class TestBulkLoading:
    def test_load_columns(self, db):
        db.execute("CREATE TABLE t (a BIGINT, b FLOAT)")
        count = db.load_columns(
            "t",
            {
                "a": np.arange(10, dtype=np.int64),
                "b": np.linspace(0, 1, 10),
            },
        )
        assert count == 10
        assert db.execute("SELECT count(*), max(a) FROM t").fetchone() == (
            10, 9,
        )

    def test_load_columns_missing_column(self, db):
        db.execute("CREATE TABLE t (a BIGINT, b FLOAT)")
        with pytest.raises(CatalogError, match="missing"):
            db.load_columns("t", {"a": np.arange(3)})

    def test_load_columns_ragged(self, db):
        db.execute("CREATE TABLE t (a BIGINT, b FLOAT)")
        with pytest.raises(CatalogError, match="ragged"):
            db.load_columns(
                "t", {"a": np.arange(3), "b": np.arange(4.0)}
            )

    def test_load_columns_casts_dtypes(self, db):
        db.execute("CREATE TABLE t (a INTEGER)")
        db.load_columns("t", {"a": np.arange(3, dtype=np.int64)})
        assert db.execute("SELECT sum(a) FROM t").scalar() == 3

    def test_insert_rows_validates_table(self, db):
        with pytest.raises(CatalogError):
            db.insert_rows("ghost", [(1,)])


class TestSessionTransactions:
    def test_begin_twice_rejected(self, db):
        db.begin()
        with pytest.raises(TransactionError):
            db.begin()
        db.rollback()

    def test_commit_without_begin(self, db):
        with pytest.raises(TransactionError):
            db.commit()

    def test_in_transaction_flag(self, db):
        assert not db.in_transaction
        db.begin()
        assert db.in_transaction
        db.rollback()
        assert not db.in_transaction

    def test_statements_join_open_transaction(self, db):
        db.execute("CREATE TABLE t (a INTEGER)")
        db.begin()
        db.execute("INSERT INTO t VALUES (1)")
        db.execute("INSERT INTO t VALUES (2)")
        db.rollback()
        assert db.execute("SELECT count(*) FROM t").scalar() == 0


class TestStats:
    def test_rows_scanned_recorded(self, people_db):
        people_db.execute("SELECT * FROM people")
        assert people_db.last_stats.rows_scanned == 5

    def test_connect_helper(self):
        db = repro.connect()
        assert isinstance(db, repro.Database)

    def test_disable_optimizer(self):
        db = repro.Database(optimize=False)
        db.execute("CREATE TABLE t (a INTEGER)")
        db.insert_rows("t", [(1,), (2,)])
        assert db.execute(
            "SELECT a FROM t WHERE a > 1"
        ).rows == [(2,)]
