"""Direct unit tests for the expression compiler and bound expressions."""

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.expr import bound as b
from repro.expr.compiler import (
    EvalContext,
    ExpressionCompiler,
    truth_mask,
    _like_regex,
    _scalar_constant,
)
from repro.storage.column import Column, ColumnBatch
from repro.types import BOOLEAN, DOUBLE, INTEGER, VARCHAR


@pytest.fixture
def compiler():
    return ExpressionCompiler()


@pytest.fixture
def batch():
    return ColumnBatch(
        {
            "a": Column.from_values([1, 2, None, 4], INTEGER),
            "b": Column.from_values([10.0, 20.0, 30.0, 40.0], DOUBLE),
            "s": Column.from_values(["x", "y", None, "w"], VARCHAR),
        }
    )


def run(compiler, expr, batch):
    return compiler.compile(expr)(batch, EvalContext())


class TestLeaves:
    def test_literal_broadcast(self, compiler, batch):
        col = run(compiler, b.BoundLiteral(5, INTEGER), batch)
        assert col.to_pylist() == [5, 5, 5, 5]

    def test_column_ref(self, compiler, batch):
        col = run(compiler, b.BoundColumnRef("a", INTEGER), batch)
        assert col.to_pylist() == [1, 2, None, 4]

    def test_missing_slot_raises(self, compiler, batch):
        with pytest.raises(ExecutionError, match="missing"):
            run(compiler, b.BoundColumnRef("nope", INTEGER), batch)

    def test_param(self, compiler, batch):
        compiled = compiler.compile(b.BoundParam("p", INTEGER))
        col = compiled(batch, EvalContext(params={"p": 9}))
        assert col.to_pylist() == [9, 9, 9, 9]

    def test_unbound_param_raises(self, compiler, batch):
        compiled = compiler.compile(b.BoundParam("p", INTEGER))
        with pytest.raises(ExecutionError, match="unbound"):
            compiled(batch, EvalContext())


class TestArithmetic:
    def test_null_propagation(self, compiler, batch):
        expr = b.BoundBinary(
            "+",
            b.BoundColumnRef("a", INTEGER),
            b.BoundLiteral(1, INTEGER),
            INTEGER,
        )
        assert run(compiler, expr, batch).to_pylist() == [2, 3, None, 5]

    def test_constant_folding_into_closure(self, compiler):
        """Literal operands stay scalars — never materialised columns."""
        expr = b.BoundBinary(
            "*", b.BoundLiteral(3, INTEGER), b.BoundLiteral(4, INTEGER),
            INTEGER,
        )
        batch = ColumnBatch(
            {"x": Column.from_values([0] * 3, INTEGER)}
        )
        col = run(compiler, expr, batch)
        assert col.to_pylist() == [12, 12, 12]

    def test_pow_two_specialised(self, compiler, batch):
        expr = b.BoundBinary(
            "^", b.BoundColumnRef("b", DOUBLE),
            b.BoundLiteral(2, INTEGER), DOUBLE,
        )
        assert run(compiler, expr, batch).to_pylist() == [
            100.0, 400.0, 900.0, 1600.0,
        ]

    def test_pow_half_is_sqrt(self, compiler, batch):
        expr = b.BoundBinary(
            "^", b.BoundColumnRef("b", DOUBLE),
            b.BoundLiteral(0.5, DOUBLE), DOUBLE,
        )
        values = run(compiler, expr, batch).to_pylist()
        assert values[0] == pytest.approx(np.sqrt(10.0))

    def test_scalar_division_by_zero(self, compiler, batch):
        expr = b.BoundBinary(
            "/", b.BoundColumnRef("a", INTEGER),
            b.BoundLiteral(0, INTEGER), INTEGER,
        )
        with pytest.raises(ExecutionError):
            run(compiler, expr, batch)


class TestHelpers:
    def test_truth_mask_unknown_is_false(self):
        col = Column.from_values([True, None, False], BOOLEAN)
        assert truth_mask(col).tolist() == [True, False, False]

    def test_like_regex_translation(self):
        assert _like_regex("a%b").match("aXYZb")
        assert _like_regex("a_b").match("axb")
        assert not _like_regex("a_b").match("axxb")
        assert _like_regex("100%").match("100 percent")
        # Regex metacharacters are literal in LIKE.
        assert _like_regex("a.b").match("a.b")
        assert not _like_regex("a.b").match("axb")

    def test_scalar_constant_recognises_casts(self):
        lit = b.BoundLiteral(3, INTEGER)
        assert _scalar_constant(lit) == 3
        cast = b.BoundCast(lit, DOUBLE)
        assert _scalar_constant(cast) == 3.0
        assert _scalar_constant(b.BoundColumnRef("x", INTEGER)) is None
        assert _scalar_constant(b.BoundLiteral(None, INTEGER)) is None
        assert _scalar_constant(b.BoundLiteral(True, BOOLEAN)) is None

    def test_referenced_slots(self):
        expr = b.BoundBinary(
            "+",
            b.BoundColumnRef("a", INTEGER),
            b.BoundFunction(
                "abs", [b.BoundColumnRef("b", DOUBLE)], DOUBLE
            ),
            DOUBLE,
        )
        assert expr.referenced_slots() == {"a", "b"}


class TestCaseEvaluation:
    def test_case_lazy_enough(self, compiler, batch):
        # CASE guards division: rows failing the WHEN are never divided.
        expr = b.BoundCase(
            whens=[
                (
                    b.BoundBinary(
                        ">",
                        b.BoundColumnRef("b", DOUBLE),
                        b.BoundLiteral(15.0, DOUBLE),
                        BOOLEAN,
                    ),
                    b.BoundLiteral("big", VARCHAR),
                )
            ],
            else_result=b.BoundLiteral("small", VARCHAR),
            sql_type=VARCHAR,
        )
        assert run(compiler, expr, batch).to_pylist() == [
            "small", "big", "big", "big",
        ]


class TestLambdaCompilation:
    def test_lambda_body_vectorised(self, compiler):
        lam = b.BoundLambda(
            params=["a", "b"],
            body=b.BoundBinary(
                "-",
                b.BoundColumnRef("a.x", DOUBLE),
                b.BoundColumnRef("b.x", DOUBLE),
                DOUBLE,
            ),
            param_attrs={"a": ["x"], "b": ["x"]},
        )
        batch = ColumnBatch(
            {
                "a.x": Column.from_values([3.0, 5.0], DOUBLE),
                "b.x": Column.from_values([1.0, 1.0], DOUBLE),
            }
        )
        col = compiler.compile(lam)(batch, EvalContext())
        assert col.to_pylist() == [2.0, 4.0]
        assert lam.sql_type == DOUBLE  # inferred from the body
