"""The a-priori SQL workload (frequent itemset mining, section 4.2)."""

import pytest

import repro
from repro.workloads import FrequentItemset, apriori


@pytest.fixture
def market(db):
    db.execute("CREATE TABLE baskets (tid INTEGER, item VARCHAR)")
    transactions = {
        1: ["bread", "milk"],
        2: ["bread", "diapers", "beer", "eggs"],
        3: ["milk", "diapers", "beer", "cola"],
        4: ["bread", "milk", "diapers", "beer"],
        5: ["bread", "milk", "diapers", "cola"],
    }
    rows = [
        (tid, item)
        for tid, items in transactions.items()
        for item in items
    ]
    db.insert_rows("baskets", rows)
    return db


def supports(results):
    return {fs.items: fs.support for fs in results}


class TestApriori:
    def test_frequent_singles(self, market):
        got = supports(apriori(market, "baskets", 3, max_size=1))
        assert got == {
            ("beer",): 3,
            ("bread",): 4,
            ("diapers",): 4,
            ("milk",): 4,
        }

    def test_frequent_pairs(self, market):
        got = supports(apriori(market, "baskets", 3, max_size=2))
        assert got[("beer", "diapers")] == 3
        assert got[("bread", "milk")] == 3
        assert got[("diapers", "milk")] == 3
        assert ("beer", "milk") not in got  # support 2 < 3

    def test_triples(self, market):
        got = supports(apriori(market, "baskets", 2, max_size=3))
        assert got[("bread", "diapers", "milk")] == 2
        assert got[("beer", "bread", "diapers")] == 2

    def test_apriori_monotonicity(self, market):
        """Every subset of a frequent itemset is frequent (the property
        the algorithm exploits)."""
        results = apriori(market, "baskets", 2, max_size=3)
        frequent = {fs.items for fs in results}
        for itemset in frequent:
            if len(itemset) > 1:
                for drop in range(len(itemset)):
                    subset = tuple(
                        v for i, v in enumerate(itemset) if i != drop
                    )
                    assert subset in frequent

    def test_support_decreases_with_size(self, market):
        results = apriori(market, "baskets", 2, max_size=3)
        lookup = supports(results)
        for itemset, support in lookup.items():
            if len(itemset) > 1:
                for drop in range(len(itemset)):
                    subset = tuple(
                        v for i, v in enumerate(itemset) if i != drop
                    )
                    assert lookup[subset] >= support

    def test_duplicate_items_in_transaction_counted_once(self, db):
        db.execute("CREATE TABLE b (tid INTEGER, item VARCHAR)")
        db.insert_rows("b", [(1, "x"), (1, "x"), (2, "x")])
        got = supports(apriori(db, "b", 2, max_size=1))
        assert got == {("x",): 2}

    def test_nothing_frequent(self, market):
        assert apriori(market, "baskets", 99) == []

    def test_intermediate_tables_cleaned(self, market):
        apriori(market, "baskets", 3, max_size=2)
        assert all(
            not name.startswith("apriori_")
            for name in market.table_names()
        )

    def test_keep_tables(self, market):
        apriori(market, "baskets", 3, max_size=2, keep_tables=True)
        assert "apriori_l1" in market.table_names()

    def test_validation(self, market):
        with pytest.raises(ValueError):
            apriori(market, "baskets", 0)
        with pytest.raises(ValueError):
            apriori(market, "baskets", 1, max_size=0)

    def test_result_type(self, market):
        results = apriori(market, "baskets", 4, max_size=1)
        assert all(isinstance(fs, FrequentItemset) for fs in results)
