-- Q14-shaped promotion effect: ratio of two CASE aggregates with a
-- LIKE prefix filter on part type; one output row.
SELECT
  100.0 * sum(CASE WHEN p.p_type LIKE 'promo%'
              THEN l.l_extendedprice * (1 - l.l_discount)
              ELSE 0.0 END)
        / sum(l.l_extendedprice * (1 - l.l_discount)) AS promo_revenue
FROM lineitem l
JOIN part p ON l.l_partkey = p.p_partkey
WHERE l.l_shipdate >= 9000 AND l.l_shipdate < 9120
