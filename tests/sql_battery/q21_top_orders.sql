-- Order-by-limit-offset over stored values: float sort key with a
-- unique integer tiebreaker keeps the page deterministic.
-- compare: ordered
SELECT o.o_orderkey, o.o_totalprice
FROM orders o
ORDER BY 2 DESC NULLS LAST, 1 ASC NULLS LAST
LIMIT 15 OFFSET 5
