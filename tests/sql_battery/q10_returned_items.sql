-- Q10-shaped returned items: four-way join filtered by the return
-- flag (dictionary equality on the big table), top-20 by unique key.
-- compare: ordered
SELECT
  c.c_custkey,
  c.c_name,
  n.n_name,
  sum(l.l_extendedprice * (1 - l.l_discount)) AS revenue
FROM customer c
JOIN orders o ON c.c_custkey = o.o_custkey
JOIN lineitem l ON l.l_orderkey = o.o_orderkey
JOIN nation n ON c.c_nationkey = n.n_nationkey
WHERE l.l_returnflag = 'r'
  AND o.o_orderdate >= 8700 AND o.o_orderdate < 9100
GROUP BY c.c_custkey, c.c_name, n.n_name
ORDER BY 1 ASC NULLS LAST
LIMIT 20
