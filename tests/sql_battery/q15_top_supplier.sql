-- Q15-shaped top supplier: uncorrelated scalar subquery computing the
-- maximum balance, equality against it in WHERE.
SELECT s.s_suppkey, s.s_name, s.s_acctbal
FROM supplier s
WHERE s.s_acctbal = (SELECT max(s2.s_acctbal) FROM supplier s2)
