-- Q16-shaped part/supplier relationship: COUNT(DISTINCT) per brand
-- and container (both dictionary columns), a <> filter that prunes
-- in code space, and an integer IN-list.
-- compare: ordered
SELECT p.p_brand, p.p_container, count(DISTINCT l.l_suppkey) AS supplier_cnt
FROM part p
JOIN lineitem l ON p.p_partkey = l.l_partkey
WHERE p.p_brand <> 'brand#11'
  AND p.p_size IN (1, 4, 7, 10, 13, 16, 19, 22)
GROUP BY p.p_brand, p.p_container
ORDER BY 1 ASC NULLS LAST, 2 ASC NULLS LAST
