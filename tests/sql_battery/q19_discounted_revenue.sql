-- Q19-shaped discounted revenue: disjunction of conjunct bundles
-- mixing dictionary IN-lists, BETWEEN on integers, and a dictionary
-- equality; one output row.
SELECT sum(l.l_extendedprice * (1 - l.l_discount)) AS revenue
FROM lineitem l
JOIN part p ON p.p_partkey = l.l_partkey
WHERE (p.p_container IN ('sm pack', 'med bag')
       AND l.l_quantity BETWEEN 1 AND 20
       AND l.l_shipmode IN ('air', 'reg air'))
   OR (p.p_container IN ('jumbo box', 'lg case')
       AND l.l_quantity BETWEEN 10 AND 40
       AND l.l_shipinstruct = 'deliver in person')
