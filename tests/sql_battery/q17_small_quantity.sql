-- Q17-shaped small-quantity revenue: correlated scalar subquery —
-- each lineitem compares against half the average quantity of its
-- own part; one output row.
SELECT sum(l.l_extendedprice) / 7.0 AS avg_yearly
FROM lineitem l
JOIN part p ON p.p_partkey = l.l_partkey
WHERE p.p_brand = 'brand#23'
  AND l.l_quantity < (
    SELECT 0.5 * avg(l2.l_quantity)
    FROM lineitem l2
    WHERE l2.l_partkey = l.l_partkey
  )
