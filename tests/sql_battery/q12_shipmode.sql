-- Q12-shaped shipping modes: CASE aggregates bucketing order
-- priorities, IN-list on the dictionary-coded ship mode, and
-- three row-wise date comparisons.
-- compare: ordered
SELECT
  l.l_shipmode,
  sum(CASE WHEN o.o_orderpriority IN ('1-urgent', '2-high')
      THEN 1 ELSE 0 END) AS high_line_count,
  sum(CASE WHEN o.o_orderpriority NOT IN ('1-urgent', '2-high')
      THEN 1 ELSE 0 END) AS low_line_count
FROM orders o
JOIN lineitem l ON o.o_orderkey = l.l_orderkey
WHERE l.l_shipmode IN ('mail', 'ship', 'rail')
  AND l.l_shipdate < l.l_commitdate
  AND l.l_commitdate < l.l_receiptdate
  AND l.l_receiptdate >= 8400 AND l.l_receiptdate < 9500
GROUP BY l.l_shipmode
ORDER BY 1 ASC NULLS LAST
