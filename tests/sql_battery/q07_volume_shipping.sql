-- Q7-shaped trade volume: nation joined twice under different
-- aliases (supplier side and customer side), OR of name-pair
-- conjunctions on dictionary columns.
-- compare: ordered
SELECT
  n1.n_name AS supp_nation,
  n2.n_name AS cust_nation,
  sum(l.l_extendedprice * (1 - l.l_discount)) AS volume
FROM supplier s
JOIN lineitem l ON s.s_suppkey = l.l_suppkey
JOIN orders o ON o.o_orderkey = l.l_orderkey
JOIN customer c ON c.c_custkey = o.o_custkey
JOIN nation n1 ON s.s_nationkey = n1.n_nationkey
JOIN nation n2 ON c.c_nationkey = n2.n_nationkey
WHERE (n1.n_name = 'france' AND n2.n_name = 'germany')
   OR (n1.n_name = 'germany' AND n2.n_name = 'france')
GROUP BY n1.n_name, n2.n_name
ORDER BY 1 ASC NULLS LAST, 2 ASC NULLS LAST
