-- Set difference over the two nation-key columns: customer nations
-- that have no supplier.
-- compare: ordered
SELECT c.c_nationkey AS nk FROM customer c
EXCEPT
SELECT s.s_nationkey AS nk FROM supplier s
ORDER BY 1 ASC NULLS LAST
