-- Q20-shaped supplier screen: correlated EXISTS probing the big
-- table with a dictionary equality on ship mode, counted per nation.
-- compare: ordered
SELECT n.n_name, count(*) AS suppliers
FROM supplier s
JOIN nation n ON s.s_nationkey = n.n_nationkey
WHERE EXISTS (
  SELECT 1 FROM lineitem l
  WHERE l.l_suppkey = s.s_suppkey AND l.l_shipmode = 'truck'
)
GROUP BY n.n_name
ORDER BY 1 ASC NULLS LAST
