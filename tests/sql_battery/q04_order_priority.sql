-- Q4-shaped order priority check: IN-subquery whose inner predicate
-- compares two date columns row-wise (late deliveries).
-- compare: ordered
SELECT o.o_orderpriority, count(*) AS order_count
FROM orders o
WHERE o.o_orderdate >= 8500 AND o.o_orderdate < 8900
  AND o.o_orderkey IN (
    SELECT l.l_orderkey
    FROM lineitem l
    WHERE l.l_commitdate < l.l_receiptdate
  )
GROUP BY o.o_orderpriority
ORDER BY 1 ASC NULLS LAST
