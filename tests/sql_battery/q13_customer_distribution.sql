-- Q13-shaped customer order counts: LEFT JOIN so customers without
-- orders survive with count 0, grouped per customer.
-- compare: ordered
SELECT c.c_custkey, count(o.o_orderkey) AS c_count
FROM customer c
LEFT JOIN orders o ON c.c_custkey = o.o_custkey
GROUP BY c.c_custkey
ORDER BY 1 ASC NULLS LAST
