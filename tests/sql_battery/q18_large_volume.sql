-- Q18-shaped large-volume customers: IN-subquery with GROUP BY and
-- HAVING inside, outer three-way join re-aggregating the quantity.
-- compare: ordered
SELECT
  c.c_custkey,
  o.o_orderkey,
  o.o_orderdate,
  o.o_totalprice,
  sum(l.l_quantity) AS total_qty
FROM customer c
JOIN orders o ON c.c_custkey = o.o_custkey
JOIN lineitem l ON o.o_orderkey = l.l_orderkey
WHERE o.o_orderkey IN (
  SELECT l2.l_orderkey
  FROM lineitem l2
  GROUP BY l2.l_orderkey
  HAVING sum(l2.l_quantity) > 150
)
GROUP BY c.c_custkey, o.o_orderkey, o.o_orderdate, o.o_totalprice
ORDER BY 2 ASC NULLS LAST
LIMIT 25
