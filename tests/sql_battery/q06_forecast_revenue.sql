-- Q6-shaped forecast revenue: single-table scan with a date range
-- (FOR range on codes), a float BETWEEN, and an integer comparison;
-- one output row.
SELECT sum(l.l_extendedprice * l.l_discount) AS revenue
FROM lineitem l
WHERE l.l_shipdate >= 8400 AND l.l_shipdate < 8765
  AND l.l_discount BETWEEN 0.02 AND 0.06
  AND l.l_quantity < 24
