-- Q3-shaped shipping priority: three-way join with a dictionary
-- equality predicate on the customer segment, grouped revenue,
-- deterministic integer sort keys plus LIMIT.
-- compare: ordered
SELECT
  o.o_orderkey,
  o.o_orderdate,
  sum(l.l_extendedprice * (1 - l.l_discount)) AS revenue
FROM customer c
JOIN orders o ON c.c_custkey = o.o_custkey
JOIN lineitem l ON l.l_orderkey = o.o_orderkey
WHERE c.c_mktsegment = 'building'
  AND o.o_orderdate < 9200
  AND l.l_shipdate > 9200
GROUP BY o.o_orderkey, o.o_orderdate
ORDER BY 2 ASC NULLS LAST, 1 ASC NULLS LAST
LIMIT 10
