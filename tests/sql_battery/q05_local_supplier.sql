-- Q5-shaped local supplier volume: six-way join across the whole key
-- chain, region name filter on a dictionary column, plus the
-- customer-nation = supplier-nation side condition.
-- compare: ordered
SELECT n.n_name, sum(l.l_extendedprice * (1 - l.l_discount)) AS revenue
FROM customer c
JOIN orders o ON c.c_custkey = o.o_custkey
JOIN lineitem l ON l.l_orderkey = o.o_orderkey
JOIN supplier s ON l.l_suppkey = s.s_suppkey
JOIN nation n ON s.s_nationkey = n.n_nationkey
JOIN region r ON n.n_regionkey = r.r_regionkey
WHERE r.r_name = 'asia'
  AND c.c_nationkey = s.s_nationkey
  AND o.o_orderdate >= 8400 AND o.o_orderdate < 9500
GROUP BY n.n_name
ORDER BY 1 ASC NULLS LAST
