-- Q1-shaped pricing summary: full aggregate sweep over the largest
-- table, grouped by the two low-cardinality flag columns that
-- dictionary-encode, with a date cutoff evaluable on FOR offsets.
-- compare: ordered
SELECT
  l.l_returnflag,
  l.l_linestatus,
  sum(l.l_quantity) AS sum_qty,
  sum(l.l_extendedprice) AS sum_base_price,
  sum(l.l_extendedprice * (1 - l.l_discount)) AS sum_disc_price,
  avg(l.l_quantity) AS avg_qty,
  avg(l.l_discount) AS avg_disc,
  count(*) AS count_order
FROM lineitem l
WHERE l.l_shipdate <= 10400
GROUP BY l.l_returnflag, l.l_linestatus
ORDER BY 1 ASC NULLS LAST, 2 ASC NULLS LAST
