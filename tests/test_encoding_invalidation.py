"""Regression tests: zone maps and encoding stats across DML.

Table versions are immutable, so "invalidation" means each committed
version carries its own encoded columns and lazily-built zone maps —
a new version after UPDATE/DELETE must rebuild both from its own
data, while snapshots pinned on older versions keep seeing the old
statistics. These tests pin that contract, plus that every bulk
ingestion path (INSERT, insert_rows, load_columns, load_csv, CTAS)
lands in encoded storage under an encoding policy.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Database
from repro.storage.encoding import (
    DictionaryColumn,
    column_encoding_of,
    decode_column,
)


def _column(db: Database, table: str, name: str):
    data = db.catalog.data(table, db.catalog.current_ts)
    for field, col in zip(data.schema, data.columns):
        if field.name == name:
            return col
    raise AssertionError(f"no column {name!r}")


def _zone_minmax(column):
    zones = column.zone_map()
    assert zones is not None
    return zones.mins.tolist(), zones.maxs.tolist()


@pytest.fixture
def db():
    database = Database(encoding="auto")
    yield database
    database.close()


def test_zone_map_rebuilds_after_update(db):
    db.execute("CREATE TABLE t (v INTEGER)")
    db.insert_rows("t", [(i % 100,) for i in range(5000)])
    before_col = _column(db, "t", "v")
    mins, maxs = _zone_minmax(before_col)
    assert max(maxs) == 99

    db.execute("UPDATE t SET v = v + 1000 WHERE v >= 50")
    after_col = _column(db, "t", "v")
    assert after_col is not before_col
    mins2, maxs2 = _zone_minmax(after_col)
    assert max(maxs2) == 1099
    # The old version's cached zone map is untouched (immutability).
    assert _zone_minmax(before_col) == (mins, maxs)
    # And the new map agrees with a recompute over decoded values.
    reference = decode_column(after_col).zone_map()
    np.testing.assert_array_equal(
        after_col.zone_map().mins, reference.mins
    )
    np.testing.assert_array_equal(
        after_col.zone_map().maxs, reference.maxs
    )


def test_zone_map_rebuilds_after_delete(db):
    db.execute("CREATE TABLE t (v INTEGER)")
    db.insert_rows("t", [(i,) for i in range(5000)])
    db.execute("DELETE FROM t WHERE v >= 100")
    column = _column(db, "t", "v")
    zones = column.zone_map()
    assert zones.n_rows == 100
    assert int(zones.maxs.max()) == 99


def test_encoding_stats_track_dml(db):
    db.execute("CREATE TABLE t (s VARCHAR)")
    db.insert_rows("t", [("x" * 30,), ("y" * 30,)] * 500)
    stats = db.storage_stats()
    table = stats["tables"]["t"]
    assert table["columns"]["s"] == "dict"
    assert table["encoded_bytes"] < table["raw_bytes"]

    db.execute("DELETE FROM t WHERE s LIKE 'x%'")
    after = db.storage_stats()["tables"]["t"]
    assert after["rows"] == 500
    assert after["raw_bytes"] < table["raw_bytes"]
    assert after["encoded_bytes"] < table["encoded_bytes"]


def test_snapshot_keeps_old_encoded_version(db):
    db.execute("CREATE TABLE t (s VARCHAR)")
    db.insert_rows("t", [("old",)] * 50)
    # Pin a snapshot, then commit an UPDATE from an autocommit
    # statement: the reader must keep the pre-update encoded version
    # with its pre-update dictionary.
    reader = db.txns.begin()
    try:
        db.execute("UPDATE t SET s = 'new'")
        old_column = reader.read("t").columns[0]
        assert isinstance(old_column, DictionaryColumn)
        assert list(old_column.dictionary) == ["old"]
        assert old_column.to_pylist() == ["old"] * 50
    finally:
        reader.rollback()
    new_column = _column(db, "t", "s")
    assert isinstance(new_column, DictionaryColumn)
    assert list(new_column.dictionary) == ["new"]


def test_ingestion_paths_produce_encoded_storage(db, tmp_path):
    db.execute("CREATE TABLE t (s VARCHAR, v INTEGER)")
    db.insert_rows("t", [("ab", i % 4) for i in range(64)])
    assert column_encoding_of(_column(db, "t", "s")) == "dict"

    db.load_columns(
        "t",
        {
            "s": np.array(["cd"] * 64, dtype=object),
            "v": np.arange(64, dtype=np.int32),
        },
    )
    assert column_encoding_of(_column(db, "t", "s")) == "dict"
    assert len(_column(db, "t", "s")) == 128

    db.execute("CREATE TABLE u AS SELECT s, v FROM t WHERE v < 2")
    assert column_encoding_of(_column(db, "u", "s")) == "dict"

    csv = tmp_path / "rows.csv"
    csv.write_text(
        "s,v\n" + "\n".join(f"ef,{i % 3}" for i in range(64)) + "\n"
    )
    db.load_csv("w", str(csv))
    assert column_encoding_of(_column(db, "w", "s")) == "dict"


def test_forced_raw_policy_keeps_raw_storage():
    raw = Database(encoding="raw")
    try:
        raw.execute("CREATE TABLE t (s VARCHAR)")
        raw.insert_rows("t", [("aa",)] * 64)
        assert column_encoding_of(_column(raw, "t", "s")) == "raw"
        stats = raw.storage_stats()
        assert stats["encoding"] == "raw"
    finally:
        raw.close()


def test_update_to_high_cardinality_degrades_encoding(db):
    # Auto policy backs off when distinct count crosses the threshold:
    # after the UPDATE every row is unique, so a dictionary would be
    # pure overhead and the committed version must store raw values.
    db.execute("CREATE TABLE t (s VARCHAR, k INTEGER)")
    db.insert_rows("t", [("dup", i) for i in range(256)])
    assert column_encoding_of(_column(db, "t", "s")) == "dict"
    db.execute("UPDATE t SET s = s || CAST(k AS VARCHAR)")
    assert column_encoding_of(_column(db, "t", "s")) == "raw"
