"""Concurrency correctness of the multi-session server.

The oracle throughout is the *serial twin*: every concurrent workload
here is serializable by construction (private per-session tables plus
shared read-only tables), so a fresh embedded database replaying the
same scripts one session at a time must land on the identical final
state — rows, aggregates, everything (docs/server.md).
"""

import socket
import threading
import time

import pytest

from repro.api.database import Database
from repro.errors import ReproError, SerializationConflict
from repro.obs.flight import load_bundle
from repro.server import Client, Server
from repro.server.protocol import encode_frame, read_frame
from repro.testing.chaos import ChaosInjector

pytestmark = pytest.mark.server

N_CLIENTS = 6
ROWS = 120


def client_script(i: int) -> list[str]:
    """Session ``i``'s statements: private-table DML (including an
    explicit transaction and a rolled-back one) plus shared reads."""
    rows = ", ".join(f"({k}, {(k * 13 + i) % 97})" for k in range(ROWS))
    return [
        f"CREATE TABLE priv_{i} (k INTEGER, v INTEGER)",
        f"INSERT INTO priv_{i} VALUES {rows}",
        "BEGIN",
        f"UPDATE priv_{i} SET v = v + 500 WHERE k % 3 = {i % 3}",
        f"DELETE FROM priv_{i} WHERE k >= {ROWS - 20}",
        "COMMIT",
        "BEGIN",
        f"UPDATE priv_{i} SET v = 0",
        "ROLLBACK",  # must not stick
        f"SELECT count(*), sum(v), min(v), max(v) FROM priv_{i}",
        "SELECT count(*), sum(w) FROM shared_ref",
        f"SELECT count(*) FROM priv_{i} WHERE v > 250",
    ]


def seed_shared(db: Database) -> None:
    db.execute("CREATE TABLE shared_ref (f INTEGER, w INTEGER)")
    rows = ", ".join(f"({j}, {(j * 31) % 211})" for j in range(300))
    db.execute(f"INSERT INTO shared_ref VALUES {rows}")


def run_script(client: Client, script) -> list:
    """Row sets of every row-returning statement, in order."""
    results = []
    for sql in script:
        result = client.execute(sql)
        if result.rows:
            results.append(result.rows)
    return results


def final_state(db: Database, table: str) -> list[tuple]:
    return db.execute(f"SELECT * FROM {table} ORDER BY k, v").rows


@pytest.fixture
def server():
    db = Database()
    seed_shared(db)
    srv = Server(db, executors=4, queue_depth=64, max_sessions=16)
    srv.start()
    yield srv
    srv.stop()
    db.close()


def connect(server, **kwargs) -> Client:
    host, port = server.address
    return Client(host, port, **kwargs)


class TestConcurrentSessionsVsSerialTwin:
    def test_final_state_equals_serial_twin(self, server):
        outcomes: dict = {}

        def work(i: int) -> None:
            try:
                with connect(server) as client:
                    outcomes[i] = run_script(client, client_script(i))
            except Exception as exc:  # noqa: BLE001
                outcomes[i] = exc

        threads = [
            threading.Thread(target=work, args=(i,))
            for i in range(N_CLIENTS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60.0)
        errors = {
            i: v for i, v in outcomes.items() if isinstance(v, Exception)
        }
        assert not errors, f"sessions failed: {errors}"
        assert len(outcomes) == N_CLIENTS

        with Database() as twin:
            seed_shared(twin)
            for i in range(N_CLIENTS):
                twin_results = []
                for sql in client_script(i):
                    result = twin.execute(sql)
                    if result.rows:
                        twin_results.append(result.rows)
                assert outcomes[i] == twin_results, (
                    f"session {i}: remote results diverge from twin"
                )
            for i in range(N_CLIENTS):
                assert final_state(
                    server.db, f"priv_{i}"
                ) == final_state(twin, f"priv_{i}"), (
                    f"table priv_{i} diverges from serial twin"
                )


class TestSnapshotIsolationAcrossSessions:
    def test_uncommitted_writes_invisible_to_other_sessions(self, server):
        with connect(server) as a, connect(server) as b:
            a.execute("CREATE TABLE iso (x INTEGER)")
            a.execute("INSERT INTO iso VALUES (1)")
            a.begin()
            a.execute("INSERT INTO iso VALUES (2)")
            # A reads its own write; B's snapshot predates it.
            assert a.query("SELECT count(*) FROM iso").scalar() == 2
            assert b.query("SELECT count(*) FROM iso").scalar() == 1
            a.commit()
            assert b.query("SELECT count(*) FROM iso").scalar() == 2

    def test_open_transaction_pins_readers_snapshot(self, server):
        with connect(server) as a, connect(server) as b:
            a.execute("CREATE TABLE pin (x INTEGER)")
            a.execute("INSERT INTO pin VALUES (1)")
            b.begin()
            assert b.query("SELECT count(*) FROM pin").scalar() == 1
            a.execute("INSERT INTO pin VALUES (2)")
            # B's transaction still reads the snapshot it began with,
            # even though A's insert committed after it.
            assert b.query("SELECT count(*) FROM pin").scalar() == 1
            b.commit()
            assert b.query("SELECT count(*) FROM pin").scalar() == 2

    def test_first_committer_wins_over_the_wire(self, server):
        with connect(server) as a, connect(server) as b:
            a.execute("CREATE TABLE fcw (x INTEGER)")
            a.begin()
            b.begin()
            a.execute("INSERT INTO fcw VALUES (1)")
            b.execute("INSERT INTO fcw VALUES (2)")
            a.commit()
            with pytest.raises(SerializationConflict) as info:
                b.commit()
            assert info.value.wire_code == "SERIALIZATION_CONFLICT"
            # the loser's write is gone; the winner's persisted
            rows = a.query("SELECT x FROM fcw").rows
            assert rows == [(1,)]
            # B's session survives the conflict
            assert b.query("SELECT 1").scalar() == 1


class TestRollbackOnDisconnect:
    def test_abandoned_connection_rolls_back(self, server):
        a = connect(server)
        b = connect(server)
        try:
            a.execute("CREATE TABLE aband (x INTEGER)")
            a.execute("INSERT INTO aband VALUES (1)")
            a.begin()
            a.execute("INSERT INTO aband VALUES (2), (3)")
            assert a.query("SELECT count(*) FROM aband").scalar() == 3
            a.abandon()  # socket drop, no close handshake
            deadline = time.time() + 10.0
            while server.session_count() > 1 and time.time() < deadline:
                time.sleep(0.02)
            assert server.session_count() == 1
            # the uncommitted rows never became visible
            assert b.query("SELECT count(*) FROM aband").scalar() == 1
        finally:
            a.close()
            b.close()

    def test_clean_close_inside_txn_rolls_back(self, server):
        a = connect(server)
        a.execute("CREATE TABLE cls (x INTEGER)")
        a.begin()
        a.execute("INSERT INTO cls VALUES (1)")
        a.close()
        with connect(server) as b:
            assert b.query("SELECT count(*) FROM cls").scalar() == 0


class TestChaosUnderConcurrency:
    """Seeded fault injection through the server path: one statement
    across >= 3 concurrent sessions dies with a typed governor error, a
    flight-recorder bundle is written for the abort, the surviving
    sessions stay usable, and no partial state leaks anywhere."""

    @pytest.mark.parametrize(
        "kind,nth",
        [("operator_raise", 3), ("cancel", 5), ("alloc_fail", 2)],
    )
    def test_injected_abort_is_atomic_and_isolated(
        self, tmp_path, kind, nth
    ):
        db = Database(
            chaos=ChaosInjector(kind, nth), flight_dir=str(tmp_path)
        )
        seed_shared(db)
        srv = Server(db, executors=3, queue_depth=32, max_sessions=8)
        srv.start()
        host, port = srv.address
        try:
            db.chaos.arm()
            outcomes: dict = {}

            def work(i: int) -> None:
                ok, failed = [], []
                try:
                    with Client(host, port) as client:
                        for idx, sql in enumerate(client_script(i)):
                            try:
                                result = client.execute(sql)
                                ok.append(
                                    (idx, result.rows or None)
                                )
                            except ReproError as exc:
                                failed.append(
                                    (idx, getattr(exc, "wire_code", ""))
                                )
                        # the session survives its injected abort
                        assert client.query("SELECT 1").scalar() == 1
                    outcomes[i] = (ok, failed)
                except Exception as exc:  # noqa: BLE001
                    outcomes[i] = exc

            threads = [
                threading.Thread(target=work, args=(i,))
                for i in range(3)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60.0)
            crashes = {
                i: v
                for i, v in outcomes.items()
                if isinstance(v, Exception)
            }
            assert not crashes, f"sessions crashed: {crashes}"
            assert len(outcomes) == 3

            # fire-once: exactly one statement across all sessions died,
            # with the wire code matching the injected kind.
            assert db.chaos.fired
            all_failed = [
                f for _, failed in outcomes.values() for f in failed
            ]
            assert len(all_failed) == 1, all_failed
            (_, wire_code) = all_failed[0]
            expected = {
                "operator_raise": "INJECTED_FAULT",
                "cancel": "QUERY_CANCELLED",
                "alloc_fail": "MEMORY_BUDGET_EXCEEDED",
            }[kind]
            assert wire_code == expected

            # one flight bundle per injected abort, loadable from disk
            assert db.flight.bundles_written == 1
            bundle = load_bundle(db.flight.last_bundle_path)
            assert bundle["error"]["type"] in (
                "InjectedFault",
                "QueryCancelled",
                "MemoryBudgetExceeded",
            )

            # no cross-session partial state: replay each session's
            # *successful* statements serially; states must match.
            # (client_script statements are per-statement independent
            # only outside BEGIN/COMMIT blocks, so replay the whole
            # script and skip exactly the statements that failed --
            # inside an aborted txn the engine already rolled the
            # statement back, keeping the rest of the txn coherent.)
            with Database() as twin:
                seed_shared(twin)
                for i in range(3):
                    ok, failed = outcomes[i]
                    failed_idx = {idx for idx, _ in failed}
                    for idx, sql in enumerate(client_script(i)):
                        if idx in failed_idx:
                            continue
                        twin.execute(sql)
                    assert final_state(
                        db, f"priv_{i}"
                    ) == final_state(twin, f"priv_{i}"), (
                        f"session {i}: post-chaos state diverges"
                    )
        finally:
            srv.stop()
            db.close()


class TestTwoServersSideBySide:
    """Regression for embedded-mode process-global assumptions: two
    independent servers (own databases, own worker pools, own admission
    queues) must coexist in one process without cross-talk."""

    def test_independent_servers_do_not_interfere(self):
        db1, db2 = Database(), Database()
        srv1 = Server(db1, executors=2).start()
        srv2 = Server(db2, executors=2).start()
        try:
            h1, p1 = srv1.address
            h2, p2 = srv2.address
            assert p1 != p2
            with Client(h1, p1) as c1, Client(h2, p2) as c2:
                c1.execute("CREATE TABLE only_one (x INTEGER)")
                c1.execute("INSERT INTO only_one VALUES (1)")
                # the other server's catalog never sees it
                from repro.errors import BindError

                with pytest.raises(BindError):
                    c2.query("SELECT * FROM only_one")
                c2.execute("CREATE TABLE only_two (y INTEGER)")
                c2.execute("INSERT INTO only_two VALUES (7), (8)")
                assert c1.query(
                    "SELECT count(*) FROM only_one"
                ).scalar() == 1
                assert c2.query(
                    "SELECT sum(y) FROM only_two"
                ).scalar() == 15
            # sessions and metrics are per-server
            assert srv1.session_count() == 0
            assert srv2.session_count() == 0
        finally:
            srv1.stop()
            srv2.stop()
            db1.close()
            db2.close()

    def test_stopping_one_server_leaves_the_other_serving(self):
        db1, db2 = Database(), Database()
        srv1 = Server(db1, executors=2).start()
        srv2 = Server(db2, executors=2).start()
        try:
            h2, p2 = srv2.address
            c2 = Client(h2, p2)
            srv1.stop()
            db1.close()
            # a worker pool shut down via server 1's teardown must not
            # have unhooked or crashed server 2's engine
            assert c2.query("SELECT 2 + 2").scalar() == 4
            c2.close()
        finally:
            srv1.stop()
            srv2.stop()
            db2.close()

    def test_restart_cycle_same_process(self):
        # exercises atexit/worker-pool hygiene across many lifecycles
        for _ in range(3):
            srv = Server(executors=1).start()
            host, port = srv.address
            with Client(host, port) as client:
                assert client.query("SELECT 1").scalar() == 1
            srv.stop()


class TestAdmissionUnderLoad:
    def test_no_hangs_when_queue_overflows(self):
        """Hammer a tiny admission queue from many threads: every
        request must resolve (success or typed rejection), promptly."""
        srv = Server(executors=2, queue_depth=2, max_sessions=24).start()
        host, port = srv.address
        results: list = []
        lock = threading.Lock()

        def work() -> None:
            try:
                with Client(host, port) as client:
                    for _ in range(5):
                        try:
                            value = client.query(
                                "SELECT 21 * 2"
                            ).scalar()
                            with lock:
                                results.append(("ok", value))
                        except ReproError as exc:
                            with lock:
                                results.append(
                                    (
                                        "rejected",
                                        getattr(exc, "wire_code", ""),
                                    )
                                )
            except Exception as exc:  # noqa: BLE001
                with lock:
                    results.append(("crash", repr(exc)))

        try:
            threads = [
                threading.Thread(target=work) for _ in range(12)
            ]
            t0 = time.perf_counter()
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60.0)
            elapsed = time.perf_counter() - t0
            assert all(not t.is_alive() for t in threads), "hang"
            assert elapsed < 30.0
            assert len(results) == 12 * 5
            crashes = [r for r in results if r[0] == "crash"]
            assert not crashes, crashes
            oks = [r for r in results if r[0] == "ok"]
            assert all(value == 42 for _, value in oks)
            for status, code in results:
                if status == "rejected":
                    assert code in (
                        "ADMISSION_REJECTED", "SESSION_LIMIT",
                    )
        finally:
            srv.stop()
