"""Property tests for the encoded columnar storage layer.

Three layers of guarantees:

* **Codec round-trips** — every encoder (dictionary, FOR, RLE) decodes
  back to exactly the values and NULLs it was given, across types,
  NULL densities, and forced policies.
* **Structural invariants** — dictionaries are sorted/unique with
  in-range codes and (after compaction) no unreferenced entries; FOR
  offsets are non-negative; RLE runs cover the column.
* **Equivalence under DML** — an encoded database and a raw twin
  running the same INSERT/UPDATE/DELETE/ROLLBACK script agree on every
  table's full contents after every statement, and zone maps built
  over encoded columns match a recompute over the decoded values.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro import Database
from repro.storage.column import Column
from repro.storage.encoding import (
    ENCODING_POLICIES,
    DictionaryColumn,
    EncodedColumn,
    FORColumn,
    RLEColumn,
    column_encoding_of,
    column_raw_nbytes,
    compact_dictionary,
    decode_column,
    dictionary_encode,
    encode_column,
    for_encode,
    resolve_encoding,
    rle_encode,
)
from repro.types import BIGINT, BOOLEAN, DOUBLE, INTEGER, VARCHAR

_WORDS = ["ash", "beech", "cedar", "oak", "pine", "willow"]


def _random_column(rng, sql_type, n, null_rate=0.15, cardinality=6):
    values = []
    for _ in range(n):
        if rng.random() < null_rate:
            values.append(None)
        elif sql_type is VARCHAR:
            values.append(rng.choice(_WORDS[:cardinality]))
        elif sql_type is DOUBLE:
            values.append(round(rng.uniform(-50, 50), 2))
        elif sql_type is BOOLEAN:
            values.append(rng.random() < 0.5)
        elif sql_type is BIGINT:
            values.append(rng.randint(10**12, 10**12 + 50))
        else:
            values.append(rng.randint(-40, 40))
    return Column.from_values(values, sql_type)


# ---------------------------------------------------------------------------
# Codec round-trips
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(8))
@pytest.mark.parametrize(
    "sql_type", [INTEGER, BIGINT, DOUBLE, VARCHAR, BOOLEAN],
    ids=lambda t: str(t),
)
@pytest.mark.parametrize("policy", list(ENCODING_POLICIES))
def test_encode_round_trip(seed, sql_type, policy):
    rng = random.Random(seed)
    n = rng.choice([0, 1, 5, 64, 257])
    null_rate = rng.choice([0.0, 0.15, 1.0])
    column = _random_column(rng, sql_type, n, null_rate=null_rate)
    encoded = encode_column(column, policy)
    assert len(encoded) == n
    assert encoded.sql_type == column.sql_type
    assert decode_column(encoded).to_pylist() == column.to_pylist()
    # Round-trip again through a re-encode of the encoded form.
    assert encode_column(encoded, policy).to_pylist() == column.to_pylist()


@pytest.mark.parametrize("seed", range(6))
def test_dictionary_invariants(seed):
    rng = random.Random(1000 + seed)
    column = _random_column(rng, VARCHAR, rng.randint(4, 200))
    encoded = dictionary_encode(column)
    if encoded is None:
        pytest.skip("not encodable (all NULL)")
    words = list(encoded.dictionary)
    assert words == sorted(set(words)), "dictionary must be sorted unique"
    assert encoded.codes.min() >= 0
    assert encoded.codes.max() < len(words)
    # Every entry referenced by at least one valid row (fresh encodes
    # are compact by construction).
    referenced = set(
        encoded.codes[encoded.validity()].tolist()
    )
    assert referenced == set(range(len(words)))
    assert encoded.to_pylist() == column.to_pylist()


def test_dictionary_compaction_drops_dead_entries():
    column = Column.from_values(
        ["a", "b", "c", "b", "a", "d"], VARCHAR
    )
    encoded = dictionary_encode(column)
    # Keep only the 'b' rows: 'a', 'c', 'd' become unreferenced.
    survivors = encoded.filter(
        np.array([False, True, False, True, False, False])
    )
    assert isinstance(survivors, DictionaryColumn)
    assert len(survivors.dictionary) == 4  # stale, shared dictionary
    compacted = compact_dictionary(survivors)
    assert isinstance(compacted, DictionaryColumn)
    assert list(compacted.dictionary) == ["b"]
    assert compacted.to_pylist() == ["b", "b"]


def test_for_column_invariants():
    column = Column.from_values(
        [1_000_000, 1_000_005, None, 1_000_017], INTEGER
    )
    encoded = for_encode(column)
    assert isinstance(encoded, FORColumn)
    assert encoded.offsets.dtype == np.uint8
    assert int(encoded.offsets.min()) >= 0
    assert encoded.to_pylist() == column.to_pylist()


def test_for_encode_declines_huge_bigints():
    # Frame-of-reference comparisons shift the constant by the base;
    # beyond 2**53 that shift is float-unsafe, so the encoder declines.
    column = Column.from_values(
        [2**60, 2**60 + 1, 2**60 + 2], BIGINT
    )
    assert for_encode(column) is None


def test_rle_invariants():
    values = [5] * 40 + [7] * 20 + [5] * 40
    column = Column.from_values(values, INTEGER)
    encoded = rle_encode(column)
    assert isinstance(encoded, RLEColumn)
    assert list(encoded.run_values) == [5, 7, 5]
    assert int(encoded.run_lengths.sum()) == len(values)
    assert encoded.to_pylist() == values
    # NULLs disqualify RLE (validity would need its own run structure).
    assert rle_encode(Column.from_values([5, None, 5], INTEGER)) is None


@pytest.mark.parametrize("seed", range(6))
def test_encoded_slice_take_filter_match_raw(seed):
    rng = random.Random(2000 + seed)
    for sql_type in (VARCHAR, INTEGER):
        column = _random_column(rng, sql_type, 120)
        for policy in ("dict", "for", "rle", "auto"):
            encoded = encode_column(column, policy)
            lo = rng.randint(0, 60)
            hi = rng.randint(lo, 120)
            assert (
                encoded.slice(lo, hi).to_pylist()
                == column.slice(lo, hi).to_pylist()
            )
            idx = np.array(
                [rng.randrange(120) for _ in range(30)], dtype=np.int64
            )
            assert (
                encoded.take(idx).to_pylist()
                == column.take(idx).to_pylist()
            )
            mask = np.array(
                [rng.random() < 0.4 for _ in range(120)], dtype=np.bool_
            )
            assert (
                encoded.filter(mask).to_pylist()
                == column.filter(mask).to_pylist()
            )


@pytest.mark.parametrize("seed", range(6))
def test_encoded_zone_maps_match_recompute(seed):
    rng = random.Random(3000 + seed)
    for sql_type in (INTEGER, BIGINT, DOUBLE):
        column = _random_column(rng, sql_type, 300, null_rate=0.1)
        for policy in ("for", "rle", "auto"):
            encoded = encode_column(column, policy)
            if not isinstance(encoded, EncodedColumn):
                continue
            zones = encoded.zone_map()
            reference = decode_column(encoded).zone_map()
            if zones is None:
                assert reference is None
                continue
            assert zones.n_rows == len(column)
            np.testing.assert_array_equal(zones.mins, reference.mins)
            np.testing.assert_array_equal(zones.maxs, reference.maxs)
            np.testing.assert_array_equal(
                zones.null_counts, reference.null_counts
            )


# ---------------------------------------------------------------------------
# Predicate-on-codes semantics
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(8))
def test_dictionary_compare_const_matches_python(seed):
    rng = random.Random(4000 + seed)
    column = _random_column(rng, VARCHAR, 150, cardinality=4)
    encoded = dictionary_encode(column)
    ops = {
        "=": lambda a, b: a == b,
        "<>": lambda a, b: a != b,
        "<": lambda a, b: a < b,
        "<=": lambda a, b: a <= b,
        ">": lambda a, b: a > b,
        ">=": lambda a, b: a >= b,
    }
    valid = encoded.validity()
    # Probe present words, absent words inside the range, and words
    # beyond both ends of the sorted dictionary.
    for const in ["ash", "beer", "cedar", "aaa", "zzz", "oak"]:
        for op, fn in ops.items():
            got = encoded.compare_const(op, const)
            for i, value in enumerate(column.to_pylist()):
                if not valid[i]:
                    continue  # mask slot; validity handled by caller
                assert bool(got[i]) == fn(value, const), (
                    f"{value!r} {op} {const!r}"
                )


@pytest.mark.parametrize("seed", range(4))
def test_dictionary_isin_matches_python(seed):
    rng = random.Random(5000 + seed)
    column = _random_column(rng, VARCHAR, 100)
    encoded = dictionary_encode(column)
    items = ["ash", "zzz", "pine"]
    got = encoded.isin_const(items)
    valid = encoded.validity()
    for i, value in enumerate(column.to_pylist()):
        if valid[i]:
            assert bool(got[i]) == (value in items)


def test_for_compare_const_matches_python():
    column = Column.from_values(
        [100, 105, None, 117, 100, 250], INTEGER
    )
    encoded = for_encode(column)
    valid = encoded.validity()
    values = column.to_pylist()
    for const in (99, 100, 117, 300, 104.5):
        for op, fn in (
            ("=", lambda a, b: a == b), ("<", lambda a, b: a < b),
            (">=", lambda a, b: a >= b),
        ):
            got = encoded.compare_const(op, const)
            for i, value in enumerate(values):
                if valid[i]:
                    assert bool(got[i]) == fn(value, const)


# ---------------------------------------------------------------------------
# Policy resolution
# ---------------------------------------------------------------------------


def test_resolve_encoding_env(monkeypatch):
    monkeypatch.delenv("REPRO_ENCODING", raising=False)
    assert resolve_encoding(None) == "auto"
    assert resolve_encoding("rle") == "rle"
    monkeypatch.setenv("REPRO_ENCODING", "raw")
    assert resolve_encoding(None) == "raw"
    assert resolve_encoding("dict") == "dict"
    with pytest.raises(ValueError):
        resolve_encoding("zip")
    monkeypatch.setenv("REPRO_ENCODING", "bogus")
    with pytest.raises(ValueError):
        resolve_encoding(None)


def test_encoding_footprint_accounting():
    column = Column.from_values(
        [_WORDS[i % 3] for i in range(4096)], VARCHAR
    )
    encoded = encode_column(column, "auto")
    assert column_encoding_of(encoded) == "dict"
    assert column_raw_nbytes(encoded) == column_raw_nbytes(column)
    assert encoded.nbytes * 3 < column_raw_nbytes(column)


# ---------------------------------------------------------------------------
# Equivalence under DML and rollback
# ---------------------------------------------------------------------------

_DML_SCRIPT = [
    "CREATE TABLE t (k INTEGER, s VARCHAR, v INTEGER, f FLOAT)",
    # Bulk insert: low-cardinality strings, clustered ints.
    None,  # placeholder: executed via insert_rows below
    "UPDATE t SET s = 'mango' WHERE v < 10",
    "DELETE FROM t WHERE k % 7 = 3",
    "BEGIN",
    "UPDATE t SET v = v + 100 WHERE s = 'mango'",
    "ROLLBACK",
    "BEGIN",
    "DELETE FROM t WHERE s = 'kiwi'",
    "INSERT INTO t VALUES (9001, 'pear', 5, 2.5)",
    "COMMIT",
    "UPDATE t SET f = f * 2.0 WHERE k < 50",
    "INSERT INTO t SELECT k + 10000, s, v, f FROM t WHERE v >= 40",
]


def _run_script(db: Database, rows) -> list[list[tuple]]:
    snapshots = []
    for statement in _DML_SCRIPT:
        if statement is None:
            db.insert_rows("t", rows)
        else:
            db.execute(statement)
        snapshots.append(
            sorted(
                db.execute(
                    "SELECT k, s, v, f FROM t"
                ).rows
            )
        )
    return snapshots


@pytest.mark.parametrize("seed", range(3))
def test_dml_equivalence_encoded_vs_raw(seed):
    rng = random.Random(6000 + seed)
    rows = [
        (
            i,
            rng.choice(["kiwi", "mango", "plum"]) if rng.random() > 0.1
            else None,
            rng.randint(0, 60),
            round(rng.uniform(0, 9), 2),
        )
        for i in range(400)
    ]
    encoded_db = Database(encoding="auto")
    raw_db = Database(encoding="raw")
    try:
        assert _run_script(encoded_db, rows) == _run_script(raw_db, rows)
        # The encoded side must actually be encoded after all that DML.
        data = encoded_db.catalog.data(
            "t", encoded_db.catalog.current_ts
        )
        layouts = {
            field.name: column_encoding_of(col)
            for field, col in zip(data.schema, data.columns)
        }
        assert layouts["s"] == "dict"
        assert layouts["v"] in ("for", "rle", "raw")
    finally:
        encoded_db.close()
        raw_db.close()


def test_rollback_restores_encoded_version():
    db = Database(encoding="dict")
    try:
        db.execute("CREATE TABLE t (s VARCHAR)")
        db.insert_rows("t", [("a",), ("b",), ("a",)])
        before = db.execute("SELECT s FROM t").rows
        db.begin()
        db.execute("UPDATE t SET s = 'z'")
        db.rollback()
        assert db.execute("SELECT s FROM t").rows == before
        data = db.catalog.data("t", db.catalog.current_ts)
        assert isinstance(data.columns[0], DictionaryColumn)
        assert list(data.columns[0].dictionary) == ["a", "b"]
    finally:
        db.close()


def test_dictionary_stays_compact_after_delete():
    db = Database(encoding="auto")
    try:
        db.execute("CREATE TABLE t (s VARCHAR)")
        db.insert_rows(
            "t", [(w,) for w in ["a", "b", "c", "a", "b", "c"] * 20]
        )
        db.execute("DELETE FROM t WHERE s = 'c'")
        data = db.catalog.data("t", db.catalog.current_ts)
        column = data.columns[0]
        assert isinstance(column, DictionaryColumn)
        # Committed versions never carry unreferenced entries.
        assert list(column.dictionary) == ["a", "b"]
    finally:
        db.close()
