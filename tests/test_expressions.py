"""SQL expression semantics, evaluated end-to-end through the engine."""

import pytest

import repro
from repro.errors import BindError, ExecutionError


def one(db, expr):
    """Evaluate a scalar expression via SELECT."""
    return db.execute(f"SELECT {expr}").scalar()


class TestArithmetic:
    def test_basic(self, db):
        assert one(db, "1 + 2 * 3") == 7
        assert one(db, "(1 + 2) * 3") == 9
        assert one(db, "10 - 4 - 3") == 3  # left associative

    def test_integer_division_truncates(self, db):
        assert one(db, "7 / 2") == 3
        assert one(db, "-7 / 2") == -3  # toward zero, not floor

    def test_float_division(self, db):
        assert one(db, "7.0 / 2") == 3.5
        assert one(db, "7 / 2.0") == 3.5

    def test_division_by_zero(self, db):
        with pytest.raises(ExecutionError, match="division by zero"):
            db.execute("CREATE TABLE t (a INTEGER)")
            db.insert_rows("t", [(1,)])
            db.execute("SELECT a / 0 FROM t")

    def test_modulo(self, db):
        assert one(db, "10 % 3") == 1

    def test_power(self, db):
        assert one(db, "2 ^ 10") == 1024.0
        assert one(db, "4 ^ 0.5") == 2.0

    def test_unary_minus(self, db):
        assert one(db, "-(2 + 3)") == -5

    def test_mixed_type_promotion(self, db):
        value = one(db, "1 + 2.5")
        assert value == 3.5 and isinstance(value, float)


class TestNullSemantics:
    def test_null_propagates_through_arithmetic(self, db):
        assert one(db, "1 + NULL") is None
        assert one(db, "NULL * 2") is None

    def test_null_comparison_is_unknown(self, db):
        assert one(db, "NULL = NULL") is None
        assert one(db, "1 < NULL") is None

    def test_is_null(self, db):
        assert one(db, "NULL IS NULL") is True
        assert one(db, "1 IS NULL") is False
        assert one(db, "1 IS NOT NULL") is True

    def test_kleene_and(self, db):
        assert one(db, "FALSE AND NULL") is False
        assert one(db, "TRUE AND NULL") is None
        assert one(db, "NULL AND NULL") is None

    def test_kleene_or(self, db):
        assert one(db, "TRUE OR NULL") is True
        assert one(db, "FALSE OR NULL") is None

    def test_not_null(self, db):
        assert one(db, "NOT NULL") is None

    def test_where_drops_unknown(self, db):
        db.execute("CREATE TABLE t (a INTEGER)")
        db.insert_rows("t", [(1,), (None,), (3,)])
        rows = db.execute("SELECT a FROM t WHERE a > 0").rows
        assert rows == [(1,), (3,)]

    def test_coalesce(self, db):
        assert one(db, "coalesce(NULL, NULL, 5, 7)") == 5
        assert one(db, "coalesce(NULL, NULL)") is None

    def test_nullif(self, db):
        assert one(db, "nullif(3, 3)") is None
        assert one(db, "nullif(3, 4)") == 3


class TestBooleansAndPredicates:
    def test_comparisons(self, db):
        assert one(db, "1 < 2") is True
        assert one(db, "2 <= 2") is True
        assert one(db, "3 <> 4") is True
        assert one(db, "'abc' < 'abd'") is True

    def test_between(self, db):
        assert one(db, "5 BETWEEN 1 AND 10") is True
        assert one(db, "5 NOT BETWEEN 6 AND 10") is True
        assert one(db, "5 BETWEEN 10 AND 1") is False

    def test_in_list(self, db):
        assert one(db, "2 IN (1, 2, 3)") is True
        assert one(db, "9 NOT IN (1, 2, 3)") is True

    def test_in_list_with_null_sql_semantics(self, db):
        assert one(db, "2 IN (1, NULL, 2)") is True
        assert one(db, "9 IN (1, NULL)") is None  # unknown, not false

    def test_like(self, db):
        assert one(db, "'hello' LIKE 'he%'") is True
        assert one(db, "'hello' LIKE 'h_llo'") is True
        assert one(db, "'hello' NOT LIKE 'x%'") is True
        assert one(db, "'a.c' LIKE 'a.c'") is True
        assert one(db, "'abc' LIKE 'a.c'") is False  # dot is literal

    def test_like_percent_matches_empty(self, db):
        assert one(db, "'' LIKE '%'") is True


class TestCase:
    def test_searched(self, db):
        assert one(db, "CASE WHEN 1 < 2 THEN 'yes' ELSE 'no' END") == "yes"

    def test_no_else_yields_null(self, db):
        assert one(db, "CASE WHEN FALSE THEN 1 END") is None

    def test_simple_form(self, db):
        assert one(db, "CASE 2 WHEN 1 THEN 'a' WHEN 2 THEN 'b' END") == "b"

    def test_first_match_wins(self, db):
        assert one(db, "CASE WHEN TRUE THEN 1 WHEN TRUE THEN 2 END") == 1

    def test_branch_type_unification(self, db):
        assert one(db, "CASE WHEN TRUE THEN 1 ELSE 2.5 END") == 1.0


class TestCastAndStrings:
    def test_casts(self, db):
        assert one(db, "CAST('12' AS INTEGER)") == 12
        assert one(db, "CAST(3.9 AS INTEGER)") == 3
        assert one(db, "CAST(1 AS FLOAT)") == 1.0
        assert one(db, "CAST(42 AS VARCHAR)") == "42"
        assert one(db, "CAST('true' AS BOOLEAN)") is True

    def test_concat_operator_null(self, db):
        assert one(db, "'a' || 'b'") == "ab"
        assert one(db, "'a' || NULL") is None

    def test_concat_function_skips_null(self, db):
        assert one(db, "concat('a', NULL, 'b')") == "ab"

    def test_string_functions(self, db):
        assert one(db, "upper('abc')") == "ABC"
        assert one(db, "lower('ABC')") == "abc"
        assert one(db, "length('hello')") == 5
        assert one(db, "substr('hello', 2, 3)") == "ell"
        assert one(db, "substr('hello', 3)") == "llo"
        assert one(db, "replace('aXa', 'X', 'b')") == "aba"
        assert one(db, "trim('  x  ')") == "x"
        assert one(db, "reverse('abc')") == "cba"

    def test_math_functions(self, db):
        assert one(db, "abs(-4)") == 4
        assert one(db, "sqrt(9)") == 3.0
        assert one(db, "floor(3.7)") == 3
        assert one(db, "ceil(3.2)") == 4
        assert one(db, "round(3.456, 2)") == pytest.approx(3.46)
        assert one(db, "sign(-2)") == -1
        assert one(db, "power(2, 8)") == 256.0
        assert one(db, "mod(10, 3)") == 1
        assert one(db, "ln(exp(1.0))") == pytest.approx(1.0)
        assert one(db, "log(100)") == pytest.approx(2.0)
        assert one(db, "least(3, 1, 2)") == 1
        assert one(db, "greatest(3, NULL, 5)") == 5
        assert one(db, "pi()") == pytest.approx(3.14159265)

    def test_sqrt_negative_raises(self, db):
        db.execute("CREATE TABLE t (a FLOAT)")
        db.insert_rows("t", [(-1.0,)])
        with pytest.raises(ExecutionError, match="domain"):
            db.execute("SELECT sqrt(a) FROM t")


class TestBindErrors:
    def test_unknown_column(self, people_db):
        with pytest.raises(BindError, match="column not found"):
            people_db.execute("SELECT nope FROM people")

    def test_unknown_table(self, db):
        with pytest.raises(BindError, match="no such table"):
            db.execute("SELECT 1 FROM ghost")

    def test_unknown_function(self, db):
        with pytest.raises(BindError, match="unknown function"):
            db.execute("SELECT frobnicate(1)")

    def test_type_mismatch(self, db):
        with pytest.raises(BindError):
            db.execute("SELECT 1 + 'x'")

    def test_ambiguous_column(self, people_db):
        with pytest.raises(BindError, match="ambiguous"):
            people_db.execute(
                "SELECT id FROM people p1, people p2"
            )

    def test_where_must_be_boolean(self, people_db):
        with pytest.raises(BindError, match="boolean"):
            people_db.execute("SELECT 1 FROM people WHERE age")

    def test_function_arity(self, db):
        with pytest.raises(BindError, match="argument"):
            db.execute("SELECT sqrt(1, 2)")

    def test_duplicate_alias(self, people_db):
        with pytest.raises(BindError, match="duplicate"):
            people_db.execute(
                "SELECT 1 FROM people p, orders p"
            )
