"""The PageRank operator, the CSR index, and the library kernel."""

import numpy as np
import pytest

import repro
from repro.analytics.csr import CSRGraph
from repro.analytics.pagerank import pagerank
from repro.errors import AnalyticsError, BindError


@pytest.fixture
def triangle(db):
    db.execute("CREATE TABLE edges (src INTEGER, dest INTEGER)")
    db.insert_rows(
        "edges", [(1, 2), (2, 1), (2, 3), (3, 2), (3, 1), (1, 3)]
    )
    return db


class TestCSR:
    def test_relabelling_dense_ids(self):
        graph = CSRGraph.from_edges(
            np.asarray([100, 300]), np.asarray([300, 500])
        )
        assert graph.n_vertices == 3
        assert graph.vertex_ids.tolist() == [100, 300, 500]

    def test_out_neighbors(self):
        graph = CSRGraph.from_edges(
            np.asarray([0, 0, 1]), np.asarray([1, 2, 2])
        )
        assert sorted(graph.neighbors_out(0).tolist()) == [1, 2]
        assert graph.neighbors_out(2).tolist() == []

    def test_in_neighbors(self):
        graph = CSRGraph.from_edges(
            np.asarray([0, 1]), np.asarray([2, 2])
        )
        assert sorted(graph.neighbors_in(2).tolist()) == [0, 1]

    def test_degrees(self):
        graph = CSRGraph.from_edges(
            np.asarray([0, 0, 1]), np.asarray([1, 2, 0])
        )
        assert graph.out_degrees().tolist() == [2, 1, 0]
        assert graph.in_degrees().tolist() == [1, 1, 1]

    def test_duplicate_edges_kept(self):
        graph = CSRGraph.from_edges(
            np.asarray([0, 0]), np.asarray([1, 1])
        )
        assert graph.n_edges == 2

    def test_gather_incoming(self):
        graph = CSRGraph.from_edges(
            np.asarray([0, 1]), np.asarray([2, 2])
        )
        sums = graph.gather_incoming(np.asarray([1.0, 2.0, 4.0]))
        assert sums.tolist() == [0.0, 0.0, 3.0]

    def test_weighted_gather(self):
        graph = CSRGraph.from_edges(
            np.asarray([0, 1]),
            np.asarray([2, 2]),
            weights=np.asarray([2.0, 3.0]),
        )
        sums = graph.gather_incoming(np.asarray([1.0, 1.0, 0.0]))
        assert sums[2] == pytest.approx(5.0)

    def test_length_mismatch(self):
        with pytest.raises(AnalyticsError):
            CSRGraph.from_edges(np.asarray([1]), np.asarray([1, 2]))


class TestKernel:
    def test_ranks_sum_to_one(self):
        src = np.asarray([0, 1, 2, 0])
        dst = np.asarray([1, 2, 0, 2])
        _ids, ranks, _it = pagerank(src, dst, max_iterations=50)
        assert ranks.sum() == pytest.approx(1.0)

    def test_symmetric_graph_uniform_ranks(self):
        # A directed cycle: perfectly symmetric, ranks equal.
        src = np.asarray([0, 1, 2])
        dst = np.asarray([1, 2, 0])
        _ids, ranks, _it = pagerank(src, dst)
        assert np.allclose(ranks, 1.0 / 3.0)

    def test_hub_ranks_highest(self):
        # Everyone points at vertex 0.
        src = np.asarray([1, 2, 3, 0, 0, 0])
        dst = np.asarray([0, 0, 0, 1, 2, 3])
        _ids, ranks, _it = pagerank(src, dst)
        assert ranks[0] == max(ranks)

    def test_epsilon_stops_early(self):
        src = np.asarray([0, 1, 2])
        dst = np.asarray([1, 2, 0])
        _ids, _ranks, iterations = pagerank(
            src, dst, epsilon=0.1, max_iterations=100
        )
        assert iterations < 100

    def test_dangling_mass_redistributed(self):
        # 0 -> 1; vertex 1 dangles. Ranks must still sum to 1.
        _ids, ranks, _it = pagerank(
            np.asarray([0]), np.asarray([1]), max_iterations=30
        )
        assert ranks.sum() == pytest.approx(1.0)

    def test_agrees_with_networkx(self):
        networkx = pytest.importorskip("networkx")
        rng = np.random.default_rng(1)
        src = rng.integers(0, 40, 300)
        dst = rng.integers(0, 40, 300)
        keep = src != dst
        src, dst = src[keep], dst[keep]
        graph = networkx.DiGraph()
        graph.add_edges_from(zip(src.tolist(), dst.tolist()))
        expected = networkx.pagerank(
            graph, alpha=0.85, max_iter=200, tol=1e-12
        )
        ids, ranks, _it = pagerank(
            src, dst, damping=0.85, epsilon=1e-13, max_iterations=500
        )
        # networkx ignores duplicate edges (simple graph): rebuild our
        # input deduplicated for an apples-to-apples check.
        pairs = sorted(set(zip(src.tolist(), dst.tolist())))
        src2 = np.asarray([p[0] for p in pairs])
        dst2 = np.asarray([p[1] for p in pairs])
        ids, ranks, _it = pagerank(
            src2, dst2, damping=0.85, epsilon=1e-13, max_iterations=500
        )
        for vid, rank in zip(ids.tolist(), ranks.tolist()):
            assert rank == pytest.approx(expected[vid], abs=1e-6)


class TestOperatorSQL:
    def test_listing2_shape(self, triangle):
        result = triangle.execute(
            "SELECT * FROM PAGERANK((SELECT src, dest FROM edges), "
            "0.85, 0.0001)"
        )
        assert result.columns == ["vertex", "rank"]
        assert len(result.rows) == 3

    def test_original_ids_restored(self, db):
        db.execute("CREATE TABLE e (src BIGINT, dest BIGINT)")
        db.insert_rows("e", [(1000, 2000), (2000, 1000)])
        rows = db.execute(
            "SELECT vertex FROM PAGERANK((SELECT src, dest FROM e), "
            "0.85, 0.0) ORDER BY vertex"
        ).rows
        assert rows == [(1000,), (2000,)]

    def test_symmetric_triangle_uniform(self, triangle):
        rows = triangle.execute(
            "SELECT rank FROM PAGERANK((SELECT src, dest FROM edges), "
            "0.85, 0.0, 45)"
        ).rows
        for (rank,) in rows:
            assert rank == pytest.approx(1.0 / 3.0)

    def test_max_iterations_param(self, triangle):
        # Break the triangle's symmetry so ranks keep moving and only
        # the iteration cap stops the computation.
        triangle.insert_rows("edges", [(1, 2)])
        triangle.execute(
            "SELECT * FROM PAGERANK((SELECT src, dest FROM edges), "
            "0.85, 0.0, 7)"
        )
        assert triangle.last_stats.iterations == 7

    def test_weight_lambda(self, db):
        db.execute(
            "CREATE TABLE e (src INTEGER, dest INTEGER, w FLOAT)"
        )
        # Vertex 2 receives a heavy edge; must outrank vertex 1.
        db.insert_rows(
            "e",
            [(0, 1, 1.0), (0, 2, 10.0), (1, 0, 1.0), (2, 0, 1.0)],
        )
        rows = dict(db.execute(
            "SELECT vertex, rank FROM PAGERANK("
            "(SELECT src, dest, w FROM e), 0.85, 0.0, 60, "
            "LAMBDA(e) e.w)"
        ).rows)
        assert rows[2] > rows[1]

    def test_postprocessing_join(self, triangle):
        triangle.execute("CREATE TABLE names (id INTEGER, n VARCHAR)")
        triangle.insert_rows(
            "names", [(1, "a"), (2, "b"), (3, "c")]
        )
        rows = triangle.execute(
            "SELECT n FROM PAGERANK((SELECT src, dest FROM edges), "
            "0.85, 0.0001) r JOIN names ON names.id = r.vertex "
            "ORDER BY r.rank DESC, n LIMIT 1"
        ).rows
        assert rows == [("a",)]

    def test_preprocessing_filter(self, triangle):
        rows = triangle.execute(
            "SELECT count(*) FROM PAGERANK("
            "(SELECT src, dest FROM edges WHERE src <> 3 AND dest <> 3), "
            "0.85, 0.0)"
        )
        assert rows.scalar() == 2

    def test_bad_damping(self, triangle):
        with pytest.raises(BindError, match="damping"):
            triangle.execute(
                "SELECT * FROM PAGERANK((SELECT src, dest FROM edges), "
                "1.5, 0.0)"
            )

    def test_non_integer_vertices_rejected(self, db):
        db.execute("CREATE TABLE e (src VARCHAR, dest VARCHAR)")
        with pytest.raises(BindError, match="integer"):
            db.execute(
                "SELECT * FROM PAGERANK((SELECT src, dest FROM e), "
                "0.85, 0.0)"
            )

    def test_negative_weight_rejected(self, db):
        db.execute("CREATE TABLE e (src INTEGER, dest INTEGER, w FLOAT)")
        db.insert_rows("e", [(0, 1, -1.0), (1, 0, 1.0)])
        with pytest.raises(AnalyticsError, match="non-negative"):
            db.execute(
                "SELECT * FROM PAGERANK((SELECT src, dest, w FROM e), "
                "0.85, 0.0, 10, LAMBDA(e) e.w)"
            )


class TestEdgeInputs:
    def test_empty_edge_input(self, db):
        db.execute("CREATE TABLE e (src INTEGER, dest INTEGER)")
        assert db.execute(
            "SELECT * FROM PAGERANK((SELECT src, dest FROM e), "
            "0.85, 0.0)"
        ).rows == []

    def test_single_self_loop(self, db):
        db.execute("CREATE TABLE e (src INTEGER, dest INTEGER)")
        db.insert_rows("e", [(7, 7)])
        rows = db.execute(
            "SELECT * FROM PAGERANK((SELECT src, dest FROM e), "
            "0.85, 0.0, 10)"
        ).rows
        assert rows == [(7, pytest.approx(1.0))]

    def test_epsilon_with_weight_lambda(self, db):
        db.execute("CREATE TABLE e (src INTEGER, dest INTEGER, w FLOAT)")
        db.insert_rows("e", [(0, 1, 2.0), (1, 0, 2.0)])
        db.execute(
            "SELECT * FROM PAGERANK((SELECT src, dest, w FROM e), "
            "0.85, 0.001, 100, LAMBDA(e) e.w)"
        )
        assert db.last_stats.iterations < 100  # epsilon stopped early
