"""Trace propagation across the worker pool (ISSUE 7 satellite).

With ``workers=4``, morsel and partial-aggregate spans executed on pool
threads must stitch under the *owning statement's* span tree — each
exactly once, carrying the worker thread's tid — while results stay
bit-identical to a serial session.
"""

import threading

import repro


def _make_db(workers):
    db = repro.Database(
        workers=workers, parallel_threshold=0, morsel_rows=64
    )
    db.execute("CREATE TABLE t (v INTEGER, g INTEGER)")
    db.insert_rows("t", [(i, i % 7) for i in range(1000)])
    return db


class TestMorselSpanPropagation:
    def test_worker_spans_attach_exactly_once(self):
        db = _make_db(workers=4)
        db.execute("SELECT v FROM t WHERE v >= 0")
        trace = db.last_trace()
        assert trace.name == "statement"
        pipeline = trace.find("parallel_pipeline")
        assert pipeline is not None, trace.format()
        morsels = trace.find_all("morsel")
        # 1000 rows / 64 per morsel = 16 morsels, each exactly once.
        assert len(morsels) == 16
        indices = sorted(s.attributes["index"] for s in morsels)
        assert indices == list(range(16))
        # Every morsel span hangs off the pipeline span of *this*
        # statement, not some global orphan list.
        assert all(m in pipeline.walk() for m in morsels)

    def test_morsel_spans_carry_worker_tids(self):
        db = _make_db(workers=4)
        db.execute("SELECT v FROM t WHERE v >= 0")
        trace = db.last_trace()
        morsels = trace.find_all("morsel")
        tids = {s.tid for s in morsels}
        # Pool threads ran them — none on the coordinator...
        assert threading.get_ident() not in tids
        # ...and with 16 morsels over 4 workers, work actually spread.
        assert len(tids) > 1
        # The statement root itself stays on the coordinator.
        assert trace.tid == threading.get_ident()
        # Spans are closed (timed) before attachment.
        assert all(s.end_s is not None for s in morsels)

    def test_partial_aggregate_spans_attach(self):
        # Partial aggregation chunks at a fixed 65 536 rows — load
        # enough for three chunks so the pool actually dispatches.
        import numpy as np

        n = 200_000
        db = repro.Database(workers=4, parallel_threshold=0)
        db.execute("CREATE TABLE big (v INTEGER, g INTEGER)")
        db.load_columns(
            "big",
            {
                "v": np.arange(n, dtype=np.int64),
                "g": np.arange(n, dtype=np.int64) % 7,
            },
        )
        db.execute("SELECT g, sum(v) FROM big GROUP BY g")
        trace = db.last_trace()
        partials = trace.find_all("partial_aggregate")
        assert partials, trace.format()
        indices = sorted(s.attributes["index"] for s in partials)
        assert indices == list(range(len(partials)))

    def test_serial_session_has_no_attached_spans(self):
        db = _make_db(workers=1)
        db.execute("SELECT v FROM t WHERE v >= 0")
        assert db.last_trace().find_all("morsel") == []

    def test_results_bit_identical_across_worker_counts(self):
        serial = _make_db(workers=1)
        parallel = _make_db(workers=4)
        for sql in (
            "SELECT v FROM t WHERE v % 3 = 1",
            "SELECT g, sum(v), count(*) FROM t GROUP BY g",
            "SELECT sum(v) FROM t WHERE v > 500",
        ):
            assert (
                serial.execute(sql).rows == parallel.execute(sql).rows
            ), sql

    def test_consecutive_statements_do_not_cross_stitch(self):
        db = _make_db(workers=4)
        db.execute("SELECT v FROM t WHERE v >= 0")
        first = db.last_trace()
        db.execute("SELECT v FROM t WHERE v < 100")
        second = db.last_trace()
        assert first is not second
        assert len(first.find_all("morsel")) == 16
        # The second statement's morsels landed on *its* tree only:
        # 100 matching rows still scan all 16 morsels.
        assert len(second.find_all("morsel")) == 16

    def test_history_and_timeline_see_worker_spans(self):
        db = _make_db(workers=4)
        db.execute("SELECT v FROM t WHERE v >= 0")
        # The Chrome-trace export lays worker spans out per thread.
        from repro.obs.timeline import spans_to_chrome_trace

        doc = spans_to_chrome_trace([db.last_trace()])
        morsel_events = [
            e for e in doc["traceEvents"]
            if e.get("ph") == "X" and e["name"] == "morsel"
        ]
        assert len(morsel_events) == 16
        assert len({e["tid"] for e in morsel_events}) > 1
