"""Differential tests: generated SQL against the SQLite oracle.

Tier-1 runs a fixed 100-seed range (3 queries per seed = 300 queries);
the wider sweep is marked ``slow``. Any failure prints a minimized
standalone reproducer (schema DDL + INSERTs + SQL + seed).
"""

import pytest

from repro.testing import QueryGenerator, run_seed
from repro.testing.oracle import (
    DifferentialOracle,
    normalize_rows,
    normalize_value,
    rows_equal,
    run_seeds,
)

# Chunked so a single failure pinpoints its seed decade immediately
# and pytest-level parallelism (if ever enabled) can spread the work.
_TIER1_CHUNKS = [range(start, start + 10) for start in range(0, 100, 10)]


@pytest.mark.parametrize(
    "seeds", _TIER1_CHUNKS, ids=lambda r: f"seeds{r.start}-{r.stop - 1}"
)
def test_fixed_seeds_agree_with_sqlite(seeds):
    divergences = run_seeds(seeds, queries_per_seed=3)
    assert not divergences, "\n\n".join(
        d.report() for d in divergences
    )


@pytest.mark.slow
@pytest.mark.fuzz
@pytest.mark.parametrize("start", range(100, 1000, 100))
def test_extended_seed_sweep(start):
    divergences = run_seeds(range(start, start + 100))
    assert not divergences, "\n\n".join(
        d.report() for d in divergences
    )


# ---------------------------------------------------------------------------
# Generator determinism
# ---------------------------------------------------------------------------


def _generate(seed, n=5):
    generator = QueryGenerator(seed)
    tables = generator.schema()
    ddl = [t.ddl() for t in tables]
    inserts = [s for t in tables for s in t.insert_statements()]
    queries = [generator.query(tables).to_sql() for _ in range(n)]
    return ddl, inserts, queries


def test_generator_is_deterministic():
    assert _generate(7) == _generate(7)
    assert _generate(8) == _generate(8)


def test_different_seeds_differ():
    assert _generate(7) != _generate(9)


def test_generated_queries_parse_and_run():
    generator = QueryGenerator(3)
    tables = generator.schema()
    oracle = DifferentialOracle(tables)
    try:
        for _ in range(10):
            query = generator.query(tables)
            # Must not raise on our engine: the generator stays inside
            # the supported dialect.
            oracle.db.execute(query.to_sql())
    finally:
        oracle.close()


# ---------------------------------------------------------------------------
# Normalizer unit tests
# ---------------------------------------------------------------------------


def test_normalize_value_booleans_and_numpy():
    import numpy as np

    assert normalize_value(True) == 1
    assert normalize_value(False) == 0
    assert normalize_value(np.int32(5)) == 5
    assert normalize_value(np.float64(2.5)) == 2.5
    assert normalize_value(np.bool_(True)) == 1
    assert normalize_value(None) is None
    assert normalize_value(-0.0) == 0.0


def test_normalize_rows_bag_mode_sorts():
    rows = [(2, "b"), (1, "a"), (None, None)]
    normalized = normalize_rows(rows, ordered=False)
    assert normalized[0] == (None, None)
    assert normalized[1:] == [(1, "a"), (2, "b")]


def test_rows_equal_float_tolerance():
    left = [(1.0000000001, "x")]
    right = [(1.0, "x")]
    assert rows_equal(left, right, ordered=True)
    assert not rows_equal([(1.1,)], [(1.0,)], ordered=True)
    assert not rows_equal([(1,)], [(1,), (1,)], ordered=False)


def test_run_seed_reports_kind_and_sql():
    # A healthy seed returns no divergences.
    assert run_seed(42, queries_per_seed=2) == []
