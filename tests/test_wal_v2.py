"""WAL v2: framing, corruption handling, checkpoint/restore, recovery.

The durability contract under test (docs/durability.md): every
acknowledged commit survives, a torn tail is truncated and never an
error, mid-log corruption is either raised typed (strict) or
discarded-and-counted (tolerant), checkpoints bound replay via the
snapshot's WAL sequence number, and replay is atomic per original
transaction.
"""

import os
import shutil
import struct

import pytest

import repro
from repro.errors import CatalogError, TransactionError, WalCorruptionError
from repro.storage import Catalog, TableSchema
from repro.txn import TransactionManager, WriteAheadLog
from repro.txn.wal import MAGIC, _HEADER
from repro.txn.checkpoint import load_snapshot, snapshot_path
from repro.types import INTEGER, VARCHAR


def simple_schema():
    return TableSchema.of(("id", INTEGER), ("name", VARCHAR))


def make_manager(wal=None):
    return TransactionManager(Catalog(), wal)


def write_small_log(path: str) -> int:
    """Two committed transactions; returns the committed row total."""
    wal = WriteAheadLog(path)
    wal.log_commit(
        1,
        [
            ("create_table", "t", simple_schema()),
            ("insert", "t", [(1, "a"), (2, "b")]),
        ],
    )
    wal.log_commit(2, [("insert", "t", [(3, "c")])])
    wal.close()
    return 3


def dump(db):
    from repro.testing.crash import dump_state

    return dump_state(db)


class TestFraming:
    def test_magic_and_monotonic_seqs(self, tmp_path):
        path = str(tmp_path / "t.wal")
        write_small_log(path)
        data = open(path, "rb").read()
        assert data.startswith(MAGIC)
        pos, seqs = len(MAGIC), []
        while pos < len(data):
            length, _, seq = _HEADER.unpack_from(data, pos)
            seqs.append(seq)
            pos += _HEADER.size + length
        assert seqs == list(range(1, len(seqs) + 1))

    def test_roundtrip_records(self, tmp_path):
        path = str(tmp_path / "t.wal")
        write_small_log(path)
        wal = WriteAheadLog(path)
        records = wal.records()
        assert [r["op"] for r in records] == [
            "create_table", "insert", "commit", "insert", "commit",
        ]
        assert wal.last_seq == 5
        wal.close()

    def test_replay_returns_operation_count(self, tmp_path):
        path = str(tmp_path / "t.wal")
        write_small_log(path)
        wal = WriteAheadLog(path)
        manager = make_manager()
        assert wal.replay_into(manager) == 3
        assert manager.catalog.data("t").row_count == 3
        wal.close()

    def test_memory_mode_roundtrip(self):
        wal = WriteAheadLog()
        wal.log_commit(
            1,
            [
                ("create_table", "t", simple_schema()),
                ("insert", "t", [(1, "a")]),
            ],
        )
        manager = make_manager()
        assert wal.replay_into(manager) == 2

    def test_reopen_continues_sequence(self, tmp_path):
        path = str(tmp_path / "t.wal")
        write_small_log(path)
        wal = WriteAheadLog(path)
        assert wal.last_seq == 5
        wal.log_commit(3, [("insert", "t", [(4, "d")])])
        assert wal.last_seq == 7
        records = wal.records()
        assert len(records) == 7
        wal.close()


class TestTornTail:
    def test_torn_tail_every_offset_is_a_prefix(self, tmp_path):
        """Truncating the log at *any* byte offset must recover a clean
        record prefix — never an error, never reordered data."""
        path = str(tmp_path / "t.wal")
        write_small_log(path)
        data = open(path, "rb").read()
        full = WriteAheadLog(path, recovery="strict")
        full_records = full.records()
        full.close()
        for cut in range(len(MAGIC), len(data)):
            probe = str(tmp_path / f"cut{cut}.wal")
            with open(probe, "wb") as fh:
                fh.write(data[:cut])
            wal = WriteAheadLog(probe, recovery="strict")
            records, info = wal.scan()
            assert not info.corrupt, f"cut at {cut} read as corruption"
            assert records == full_records[: len(records)]
            wal.close()
            os.unlink(probe)

    def test_append_after_torn_tail(self, tmp_path):
        """Open-time truncation: records appended after a torn tail
        must be readable (the tail cannot shadow them)."""
        path = str(tmp_path / "t.wal")
        write_small_log(path)
        with open(path, "ab") as fh:
            fh.write(b"\x00\x00\x01")  # half a header
        wal = WriteAheadLog(path)
        wal.log_commit(9, [("insert", "t", [(4, "d")])])
        wal.close()
        reader = WriteAheadLog(path, recovery="strict")
        assert [r["txn"] for r in reader.records()][-1] == 9
        reader.close()


class TestCorruption:
    def test_bit_flip_every_offset(self, tmp_path):
        """Flipping one bit at every byte offset: strict mode must
        either raise typed or land on a clean record prefix — silent
        reordering/corruption of surviving records is never allowed."""
        path = str(tmp_path / "t.wal")
        write_small_log(path)
        data = open(path, "rb").read()
        full = WriteAheadLog(path, recovery="strict")
        full_records = full.records()
        full.close()
        raised = 0
        for offset in range(len(MAGIC), len(data)):
            probe = str(tmp_path / "probe.wal")
            flipped = bytearray(data)
            flipped[offset] ^= 0x10
            with open(probe, "wb") as fh:
                fh.write(bytes(flipped))
            wal = WriteAheadLog(probe, recovery="strict")
            try:
                records = wal.records()
            except WalCorruptionError:
                raised += 1
            else:
                assert records == full_records[: len(records)], (
                    f"flip at {offset} silently altered records"
                )
            finally:
                wal.close()
                os.unlink(probe)
        # CRC must catch the vast majority (payload/seq/crc bytes).
        assert raised > (len(data) - len(MAGIC)) // 2

    def test_tolerant_mode_counts_discarded(self, tmp_path):
        path = str(tmp_path / "t.wal")
        write_small_log(path)
        data = bytearray(open(path, "rb").read())
        # Corrupt the first frame's payload: everything after is lost.
        data[len(MAGIC) + _HEADER.size + 2] ^= 0xFF
        with open(path, "wb") as fh:
            fh.write(bytes(data))
        wal = WriteAheadLog(path, recovery="tolerant")
        records, _ = wal.scan()
        assert records == []
        assert wal.open_scan.corrupt
        assert wal.open_scan.records_discarded >= 5
        assert wal.open_scan.bytes_discarded > 0
        wal.close()

    def test_strict_mode_raises_typed(self, tmp_path):
        path = str(tmp_path / "t.wal")
        write_small_log(path)
        data = bytearray(open(path, "rb").read())
        data[len(MAGIC) + _HEADER.size + 2] ^= 0xFF
        with open(path, "wb") as fh:
            fh.write(bytes(data))
        wal = WriteAheadLog(path, recovery="strict")
        with pytest.raises(WalCorruptionError) as excinfo:
            wal.records()
        assert excinfo.value.info["records_discarded"] >= 1
        # A poisoned log refuses appends rather than writing after rot.
        with pytest.raises(TransactionError):
            wal.log_commit(5, [("insert", "t", [(9, "z")])])
        wal.close()

    def test_sequence_break_is_corruption(self, tmp_path):
        path = str(tmp_path / "t.wal")
        write_small_log(path)
        data = open(path, "rb").read()
        # Drop the middle frame: seqs then jump 2 -> 4.
        pos = len(MAGIC)
        frames = []
        while pos < len(data):
            length, _, _ = _HEADER.unpack_from(data, pos)
            end = pos + _HEADER.size + length
            frames.append(data[pos:end])
            pos = end
        with open(path, "wb") as fh:
            fh.write(MAGIC + frames[0] + frames[2] + frames[3])
        wal = WriteAheadLog(path, recovery="strict")
        with pytest.raises(WalCorruptionError, match="sequence break"):
            wal.records()
        wal.close()

    def test_database_strict_raises_tolerant_counts(self, tmp_path):
        path = str(tmp_path / "db.wal")
        db = repro.Database(wal_path=path)
        db.execute("CREATE TABLE t (id INTEGER)")
        for i in range(5):
            db.insert_rows("t", [(i,)])
        db.close()
        data = bytearray(open(path, "rb").read())
        # Flip inside a mid-log frame's payload: a CRC-detectable hit
        # (a header flip can read as torn tail) placed late enough that
        # CREATE TABLE and some inserts survive in tolerant mode.
        pos = len(MAGIC)
        for _ in range(5):
            length, _, _ = _HEADER.unpack_from(data, pos)
            pos += _HEADER.size + length
        data[pos + _HEADER.size + 2] ^= 0xFF
        with open(path, "wb") as fh:
            fh.write(bytes(data))
        with pytest.raises(WalCorruptionError):
            repro.Database(
                wal_path=path, recovery="strict",
                flight_dir=str(tmp_path / "fr"),
            )
        # Strict left the file untouched: tolerant still recovers the
        # prefix, counts the damage, and exposes it on last_recovery.
        db2 = repro.Database(wal_path=path, recovery="tolerant")
        rec = db2.last_recovery
        assert rec["records_discarded"] >= 1 or rec["torn_bytes"] > 0
        assert db2.execute("SELECT COUNT(*) FROM t").rows[0][0] < 5
        snap = db2.metrics.snapshot()["counters"]
        assert (
            snap.get("wal_records_discarded_total", 0) >= 1
            or rec["torn_bytes"] > 0
        )
        db2.close()

    def test_recovery_failure_dumps_flight_bundle(self, tmp_path):
        from repro.obs.flight import load_bundle

        path = str(tmp_path / "db.wal")
        db = repro.Database(wal_path=path)
        db.execute("CREATE TABLE t (id INTEGER)")
        db.insert_rows("t", [(1,)])
        db.checkpoint()
        db.close()
        snap = snapshot_path(path)
        data = bytearray(open(snap, "rb").read())
        data[-2] ^= 0xFF
        with open(snap, "wb") as fh:
            fh.write(bytes(data))
        flight_dir = tmp_path / "fr"
        with pytest.raises(WalCorruptionError):
            repro.Database(wal_path=path, flight_dir=str(flight_dir))
        bundles = list(flight_dir.glob("*.json"))
        assert bundles, "recovery failure left no flight bundle"
        load_bundle(str(bundles[0]))


class TestGroupedReplay:
    def test_replay_is_atomic_per_transaction(self, tmp_path):
        """Regression (seed-era bug): replay used to commit each op in
        its own transaction, so a failure mid-group left earlier ops of
        the same transaction committed. Grouped replay must leave *no
        trace* of a transaction it cannot finish."""
        path = str(tmp_path / "t.wal")
        wal = WriteAheadLog(path)
        wal.log_commit(1, [("create_table", "t", simple_schema())])
        wal.log_commit(
            2,
            [
                ("insert", "t", [(1, "a")]),
                ("insert", "missing", [(2, "b")]),  # fails on replay
            ],
        )
        wal.close()
        reader = WriteAheadLog(path)
        manager = make_manager()
        with pytest.raises(CatalogError):
            reader.replay_into(manager)
        # txn 1 committed, txn 2 vanished whole: t exists and is empty.
        assert manager.catalog.data("t").row_count == 0
        reader.close()

    def test_uncommitted_group_not_replayed(self, tmp_path):
        path = str(tmp_path / "t.wal")
        wal = WriteAheadLog(path)
        wal.log_commit(1, [("create_table", "t", simple_schema())])
        wal.close()
        # Frames without a commit marker: an interrupted transaction.
        data = open(path, "rb").read()
        import json as _json
        import zlib as _zlib

        payload = _json.dumps(
            {"txn": 9, "op": "insert", "name": "t", "rows": [[7, "x"]]}
        ).encode()
        seq_bytes = struct.pack(">Q", 3)
        crc = _zlib.crc32(seq_bytes + payload) & 0xFFFFFFFF
        with open(path, "ab") as fh:
            fh.write(_HEADER.pack(len(payload), crc, 3) + payload)
        reader = WriteAheadLog(path)
        manager = make_manager()
        stats = reader.replay_stats(manager)
        assert stats["transactions"] == 1
        assert stats["incomplete_transactions"] == 1
        assert manager.catalog.data("t").row_count == 0
        reader.close()


class TestCheckpoint:
    def test_checkpoint_truncates_and_recovers(self, tmp_path):
        path = str(tmp_path / "db.wal")
        db = repro.Database(wal_path=path)
        db.execute("CREATE TABLE t (id INTEGER, name VARCHAR)")
        db.insert_rows("t", [(i, f"r{i}") for i in range(20)])
        size_before = db.txns.wal.size_bytes()
        info = db.checkpoint()
        assert info["wal_bytes_after"] < size_before
        assert os.path.exists(snapshot_path(path))
        db.insert_rows("t", [(20, "r20")])
        db.close()
        db2 = repro.Database(wal_path=path)
        assert db2.last_recovery["snapshot_used"]
        assert db2.last_recovery["operations_replayed"] == 1
        assert db2.execute("SELECT COUNT(*) FROM t").rows[0][0] == 21
        counters = db2.metrics.snapshot()["counters"]
        assert "wal_recovery_seconds" not in counters  # histogram, not counter
        db2.close()

    def test_auto_checkpoint_from_commit_path(self, tmp_path):
        path = str(tmp_path / "db.wal")
        db = repro.Database(wal_path=path, checkpoint_bytes=400)
        db.execute("CREATE TABLE t (id INTEGER, name VARCHAR)")
        for i in range(30):
            db.insert_rows("t", [(i, "x" * 20)])
        assert os.path.exists(snapshot_path(path))
        assert (
            db.metrics.snapshot()["counters"]["wal_checkpoints_total"] >= 1
        )
        # The log stays bounded around the threshold, not cumulative.
        assert db.txns.wal.size_bytes() < 4 * 400 + 200
        db.close()
        db2 = repro.Database(wal_path=path)
        assert db2.execute("SELECT COUNT(*) FROM t").rows[0][0] == 30
        db2.close()

    def test_env_checkpoint_bytes(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CHECKPOINT_BYTES", "300")
        path = str(tmp_path / "db.wal")
        db = repro.Database(wal_path=path)
        assert db.checkpoint_bytes == 300
        db.execute("CREATE TABLE t (id INTEGER)")
        for i in range(25):
            db.insert_rows("t", [(i,)])
        assert os.path.exists(snapshot_path(path))
        db.close()

    def test_crash_between_rename_and_truncate_dedups(self, tmp_path):
        """Simulate dying after the snapshot rename but before the WAL
        truncation: the stale prefix must be seq-filtered, not applied
        on top of the snapshot (replay idempotence)."""
        path = str(tmp_path / "db.wal")
        db = repro.Database(wal_path=path)
        db.execute("CREATE TABLE t (id INTEGER)")
        db.insert_rows("t", [(1,), (2,), (3,)])
        pre_truncate = str(tmp_path / "saved.wal")
        db.close()
        shutil.copy(path, pre_truncate)
        db = repro.Database(wal_path=path)
        db.checkpoint()
        db.close()
        # Restore the untruncated log beside the new snapshot.
        shutil.copy(pre_truncate, path)
        db2 = repro.Database(wal_path=path)
        assert db2.last_recovery["snapshot_used"]
        assert db2.last_recovery["operations_replayed"] == 0
        assert db2.execute("SELECT COUNT(*) FROM t").rows[0][0] == 3
        db2.close()

    def test_commits_after_snapshot_recovery_keep_their_seqs(self, tmp_path):
        """Regression (crash-battery seed 54): a checkpoint can leave an
        *empty* WAL suffix, so a later session has no frame to carry the
        sequence numbering forward. Its commits must still land above
        the snapshot's ``wal_seq`` — restarting at 1 would make the
        *next* recovery's min-seq filter silently drop them."""
        path = str(tmp_path / "db.wal")
        db = repro.Database(wal_path=path)
        db.execute("CREATE TABLE t (id INTEGER)")
        db.insert_rows("t", [(i,) for i in range(10)])
        info = db.checkpoint()
        db.close()
        assert info["wal_seq"] > 0

        db2 = repro.Database(wal_path=path)
        assert db2.last_recovery["snapshot_used"]
        db2.execute("CREATE TABLE probe (id INTEGER)")
        db2.insert_rows("probe", [(99,)])
        assert db2.txns.wal.last_seq > info["wal_seq"]
        db2.close()

        db3 = repro.Database(wal_path=path)
        assert db3.last_recovery["transactions_replayed"] == 2
        assert db3.execute("SELECT id FROM probe").rows == [(99,)]
        assert db3.execute("SELECT COUNT(*) FROM t").rows[0][0] == 10
        db3.close()

    def test_torn_snapshot_tmp_is_ignored(self, tmp_path):
        path = str(tmp_path / "db.wal")
        db = repro.Database(wal_path=path)
        db.execute("CREATE TABLE t (id INTEGER)")
        db.insert_rows("t", [(1,)])
        db.close()
        # A checkpoint that died mid-write leaves only a .tmp behind.
        with open(snapshot_path(path) + ".tmp", "wb") as fh:
            fh.write(b"RPSNAPv1\n\x00\x00")
        db2 = repro.Database(wal_path=path)
        assert not db2.last_recovery["snapshot_used"]
        assert db2.execute("SELECT COUNT(*) FROM t").rows[0][0] == 1
        assert not os.path.exists(snapshot_path(path) + ".tmp")
        db2.close()

    def test_checkpoint_requires_file_wal(self):
        db = repro.Database()
        with pytest.raises(TransactionError):
            db.checkpoint()

    def test_snapshot_loadable(self, tmp_path):
        path = str(tmp_path / "db.wal")
        db = repro.Database(wal_path=path)
        db.execute("CREATE TABLE t (id INTEGER, name VARCHAR)")
        db.insert_rows("t", [(1, "a")])
        db.checkpoint()
        db.close()
        payload = load_snapshot(snapshot_path(path))
        assert payload["wal_seq"] >= 1
        assert payload["tables"]["t"]["rows"] == [[1, "a"]]


class TestLegacyV1:
    def test_v1_log_recovers_and_upgrades(self, tmp_path):
        import json as _json

        path = str(tmp_path / "v1.wal")
        lines = [
            {"txn": 1, "op": "create_table", "name": "t",
             "schema": [
                 {"name": "id", "type": "INTEGER", "width": None,
                  "not_null": False},
             ]},
            {"txn": 1, "op": "insert", "name": "t", "rows": [[1], [2]]},
            {"txn": 1, "op": "commit"},
        ]
        with open(path, "w") as fh:
            for line in lines:
                fh.write(_json.dumps(line) + "\n")
        db = repro.Database(wal_path=path)
        assert db.last_recovery["format"] == "v1"
        assert db.execute("SELECT COUNT(*) FROM t").rows[0][0] == 2
        # New commits keep the v1 format readable...
        db.insert_rows("t", [(3,)])
        db.close()
        db2 = repro.Database(wal_path=path)
        assert db2.execute("SELECT COUNT(*) FROM t").rows[0][0] == 3
        # ...and the first checkpoint upgrades the file to v2 framing.
        db2.checkpoint()
        db2.close()
        assert open(path, "rb").read().startswith(MAGIC)
        db3 = repro.Database(wal_path=path)
        assert db3.last_recovery["format"] == "v2"
        assert db3.execute("SELECT COUNT(*) FROM t").rows[0][0] == 3
        db3.close()


class TestModesMatrix:
    @pytest.mark.parametrize("encoding", ["raw", "auto"])
    @pytest.mark.parametrize("workers", [1, 4])
    def test_recovery_twin_equivalence(self, tmp_path, encoding, workers):
        """WAL round-trip under every storage-encoding × worker-count
        combination: the recovered twin must match the live database
        exactly."""
        path = str(tmp_path / "db.wal")
        db = repro.Database(
            wal_path=path, encoding=encoding, workers=workers,
        )
        db.execute(
            "CREATE TABLE t (id INTEGER, word VARCHAR, score INTEGER)"
        )
        db.insert_rows(
            "t", [(i, f"w{i % 5}", i * 3 % 17) for i in range(50)]
        )
        db.execute("UPDATE t SET word = 'hot' WHERE score < 5")
        db.execute("DELETE FROM t WHERE score > 14")
        live = dump(db)
        rows_live = db.execute("SELECT * FROM t ORDER BY id").rows
        db.close()
        twin = repro.Database(
            wal_path=path, encoding=encoding, workers=workers,
        )
        assert dump(twin) == live
        assert twin.execute("SELECT * FROM t ORDER BY id").rows == rows_live
        twin.close()

    def test_reopen_is_idempotent(self, tmp_path):
        """Recovering the same log repeatedly always lands on the same
        state (recovery itself never mutates what replay sees)."""
        path = str(tmp_path / "db.wal")
        db = repro.Database(wal_path=path)
        db.execute("CREATE TABLE t (id INTEGER)")
        db.insert_rows("t", [(i,) for i in range(7)])
        db.close()
        states = []
        for _ in range(3):
            probe = repro.Database(wal_path=path)
            states.append(dump(probe))
            probe.close()
        assert states[0] == states[1] == states[2]


class TestFsyncDurability:
    def test_failed_fsync_poisons_the_log(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_WAL_FSYNC_FAIL", "2")
        path = str(tmp_path / "db.wal")
        db = repro.Database(wal_path=path)
        db.execute("CREATE TABLE t (id INTEGER)")  # fsync 1: ok
        with pytest.raises(TransactionError):
            db.insert_rows("t", [(1,)])  # fsync 2: injected failure
        # The unfsynced commit must not be acknowledged later either.
        with pytest.raises(TransactionError):
            db.insert_rows("t", [(2,)])
        db.close()

    def test_wal_file_exists_immediately(self, tmp_path):
        path = str(tmp_path / "db.wal")
        repro.Database(wal_path=path).close()
        assert os.path.exists(path)
        assert open(path, "rb").read() == MAGIC

    def test_export_surface(self):
        assert repro.WalCorruptionError is WalCorruptionError
