"""Query parameters (? placeholders) and k-means++ initialization."""

import numpy as np
import pytest

import repro
from repro.analytics import kmeans, kmeans_plusplus_init
from repro.errors import AnalyticsError, ParseError


class TestQueryParameters:
    def test_basic_binding(self, db):
        db.execute("CREATE TABLE t (a INTEGER, s VARCHAR)")
        db.execute("INSERT INTO t VALUES (?, ?)", (1, "x"))
        assert db.execute(
            "SELECT s FROM t WHERE a = ?", (1,)
        ).scalar() == "x"

    def test_injection_impossible(self, db):
        db.execute("CREATE TABLE t (s VARCHAR)")
        hostile = "'; DROP TABLE t; --"
        db.execute("INSERT INTO t VALUES (?)", (hostile,))
        assert db.table_names() == ["t"]
        assert db.execute("SELECT s FROM t").scalar() == hostile

    def test_null_parameter(self, db):
        db.execute("CREATE TABLE t (a INTEGER)")
        db.execute("INSERT INTO t VALUES (?)", (None,))
        assert db.execute("SELECT a FROM t").scalar() is None

    def test_float_and_bool_parameters(self, db):
        row = db.execute("SELECT ?, ?", (2.5, True)).fetchone()
        assert row == (2.5, True)

    def test_parameters_in_expressions(self, db):
        assert db.execute("SELECT ? + ? * 2", (1, 3)).scalar() == 7

    def test_too_few_parameters(self, db):
        with pytest.raises(ParseError, match="more .* placeholders"):
            db.execute("SELECT ?, ?", (1,))

    def test_too_many_parameters(self, db):
        with pytest.raises(ParseError, match="supplied"):
            db.execute("SELECT ?", (1, 2))

    def test_placeholder_without_params(self, db):
        with pytest.raises(ParseError, match="no parameters"):
            db.execute("SELECT ?")

    def test_question_mark_inside_string_is_literal(self, db):
        assert db.execute("SELECT 'what?'").scalar() == "what?"

    def test_parameters_across_statements(self, db):
        db.execute(
            "CREATE TABLE t (a INTEGER); INSERT INTO t VALUES (?); "
            "INSERT INTO t VALUES (?)",
            (1, 2),
        )
        assert db.execute("SELECT sum(a) FROM t").scalar() == 3


class TestKMeansPlusPlus:
    def test_centers_are_data_points(self):
        rng = np.random.default_rng(0)
        points = rng.random((100, 2))
        centers = kmeans_plusplus_init(points, 4, seed=1)
        assert centers.shape == (4, 2)
        for center in centers:
            assert any(np.allclose(center, p) for p in points)

    def test_spreads_over_separated_blobs(self):
        rng = np.random.default_rng(2)
        blobs = [
            rng.normal(loc, 0.05, (30, 2))
            for loc in (0.0, 5.0, 10.0)
        ]
        points = np.concatenate(blobs)
        centers = kmeans_plusplus_init(points, 3, seed=3)
        # One center per blob (by nearest-blob assignment).
        blob_of = {
            tuple(np.round(c, 6)): int(round(c[0] / 5.0))
            for c in centers
        }
        assert len(set(blob_of.values())) == 3

    def test_deterministic_by_seed(self):
        points = np.random.default_rng(4).random((50, 3))
        a = kmeans_plusplus_init(points, 5, seed=7)
        b = kmeans_plusplus_init(points, 5, seed=7)
        assert np.array_equal(a, b)

    def test_duplicate_points_handled(self):
        points = np.ones((10, 2))
        centers = kmeans_plusplus_init(points, 3, seed=0)
        assert np.allclose(centers, 1.0)

    def test_validation(self):
        with pytest.raises(AnalyticsError):
            kmeans_plusplus_init(np.zeros((5, 2)), 0)
        with pytest.raises(AnalyticsError):
            kmeans_plusplus_init(np.zeros((5, 2)), 6)
        with pytest.raises(AnalyticsError):
            kmeans_plusplus_init(np.zeros((0, 2)), 1)

    def test_improves_over_bad_random_seeding(self):
        rng = np.random.default_rng(8)
        blobs = np.concatenate(
            [rng.normal(loc, 0.1, (40, 1)) for loc in (0.0, 10.0, 20.0)]
        )
        # Adversarial seeding: all three from the same blob.
        bad = blobs[:3].copy()
        good = kmeans_plusplus_init(blobs, 3, seed=9)

        def cost(centers):
            out, assignment, _s, _i = kmeans(blobs, centers, 20)
            diffs = blobs - out[assignment]
            return float((diffs**2).sum())

        assert cost(good) < cost(bad)
