"""End-to-end scenarios composing many subsystems in single queries —
the "seamless integration" the paper claims (sections 4.3, 6)."""

import numpy as np
import pytest

import repro
from repro.datagen.graphs import generate_social_graph


@pytest.fixture
def world(db):
    """Persons, friendships, purchases: a small integrated dataset."""
    rng = np.random.default_rng(13)
    n = 300
    src, dst = generate_social_graph(n, 3000, seed=13)
    db.execute("CREATE TABLE person (id BIGINT, age INTEGER)")
    db.insert_rows(
        "person",
        [(i, int(rng.integers(18, 80))) for i in range(n)],
    )
    db.execute("CREATE TABLE knows (src BIGINT, dest BIGINT)")
    db.load_columns("knows", {"src": src, "dest": dst})
    db.execute(
        "CREATE TABLE purchase (pid BIGINT, amount FLOAT, "
        "category VARCHAR)"
    )
    categories = ["books", "games", "food"]
    db.insert_rows(
        "purchase",
        [
            (
                int(rng.integers(0, n)),
                float(rng.uniform(1, 500)),
                categories[int(rng.integers(0, 3))],
            )
            for _ in range(2000)
        ],
    )
    return db


class TestComposedQueries:
    def test_pagerank_joined_aggregated_filtered(self, world):
        """Operator output -> join -> group -> having -> order, one
        statement (Figure 2a's arbitrary post-processing)."""
        rows = world.execute(
            "SELECT CASE WHEN p.age < 40 THEN 'young' ELSE 'old' END "
            "AS bracket, avg(r.rank) AS avg_rank, count(*) AS n "
            "FROM PAGERANK((SELECT src, dest FROM knows), 0.85, "
            "0.0001) r JOIN person p ON p.id = r.vertex "
            "GROUP BY CASE WHEN p.age < 40 THEN 'young' ELSE 'old' END "
            "HAVING count(*) > 10 ORDER BY avg_rank DESC"
        ).rows
        assert 1 <= len(rows) <= 2
        total = sum(r[2] for r in rows)
        assert total == 300

    def test_kmeans_over_joined_aggregate(self, world):
        """Operator input built by join + GROUP BY (Figure 2a's
        arbitrary pre-processing)."""
        features = (
            "SELECT sum(amount) AS spend, count(*) * 1.0 AS cnt "
            "FROM purchase GROUP BY pid"
        )
        rows = world.execute(
            f"SELECT * FROM KMEANS(({features}), "
            f"({features} ORDER BY spend LIMIT 3), 10) ORDER BY spend"
        ).rows
        assert len(rows) == 3
        assert sum(r[-1] for r in rows) == world.execute(
            "SELECT count(DISTINCT pid) FROM purchase"
        ).scalar()

    def test_operator_inside_cte(self, world):
        rows = world.execute(
            "WITH ranks AS (SELECT * FROM PAGERANK("
            "(SELECT src, dest FROM knows), 0.85, 0.0001)) "
            "SELECT count(*) FROM ranks a JOIN ranks b "
            "ON a.vertex = b.vertex"
        )
        assert rows.scalar() == 300

    def test_two_operators_in_one_query(self, world):
        """Rank vertices AND cluster spending in the same statement."""
        rows = world.execute(
            "SELECT k.cluster, count(*) "
            "FROM PAGERANK((SELECT src, dest FROM knows), 0.85, "
            "0.0001) r "
            "JOIN person p ON p.id = r.vertex "
            "JOIN (SELECT pid, sum(amount) AS spend FROM purchase "
            "      GROUP BY pid) s ON s.pid = p.id "
            "JOIN KMEANS((SELECT amount FROM purchase), "
            "(SELECT amount FROM purchase LIMIT 2), 5) k "
            "ON 1 = 1 "
            "GROUP BY k.cluster ORDER BY k.cluster"
        ).rows
        assert len(rows) == 2

    def test_iterate_over_analytics_output(self, world):
        """ITERATE whose init comes from an analytics operator:
        repeatedly halve the max rank until it is tiny."""
        result = world.execute(
            "SELECT * FROM ITERATE("
            "(SELECT max(rank) AS m FROM PAGERANK("
            "(SELECT src, dest FROM knows), 0.85, 0.0001)),"
            "(SELECT m / 2.0 FROM iterate),"
            "(SELECT m FROM iterate WHERE m < 0.0001))"
        ).scalar()
        assert result < 0.0001

    def test_analytics_inside_iterate_step(self, world):
        """An analytics operator evaluated inside every ITERATE round:
        count how many rounds of center-halving keep two clusters
        distinguishable."""
        result = world.execute(
            "SELECT * FROM ITERATE("
            "(SELECT 1.0 AS scale, 0 AS it),"
            "(SELECT scale / 2.0, it + 1 FROM iterate),"
            "(SELECT 1 FROM iterate, "
            "(SELECT count(*) AS c FROM COLUMN_STATS("
            "(SELECT amount FROM purchase))) st "
            "WHERE it >= 3 AND st.c = 1))"
        ).rows
        assert result[0][1] == 3

    def test_model_lifecycle_transactional(self, world):
        """Train -> store -> concurrent write -> predict from the
        stored model; prediction uses the stored (older) model."""
        world.execute(
            "CREATE TABLE labelled AS "
            "SELECT CASE WHEN amount > 250 THEN 1 ELSE 0 END AS label, "
            "amount FROM purchase"
        )
        world.execute(
            "CREATE TABLE model AS SELECT * FROM NAIVE_BAYES_TRAIN("
            "(SELECT label, amount FROM labelled))"
        )
        world.execute("INSERT INTO purchase VALUES (0, 9999.0, 'books')")
        predicted = world.execute(
            "SELECT label, count(*) FROM NAIVE_BAYES_PREDICT("
            "(SELECT * FROM model), (SELECT amount FROM labelled)) "
            "GROUP BY label ORDER BY label"
        ).rows
        assert [r[0] for r in predicted] == [0, 1]

    def test_parameterised_analytics_query(self, world):
        rows = world.execute(
            "SELECT count(*) FROM PAGERANK("
            "(SELECT src, dest FROM knows), ?, ?) WHERE rank > ?",
            (0.85, 0.0001, 0.0),
        )
        assert rows.scalar() == 300

    def test_union_of_operator_outputs(self, world):
        rows = world.execute(
            "SELECT vertex FROM PAGERANK((SELECT src, dest FROM knows), "
            "0.85, 0.001) "
            "UNION "
            "SELECT vertex FROM PAGERANK((SELECT src, dest FROM knows), "
            "0.5, 0.001)"
        ).rows
        assert len(rows) == 300

    def test_executemany_bulk(self, db):
        db.execute("CREATE TABLE t (a INTEGER, b VARCHAR)")
        total = db.executemany(
            "INSERT INTO t VALUES (?, ?)",
            [(i, f"row{i}") for i in range(25)],
        )
        assert total == 25
        assert db.execute("SELECT count(*) FROM t").scalar() == 25

    def test_executemany_atomic(self, db):
        db.execute("CREATE TABLE t (a INTEGER NOT NULL)")
        with pytest.raises(Exception):
            db.executemany(
                "INSERT INTO t VALUES (?)", [(1,), (None,), (3,)]
            )
        assert db.execute("SELECT count(*) FROM t").scalar() == 0
