"""TPC-H-shaped SQL battery, cross-checked against SQLite.

Every query file in ``tests/sql_battery/`` runs against the same
deterministic mini-TPC-H dataset (:mod:`repro.testing.tpch`) under
four engine configurations — {raw, encoded} storage × {serial,
4-worker} execution — and must match the SQLite oracle row for row.

Query files may carry a ``-- compare: ordered`` directive: the result
is then compared as an ordered list (the query's ORDER BY must pin a
deterministic order); otherwise both sides are sorted first.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.testing import tpch
from repro.testing.oracle import (
    build_repro_db,
    build_sqlite_db,
    normalize_rows,
    rows_equal,
)

pytestmark = pytest.mark.battery

BATTERY_DIR = pathlib.Path(__file__).parent / "sql_battery"
QUERY_FILES = sorted(BATTERY_DIR.glob("*.sql"))

#: (encoding, workers) legs every query runs under.
CONFIGS = [("raw", 1), ("raw", 4), ("auto", 1), ("auto", 4)]


def _load_query(path: pathlib.Path) -> tuple[str, bool]:
    text = path.read_text()
    ordered = "-- compare: ordered" in text
    return text, ordered


@pytest.fixture(scope="module")
def tables():
    return tpch.generate(scale=1.0, seed=7)


@pytest.fixture(scope="module")
def sqlite_conn(tables):
    conn = build_sqlite_db(tables)
    yield conn
    conn.close()


@pytest.fixture(
    scope="module",
    params=CONFIGS,
    ids=[f"{encoding}-w{workers}" for encoding, workers in CONFIGS],
)
def repro_db(request, tables):
    encoding, workers = request.param
    db = build_repro_db(tables, workers=workers, encoding=encoding)
    yield db
    db.close()


def test_battery_has_queries():
    assert len(QUERY_FILES) >= 15


@pytest.mark.parametrize(
    "query_path", QUERY_FILES, ids=[p.stem for p in QUERY_FILES]
)
def test_battery_query(query_path, repro_db, sqlite_conn):
    sql, ordered = _load_query(query_path)
    expected = normalize_rows(
        sqlite_conn.execute(sql).fetchall(), ordered
    )
    actual = normalize_rows(repro_db.execute(sql).rows, ordered)
    assert rows_equal(actual, expected, ordered), (
        f"{query_path.name} diverged from SQLite "
        f"(ordered={ordered}):\n  repro ({len(actual)} rows): "
        f"{actual[:5]}...\n  sqlite ({len(expected)} rows): "
        f"{expected[:5]}..."
    )


def test_battery_dataset_compresses(tables):
    """The battery's dataset itself must benefit from encoding: the
    string-heavy lineitem table shrinks substantially under the auto
    policy (the full ≥3x claim is measured by the benchmark)."""
    db = build_repro_db(tables, encoding="auto")
    try:
        stats = db.storage_stats()
        line = stats["tables"]["lineitem"]
        assert line["encoded_bytes"] < line["raw_bytes"] / 2
        layouts = set(line["columns"].values())
        assert "dict" in layouts
    finally:
        db.close()
