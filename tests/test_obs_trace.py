"""Query-lifecycle tracing: span trees and the statement ring buffer."""

import pytest

import repro
from repro.errors import ReproError
from repro.obs.trace import Span, Tracer


class TestTracerUnit:
    def test_nesting_and_walk(self):
        tracer = Tracer()
        with tracer.statement("SELECT 1") as root:
            with tracer.span("parse"):
                pass
            with tracer.span("execute"):
                with tracer.span("iteration", round=1):
                    pass
        assert [s.name for s in root.walk()] == [
            "statement", "parse", "execute", "iteration",
        ]
        assert root.find("iteration").attributes["round"] == 1
        assert tracer.last_root is root

    def test_span_records_error_and_reraises(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.statement("boom"):
                with tracer.span("execute"):
                    raise ValueError("nope")
        root = tracer.last_root
        assert root.error == "ValueError: nope"
        assert root.find("execute").error == "ValueError: nope"

    def test_ring_buffer_bounds_and_order(self):
        tracer = Tracer(log_size=3)
        for i in range(5):
            with tracer.statement(f"Q{i}"):
                pass
        entries = tracer.log(10)
        assert [e.sql for e in entries] == ["Q2", "Q3", "Q4"]
        assert [e.sql for e in tracer.log(2)] == ["Q3", "Q4"]
        assert tracer.log(0) == []

    def test_durations_nest(self):
        tracer = Tracer()
        with tracer.statement("s") as root:
            with tracer.span("inner"):
                pass
        inner = root.children[0]
        assert 0.0 <= inner.duration_s <= root.duration_s

    def test_format_mentions_phases(self):
        tracer = Tracer()
        with tracer.statement("SELECT 1"):
            with tracer.span("parse"):
                pass
        text = str(tracer.last_root)
        assert "statement" in text and "parse" in text


class TestStatementTrace:
    def test_select_phases_in_order(self, people_db):
        """Acceptance: all five lifecycle phases, in order, as children
        of the statement root."""
        people_db.execute("SELECT count(*) FROM people WHERE age > 30")
        root = people_db.last_trace()
        assert root.name == "statement"
        assert [c.name for c in root.children] == [
            "parse", "bind", "optimize", "plan", "execute",
        ]
        assert root.attributes["rows"] == 1
        assert root.error is None

    def test_iterate_rounds_become_spans(self, db):
        """Acceptance: one iteration span per executed round."""
        db.execute(
            "SELECT * FROM ITERATE((SELECT 1 AS x),"
            " (SELECT x + 1 FROM iterate),"
            " (SELECT x FROM iterate WHERE x >= 5))"
        )
        root = db.last_trace()
        rounds = root.find_all("iteration")
        assert len(rounds) == db.last_stats.iterations == 4
        assert [s.attributes["round"] for s in rounds] == [1, 2, 3, 4]
        # The rounds live under the execute phase, not the root.
        execute = root.find("execute")
        assert execute.find_all("iteration") == rounds

    def test_recursive_cte_rounds_become_spans(self, db):
        db.execute(
            "WITH RECURSIVE t(n) AS (SELECT 1 UNION ALL "
            "SELECT n + 1 FROM t WHERE n < 10) SELECT count(*) FROM t"
        )
        rounds = db.last_trace().find_all("iteration")
        assert len(rounds) == db.last_stats.iterations == 10

    def test_failing_statement_recorded(self, db):
        """Acceptance: a failing statement keeps its trace and log
        entry, error message included."""
        with pytest.raises(ReproError):
            db.execute("SELECT * FROM no_such_table")
        root = db.last_trace()
        assert root.error is not None
        assert "no_such_table" in root.attributes["sql"]
        entry = db.query_log(1)[-1]
        assert entry.error is not None
        assert entry.sql == "SELECT * FROM no_such_table"
        assert "parse" in entry.phases  # parse succeeded before bind

    def test_query_log_phases_and_rows(self, people_db):
        people_db.execute("SELECT name FROM people ORDER BY name")
        entry = people_db.query_log(1)[-1]
        assert entry.rows == 5
        assert entry.error is None
        for phase in ("parse", "bind", "optimize", "plan", "execute"):
            assert phase in entry.phases
        assert entry.duration_s >= sum(entry.phases.values()) * 0.5
        assert "people" in entry.format()

    def test_query_log_size_is_configurable(self):
        db = repro.Database(query_log_size=2)
        db.execute("SELECT 1")
        db.execute("SELECT 2")
        db.execute("SELECT 3")
        assert [e.sql for e in db.query_log(10)] == [
            "SELECT 2", "SELECT 3",
        ]

    def test_explain_analyze_is_traced(self, people_db):
        people_db.explain_analyze("SELECT count(*) FROM people")
        root = people_db.last_trace()
        names = [c.name for c in root.children]
        assert names == ["parse", "bind", "optimize", "plan", "execute"]

    def test_multi_statement_sql_is_one_log_entry(self, db):
        db.execute("CREATE TABLE t (v INTEGER); INSERT INTO t VALUES (1)")
        entry = db.query_log(1)[-1]
        assert "INSERT" in entry.sql
        assert len(db.query_log(100)) == 1


class TestOperatorStatsTop:
    def test_top_orders_by_self_time(self, people_db):
        analyzed = people_db.explain_analyze(
            "SELECT city, count(*) FROM people GROUP BY city"
        )
        top = analyzed.top(3)
        assert 0 < len(top) <= 3
        selves = [node.self_s for node in top]
        assert selves == sorted(selves, reverse=True)
        assert analyzed.top(0) == []
        # Same helper on a stats subtree directly.
        assert analyzed.root.top(1)[0].self_s == max(
            n.self_s for n in analyzed.root.walk()
        )

    def test_operator_class_strips_decoration(self, people_db):
        analyzed = people_db.explain_analyze("SELECT * FROM people")
        scan = analyzed.find("Scan")
        assert scan.operator_class == "Scan"
        assert "(" not in scan.operator_class
