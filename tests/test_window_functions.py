"""Window functions: ranking, navigation, windowed aggregates."""

import pytest

import repro
from repro.errors import BindError


@pytest.fixture
def staff(db):
    db.execute(
        "CREATE TABLE staff (dept VARCHAR, name VARCHAR, pay INTEGER)"
    )
    db.insert_rows(
        "staff",
        [
            ("eng", "a", 100),
            ("eng", "b", 120),
            ("eng", "c", 120),
            ("ops", "d", 90),
            ("ops", "e", 80),
        ],
    )
    return db


class TestRanking:
    def test_row_number_per_partition(self, staff):
        rows = staff.execute(
            "SELECT name, row_number() OVER "
            "(PARTITION BY dept ORDER BY pay DESC, name) AS rn "
            "FROM staff ORDER BY dept, rn"
        ).rows
        assert rows == [
            ("b", 1), ("c", 2), ("a", 3), ("d", 1), ("e", 2),
        ]

    def test_rank_with_ties(self, staff):
        rows = dict(staff.execute(
            "SELECT name, rank() OVER (PARTITION BY dept "
            "ORDER BY pay DESC) FROM staff"
        ).rows)
        assert rows["b"] == 1 and rows["c"] == 1
        assert rows["a"] == 3  # rank skips after ties

    def test_dense_rank_no_gaps(self, staff):
        rows = dict(staff.execute(
            "SELECT name, dense_rank() OVER (PARTITION BY dept "
            "ORDER BY pay DESC) FROM staff"
        ).rows)
        assert rows["a"] == 2

    def test_row_number_without_partition(self, staff):
        rows = staff.execute(
            "SELECT row_number() OVER (ORDER BY pay, name) FROM staff"
        ).rows
        assert sorted(r[0] for r in rows) == [1, 2, 3, 4, 5]

    def test_rank_requires_order_by(self, staff):
        with pytest.raises(BindError, match="ORDER BY"):
            staff.execute("SELECT rank() OVER () FROM staff")

    def test_top_n_per_group_idiom(self, staff):
        rows = staff.execute(
            "SELECT dept, name FROM ("
            "SELECT dept, name, row_number() OVER "
            "(PARTITION BY dept ORDER BY pay DESC, name) AS rn "
            "FROM staff) t WHERE rn = 1 ORDER BY dept"
        ).rows
        assert rows == [("eng", "b"), ("ops", "d")]


class TestNavigation:
    def test_lag_and_lead(self, staff):
        rows = staff.execute(
            "SELECT name, lag(pay) OVER (PARTITION BY dept "
            "ORDER BY pay) AS prev, lead(pay) OVER (PARTITION BY dept "
            "ORDER BY pay) AS next FROM staff ORDER BY dept, pay"
        ).rows
        assert rows[0] == ("a", None, 120)  # eng lowest
        assert rows[-1] == ("d", 80, None)  # ops highest

    def test_lag_offset_and_default(self, staff):
        rows = staff.execute(
            "SELECT name, lag(pay, 2, -1) OVER (ORDER BY pay, name) "
            "FROM staff ORDER BY pay, name"
        ).rows
        assert rows[0][1] == -1 and rows[1][1] == -1
        assert rows[2][1] == 80

    def test_lag_does_not_cross_partitions(self, staff):
        rows = dict(staff.execute(
            "SELECT name, lag(pay) OVER (PARTITION BY dept "
            "ORDER BY pay) FROM staff"
        ).rows)
        assert rows["e"] is None  # ops lowest, nothing from eng


class TestWindowedAggregates:
    def test_whole_partition_frame(self, staff):
        rows = dict(staff.execute(
            "SELECT name, sum(pay) OVER (PARTITION BY dept) "
            "FROM staff"
        ).rows)
        assert rows["a"] == 340 and rows["d"] == 170

    def test_running_sum_with_peers(self, db):
        db.execute("CREATE TABLE t (g INTEGER, v INTEGER)")
        db.insert_rows("t", [(1, 10), (1, 10), (1, 20)])
        rows = db.execute(
            "SELECT v, sum(v) OVER (ORDER BY v) FROM t ORDER BY v"
        ).rows
        # Peers (the two 10s) share the running value 20.
        assert rows == [(10, 20), (10, 20), (20, 40)]

    def test_running_count_avg(self, staff):
        rows = staff.execute(
            "SELECT count(*) OVER (ORDER BY pay, name), "
            "avg(pay) OVER (ORDER BY pay, name) FROM staff "
            "ORDER BY pay, name"
        ).rows
        assert rows[0] == (1, 80.0)
        assert rows[-1][0] == 5
        assert rows[-1][1] == pytest.approx((80+90+100+120+120) / 5)

    def test_running_min_max(self, staff):
        rows = staff.execute(
            "SELECT pay, min(pay) OVER (ORDER BY pay DESC, name), "
            "max(pay) OVER (PARTITION BY dept) "
            "FROM staff ORDER BY pay DESC, name"
        ).rows
        assert rows[0][1] == 120
        assert rows[-1][1] == 80
        maxes = {r[0]: r[2] for r in rows}
        assert maxes[80] == 90  # ops max

    def test_null_skipping(self, db):
        db.execute("CREATE TABLE t (v INTEGER)")
        db.insert_rows("t", [(None,), (1,), (2,)])
        rows = db.execute(
            "SELECT v, sum(v) OVER (ORDER BY v NULLS LAST), "
            "count(v) OVER (ORDER BY v NULLS LAST) FROM t "
            "ORDER BY v NULLS LAST"
        ).rows
        assert rows == [(1, 1, 1), (2, 3, 2), (None, 3, 2)]

    def test_count_star_over_empty_window(self, staff):
        rows = staff.execute(
            "SELECT count(*) OVER () FROM staff LIMIT 1"
        ).rows
        assert rows == [(5,)]

    def test_window_result_original_order(self, staff):
        """Window computation must not reorder the output rows."""
        plain = staff.execute("SELECT name FROM staff").rows
        windowed = staff.execute(
            "SELECT name, row_number() OVER (ORDER BY pay) FROM staff"
        ).rows
        assert [r[0] for r in windowed] == [r[0] for r in plain]

    def test_expression_over_window(self, staff):
        rows = staff.execute(
            "SELECT pay * 100 / sum(pay) OVER () AS pct FROM staff "
            "ORDER BY pct DESC"
        ).rows
        # Integer division truncates per row: 19+23+23+17+15 = 97.
        assert sum(r[0] for r in rows) == 97

    def test_empty_input(self, db):
        db.execute("CREATE TABLE t (v INTEGER)")
        assert db.execute(
            "SELECT row_number() OVER (ORDER BY v) FROM t"
        ).rows == []


class TestWindowValidation:
    def test_window_in_where_rejected(self, staff):
        with pytest.raises(BindError, match="SELECT list"):
            staff.execute(
                "SELECT 1 FROM staff WHERE row_number() OVER "
                "(ORDER BY pay) = 1"
            )

    def test_window_with_group_by_rejected(self, staff):
        with pytest.raises(BindError, match="GROUP BY"):
            staff.execute(
                "SELECT dept, sum(count(*)) OVER () FROM staff "
                "GROUP BY dept"
            )

    def test_unknown_window_function(self, staff):
        with pytest.raises(BindError, match="unknown window"):
            staff.execute(
                "SELECT ntile(4) OVER (ORDER BY pay) FROM staff"
            )

    def test_distinct_in_window_rejected(self, staff):
        with pytest.raises(Exception, match="DISTINCT"):
            staff.execute(
                "SELECT count(DISTINCT pay) OVER () FROM staff"
            )
