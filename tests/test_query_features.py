"""Set operations, subqueries, ORDER BY / LIMIT, VALUES, CTEs."""

import pytest

import repro
from repro.errors import BindError, ExecutionError


class TestSetOps:
    def test_union_all_keeps_duplicates(self, db):
        rows = db.execute(
            "SELECT 1 UNION ALL SELECT 1 UNION ALL SELECT 2"
        ).rows
        assert sorted(rows) == [(1,), (1,), (2,)]

    def test_union_deduplicates(self, db):
        rows = db.execute("SELECT 1 UNION SELECT 1 UNION SELECT 2").rows
        assert sorted(rows) == [(1,), (2,)]

    def test_intersect(self, db):
        db.execute("CREATE TABLE a (x INTEGER)")
        db.execute("CREATE TABLE b (x INTEGER)")
        db.insert_rows("a", [(1,), (2,), (2,), (3,)])
        db.insert_rows("b", [(2,), (3,), (4,)])
        rows = db.execute(
            "SELECT x FROM a INTERSECT SELECT x FROM b ORDER BY x"
        ).rows
        assert rows == [(2,), (3,)]

    def test_except(self, db):
        db.execute("CREATE TABLE a (x INTEGER)")
        db.execute("CREATE TABLE b (x INTEGER)")
        db.insert_rows("a", [(1,), (2,), (2,), (3,)])
        db.insert_rows("b", [(2,)])
        rows = db.execute(
            "SELECT x FROM a EXCEPT SELECT x FROM b ORDER BY x"
        ).rows
        assert rows == [(1,), (3,)]

    def test_type_unification_across_branches(self, db):
        rows = db.execute("SELECT 1 UNION ALL SELECT 2.5 ORDER BY 1").rows
        assert rows == [(1.0,), (2.5,)]

    def test_arity_mismatch_rejected(self, db):
        with pytest.raises(BindError, match="arity"):
            db.execute("SELECT 1 UNION SELECT 1, 2")

    def test_union_with_nulls(self, db):
        rows = db.execute(
            "SELECT NULL UNION SELECT NULL UNION SELECT 1"
        ).rows
        assert len(rows) == 2


class TestSubqueries:
    def test_scalar_subquery(self, people_db):
        rows = people_db.execute(
            "SELECT name FROM people "
            "WHERE age > (SELECT avg(age) FROM people) ORDER BY name"
        ).rows
        assert rows == [("alice",), ("carol",)]

    def test_scalar_subquery_empty_is_null(self, people_db):
        assert people_db.execute(
            "SELECT (SELECT age FROM people WHERE id = 99)"
        ).scalar() is None

    def test_scalar_subquery_multirow_raises(self, people_db):
        with pytest.raises(ExecutionError, match="more than one row"):
            people_db.execute("SELECT (SELECT age FROM people)")

    def test_in_subquery(self, people_db):
        rows = people_db.execute(
            "SELECT name FROM people WHERE id IN "
            "(SELECT person_id FROM orders) ORDER BY name"
        ).rows
        assert rows == [("alice",), ("bob",), ("carol",)]

    def test_not_in_subquery_with_null_probe(self, db):
        db.execute("CREATE TABLE t (a INTEGER)")
        db.insert_rows("t", [(1,), (2,)])
        # NOT IN over a set containing NULL is never true.
        rows = db.execute(
            "SELECT a FROM t WHERE a NOT IN (SELECT NULL)"
        ).rows
        assert rows == []

    def test_exists(self, people_db):
        rows = people_db.execute(
            "SELECT name FROM people p WHERE EXISTS "
            "(SELECT 1 FROM orders o WHERE o.person_id = p.id) "
            "ORDER BY name"
        ).rows
        assert rows == [("alice",), ("bob",), ("carol",)]

    def test_not_exists(self, people_db):
        rows = people_db.execute(
            "SELECT name FROM people p WHERE NOT EXISTS "
            "(SELECT 1 FROM orders o WHERE o.person_id = p.id) "
            "ORDER BY name"
        ).rows
        assert rows == [("dave",), ("erin",)]

    def test_correlated_scalar_subquery(self, people_db):
        rows = people_db.execute(
            "SELECT name, (SELECT sum(amount) FROM orders o "
            "WHERE o.person_id = p.id) FROM people p ORDER BY id"
        ).rows
        assert rows[0] == ("alice", 100.0)
        assert rows[3] == ("dave", None)

    def test_subquery_in_select_list(self, people_db):
        assert people_db.execute(
            "SELECT (SELECT count(*) FROM orders)"
        ).scalar() == 5

    def test_derived_table(self, people_db):
        rows = people_db.execute(
            "SELECT city, n FROM (SELECT city, count(*) AS n "
            "FROM people GROUP BY city) sub WHERE n > 1"
        ).rows
        assert rows == [("munich", 2)]


class TestOrderByLimit:
    def test_order_by_multiple_keys(self, people_db):
        rows = people_db.execute(
            "SELECT name, age FROM people "
            "ORDER BY age DESC NULLS LAST, name"
        ).rows
        assert [r[0] for r in rows] == [
            "carol", "alice", "bob", "erin", "dave",
        ]

    def test_nulls_default_sort_large(self, people_db):
        ascending = people_db.execute(
            "SELECT age FROM people ORDER BY age"
        ).rows
        assert ascending[-1] == (None,)
        descending = people_db.execute(
            "SELECT age FROM people ORDER BY age DESC"
        ).rows
        assert descending[0] == (None,)

    def test_order_by_ordinal(self, people_db):
        rows = people_db.execute(
            "SELECT name, age FROM people ORDER BY 2 NULLS LAST, 1"
        ).rows
        assert rows[0][0] == "bob"

    def test_order_by_expression(self, people_db):
        rows = people_db.execute(
            "SELECT name FROM people WHERE age IS NOT NULL "
            "ORDER BY age % 10, name"
        ).rows
        assert rows[0] == ("carol",)

    def test_order_by_string_desc(self, people_db):
        rows = people_db.execute(
            "SELECT name FROM people ORDER BY name DESC LIMIT 2"
        ).rows
        assert rows == [("erin",), ("dave",)]

    def test_limit_offset(self, people_db):
        rows = people_db.execute(
            "SELECT id FROM people ORDER BY id LIMIT 2 OFFSET 1"
        ).rows
        assert rows == [(2,), (3,)]

    def test_limit_zero(self, people_db):
        assert people_db.execute(
            "SELECT id FROM people LIMIT 0"
        ).rows == []

    def test_offset_past_end(self, people_db):
        assert people_db.execute(
            "SELECT id FROM people ORDER BY id OFFSET 10"
        ).rows == []

    def test_stable_sort(self, db):
        db.execute("CREATE TABLE t (k INTEGER, seq INTEGER)")
        db.insert_rows("t", [(1, i) for i in range(20)])
        rows = db.execute("SELECT seq FROM t ORDER BY k").rows
        assert [r[0] for r in rows] == list(range(20))


class TestValuesAndConstants:
    def test_select_without_from_one_row(self, db):
        assert len(db.execute("SELECT 1, 2, 3").rows) == 1

    def test_values_statement(self, db):
        rows = db.execute("VALUES (1, 'a'), (2, 'b')").rows
        assert rows == [(1, "a"), (2, "b")]

    def test_values_in_from_with_aliases(self, db):
        rows = db.execute(
            "SELECT n * 2 FROM (VALUES (1), (2), (3)) v(n) ORDER BY 1"
        ).rows
        assert rows == [(2,), (4,), (6,)]

    def test_values_type_unification(self, db):
        rows = db.execute("VALUES (1), (2.5)").rows
        assert rows == [(1.0,), (2.5,)]


class TestCTEs:
    def test_simple_cte(self, people_db):
        rows = people_db.execute(
            "WITH adults AS (SELECT * FROM people WHERE age >= 30) "
            "SELECT name FROM adults ORDER BY name"
        ).rows
        assert rows == [("alice",), ("carol",)]

    def test_cte_referenced_twice(self, db):
        db.execute("CREATE TABLE t (x INTEGER)")
        db.insert_rows("t", [(1,), (2,)])
        rows = db.execute(
            "WITH c AS (SELECT x FROM t) "
            "SELECT a.x, b.x FROM c a JOIN c b ON a.x = b.x ORDER BY 1"
        ).rows
        assert rows == [(1, 1), (2, 2)]

    def test_chained_ctes(self, db):
        assert db.execute(
            "WITH a AS (SELECT 2 AS x), b AS (SELECT x + 3 AS y FROM a) "
            "SELECT y FROM b"
        ).scalar() == 5

    def test_cte_column_aliases(self, db):
        assert db.execute(
            "WITH c(n) AS (SELECT 41) SELECT n + 1 FROM c"
        ).scalar() == 42

    def test_cte_shadows_table(self, people_db):
        rows = people_db.execute(
            "WITH people AS (SELECT 1 AS only) SELECT * FROM people"
        ).rows
        assert rows == [(1,)]
