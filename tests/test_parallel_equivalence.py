"""Serial-equivalence battery for morsel-driven parallel execution.

The determinism contract (``docs/parallelism.md``): for any statement
and any analytics workload, ``workers=1`` and ``workers=N`` produce
bit-identical results — morsel/chunk boundaries depend only on data
size, dispatch is ordered, and merges fold partials in chunk order.
These tests enforce the contract three ways: a differential corpus of
generated SQL, the three paper workloads (rows *and* convergence
telemetry), and direct multi-chunk checks of the partial-aggregate,
k-Means, and SpMV reductions.
"""

import numpy as np
import pytest

import repro
from repro.analytics.csr import SPMV_CHUNK_VERTICES, CSRGraph
from repro.analytics.kmeans import kmeans
from repro.datagen.graphs import generate_social_graph, load_edge_table
from repro.datagen.vectors import (
    feature_names,
    load_centers_table,
    load_vector_table,
)
from repro.errors import ReproError
from repro.exec.parallel import (
    WorkerPool,
    partial_grouped_aggregate,
    resolve_workers,
)
from repro.storage.column import Column
from repro.testing.generator import QueryGenerator
from repro.testing.oracle import build_repro_db, normalize_rows
from repro.types import BIGINT, DOUBLE

#: The parallel session used throughout: 4 workers, no cardinality
#: threshold, and tiny morsels, so even test-sized tables genuinely
#: dispatch multi-morsel pipelines.
PARALLEL_KWARGS = dict(workers=4, parallel_threshold=0, morsel_rows=32)


def _run_normalized(db, sql: str, ordered: bool):
    """("ok", rows) or ("error", exception type name)."""
    try:
        return "ok", normalize_rows(db.execute(sql).rows, ordered)
    except (ReproError, OverflowError, ValueError) as exc:
        return "error", type(exc).__name__


# ---------------------------------------------------------------------------
# Differential corpus: generated SQL, serial vs parallel
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(15))
def test_generated_queries_identical_across_worker_counts(seed):
    generator = QueryGenerator(seed)
    tables = generator.schema()
    serial = build_repro_db(tables, workers=1)
    parallel = build_repro_db(tables, workers=4)
    try:
        for index in range(3):
            query = generator.query(tables)
            sql = query.to_sql()
            expected = _run_normalized(serial, sql, query.ordered)
            got = _run_normalized(parallel, sql, query.ordered)
            assert got == expected, (
                f"seed={seed} query={index} diverged between "
                f"workers=1 and workers=4:\n{sql}"
            )
    finally:
        parallel.close()
        serial.close()


# ---------------------------------------------------------------------------
# The three workloads: rows and convergence telemetry
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def db_pair():
    serial = repro.Database(workers=1)
    parallel = repro.Database(**PARALLEL_KWARGS)
    yield serial, parallel
    parallel.close()
    serial.close()


def _rows_both(db_pair, loader, sql):
    serial, parallel = db_pair
    results = []
    for db in (serial, parallel):
        loader(db)
        results.append(db.execute(sql))
    return results


def test_kmeans_workload_equivalence(db_pair):
    feats = feature_names(3)
    sql = (
        f"SELECT cluster, {', '.join(feats)} FROM KMEANS("
        f"(SELECT {', '.join(feats)} FROM data), "
        f"(SELECT {', '.join(feats)} FROM centers), 4) ORDER BY cluster"
    )

    def loader(db):
        columns = load_vector_table(db, "data", 900, 3, seed=11)
        load_centers_table(db, "centers", columns, 5, seed=13)

    serial_res, parallel_res = _rows_both(db_pair, loader, sql)
    assert normalize_rows(parallel_res.rows, False) == normalize_rows(
        serial_res.rows, False
    )
    s_tel = serial_res.telemetry["kmeans"]
    p_tel = parallel_res.telemetry["kmeans"]
    assert p_tel["iterations"] == s_tel["iterations"]
    assert p_tel["inertia"] == pytest.approx(
        s_tel["inertia"], abs=1e-9
    )
    assert p_tel["center_shift"] == pytest.approx(
        s_tel["center_shift"], abs=1e-9
    )


def test_pagerank_workload_equivalence(db_pair):
    sql = (
        "SELECT vertex, rank FROM PAGERANK("
        "(SELECT src, dest FROM edges), 0.85, 0.0, 8) ORDER BY vertex"
    )

    def loader(db):
        load_edge_table(db, "edges", 150, 1700, seed=17)

    serial_res, parallel_res = _rows_both(db_pair, loader, sql)
    assert normalize_rows(parallel_res.rows, True) == normalize_rows(
        serial_res.rows, True
    )
    s_tel = serial_res.telemetry["pagerank"]
    p_tel = parallel_res.telemetry["pagerank"]
    assert p_tel["iterations"] == s_tel["iterations"]
    assert p_tel["residual_l1"] == pytest.approx(
        s_tel["residual_l1"], abs=1e-9
    )


def test_naive_bayes_workload_equivalence(db_pair):
    feats = feature_names(3)
    sql = (
        "SELECT class, attribute, prior, mean, stddev "
        "FROM NAIVE_BAYES_TRAIN("
        f"(SELECT label, {', '.join(feats)} FROM train)) "
        "ORDER BY class, attribute"
    )

    def loader(db):
        load_vector_table(db, "train", 700, 3, seed=19, with_label=True)

    serial_res, parallel_res = _rows_both(db_pair, loader, sql)
    assert normalize_rows(parallel_res.rows, True) == normalize_rows(
        serial_res.rows, True
    )
    s_tel = serial_res.telemetry["naive_bayes"]
    p_tel = parallel_res.telemetry["naive_bayes"]
    assert p_tel["classes"] == s_tel["classes"]
    assert p_tel["class_counts"] == s_tel["class_counts"]
    assert p_tel["priors"] == pytest.approx(s_tel["priors"], abs=1e-9)


# ---------------------------------------------------------------------------
# Planner choice is visible, and bounded by the cardinality estimate
# ---------------------------------------------------------------------------


def test_explain_analyze_shows_parallel_pipeline():
    with repro.Database(**PARALLEL_KWARGS) as db:
        db.execute("CREATE TABLE t (a BIGINT, b DOUBLE)")
        db.load_columns(
            "t",
            {
                "a": np.arange(500, dtype=np.int64),
                "b": np.linspace(0.0, 1.0, 500),
            },
        )
        analyzed = db.explain_analyze(
            "SELECT a + 1, b * 2.0 FROM t WHERE a > 100"
        )
        node = analyzed.find("ParallelPipeline")
        assert node is not None
        assert "workers=4" in node.label


def test_serial_session_never_plans_parallel_pipeline():
    with repro.Database(workers=1, parallel_threshold=0) as db:
        db.execute("CREATE TABLE t (a BIGINT)")
        db.load_columns("t", {"a": np.arange(100, dtype=np.int64)})
        analyzed = db.explain_analyze("SELECT a FROM t WHERE a > 10")
        assert analyzed.find("ParallelPipeline") is None


def test_threshold_keeps_small_tables_serial():
    with repro.Database(workers=4, parallel_threshold=1_000) as db:
        db.execute("CREATE TABLE t (a BIGINT)")
        db.load_columns("t", {"a": np.arange(100, dtype=np.int64)})
        analyzed = db.explain_analyze("SELECT a FROM t WHERE a > 10")
        assert analyzed.find("ParallelPipeline") is None


def test_parallel_session_emits_morsel_counters():
    with repro.Database(**PARALLEL_KWARGS) as db:
        db.execute("CREATE TABLE t (a BIGINT)")
        db.load_columns("t", {"a": np.arange(400, dtype=np.int64)})
        db.execute("SELECT a FROM t WHERE a >= 0")
        counters = db.metrics.snapshot()["counters"]
        assert counters.get("exec_parallel_pipelines_total", 0) >= 1
        # 400 rows / 32-row morsels = 13 morsels dispatched.
        assert counters.get("exec_morsels_dispatched_total", 0) >= 13
        per_worker = sum(
            value
            for series, value in counters.items()
            if series.startswith("parallel_morsels_total")
        )
        assert per_worker >= 13


# ---------------------------------------------------------------------------
# Worker-count plumbing
# ---------------------------------------------------------------------------


def test_repro_workers_env_is_respected(monkeypatch):
    monkeypatch.setenv("REPRO_WORKERS", "3")
    db = repro.Database()
    try:
        assert db.workers == 3
        assert db.pool.workers == 3
    finally:
        db.close()


def test_explicit_workers_argument_wins_over_env(monkeypatch):
    monkeypatch.setenv("REPRO_WORKERS", "8")
    assert resolve_workers(2) == 2


def test_invalid_worker_counts_are_rejected(monkeypatch):
    with pytest.raises(ValueError):
        resolve_workers(0)
    monkeypatch.setenv("REPRO_WORKERS", "lots")
    with pytest.raises(ValueError):
        resolve_workers(None)


# ---------------------------------------------------------------------------
# Direct multi-chunk reductions (the fixed merge order, exercised)
# ---------------------------------------------------------------------------


def _pools():
    return WorkerPool(1), WorkerPool(4)


def test_partial_aggregate_multi_chunk_is_worker_independent():
    rng = np.random.default_rng(23)
    n, n_groups = 10_000, 7
    codes = rng.integers(0, n_groups, size=n).astype(np.int64)
    doubles = Column(
        rng.normal(size=n), DOUBLE, rng.random(n) > 0.1
    )
    ints = Column(
        rng.integers(-50, 50, size=n).astype(np.int64),
        BIGINT,
        rng.random(n) > 0.1,
    )
    serial_pool, parallel_pool = _pools()
    try:
        for func, col in [
            ("sum", doubles), ("avg", doubles), ("min", doubles),
            ("max", doubles), ("sum", ints), ("count", ints),
        ]:
            expected = partial_grouped_aggregate(
                func, col, codes, n_groups, serial_pool, chunk_rows=256
            )
            got = partial_grouped_aggregate(
                func, col, codes, n_groups, parallel_pool,
                chunk_rows=256,
            )
            assert expected is not None and got is not None
            assert np.array_equal(got.values, expected.values), func
            assert np.array_equal(
                got.validity(), expected.validity()
            ), func
    finally:
        parallel_pool.shutdown()
        serial_pool.shutdown()


def test_partial_sum_matches_plain_numpy_per_group():
    rng = np.random.default_rng(29)
    n, n_groups = 5_000, 4
    codes = rng.integers(0, n_groups, size=n).astype(np.int64)
    values = rng.integers(0, 1000, size=n).astype(np.int64)
    col = Column(values, BIGINT)
    pool = WorkerPool(4)
    try:
        got = partial_grouped_aggregate(
            "sum", col, codes, n_groups, pool, chunk_rows=128
        )
        expected = np.bincount(
            codes, weights=values, minlength=n_groups
        ).astype(np.int64)
        assert np.array_equal(got.values, expected)
    finally:
        pool.shutdown()


def test_kmeans_multi_chunk_rounds_are_worker_independent():
    # 140k tuples crosses the fixed 131 072-row update-chunk size, so
    # every round genuinely merges two partial states per pool.
    rng = np.random.default_rng(31)
    points = rng.random((140_000, 2))
    seeds = points[:4].copy()
    serial_pool, parallel_pool = _pools()
    serial_tel, parallel_tel = [], []
    try:
        s_centers, s_assign, s_sizes, s_iters = kmeans(
            points, seeds, max_iterations=3, telemetry=serial_tel,
            pool=serial_pool,
        )
        p_centers, p_assign, p_sizes, p_iters = kmeans(
            points, seeds, max_iterations=3, telemetry=parallel_tel,
            pool=parallel_pool,
        )
    finally:
        parallel_pool.shutdown()
        serial_pool.shutdown()
    assert p_iters == s_iters
    assert np.array_equal(p_centers, s_centers)
    assert np.array_equal(p_assign, s_assign)
    assert np.array_equal(p_sizes, s_sizes)
    assert [r["inertia"] for r in parallel_tel] == [
        r["inertia"] for r in serial_tel
    ]


def test_spmv_multi_chunk_gather_is_bit_identical():
    # More vertices than one SpMV chunk; chunk edges land on CSR
    # segment boundaries, so the parallel gather must equal the
    # whole-array reduceat exactly.
    n_vertices = SPMV_CHUNK_VERTICES + 4_096
    src, dst = generate_social_graph(n_vertices, 3 * n_vertices, seed=37)
    graph = CSRGraph.from_edges(src, dst)
    per_source = np.random.default_rng(41).random(graph.n_vertices)
    pool = WorkerPool(4)
    try:
        parallel_sums = graph.gather_incoming(per_source, pool=pool)
    finally:
        pool.shutdown()
    serial_sums = graph.gather_incoming(per_source)
    assert np.array_equal(parallel_sums, serial_sums)


def test_large_grouped_sql_aggregate_identical_across_workers():
    # Past PARTIAL_CHUNK_ROWS the SQL path itself goes multi-chunk;
    # both sessions fold the same chunks in the same order.
    rng = np.random.default_rng(43)
    n = 150_000
    columns = {
        "g": rng.integers(0, 11, size=n).astype(np.int64),
        "x": rng.normal(size=n),
    }
    sql = (
        "SELECT g, COUNT(*), SUM(x), AVG(x), MIN(x), MAX(x) "
        "FROM big GROUP BY g ORDER BY g"
    )
    results = []
    for kwargs in (dict(workers=1), PARALLEL_KWARGS):
        with repro.Database(**kwargs) as db:
            db.execute("CREATE TABLE big (g BIGINT, x DOUBLE)")
            db.load_columns("big", columns)
            results.append(db.execute(sql).rows)
    assert results[0] == results[1]
