"""Workload generators: the Table 1 grid and LDBC-like graphs."""

import numpy as np
import pytest

import repro
from repro.datagen.graphs import (
    LDBC_SCALES,
    generate_social_graph,
    graph_experiments,
    load_edge_table,
)
from repro.datagen.vectors import (
    KMEANS_CLUSTER_SWEEP,
    KMEANS_DEFAULTS,
    KMEANS_DIMENSION_SWEEP,
    KMEANS_TUPLE_SWEEP,
    generate_labels,
    generate_vectors,
    load_centers_table,
    load_vector_table,
    pick_initial_centers,
    table1_experiments,
)


class TestVectors:
    def test_table1_grid_shape(self):
        experiments = table1_experiments(scale=1.0)
        # 6 tuple points + 5 dimension points + 5 cluster points.
        assert len(experiments) == 16
        tuple_ns = [
            e.n for e in experiments if e.sweep == "tuples"
        ]
        assert tuple_ns == list(KMEANS_TUPLE_SWEEP)
        dims = [e.d for e in experiments if e.sweep == "dimensions"]
        assert dims == list(KMEANS_DIMENSION_SWEEP)
        ks = [e.k for e in experiments if e.sweep == "clusters"]
        assert ks == list(KMEANS_CLUSTER_SWEEP)

    def test_sweeps_share_center_point(self):
        # Table 1's starred rows: the same (4M, 10, 5) configuration
        # connects the three sweeps.
        for sweep, value in (
            ("tuples", KMEANS_DEFAULTS["n"]),
            ("dimensions", KMEANS_DEFAULTS["d"]),
            ("clusters", KMEANS_DEFAULTS["k"]),
        ):
            experiments = [
                e for e in table1_experiments(1.0) if e.sweep == sweep
            ]
            matches = [
                e
                for e in experiments
                if (e.n, e.d, e.k)
                == (
                    KMEANS_DEFAULTS["n"],
                    KMEANS_DEFAULTS["d"],
                    KMEANS_DEFAULTS["k"],
                )
            ]
            assert matches, f"sweep {sweep} misses the center point"

    def test_scaling_preserves_d_and_k(self):
        scaled = table1_experiments(scale=0.001)
        assert {e.d for e in scaled if e.sweep == "dimensions"} == set(
            KMEANS_DIMENSION_SWEEP
        )
        assert max(e.n for e in scaled) == 500_000

    def test_uniform_distribution(self):
        columns = generate_vectors(10_000, 2, seed=1)
        values = columns["f0"]
        assert 0.0 <= values.min() and values.max() < 1.0
        assert values.mean() == pytest.approx(0.5, abs=0.02)

    def test_deterministic_by_seed(self):
        a = generate_vectors(100, 3, seed=7)
        b = generate_vectors(100, 3, seed=7)
        c = generate_vectors(100, 3, seed=8)
        assert np.array_equal(a["f1"], b["f1"])
        assert not np.array_equal(a["f1"], c["f1"])

    def test_labels_uniform_binary(self):
        labels = generate_labels(10_000, 2, seed=2)
        assert set(np.unique(labels)) == {0, 1}
        assert abs(labels.mean() - 0.5) < 0.05

    def test_pick_initial_centers(self):
        columns = generate_vectors(100, 2, seed=0)
        centers = pick_initial_centers(columns, 5, seed=1)
        assert len(centers["cid"]) == 5
        assert set(centers) == {"cid", "f0", "f1"}

    def test_load_vector_table(self, db):
        load_vector_table(db, "v", 50, 3, seed=0)
        assert db.execute("SELECT count(*) FROM v").scalar() == 50
        assert db.table_schema("v").names() == [
            "id", "f0", "f1", "f2",
        ]

    def test_load_with_labels(self, db):
        load_vector_table(db, "v", 50, 2, seed=0, with_label=True)
        assert db.execute(
            "SELECT count(DISTINCT label) FROM v"
        ).scalar() == 2


class TestGraphs:
    def test_paper_scale_points(self):
        assert LDBC_SCALES[0] == (11_000, 452_000)
        assert LDBC_SCALES[2] == (499_000, 46_000_000)
        experiments = graph_experiments(scale=0.01)
        assert experiments[0].n_vertices == 110

    def test_both_directions_present(self):
        src, dst = generate_social_graph(100, 1000, seed=0)
        edges = set(zip(src.tolist(), dst.tolist()))
        for a, b in list(edges)[:100]:
            assert (b, a) in edges

    def test_every_vertex_connected(self):
        src, dst = generate_social_graph(200, 2000, seed=1)
        touched = set(src.tolist()) | set(dst.tolist())
        assert touched == set(range(200))

    def test_no_self_loops(self):
        src, dst = generate_social_graph(50, 600, seed=2)
        assert not (src == dst).any()

    def test_skewed_degrees(self):
        src, _dst = generate_social_graph(1000, 40_000, seed=3)
        degrees = np.bincount(src, minlength=1000)
        # Heavy tail: the busiest vertex far exceeds the median.
        assert degrees.max() > 4 * np.median(degrees)

    def test_edge_count_approximate(self):
        src, _dst = generate_social_graph(100, 5000, seed=4)
        assert abs(len(src) - 5000) < 300

    def test_deterministic_by_seed(self):
        a = generate_social_graph(100, 1000, seed=5)
        b = generate_social_graph(100, 1000, seed=5)
        assert np.array_equal(a[0], b[0])

    def test_load_edge_table(self, db):
        src, _dst = load_edge_table(db, "e", 50, 500, seed=0)
        assert db.execute(
            "SELECT count(*) FROM e"
        ).scalar() == len(src)
