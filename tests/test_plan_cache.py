"""Statement/plan cache: hits, keying, invalidation, and equivalence.

The contract under test (docs/performance.md): a cached plan may never
change what a statement returns or raises — only how fast it gets
there. Every behaviour is exercised against both a cache-on and a
cache-off database where results could plausibly differ.
"""

import os

import pytest

from repro.api.database import Database
from repro.errors import ReproError
from repro.plan.cache import CACHE_ENV, PlanCache, sql_fingerprint


def counter(db, name):
    return db.metrics.snapshot()["counters"].get(name, 0.0)


def make_db(rows=5000, **kwargs):
    # plan_cache=True by default: the constructor overrides the
    # REPRO_PLAN_CACHE switch, so hit-count assertions hold on the
    # cache-off CI leg too.
    kwargs.setdefault("profile_operators", False)
    kwargs.setdefault("plan_cache", True)
    db = Database(**kwargs)
    db.execute("CREATE TABLE t (id INTEGER, name VARCHAR, v DOUBLE)")
    db.executemany(
        "INSERT INTO t VALUES (?, ?, ?)",
        [(i, f"n{i % 7}", i * 0.25) for i in range(rows)],
    )
    return db


# ---------------------------------------------------------------------------
# Hits and correctness
# ---------------------------------------------------------------------------


def test_repeated_parameterized_query_hits_cache():
    db = make_db()
    for i in (10, 20, 30, 40):
        rows = db.execute(
            "SELECT v FROM t WHERE id = ?", (i,)
        ).rows
        assert rows == [(i * 0.25,)]
    assert counter(db, "exec_plan_cache_hits_total") == 3.0
    assert counter(db, "exec_plan_cache_misses_total") >= 1.0


def test_literal_sql_also_cached():
    db = make_db()
    for _ in range(3):
        assert db.execute(
            "SELECT count(*) FROM t WHERE id < 100"
        ).rows == [(100,)]
    assert counter(db, "exec_plan_cache_hits_total") == 2.0


def test_cache_keyed_on_parameter_types():
    db = make_db()
    int_rows = db.execute("SELECT count(*) FROM t WHERE v < ?", (10,))
    float_rows = db.execute(
        "SELECT count(*) FROM t WHERE v < ?", (10.0,)
    )
    assert int_rows.rows == float_rows.rows
    # Different type signatures plan separately: no hit yet.
    assert counter(db, "exec_plan_cache_hits_total") == 0.0
    db.execute("SELECT count(*) FROM t WHERE v < ?", (20,))
    assert counter(db, "exec_plan_cache_hits_total") == 1.0


def test_cached_and_uncached_results_identical():
    on = make_db()
    off = make_db(plan_cache=False)
    statements = [
        ("SELECT name, count(*) FROM t WHERE id < ? "
         "GROUP BY name ORDER BY name", (1000,)),
        ("SELECT v FROM t WHERE id = ? OR id = ? ORDER BY v",
         (3, 4000)),
        ("SELECT max(v) - min(v) FROM t WHERE name = ?", ("n3",)),
    ]
    for sql, params in statements:
        for _ in range(3):  # cold, cached, cached
            assert (
                on.execute(sql, params).rows
                == off.execute(sql, params).rows
            )
    assert counter(on, "exec_plan_cache_hits_total") >= 6.0
    assert counter(off, "exec_plan_cache_hits_total") == 0.0


def test_wrong_parameter_count_still_raises_after_caching():
    db = make_db()
    db.execute("SELECT v FROM t WHERE id = ?", (1,))
    db.execute("SELECT v FROM t WHERE id = ?", (2,))  # cached now
    with pytest.raises(ReproError):
        db.execute("SELECT v FROM t WHERE id = ?", (1, 2))
    with pytest.raises(ReproError):
        db.execute("SELECT v FROM t WHERE id = ?")


# ---------------------------------------------------------------------------
# Bypasses
# ---------------------------------------------------------------------------


def test_null_parameters_bypass_cache():
    db = make_db()
    misses = counter(db, "exec_plan_cache_misses_total")
    hits = counter(db, "exec_plan_cache_hits_total")
    for _ in range(2):
        assert db.execute(
            "SELECT count(*) FROM t WHERE name = ?", (None,)
        ).rows == [(0,)]
    # NULL gives no type to key on: the statement never touches the
    # cache, in either direction.
    assert counter(db, "exec_plan_cache_misses_total") == misses
    assert counter(db, "exec_plan_cache_hits_total") == hits


def test_multi_statement_sql_negative_cached():
    db = make_db(rows=10)
    misses = counter(db, "exec_plan_cache_misses_total")
    hits = counter(db, "exec_plan_cache_hits_total")
    for _ in range(3):
        db.execute("SELECT 1; SELECT 2")
    # One miss when the negative entry is created, none afterwards.
    assert counter(db, "exec_plan_cache_misses_total") == misses + 1.0
    assert counter(db, "exec_plan_cache_hits_total") == hits


def test_bind_time_constant_placeholder_falls_back():
    db = make_db(rows=50)
    for n in (5, 7):
        rows = db.execute(
            "SELECT id FROM t ORDER BY id LIMIT ?", (n,)
        ).rows
        assert len(rows) == n
    assert counter(db, "exec_plan_cache_hits_total") == 0.0


def test_correlated_subquery_with_statement_params():
    on = make_db(rows=200)
    off = make_db(rows=200, plan_cache=False)
    sql = (
        "SELECT id FROM t a WHERE v < ? AND EXISTS "
        "(SELECT 1 FROM t b WHERE b.id = a.id + ? AND b.v > a.v) "
        "ORDER BY id"
    )
    for params in ((5.0, 1), (5.0, 1), (9.0, 2)):
        assert (
            on.execute(sql, params).rows == off.execute(sql, params).rows
        )


# ---------------------------------------------------------------------------
# Invalidation
# ---------------------------------------------------------------------------


def test_ddl_invalidates_cached_plans():
    db = make_db(rows=10)
    sql = "SELECT count(*) FROM t WHERE id >= ?"
    assert db.execute(sql, (0,)).rows == [(10,)]
    assert db.execute(sql, (0,)).rows == [(10,)]
    db.execute("DROP TABLE t")
    with pytest.raises(ReproError):
        db.execute(sql, (0,))
    # Recreate with a different shape: the stale plan must not serve.
    db.execute("CREATE TABLE t (id INTEGER)")
    db.executemany("INSERT INTO t VALUES (?)", [(i,) for i in range(3)])
    assert db.execute(sql, (0,)).rows == [(3,)]
    assert db.execute("SELECT * FROM t ORDER BY id").rows == [
        (0,), (1,), (2,)
    ]


def test_create_table_bumps_ddl_version():
    db = make_db(rows=10)
    sql = "SELECT count(*) FROM t"
    db.execute(sql)
    db.execute(sql)
    hits_before = counter(db, "exec_plan_cache_hits_total")
    db.execute("CREATE TABLE other (x INTEGER)")
    db.execute(sql)  # replans: epoch moved
    assert counter(db, "exec_plan_cache_hits_total") == hits_before


def test_udf_reregistration_invalidates():
    db = make_db(rows=10)
    db.create_function("boost", lambda x: x + 1.0, "DOUBLE")
    sql = "SELECT boost(v) FROM t WHERE id = ?"
    assert db.execute(sql, (4,)).rows == [(2.0,)]
    db.create_function("boost", lambda x: x + 100.0, "DOUBLE")
    assert db.execute(sql, (4,)).rows == [(101.0,)]


def test_dml_under_cached_plan_sees_new_rows():
    db = make_db(rows=10)
    sql = "SELECT count(*) FROM t WHERE id >= ?"
    assert db.execute(sql, (0,)).rows == [(10,)]
    db.execute("INSERT INTO t VALUES (100, 'x', 1.0)")
    assert db.execute(sql, (0,)).rows == [(11,)]
    db.execute("DELETE FROM t WHERE id >= 5")
    assert db.execute(sql, (0,)).rows == [(5,)]


def test_session_txn_with_local_ddl_bypasses_cache():
    db = make_db(rows=10)
    db.begin()
    db.execute("CREATE TABLE staged (x INTEGER)")
    db.execute("INSERT INTO staged VALUES (1)")
    assert db.execute("SELECT count(*) FROM staged").rows == [(1,)]
    db.rollback()
    with pytest.raises(ReproError):
        db.execute("SELECT count(*) FROM staged")


# ---------------------------------------------------------------------------
# Switches
# ---------------------------------------------------------------------------


def test_env_switch_disables_cache(monkeypatch):
    monkeypatch.setenv(CACHE_ENV, "0")
    db = make_db(rows=10, plan_cache=None)
    for _ in range(3):
        db.execute("SELECT count(*) FROM t WHERE id >= ?", (0,))
    assert counter(db, "exec_plan_cache_hits_total") == 0.0
    assert counter(db, "exec_plan_cache_misses_total") == 0.0


def test_constructor_overrides_env(monkeypatch):
    monkeypatch.setenv(CACHE_ENV, "0")
    db = make_db(rows=10, plan_cache=True)
    db.execute("SELECT count(*) FROM t WHERE id >= ?", (0,))
    db.execute("SELECT count(*) FROM t WHERE id >= ?", (1,))
    assert counter(db, "exec_plan_cache_hits_total") == 1.0


# ---------------------------------------------------------------------------
# executemany
# ---------------------------------------------------------------------------


def test_executemany_bulk_insert_matches_loop():
    fast = Database(profile_operators=False)
    slow = Database(profile_operators=False, plan_cache=False)
    for db in (fast, slow):
        db.execute("CREATE TABLE r (a INTEGER, b VARCHAR, c DOUBLE)")
    rows = [(i, f"s{i}", i / 4 if i % 3 else None) for i in range(500)]
    assert fast.executemany(
        "INSERT INTO r VALUES (?, ?, ?)", rows
    ) == 500
    for a, bcol, c in rows:
        slow.execute("INSERT INTO r VALUES (?, ?, ?)", (a, bcol, c))
    probe = "SELECT a, b, c FROM r ORDER BY a"
    assert fast.execute(probe).rows == slow.execute(probe).rows


def test_executemany_rolls_back_atomically():
    db = Database(profile_operators=False)
    db.execute("CREATE TABLE r (a INTEGER NOT NULL)")
    with pytest.raises(ReproError):
        db.executemany(
            "INSERT INTO r VALUES (?)", [(1,), (2,), (None,)]
        )
    assert db.execute("SELECT count(*) FROM r").rows == [(0,)]


def test_executemany_select_loops_through_plan_cache():
    db = make_db(rows=100)
    total = db.executemany(
        "SELECT v FROM t WHERE id = ?", [(i,) for i in range(10)]
    )
    assert total == 0  # SELECTs report no affected rows
    assert counter(db, "exec_plan_cache_hits_total") >= 9.0


# ---------------------------------------------------------------------------
# explain_analyze integration
# ---------------------------------------------------------------------------


def test_explain_analyze_reports_hot_path_counters():
    db = make_db()
    db.explain_analyze("SELECT v FROM t WHERE id = ?", (1,))
    analyzed = db.explain_analyze("SELECT v FROM t WHERE id = ?", (2,))
    assert analyzed.counters.get("exec_plan_cache_hits_total") == 1.0
    assert "hot path:" in analyzed.format()
    # The plan populated here also serves plain execute().
    db.execute("SELECT v FROM t WHERE id = ?", (3,))
    assert counter(db, "exec_plan_cache_hits_total") == 2.0


# ---------------------------------------------------------------------------
# Parallel pool
# ---------------------------------------------------------------------------


def test_plan_cache_with_parallel_pool():
    db = Database(
        workers=4, parallel_threshold=0, morsel_rows=64,
        profile_operators=False, plan_cache=True,
    )
    db.execute("CREATE TABLE p (id INTEGER, v DOUBLE)")
    db.executemany(
        "INSERT INTO p VALUES (?, ?)",
        [(i, float(i)) for i in range(2000)],
    )
    sql = "SELECT v FROM p WHERE id = ?"
    expected = [[(float(i),)] for i in range(4)]
    got = [db.execute(sql, (i,)).rows for i in range(4)]
    assert got == expected
    assert counter(db, "exec_plan_cache_hits_total") == 3.0
    db.close()


# ---------------------------------------------------------------------------
# Unit level
# ---------------------------------------------------------------------------


def test_fingerprint_normalizes_whitespace_and_case():
    a = sql_fingerprint("SELECT v FROM t WHERE id = ?")
    b = sql_fingerprint("select   v\nfrom t where id=?")
    assert a is not None and a == b
    assert sql_fingerprint("SELECT 'a''b'") == sql_fingerprint(
        "select 'a''b'"
    )
    assert sql_fingerprint("SELECT ' FROM") is None  # unlexable


def test_plan_cache_lru_and_epoch():
    cache = PlanCache(capacity=2)
    from repro.plan.cache import CachedPlan

    cache.store("a", CachedPlan("plan-a", (1, 0)))
    cache.store("b", CachedPlan("plan-b", (1, 0)))
    assert cache.lookup("a", (1, 0)).plan == "plan-a"
    cache.store("c", CachedPlan("plan-c", (1, 0)))  # evicts b (LRU)
    assert cache.lookup("b", (1, 0)) is None
    assert cache.lookup("a", (1, 0)).plan == "plan-a"
    # Epoch mismatch drops the entry on sight.
    assert cache.lookup("a", (2, 0)) is None
    assert len(cache) == 1
