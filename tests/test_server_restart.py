"""Server restart cycle: kill -9 mid-commit-stream, restart, verify.

The durability contract over the wire (docs/durability.md): every
INSERT the server *acknowledged* to a client must be present after the
server process is SIGKILLed and restarted on the same WAL. The kill
lands mid-stream — the client is actively committing when the process
dies — so the tail of the log is whatever the crash left behind.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.server.client import Client, ServerError

pytestmark = [pytest.mark.server, pytest.mark.crash]

_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")


def _spawn_server(wal_path: str, *extra: str) -> tuple[subprocess.Popen, str, int]:
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.server",
            "--port", "0", "--wal", wal_path, *extra,
        ],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
        text=True,
    )
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        if line.startswith("repro server listening on "):
            host, _, port = line.rsplit(" ", 1)[-1].strip().partition(":")
            return proc, host, int(port)
    proc.kill()
    raise AssertionError("server never printed its address")


def _stop(proc: subprocess.Popen) -> None:
    if proc.poll() is None:
        proc.kill()
    proc.wait(timeout=30)
    if proc.stdout is not None:
        proc.stdout.close()


def test_acknowledged_commits_survive_kill9(tmp_path):
    wal_path = str(tmp_path / "server.wal")
    proc, host, port = _spawn_server(wal_path)
    acked = 0
    try:
        client = Client(host, port)
        client.execute("CREATE TABLE t (id INTEGER, word VARCHAR)")
        # Stream autocommitted inserts; SIGKILL the server mid-stream.
        for i in range(40):
            if i == 25:
                os.kill(proc.pid, signal.SIGKILL)
            try:
                client.execute(f"INSERT INTO t VALUES ({i}, 'w{i}')")
            except ServerError:
                break  # connection died; nothing past here was acked
            acked = i + 1
        client.abandon()
    finally:
        _stop(proc)
    assert acked >= 1, "no insert was acknowledged before the kill"

    proc2, host2, port2 = _spawn_server(wal_path)
    try:
        with Client(host2, port2) as client:
            rows = client.query("SELECT id FROM t ORDER BY id").rows
        ids = [r[0] for r in rows]
        # Every acknowledged insert must be there; at most one in-flight
        # (unacknowledged) insert may additionally have reached the log.
        assert ids[:acked] == list(range(acked))
        assert len(ids) <= acked + 1
    finally:
        _stop(proc2)


def test_restart_cycle_with_checkpoint(tmp_path):
    """Commits spread over two server lifetimes with auto-checkpointing
    on: the second boot recovers snapshot + suffix and serves all of
    them."""
    wal_path = str(tmp_path / "server.wal")
    proc, host, port = _spawn_server(wal_path, "--checkpoint-bytes", "512")
    try:
        with Client(host, port) as client:
            client.execute("CREATE TABLE t (id INTEGER)")
            for i in range(10):
                client.execute(f"INSERT INTO t VALUES ({i})")
    finally:
        _stop(proc)
    assert os.path.exists(wal_path + ".ckpt"), "auto-checkpoint never fired"

    proc2, host2, port2 = _spawn_server(wal_path, "--checkpoint-bytes", "512")
    try:
        with Client(host2, port2) as client:
            for i in range(10, 15):
                client.execute(f"INSERT INTO t VALUES ({i})")
            total = client.query("SELECT COUNT(*) FROM t").scalar()
        assert total == 15
    finally:
        _stop(proc2)

    proc3, host3, port3 = _spawn_server(wal_path)
    try:
        with Client(host3, port3) as client:
            rows = client.query("SELECT id FROM t ORDER BY id").rows
        assert [r[0] for r in rows] == list(range(15))
    finally:
        _stop(proc3)
