"""The chaos-injection harness (repro.testing.chaos).

Every injected fault must either be tolerated (worker crashes retry
serially) or surface as a *typed* governor/chaos error with full
statement atomicity — verified against an uninjected twin database.
"""

import os

import pytest

import repro
from repro.errors import InjectedFault, WorkerCrashError
from repro.testing import chaos as chaos_mod
from repro.testing.chaos import (
    KINDS,
    ChaosInjector,
    run_chaos_battery,
    run_chaos_seed,
)


class TestInjector:
    def test_from_seed_deterministic(self):
        a = ChaosInjector.from_seed(5)
        b = ChaosInjector.from_seed(5)
        assert (a.kind, a.nth) == (b.kind, b.nth)
        assert a.kind in KINDS

    def test_seeds_cover_all_kinds(self):
        kinds = {ChaosInjector.from_seed(s).kind for s in range(60)}
        assert kinds == set(KINDS)

    def test_disarmed_until_armed(self):
        injector = ChaosInjector("operator_raise", 1)
        governor = repro.QueryContext(chaos=injector)
        governor.check("warmup")  # disarmed: must not fire
        assert not injector.fired
        injector.arm()
        with pytest.raises(InjectedFault):
            governor.check("armed")
        assert injector.fired

    def test_fires_exactly_once(self):
        injector = ChaosInjector("operator_raise", 2).arm()
        governor = repro.QueryContext(chaos=injector)
        governor.check("one")
        with pytest.raises(InjectedFault):
            governor.check("two")
        governor.check("three")  # spent: never fires again
        assert injector.fired_at == "two"

    def test_from_env_parses_explicit_form(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "cancel:3")
        injector = ChaosInjector.from_env()
        assert (injector.kind, injector.nth) == ("cancel", 3)
        assert injector.armed

    def test_from_env_seed_and_off_forms(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "17")
        seeded = ChaosInjector.from_env()
        expected = ChaosInjector.from_seed(17)
        assert (seeded.kind, seeded.nth) == (
            expected.kind, expected.nth
        )
        monkeypatch.setenv("REPRO_CHAOS", "0")
        assert ChaosInjector.from_env() is None
        monkeypatch.delenv("REPRO_CHAOS")
        assert ChaosInjector.from_env() is None

    def test_from_env_rejects_bad_kind(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "nonsense:2")
        with pytest.raises(ValueError):
            ChaosInjector.from_env()


class TestFaultSurface:
    def test_worker_crash_is_retried_serially(self):
        injector = ChaosInjector("worker_crash", 1).arm()
        db = repro.Database(
            workers=2, parallel_threshold=0, morsel_rows=32,
            chaos=injector,
        )
        db.execute("CREATE TABLE t (a INTEGER)")
        db.insert_rows("t", [(i,) for i in range(1_000)])
        # The crash is injected on a worker thread; the coordinator
        # retries the morsel serially and the statement still succeeds.
        assert db.execute(
            "SELECT sum(a) FROM t WHERE a >= 0"
        ).scalar() == 499_500
        assert injector.fired
        counters = db.metrics.snapshot()["counters"]
        assert counters.get("parallel_morsel_retries_total", 0) >= 1
        db.close()

    def test_worker_crash_never_targets_coordinator(self):
        injector = ChaosInjector("worker_crash", 1).arm()
        injector.on_worker_task(0)  # coordinator: no fault
        assert not injector.fired
        with pytest.raises(WorkerCrashError):
            injector.on_worker_task(1)

    def test_alloc_fail_surfaces_as_budget_error(self):
        injector = ChaosInjector("alloc_fail", 1).arm()
        db = repro.Database(chaos=injector)
        db.execute("CREATE TABLE t (a INTEGER)")
        db.insert_rows("t", [(i,) for i in range(100)])
        with pytest.raises(repro.MemoryBudgetExceeded):
            db.execute("SELECT a, count(*) FROM t GROUP BY a")
        assert db.last_governor["verdict"] == "oom"
        # Statement atomicity: the table is untouched and usable.
        assert db.execute("SELECT count(*) FROM t").scalar() == 100

    def test_injected_cancel_surfaces_as_cancelled(self):
        injector = ChaosInjector("cancel", 2).arm()
        db = repro.Database(chaos=injector)
        db.execute("CREATE TABLE t (a INTEGER)")
        db.insert_rows("t", [(i,) for i in range(100)])
        with pytest.raises(repro.QueryCancelled):
            db.execute("SELECT sum(a) FROM t")
        assert db.last_governor["verdict"] == "cancelled"


class TestBattery:
    def test_single_seed_reproducible(self):
        first = run_chaos_seed(11)
        second = run_chaos_seed(11)
        for key in ("kind", "nth", "fired", "fired_at", "faults"):
            assert first[key] == second[key], key
        assert not first["failures"]

    def test_smoke_battery(self):
        result = run_chaos_battery(30, start=1)
        assert result["failures"] == []
        # The injector must actually fire for the vast majority of
        # seeds (a fault landing after the battery is tolerated).
        assert result["fired"] >= 24

    @pytest.mark.slow
    @pytest.mark.chaos
    def test_full_battery(self):
        result = run_chaos_battery(260, start=1)
        assert result["failures"] == []
        assert result["fired"] >= 200
        # All four fault kinds were exercised.
        assert set(result["per_kind"]) == set(KINDS)

    def test_cli_exit_codes(self, capsys):
        assert chaos_mod.main(["--seeds", "3", "--start", "1"]) == 0
        out = capsys.readouterr().out
        assert "OK" in out


class TestFuzzChaos:
    def test_fuzz_seed_with_chaos_agrees_with_sqlite(self):
        pytest.importorskip("sqlite3")
        from repro.testing.oracle import run_seed

        for seed in (3, 4, 5):
            divergences = run_seed(seed, chaos=True)
            assert divergences == []


@pytest.mark.skipif(
    "REPRO_CHAOS" in os.environ,
    reason="ambient chaos injection already active",
)
class TestEnvWiring:
    def test_database_picks_up_env_injector(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "operator_raise:1")
        db = repro.Database()
        db.execute("CREATE TABLE t (a INTEGER)")  # fires here or below
        try:
            db.insert_rows("t", [(1,)])
            db.execute("SELECT a FROM t")
        except InjectedFault:
            pass
        assert db.chaos is not None and db.chaos.fired
