"""INSERT / UPDATE / DELETE / CREATE TABLE AS semantics."""

import pytest

import repro
from repro.errors import BindError, CatalogError


class TestInsert:
    def test_values(self, db):
        db.execute("CREATE TABLE t (a INTEGER, b VARCHAR)")
        result = db.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
        assert result.rowcount == 2
        assert db.execute("SELECT count(*) FROM t").scalar() == 2

    def test_column_list_fills_missing_with_null(self, db):
        db.execute("CREATE TABLE t (a INTEGER, b VARCHAR, c FLOAT)")
        db.execute("INSERT INTO t (c, a) VALUES (1.5, 7)")
        assert db.execute("SELECT a, b, c FROM t").rows == [(7, None, 1.5)]

    def test_insert_select(self, db):
        db.execute("CREATE TABLE src (a INTEGER)")
        db.execute("CREATE TABLE dst (a INTEGER)")
        db.insert_rows("src", [(1,), (2,), (3,)])
        result = db.execute(
            "INSERT INTO dst SELECT a * 10 FROM src WHERE a > 1"
        )
        assert result.rowcount == 2
        assert db.execute("SELECT a FROM dst ORDER BY a").rows == [
            (20,), (30,),
        ]

    def test_type_coercion_on_insert(self, db):
        db.execute("CREATE TABLE t (a FLOAT)")
        db.execute("INSERT INTO t VALUES (1)")
        value = db.execute("SELECT a FROM t").scalar()
        assert value == 1.0 and isinstance(value, float)

    def test_arity_mismatch(self, db):
        db.execute("CREATE TABLE t (a INTEGER, b INTEGER)")
        with pytest.raises(BindError, match="values"):
            db.execute("INSERT INTO t VALUES (1)")

    def test_not_null_violation(self, db):
        db.execute("CREATE TABLE t (a INTEGER NOT NULL)")
        with pytest.raises(CatalogError, match="NOT NULL"):
            db.execute("INSERT INTO t VALUES (NULL)")

    def test_insert_expression_values(self, db):
        db.execute("CREATE TABLE t (a INTEGER)")
        db.execute("INSERT INTO t VALUES (2 + 3 * 4)")
        assert db.execute("SELECT a FROM t").scalar() == 14

    def test_insert_subquery_value(self, db):
        db.execute("CREATE TABLE t (a INTEGER)")
        db.insert_rows("t", [(5,)])
        db.execute("INSERT INTO t VALUES ((SELECT max(a) + 1 FROM t))")
        assert db.execute("SELECT max(a) FROM t").scalar() == 6


class TestUpdate:
    def test_update_where(self, people_db):
        result = people_db.execute(
            "UPDATE people SET age = age + 1 WHERE city = 'munich'"
        )
        assert result.rowcount == 2
        rows = people_db.execute(
            "SELECT name, age FROM people WHERE city = 'munich' "
            "ORDER BY name"
        ).rows
        assert rows == [("alice", 35), ("carol", 42)]

    def test_update_all_rows(self, db):
        db.execute("CREATE TABLE t (a INTEGER)")
        db.insert_rows("t", [(1,), (2,)])
        assert db.execute("UPDATE t SET a = 0").rowcount == 2

    def test_update_multiple_columns_sees_old_values(self, db):
        db.execute("CREATE TABLE t (a INTEGER, b INTEGER)")
        db.insert_rows("t", [(1, 10)])
        db.execute("UPDATE t SET a = b, b = a")
        assert db.execute("SELECT a, b FROM t").rows == [(10, 1)]

    def test_update_to_null(self, people_db):
        people_db.execute("UPDATE people SET city = NULL WHERE id = 1")
        assert people_db.execute(
            "SELECT city FROM people WHERE id = 1"
        ).scalar() is None

    def test_update_null_predicate_matches_nothing(self, db):
        db.execute("CREATE TABLE t (a INTEGER)")
        db.insert_rows("t", [(None,), (1,)])
        assert db.execute("UPDATE t SET a = 9 WHERE a > 0").rowcount == 1

    def test_update_not_null_violation(self, db):
        db.execute("CREATE TABLE t (a INTEGER NOT NULL)")
        db.insert_rows("t", [(1,)])
        with pytest.raises(CatalogError, match="NOT NULL"):
            db.execute("UPDATE t SET a = NULL")

    def test_update_with_cast(self, db):
        db.execute("CREATE TABLE t (a INTEGER)")
        db.insert_rows("t", [(1,)])
        db.execute("UPDATE t SET a = 2.9")
        assert db.execute("SELECT a FROM t").scalar() == 2


class TestDelete:
    def test_delete_where(self, people_db):
        assert people_db.execute(
            "DELETE FROM people WHERE age < 30"
        ).rowcount == 2
        assert people_db.execute(
            "SELECT count(*) FROM people"
        ).scalar() == 3

    def test_delete_all(self, people_db):
        assert people_db.execute("DELETE FROM people").rowcount == 5
        assert people_db.execute(
            "SELECT count(*) FROM people"
        ).scalar() == 0

    def test_delete_unknown_is_kept(self, db):
        db.execute("CREATE TABLE t (a INTEGER)")
        db.insert_rows("t", [(None,), (1,), (-1,)])
        db.execute("DELETE FROM t WHERE a > 0")
        # The NULL row's predicate is unknown -> not deleted.
        assert db.execute("SELECT count(*) FROM t").scalar() == 2


class TestCreateDrop:
    def test_create_table_as(self, people_db):
        result = people_db.execute(
            "CREATE TABLE munich AS SELECT name, age FROM people "
            "WHERE city = 'munich'"
        )
        assert result.rowcount == 2
        schema = people_db.table_schema("munich")
        assert schema.names() == ["name", "age"]

    def test_create_if_not_exists(self, db):
        db.execute("CREATE TABLE t (a INTEGER)")
        db.execute("CREATE TABLE IF NOT EXISTS t (a INTEGER)")
        with pytest.raises(CatalogError):
            db.execute("CREATE TABLE t (a INTEGER)")

    def test_drop_if_exists(self, db):
        db.execute("DROP TABLE IF EXISTS ghost")
        with pytest.raises(CatalogError):
            db.execute("DROP TABLE ghost")

    def test_drop_then_recreate(self, db):
        db.execute("CREATE TABLE t (a INTEGER)")
        db.insert_rows("t", [(1,)])
        db.execute("DROP TABLE t")
        db.execute("CREATE TABLE t (b VARCHAR)")
        assert db.table_schema("t").names() == ["b"]
        assert db.execute("SELECT count(*) FROM t").scalar() == 0


class TestStatementTransactions:
    def test_explicit_txn_rollback(self, db):
        db.execute("CREATE TABLE t (a INTEGER)")
        db.execute("BEGIN")
        db.execute("INSERT INTO t VALUES (1)")
        assert db.execute("SELECT count(*) FROM t").scalar() == 1
        db.execute("ROLLBACK")
        assert db.execute("SELECT count(*) FROM t").scalar() == 0

    def test_explicit_txn_commit(self, db):
        db.execute("CREATE TABLE t (a INTEGER)")
        db.execute("BEGIN; INSERT INTO t VALUES (1); COMMIT")
        assert db.execute("SELECT count(*) FROM t").scalar() == 1

    def test_failed_statement_autocommit_rolls_back(self, db):
        db.execute("CREATE TABLE t (a INTEGER NOT NULL)")
        with pytest.raises(CatalogError):
            db.execute("INSERT INTO t VALUES (1), (NULL)")
        assert db.execute("SELECT count(*) FROM t").scalar() == 0

    def test_transaction_context_manager(self, db):
        db.execute("CREATE TABLE t (a INTEGER)")
        with db.transaction():
            db.execute("INSERT INTO t VALUES (1)")
            db.execute("INSERT INTO t VALUES (2)")
        assert db.execute("SELECT count(*) FROM t").scalar() == 2
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.execute("INSERT INTO t VALUES (3)")
                raise RuntimeError("boom")
        assert db.execute("SELECT count(*) FROM t").scalar() == 2
