"""Adaptive query optimization: bounded top-N sort, limit pushdown,
the statistics-backed cardinality estimator, and observed-cardinality
feedback.

The top-N contract is *bit-identity*: for any ORDER BY + LIMIT
statement, the fused bounded sort must return exactly the rows — in
exactly the order, ties resolved identically — that the full
sort-then-limit pipeline returns, across serial/parallel execution and
raw/encoded storage.
"""

import pytest

from repro.api.database import Database
from repro.obs.metrics import MetricsRegistry
from repro.plan import logical as lp
from repro.plan.cardinality import CardinalityEstimator
from repro.plan.logical import PlanColumn


def counter(db, name):
    return db.metrics.snapshot()["counters"].get(name, 0.0)


ROWS = [
    # Deliberate ties in both b (groups of 4) and a (pairs), plus NULLs
    # sprinkled in every column the queries sort on.
    (
        i,
        None if i % 11 == 0 else (i // 2) % 10,
        None if i % 13 == 0 else f"s{(i // 4) % 5}",
        float(i % 7) + 0.25,
    )
    for i in range(120)
]

QUERIES = [
    "SELECT id, a, b FROM t ORDER BY a LIMIT 10",
    "SELECT id, a, b FROM t ORDER BY a DESC LIMIT 10",
    "SELECT id, a, b FROM t ORDER BY a NULLS FIRST LIMIT 10",
    "SELECT id, a, b FROM t ORDER BY a DESC NULLS LAST LIMIT 10",
    "SELECT id, a, b FROM t ORDER BY b, a DESC, id LIMIT 17 OFFSET 3",
    "SELECT id, a, b FROM t ORDER BY b DESC, a LIMIT 5 OFFSET 0",
    "SELECT id, b FROM t ORDER BY b LIMIT 0",          # LIMIT 0
    "SELECT id, b FROM t ORDER BY b LIMIT 5 OFFSET 500",  # offset past end
    "SELECT id, b FROM t ORDER BY b LIMIT 500",        # k >= n
    "SELECT id, c FROM t ORDER BY c, id DESC LIMIT 8",
    "SELECT a, count(*) AS n FROM t GROUP BY a ORDER BY n DESC, a LIMIT 4",
]


def _make_db(**kwargs):
    db = Database(**kwargs)
    db.execute(
        "CREATE TABLE t (id INTEGER, a INTEGER, b VARCHAR, c DOUBLE)"
    )
    db.insert_rows("t", ROWS)
    return db


class TestTopNBitIdentity:
    def test_topn_matches_full_sort_exactly(self):
        fused = _make_db(topn=True)
        full = _make_db(topn=False)
        for sql in QUERIES:
            assert fused.execute(sql).rows == full.execute(sql).rows, sql

    def test_matrix_serial_parallel_raw_encoded(self):
        # {top-N, full sort} x {serial, parallel} x {raw, encoded}: all
        # eight configurations must agree row-for-row.
        reference = None
        configs = [
            dict(topn=topn, encoding=encoding, **workers)
            for topn in (True, False)
            for encoding in ("raw", "auto")
            for workers in (
                dict(workers=1),
                dict(workers=4, parallel_threshold=0, morsel_rows=32),
            )
        ]
        for config in configs:
            db = _make_db(profile_operators=False, **config)
            rows = [db.execute(sql).rows for sql in QUERIES]
            if reference is None:
                reference = rows
            else:
                assert rows == reference, config
            db.close()

    def test_fusion_visible_and_counted(self):
        db = _make_db()
        before = counter(db, "sort_topn_used_total")
        analyzed = db.explain_analyze(
            "SELECT id FROM t ORDER BY a LIMIT 3"
        )
        assert analyzed.find("TopNSort") is not None
        assert len(analyzed.result) == 3
        assert counter(db, "sort_topn_used_total") > before

    def test_env_switch_disables_fusion(self, monkeypatch):
        monkeypatch.setenv("REPRO_TOPN", "0")
        db = _make_db()
        analyzed = db.explain_analyze(
            "SELECT id FROM t ORDER BY a LIMIT 3"
        )
        assert analyzed.find("TopNSort") is None
        assert analyzed.find("Sort") is not None


class TestLimitPushdownAndEarlyExit:
    def test_limit_early_exit_stops_scanning(self):
        # With 8-row morsels and LIMIT 5, the limit must stop pulling
        # long before the scan has produced all 400 rows.
        db = Database(morsel_rows=8)
        db.execute("CREATE TABLE big (x INTEGER)")
        db.insert_rows("big", [(i,) for i in range(400)])
        analyzed = db.explain_analyze("SELECT x FROM big LIMIT 5")
        scan = analyzed.find("Scan(big)")
        assert len(analyzed.result) == 5
        assert scan.rows_out < 400

    def test_limit_pushes_through_projection(self):
        db = _make_db()
        before = counter(db, "limit_pushdown_total")
        rows = db.execute("SELECT id FROM t LIMIT 7").rows
        assert len(rows) == 7
        assert counter(db, "limit_pushdown_total") > before

    def test_limit_caps_union_all_branches(self):
        db = _make_db()
        before = counter(db, "limit_pushdown_total")
        rows = db.execute(
            "SELECT id FROM t UNION ALL SELECT id FROM t LIMIT 9"
        ).rows
        assert len(rows) == 9
        assert counter(db, "limit_pushdown_total") > before

    def test_limit_pushdown_preserves_rows_vs_disabled_paths(self):
        # The pushdown may only relocate work, never change output:
        # compare against the full-sort twin which plans identically at
        # the logical level (pushdown applies to both, so also compare
        # with hand-computed prefixes).
        db = _make_db()
        rows = db.execute(
            "SELECT id FROM t UNION ALL SELECT id FROM t LIMIT 9"
        ).rows
        assert rows == [(i,) for i in range(9)]

    def test_limit_not_pushed_below_filter(self):
        # A filter is not row-preserving: LIMIT above it must see
        # post-filter rows.
        db = _make_db()
        rows = db.execute(
            "SELECT id FROM t WHERE a = 3 LIMIT 4"
        ).rows
        assert len(rows) == 4
        ids = [r[0] for r in rows]
        assert all((i // 2) % 10 == 3 and i % 11 != 0 for i in ids)


class TestStatisticsEstimates:
    def test_equality_on_dictionary_column_uses_stats(self):
        # Dictionary NDV only exists with encoded storage, so pin the
        # encoding rather than inherit REPRO_ENCODING (the third
        # `make test` leg forces raw).
        db = _make_db(encoding="auto")
        text = db.explain("SELECT id FROM t WHERE b = 's1'")
        assert "src=stats" in text

    def test_range_on_integer_uses_stats(self):
        db = _make_db()
        text = db.explain("SELECT id FROM t WHERE id > 100")
        assert "src=stats" in text

    def test_is_null_uses_stats(self):
        db = _make_db()
        text = db.explain("SELECT id FROM t WHERE a IS NULL")
        assert "src=stats" in text

    def test_scan_estimate_is_static_catalog_count(self):
        db = _make_db()
        text = db.explain("SELECT id FROM t")
        assert "est=120" in text
        assert "src=feedback" not in text

    def test_range_estimate_interpolates(self):
        # id is uniform on [0, 119]; id > 100 should estimate ~19 rows,
        # far from the static 30% guess (36) and the old flat fallback.
        db = _make_db()
        analyzed = db.explain_analyze("SELECT id FROM t WHERE id > 100")
        filt = analyzed.find("Filter")
        assert filt is not None
        assert filt.estimated_rows is not None
        assert abs(filt.estimated_rows - 19) <= 3

    def test_out_of_range_literal_estimates_zero(self):
        db = _make_db()
        analyzed = db.explain_analyze(
            "SELECT id FROM t WHERE id = 100000"
        )
        filt = analyzed.find("Filter")
        assert filt.estimated_rows == 0

    def test_scan_miss_counter_and_fallback(self):
        def missing(_name):
            raise KeyError("no such table")

        metrics = MetricsRegistry()
        estimator = CardinalityEstimator(missing, metrics=metrics)
        scan = lp.LogicalScan(
            table_name="ghost",
            output=[PlanColumn("x", "x", None)],
        )
        assert estimator.estimate(scan) == 1000.0
        snapshot = metrics.snapshot()["counters"]
        assert snapshot.get("cardinality_stats_miss_total", 0.0) >= 1.0


def _feedback_db():
    """A join whose static estimate is badly wrong: v = 1.0 matches
    ~95% of big (static equality guess: 10%), so the optimizer's
    build-side choice flips once observed cardinalities arrive."""
    db = Database(plan_cache=True)
    db.execute("CREATE TABLE big (k INTEGER, v DOUBLE)")
    db.insert_rows(
        "big",
        [
            (i % 500, 1.0 if i % 20 != 0 else i + 0.5)
            for i in range(4000)
        ],
    )
    db.execute("CREATE TABLE small (k INTEGER)")
    db.insert_rows("small", [(i,) for i in range(500)])
    return db


FEEDBACK_SQL = (
    "SELECT count(*) FROM big JOIN small ON big.k = small.k "
    "WHERE big.v = 1.0"
)


class TestSmallBuildJoinFastPath:
    """The raw-integer-key join path (build side <= SMALL_BUILD_ROWS)
    must produce exactly the rows, in exactly the order, of the joint
    factorization path it bypasses."""

    JOIN_QUERIES = [
        "SELECT f.id, f.k, d.tag FROM fact f JOIN dim d ON f.k = d.k",
        "SELECT f.id, d.tag FROM fact f LEFT JOIN dim d ON f.k = d.k",
        "SELECT count(*), sum(f.id) FROM fact f JOIN dim d ON f.k = d.k",
        "SELECT d.tag, count(*) AS n FROM fact f JOIN dim d "
        "ON f.k = d.k GROUP BY d.tag ORDER BY n DESC, d.tag LIMIT 3",
    ]

    @staticmethod
    def _join_db(**kwargs):
        db = Database(**kwargs)
        db.execute("CREATE TABLE fact (id INTEGER, k BIGINT)")
        # Duplicates (k repeats), NULL keys, and keys with no dim match.
        db.insert_rows(
            "fact",
            [
                (i, None if i % 17 == 0 else (i * 31) % 40)
                for i in range(300)
            ],
        )
        db.execute("CREATE TABLE dim (k INTEGER, tag VARCHAR)")
        db.insert_rows(
            "dim",
            [(k, f"tag{k % 4}") for k in range(0, 30)]
            + [(None, "nulltag")],
        )
        return db

    def test_fast_path_bit_identical_to_factorize(self, monkeypatch):
        fast = self._join_db()
        slow = self._join_db()
        expected = {
            sql: fast.execute(sql).rows for sql in self.JOIN_QUERIES
        }
        # Force the factorize path on the twin regardless of build size.
        import repro.exec.join as join_mod
        monkeypatch.setattr(join_mod, "SMALL_BUILD_ROWS", -1)
        for sql in self.JOIN_QUERIES:
            assert slow.execute(sql).rows == expected[sql], sql

    def test_fast_path_parallel_matches_serial(self):
        serial = self._join_db(workers=1)
        parallel = self._join_db(
            workers=4, parallel_threshold=0, morsel_rows=32
        )
        for sql in self.JOIN_QUERIES:
            assert (
                parallel.execute(sql).rows == serial.execute(sql).rows
            ), sql

    def test_fast_path_rejects_varchar_and_multi_key(self):
        # VARCHAR keys and composite keys must keep the factorize path;
        # this is a behavioural check that they still join correctly.
        db = Database()
        db.execute("CREATE TABLE a (s VARCHAR, x INTEGER)")
        db.insert_rows("a", [(f"s{i % 5}", i) for i in range(50)])
        db.execute("CREATE TABLE b (s VARCHAR)")
        db.insert_rows("b", [(f"s{i}",) for i in range(3)])
        rows = db.execute(
            "SELECT count(*) FROM a JOIN b ON a.s = b.s"
        ).rows
        assert rows == [(30,)]


class TestCardinalityFeedback:
    def test_feedback_overrides_and_provenance(self):
        db = _feedback_db()
        expected = db.execute(FEEDBACK_SQL).rows
        for _ in range(3):
            assert db.execute(FEEDBACK_SQL).rows == expected
        text = db.explain(FEEDBACK_SQL)
        assert "src=feedback" in text
        assert counter(db, "optimizer_feedback_applied_total") >= 1.0

    def test_feedback_flips_plan_once_then_stabilizes(self):
        db = _feedback_db()
        expected = db.execute(FEEDBACK_SQL).rows  # cold: static plan
        db.execute(FEEDBACK_SQL)  # feedback arrives: epoch bump, replan
        assert (
            counter(db, "plan_cache_feedback_invalidations_total")
            == 1.0
        )
        # No-thrash regression: once the re-optimized plan is cached,
        # identical statements must be served as cache hits — the
        # feedback check may never oscillate between two plans.
        hits_before = counter(db, "exec_plan_cache_hits_total")
        assert db.execute(FEEDBACK_SQL).rows == expected
        assert db.execute(FEEDBACK_SQL).rows == expected
        assert (
            counter(db, "exec_plan_cache_hits_total") == hits_before + 2
        )
        assert (
            counter(db, "plan_cache_feedback_invalidations_total")
            == 1.0
        )

    def test_feedback_disabled_by_switch(self):
        db = _feedback_db()
        db.feedback_enabled = False
        for _ in range(3):
            db.execute(FEEDBACK_SQL)
        assert (
            counter(db, "plan_cache_feedback_invalidations_total")
            == 0.0
        )
        assert "src=feedback" not in db.explain(FEEDBACK_SQL)

    def test_feedback_env_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_FEEDBACK", "off")
        db = _feedback_db()
        assert db.feedback_enabled is False
