"""Zone-map pruning, fused pipelines, and the CSR cache.

The hot-path contract (docs/performance.md): pruning a morsel or
reusing a cached CSR index may never change a statement's result —
every test here runs the same statement against a hot-path-off twin
(``plan_cache=False`` disables the whole stack) and requires identical
rows, then asserts the counters actually moved (or stayed put, for the
cases where pruning must decline).
"""

import math

import pytest

from repro.api.database import Database
from repro.analytics.csr import csr_cache_clear
from repro.errors import ExecutionError
from repro.storage.zonemap import ZONE_ROWS, ScanPruner, build_zone_map


def counter(db, name):
    return db.metrics.snapshot()["counters"].get(name, 0.0)


def pruned(db):
    return counter(db, "scan_morsels_pruned_total")


def make_pair(rows, morsel_rows=ZONE_ROWS, nulls_from=None,
              nan_from=None, workers=None):
    """(hot, cold) databases over the same ``t(id, v, name)`` data.

    ``id`` ascends 0..rows-1 so zone min/max ranges are disjoint;
    ``nulls_from``/``nan_from`` turn every ``v`` from that id on into
    NULL / NaN (whole trailing zones become all-NULL / all-NaN)."""
    dbs = []
    for plan_cache in (True, False):
        kwargs = dict(
            morsel_rows=morsel_rows,
            profile_operators=False,
            plan_cache=plan_cache,
        )
        if workers is not None:
            kwargs.update(workers=workers, parallel_threshold=0)
        db = Database(**kwargs)
        db.execute(
            "CREATE TABLE t (id INTEGER, name VARCHAR, v DOUBLE)"
        )

        def value(i):
            if nulls_from is not None and i >= nulls_from:
                return None
            if nan_from is not None and i >= nan_from:
                return math.nan
            return i * 0.5

        db.executemany(
            "INSERT INTO t VALUES (?, ?, ?)",
            [(i, f"n{i % 5}", value(i)) for i in range(rows)],
        )
        dbs.append(db)
    return dbs[0], dbs[1]


def check(hot, cold, sql, params=None):
    """Identical rows on both engines; returns the hot-path rows."""
    rows = hot.execute(sql, params).rows
    assert rows == cold.execute(sql, params).rows
    return rows


# ---------------------------------------------------------------------------
# Serial pruning
# ---------------------------------------------------------------------------


def test_point_query_skips_morsels():
    hot, cold = make_pair(5 * ZONE_ROWS)
    assert check(
        hot, cold, "SELECT v FROM t WHERE id = ?", (7,)
    ) == [(3.5,)]
    # id ascends, so four of the five zones cannot contain id = 7.
    assert pruned(hot) == 4.0
    assert pruned(cold) == 0.0


def test_range_predicates_prune_and_match():
    hot, cold = make_pair(4 * ZONE_ROWS)
    n = 4 * ZONE_ROWS
    cases = [
        ("SELECT count(*) FROM t WHERE id < ?", (100,), 100),
        ("SELECT count(*) FROM t WHERE id <= ?", (100,), 101),
        ("SELECT count(*) FROM t WHERE id > ?", (n - 50,), 49),
        ("SELECT count(*) FROM t WHERE id >= ?", (n - 50,), 50),
        ("SELECT count(*) FROM t WHERE ? > id", (3,), 3),
    ]
    for sql, params, expected in cases:
        before = pruned(hot)
        assert check(hot, cold, sql, params) == [(expected,)]
        assert pruned(hot) > before
    assert pruned(cold) == 0.0


def test_conjunction_prunes_by_any_conjunct():
    hot, cold = make_pair(3 * ZONE_ROWS)
    # The VARCHAR conjunct has no zone map; id does the pruning.
    before = pruned(hot)
    rows = check(
        hot, cold,
        "SELECT id FROM t WHERE name = 'n1' AND id < 10 ORDER BY id",
    )
    assert rows == [(1,), (6,)]
    assert pruned(hot) > before


def test_negated_literal_and_or_do_not_misprune():
    hot, cold = make_pair(2 * ZONE_ROWS)
    # OR is one non-prunable conjunct: nothing may be skipped.
    before = pruned(hot)
    check(
        hot, cold,
        "SELECT count(*) FROM t WHERE id < 5 OR id > ?",
        (2 * ZONE_ROWS - 3,),
    )
    assert pruned(hot) == before
    # Negated parameter constants resolve through the unary minus.
    check(hot, cold, "SELECT count(*) FROM t WHERE id < -?", (5,))
    assert pruned(hot) > before


def test_unsafe_predicate_disables_pruning():
    hot, cold = make_pair(2 * ZONE_ROWS)
    before = pruned(hot)
    # Division can raise on data the pruned morsels would never
    # evaluate, so the whole predicate refuses zone pruning.
    check(
        hot, cold,
        "SELECT count(*) FROM t WHERE id = 3 AND 10 / (id + 1) > 0",
    )
    assert pruned(hot) == before


# ---------------------------------------------------------------------------
# NULL / NaN semantics
# ---------------------------------------------------------------------------


def test_is_null_and_is_not_null_pruning():
    n = 3 * ZONE_ROWS
    hot, cold = make_pair(n, nulls_from=2 * ZONE_ROWS)
    before = pruned(hot)
    assert check(
        hot, cold, "SELECT count(*) FROM t WHERE v IS NULL"
    ) == [(ZONE_ROWS,)]
    assert pruned(hot) == before + 2  # the two fully-valid zones
    assert check(
        hot, cold, "SELECT count(*) FROM t WHERE v IS NOT NULL"
    ) == [(2 * ZONE_ROWS,)]
    assert pruned(hot) == before + 3  # + the all-NULL zone


def test_comparisons_never_match_null_zones():
    n = 2 * ZONE_ROWS
    hot, cold = make_pair(n, nulls_from=ZONE_ROWS)
    before = pruned(hot)
    # The all-NULL zone has no finite values: prunable for every
    # comparison, including <>.
    assert check(
        hot, cold, "SELECT count(*) FROM t WHERE v >= 0.0"
    ) == [(ZONE_ROWS,)]
    assert check(
        hot, cold, "SELECT count(*) FROM t WHERE v <> 1e9"
    ) == [(ZONE_ROWS,)]
    assert pruned(hot) > before


def test_nan_rows_satisfy_not_equal():
    n = 2 * ZONE_ROWS
    hot, cold = make_pair(n, nan_from=ZONE_ROWS)
    # NaN <> c is True: the NaN zone must NOT be pruned for <>.
    assert check(
        hot, cold, "SELECT count(*) FROM t WHERE v <> 17.0"
    ) == [(n - 1,)]
    # ...but NaN = c / NaN < c are False: prunable for = and ranges.
    before = pruned(hot)
    assert check(
        hot, cold, "SELECT count(*) FROM t WHERE v = 17.0"
    ) == [(1,)]
    assert check(
        hot, cold, "SELECT count(*) FROM t WHERE v < 0.0"
    ) == [(0,)]
    assert pruned(hot) > before


# ---------------------------------------------------------------------------
# Invalidation under DML
# ---------------------------------------------------------------------------


def test_inserts_are_visible_through_pruned_plans():
    hot, cold = make_pair(2 * ZONE_ROWS)
    sql = "SELECT count(*) FROM t WHERE id >= ?"
    probe = (10 * ZONE_ROWS,)
    assert check(hot, cold, sql, probe) == [(0,)]
    for db in (hot, cold):
        db.execute(
            "INSERT INTO t VALUES (?, 'x', 1.0)", (10 * ZONE_ROWS,)
        )
    # New table version, new zone maps: the row must appear even
    # though the prior execution pruned this id range away.
    assert check(hot, cold, sql, probe) == [(1,)]
    for db in (hot, cold):
        db.execute("DELETE FROM t WHERE id >= ?", (ZONE_ROWS,))
    assert check(hot, cold, sql, (0,)) == [(ZONE_ROWS,)]


def test_update_rewrites_zone_statistics():
    hot, cold = make_pair(2 * ZONE_ROWS)
    sql = "SELECT count(*) FROM t WHERE v > ?"
    limit = (2.0 * ZONE_ROWS,)
    assert check(hot, cold, sql, limit) == [(0,)]
    for db in (hot, cold):
        db.execute("UPDATE t SET v = v + 100000 WHERE id < 10")
    assert check(hot, cold, sql, limit) == [(10,)]


# ---------------------------------------------------------------------------
# Parallel pool
# ---------------------------------------------------------------------------


def test_parallel_scan_prunes_and_matches_serial():
    hot, cold = make_pair(
        3 * ZONE_ROWS, morsel_rows=1024, workers=4
    )
    assert check(
        hot, cold, "SELECT v FROM t WHERE id = ?", (11,)
    ) == [(5.5,)]
    # Zones are 4096 rows: the morsels of the two foreign zones (four
    # 1024-row morsels each) are pruned; zone 0's morsels are not.
    assert pruned(hot) == 8.0
    check(hot, cold, "SELECT count(*) FROM t WHERE id < 100")
    hot.close()
    cold.close()


# ---------------------------------------------------------------------------
# Fused pipeline shapes
# ---------------------------------------------------------------------------


def test_constant_projection_over_filter_keeps_rows():
    # Regression: a projection referencing no columns above a filter
    # must not drop the filter's survivors (the zero-column batch
    # loses its row count).
    hot, cold = make_pair(64, morsel_rows=16, nulls_from=63)
    rows = check(hot, cold, "SELECT 36 AS c0 FROM t WHERE v IS NULL")
    assert rows == [(36,)]


def test_fused_chain_matches_operator_chain():
    hot, cold = make_pair(ZONE_ROWS, morsel_rows=256)
    check(
        hot, cold,
        "SELECT v * 2 AS d, id + 1 FROM t "
        "WHERE id >= ? AND name <> 'n0' ORDER BY id LIMIT 7",
        (50,),
    )
    check(
        hot, cold,
        "SELECT count(*) FROM (SELECT id FROM t WHERE v < 8.0) s "
        "WHERE s.id > 2",
    )


def test_error_ordering_preserved_under_fusion():
    hot, cold = make_pair(128, morsel_rows=32)
    # Data-dependent errors must surface identically on both paths
    # (division is not prune-safe, so no morsel skipping hides them).
    for db in (hot, cold):
        with pytest.raises(ExecutionError):
            db.execute("SELECT count(*) FROM t WHERE v / id > 0.4")
    # Once the offending row is gone, both engines agree again.
    for db in (hot, cold):
        db.execute("DELETE FROM t WHERE id = 0")
    check(hot, cold, "SELECT count(*) FROM t WHERE v / id > 0.4")


# ---------------------------------------------------------------------------
# CSR cache
# ---------------------------------------------------------------------------


PAGERANK = (
    "SELECT vertex, rank FROM PAGERANK((SELECT src, dest FROM e), "
    "0.85, 0.0, 20) ORDER BY vertex"
)


@pytest.fixture(autouse=True)
def _fresh_csr_cache():
    csr_cache_clear()
    yield
    csr_cache_clear()


def make_graph_db(plan_cache=True):
    db = Database(profile_operators=False, plan_cache=plan_cache)
    db.execute("CREATE TABLE e (src INTEGER, dest INTEGER)")
    db.executemany(
        "INSERT INTO e VALUES (?, ?)",
        [(i, (i + 1) % 50) for i in range(50)]
        + [((i + 1) % 50, i) for i in range(50)],
    )
    return db


def test_csr_cache_hits_and_dml_invalidation():
    db = make_graph_db()
    first = db.execute(PAGERANK).rows
    assert counter(db, "analytics_csr_cache_misses_total") == 1.0
    second = db.execute(PAGERANK).rows
    assert second == first
    assert counter(db, "analytics_csr_cache_hits_total") == 1.0
    # DML produces a new table version: the cached CSR must not serve.
    db.execute("INSERT INTO e VALUES (0, 25)")
    db.execute("INSERT INTO e VALUES (25, 0)")
    third = db.execute(PAGERANK).rows
    assert counter(db, "analytics_csr_cache_misses_total") == 2.0
    assert third != first
    # The post-DML result matches a cold engine over the same edges.
    cold = make_graph_db(plan_cache=False)
    cold.execute("INSERT INTO e VALUES (0, 25)")
    cold.execute("INSERT INTO e VALUES (25, 0)")
    assert cold.execute(PAGERANK).rows == third
    assert counter(cold, "analytics_csr_cache_hits_total") == 0.0
    assert counter(cold, "analytics_csr_cache_misses_total") == 0.0


def test_csr_cache_weight_lambda_keying():
    db = Database(profile_operators=False, plan_cache=True)
    db.execute("CREATE TABLE e (src INTEGER, dest INTEGER, w FLOAT)")
    db.executemany(
        "INSERT INTO e VALUES (?, ?, ?)",
        [(0, 1, 1.0), (0, 2, 10.0), (1, 0, 1.0), (2, 0, 1.0)],
    )
    weighted = (
        "SELECT vertex, rank FROM PAGERANK("
        "(SELECT src, dest, w FROM e), 0.85, 0.0, 60, "
        "LAMBDA(edge) edge.w) ORDER BY vertex"
    )
    unweighted = (
        "SELECT vertex, rank FROM PAGERANK("
        "(SELECT src, dest FROM e), 0.85, 0.0, 60) ORDER BY vertex"
    )
    a1 = db.execute(weighted).rows
    b1 = db.execute(unweighted).rows
    # Distinct keys (the weight lambda is part of the fingerprint):
    # both are cold, and neither may serve the other's graph.
    assert counter(db, "analytics_csr_cache_misses_total") == 2.0
    assert db.execute(weighted).rows == a1
    assert db.execute(unweighted).rows == b1
    assert counter(db, "analytics_csr_cache_hits_total") == 2.0
    ranks = dict(a1)
    assert ranks[2] > ranks[1]


# ---------------------------------------------------------------------------
# Unit level
# ---------------------------------------------------------------------------


def test_build_zone_map_statistics():
    db = Database(profile_operators=False)
    db.execute("CREATE TABLE z (x DOUBLE)")
    db.executemany(
        "INSERT INTO z VALUES (?)",
        [(float(i),) for i in range(100)] + [(None,)] * 5,
    )
    txn = db.txns.begin()
    try:
        column = txn.read("z").column_by_name("x")
        zones = build_zone_map(column, zone_rows=64)
    finally:
        txn.rollback()
    assert zones.n_zones == 2
    assert zones.mins[0] == 0.0 and zones.maxs[0] == 63.0
    assert zones.mins[1] == 64.0 and zones.maxs[1] == 99.0
    assert zones.null_counts.tolist() == [0, 5]
    assert zones.valid_counts.tolist() == [64, 36]


def test_scan_pruner_inactive_without_usable_conjuncts():
    db = Database(profile_operators=False)
    db.execute("CREATE TABLE z (x DOUBLE)")
    db.execute("INSERT INTO z VALUES (1.0)")
    result = db.execute("SELECT x AS only FROM z WHERE x + x > 0.5")
    assert result.rows == [(1.0,)]
    # x + x is no `col <op> const` shape: the pruner stays inactive.
    pruner = ScanPruner([], [])
    assert not pruner.active
    txn = db.txns.begin()
    try:
        data = txn.read("z")
    finally:
        txn.rollback()
    ranges = [(0, 1)]
    assert pruner.keep_ranges(data, ranges) == ([(0, 1)], 0)
