"""UDFs (layer 2) and lambda expressions (section 7)."""

import pytest

import repro
from repro.errors import BindError, UDFError
from repro.types import DOUBLE, INTEGER, VARCHAR


class TestScalarUDFs:
    def test_basic_udf(self, db):
        db.create_function("plus_one", lambda x: x + 1, INTEGER)
        assert db.execute("SELECT plus_one(41)").scalar() == 42

    def test_udf_over_table(self, people_db):
        people_db.create_function(
            "shout", lambda s: (s or "").upper() + "!", VARCHAR
        )
        rows = people_db.execute(
            "SELECT shout(name) FROM people WHERE id <= 2 ORDER BY id"
        ).rows
        assert rows == [("ALICE!",), ("BOB!",)]

    def test_udf_receives_none_for_null(self, db):
        db.create_function(
            "is_missing", lambda x: x is None, "BOOLEAN", arity=1
        )
        db.execute("CREATE TABLE t (a INTEGER)")
        db.insert_rows("t", [(None,), (1,)])
        rows = db.execute("SELECT is_missing(a) FROM t").rows
        assert rows == [(True,), (False,)]

    def test_udf_returning_none_is_null(self, db):
        db.create_function("nothing", lambda x: None, INTEGER)
        assert db.execute("SELECT nothing(1)").scalar() is None

    def test_udf_arity_checked(self, db):
        db.create_function("two_args", lambda a, b: a + b, INTEGER)
        with pytest.raises(BindError, match="argument"):
            db.execute("SELECT two_args(1)")

    def test_udf_exception_wrapped(self, db):
        def boom(x):
            raise RuntimeError("kaput")

        db.create_function("boom", boom, INTEGER)
        db.execute("CREATE TABLE t (a INTEGER)")
        db.insert_rows("t", [(1,)])
        with pytest.raises(UDFError, match="kaput"):
            db.execute("SELECT boom(a) FROM t")

    def test_udf_composes_with_sql(self, db):
        db.create_function("double_it", lambda x: x * 2, INTEGER)
        db.execute("CREATE TABLE t (a INTEGER)")
        db.insert_rows("t", [(1,), (2,), (3,)])
        assert db.execute(
            "SELECT sum(double_it(a)) FROM t WHERE double_it(a) > 2"
        ).scalar() == 10

    def test_return_type_by_name(self, db):
        db.create_function("half", lambda x: x / 2, "FLOAT")
        assert db.execute("SELECT half(3)").scalar() == 1.5


class TestTableUDFs:
    def test_table_udf_in_from(self, db):
        def series(n):
            for i in range(int(n)):
                yield (i, i * i)

        db.create_table_function(
            "squares", series, [("n", INTEGER), ("sq", INTEGER)]
        )
        rows = db.execute(
            "SELECT sq FROM squares(4) WHERE n > 1 ORDER BY n"
        ).rows
        assert rows == [(4,), (9,)]

    def test_table_udf_joins_with_tables(self, people_db):
        people_db.create_table_function(
            "ids", lambda: [(1,), (3,)], [("id", INTEGER)]
        )
        rows = people_db.execute(
            "SELECT name FROM people p JOIN ids() i ON p.id = i.id "
            "ORDER BY name"
        ).rows
        assert rows == [("alice",), ("carol",)]

    def test_table_udf_error_wrapped(self, db):
        def bad():
            raise ValueError("nope")

        db.create_table_function("bad_fn", bad, [("x", INTEGER)])
        with pytest.raises(UDFError, match="nope"):
            db.execute("SELECT * FROM bad_fn()")

    def test_table_udf_rejects_subquery_args(self, db):
        db.create_table_function(
            "one", lambda: [(1,)], [("x", INTEGER)]
        )
        with pytest.raises(BindError, match="scalar"):
            db.execute("SELECT * FROM one((SELECT 1))")


class TestLambdas:
    def test_lambda_only_in_operator_position(self, db):
        with pytest.raises(BindError, match="lambda"):
            db.execute("SELECT LAMBDA(a) a.x + 1")

    def test_lambda_types_inferred(self, db):
        # The paper: input/output types are inferred, never declared.
        db.execute("CREATE TABLE pts (x FLOAT)")
        db.insert_rows("pts", [(0.0,), (4.0,)])
        rows = db.execute(
            "SELECT cluster FROM KMEANS((SELECT x FROM pts), "
            "(SELECT x FROM pts), LAMBDA(a, b) (a.x - b.x)^2, 3) "
            "ORDER BY cluster"
        ).rows
        assert rows == [(0,), (1,)]

    def test_lambda_wrong_param_count(self, db):
        db.execute("CREATE TABLE pts (x FLOAT)")
        db.insert_rows("pts", [(0.0,)])
        with pytest.raises(BindError, match="parameter"):
            db.execute(
                "SELECT * FROM KMEANS((SELECT x FROM pts), "
                "(SELECT x FROM pts), LAMBDA(a) a.x, 3)"
            )

    def test_lambda_unknown_attribute(self, db):
        db.execute("CREATE TABLE pts (x FLOAT)")
        db.insert_rows("pts", [(0.0,)])
        with pytest.raises(BindError, match="not found"):
            db.execute(
                "SELECT * FROM KMEANS((SELECT x FROM pts), "
                "(SELECT x FROM pts), LAMBDA(a, b) a.nope, 3)"
            )

    def test_lambda_with_builtin_functions(self, db):
        db.execute("CREATE TABLE pts (x FLOAT)")
        db.insert_rows("pts", [(0.0,), (1.0,), (10.0,)])
        rows = db.execute(
            "SELECT count(*) FROM KMEANS((SELECT x FROM pts), "
            "(SELECT x FROM pts LIMIT 2), "
            "LAMBDA(a, b) sqrt((a.x - b.x)^2), 5)"
        )
        assert rows.scalar() == 2

    def test_lambda_with_udf_black_box(self, db):
        """A lambda body may call a Python UDF; the operator still runs,
        just without vectorisation of that call (section 4.1)."""
        db.create_function(
            "pydist", lambda a, b: (a - b) ** 2, DOUBLE
        )
        db.execute("CREATE TABLE pts (x FLOAT)")
        db.insert_rows("pts", [(0.0,), (0.1,), (9.0,)])
        rows = db.execute(
            "SELECT size FROM KMEANS((SELECT x FROM pts), "
            "(SELECT x FROM pts LIMIT 2), "
            "LAMBDA(a, b) pydist(a.x, b.x), 10) ORDER BY size"
        ).rows
        assert [r[0] for r in rows] == [1, 2]

    def test_unicode_and_ascii_spellings_equal(self, db):
        db.execute("CREATE TABLE pts (x FLOAT)")
        db.insert_rows("pts", [(0.0,), (5.0,)])
        uni = db.execute(
            "SELECT x FROM KMEANS((SELECT x FROM pts), "
            "(SELECT x FROM pts), λ(a, b) (a.x - b.x)^2, 3) ORDER BY x"
        ).rows
        ascii_rows = db.execute(
            "SELECT x FROM KMEANS((SELECT x FROM pts), "
            "(SELECT x FROM pts), LAMBDA(a, b) (a.x - b.x)^2, 3) "
            "ORDER BY x"
        ).rows
        assert uni == ascii_rows
