"""The multi-session server: wire protocol, sessions, typed errors.

The golden tests pin exact frame *bytes* — canonical JSON behind a
4-byte big-endian length prefix — so any wire change is a deliberate,
visible diff here, not silent drift. The live-server tests run a real
socket server on an ephemeral port (docs/server.md).
"""

import io
import socket
import threading

import pytest

from repro.api.database import Database
from repro.errors import (
    AdmissionRejected,
    BindError,
    CatalogError,
    MemoryBudgetExceeded,
    ParseError,
    ProtocolError,
    QueryTimeout,
    ReproError,
)
from repro.server import Client, Server
from repro.server.client import ServerError
from repro.server.protocol import (
    MAX_FRAME_BYTES,
    decode_payload,
    dump_payload,
    encode_frame,
    error_code_of,
    error_payload,
    raise_for_error,
    read_frame,
    result_payload,
)
from repro.server.session import TenantBudget, clamp_budget
from repro.testing.chaos import ChaosInjector

pytestmark = pytest.mark.server


@pytest.fixture
def server():
    srv = Server(executors=2, queue_depth=8, max_sessions=8)
    srv.start()
    yield srv
    srv.stop()


def connect(server, **kwargs) -> Client:
    host, port = server.address
    return Client(host, port, **kwargs)


# ---------------------------------------------------------------------------
# golden frames: the wire format, byte for byte
# ---------------------------------------------------------------------------


class TestGoldenFrames:
    def test_connect_request(self):
        assert encode_frame({"op": "connect"}) == (
            b'\x00\x00\x00\x10{"op":"connect"}'
        )

    def test_query_request(self):
        assert encode_frame({"op": "query", "sql": "SELECT 1"}) == (
            b'\x00\x00\x00\x1f{"op":"query","sql":"SELECT 1"}'
        )

    def test_key_order_is_canonical(self):
        # Same payload, any insertion order -> identical bytes.
        assert encode_frame({"sql": "SELECT 1", "op": "query"}) == (
            encode_frame({"op": "query", "sql": "SELECT 1"})
        )

    def test_query_timeout_error_frame(self):
        frame = encode_frame(
            error_payload(QueryTimeout("query timed out after 50.0ms"))
        )
        assert frame == (
            b'\x00\x00\x00l{"error":{"code":"QUERY_TIMEOUT",'
            b'"message":"query timed out after 50.0ms",'
            b'"type":"QueryTimeout"},"ok":false}'
        )

    def test_memory_budget_error_frame(self):
        frame = encode_frame(
            error_payload(
                MemoryBudgetExceeded("memory budget of 1.0 MB exceeded")
            )
        )
        assert frame == (
            b'\x00\x00\x00\x81{"error":{"code":"MEMORY_BUDGET_EXCEEDED",'
            b'"message":"memory budget of 1.0 MB exceeded",'
            b'"type":"MemoryBudgetExceeded"},"ok":false}'
        )

    def test_admission_rejected_error_frame(self):
        frame = encode_frame(
            error_payload(
                code="ADMISSION_REJECTED",
                message="admission queue full",
            )
        )
        assert frame == (
            b'\x00\x00\x00n{"error":{"code":"ADMISSION_REJECTED",'
            b'"message":"admission queue full",'
            b'"type":"AdmissionRejected"},"ok":false}'
        )

    def test_malformed_frame_error_frame(self):
        frame = encode_frame(
            error_payload(
                code="MALFORMED_FRAME",
                message="malformed frame: bad json",
            )
        )
        assert frame == (
            b'\x00\x00\x00l{"error":{"code":"MALFORMED_FRAME",'
            b'"message":"malformed frame: bad json",'
            b'"type":"ProtocolError"},"ok":false}'
        )

    def test_frames_round_trip(self):
        payload = {"op": "query", "params": [1, "a", None], "sql": "x"}
        stream = io.BytesIO(encode_frame(payload))
        assert read_frame(stream) == payload
        assert stream.read() == b""  # nothing trailing


class TestFraming:
    def test_read_frame_clean_eof(self):
        assert read_frame(io.BytesIO(b"")) is None

    def test_torn_prefix_raises(self):
        with pytest.raises(ProtocolError, match="mid-frame"):
            read_frame(io.BytesIO(b"\x00\x00"))

    def test_torn_body_raises(self):
        # body partially present -> torn mid-frame
        with pytest.raises(ProtocolError, match="mid-frame"):
            read_frame(io.BytesIO(b"\x00\x00\x00\x10{"))
        # prefix only, body never arrives
        with pytest.raises(ProtocolError, match="before frame body"):
            read_frame(io.BytesIO(b"\x00\x00\x00\x10"))

    def test_oversized_frame_rejected_without_reading_body(self):
        huge = (MAX_FRAME_BYTES + 1).to_bytes(4, "big")
        with pytest.raises(ProtocolError, match="exceeds"):
            read_frame(io.BytesIO(huge))

    def test_encode_oversized_payload_rejected(self):
        with pytest.raises(ProtocolError, match="exceeds"):
            encode_frame({"blob": "x" * (MAX_FRAME_BYTES + 1)})

    def test_non_object_payload_rejected(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            decode_payload(b"[1,2,3]")

    def test_non_json_payload_rejected(self):
        with pytest.raises(ProtocolError, match="malformed"):
            decode_payload(b"\xff\xfe not json")

    def test_dump_payload_is_compact_and_sorted(self):
        assert dump_payload({"b": 1, "a": 2}) == b'{"a":2,"b":1}'


# ---------------------------------------------------------------------------
# error code mapping, both directions
# ---------------------------------------------------------------------------


class TestErrorMapping:
    @pytest.mark.parametrize(
        "exc,code",
        [
            (QueryTimeout("t"), "QUERY_TIMEOUT"),
            (MemoryBudgetExceeded("m"), "MEMORY_BUDGET_EXCEEDED"),
            (AdmissionRejected("a"), "ADMISSION_REJECTED"),
            (ParseError("p"), "PARSE_ERROR"),
            (CatalogError("c"), "CATALOG_ERROR"),
            (ProtocolError("w"), "PROTOCOL_ERROR"),
            (ReproError("e"), "ENGINE_ERROR"),
            (ValueError("v"), "INTERNAL_ERROR"),
        ],
    )
    def test_code_of(self, exc, code):
        assert error_code_of(exc) == code

    def test_raise_for_error_reraises_same_type(self):
        payload = error_payload(QueryTimeout("took too long"))
        with pytest.raises(QueryTimeout, match="took too long") as info:
            raise_for_error(payload)
        assert info.value.wire_code == "QUERY_TIMEOUT"

    def test_raise_for_error_passes_success(self):
        raise_for_error({"ok": True, "rows": []})  # no raise

    def test_governor_report_rides_along(self):
        exc = QueryTimeout("slow", report={"verdict": "timeout"})
        payload = error_payload(exc)
        assert payload["error"]["governor"] == {"verdict": "timeout"}
        with pytest.raises(QueryTimeout) as info:
            raise_for_error(payload)
        assert info.value.report == {"verdict": "timeout"}

    def test_unknown_code_falls_back_to_repro_error(self):
        payload = {
            "error": {"code": "CODE_FROM_THE_FUTURE", "message": "x"},
            "ok": False,
        }
        with pytest.raises(ReproError):
            raise_for_error(payload)


# ---------------------------------------------------------------------------
# result serialization
# ---------------------------------------------------------------------------


class TestResultPayload:
    def test_rows_types_rowcount(self):
        with Database() as db:
            result = db.execute(
                "SELECT 1 AS a, 'x' AS b, 2.5 AS c"
            )
            payload = result_payload(result)
        assert payload["ok"] is True
        assert payload["columns"] == ["a", "b", "c"]
        assert payload["rows"] == [[1, "x", 2.5]]
        assert len(payload["types"]) == 3
        assert all(isinstance(t, str) for t in payload["types"])

    def test_numpy_scalars_become_plain_json(self):
        with Database() as db:
            db.execute("CREATE TABLE t (x INTEGER)")
            db.execute("INSERT INTO t VALUES (1), (2)")
            payload = result_payload(db.execute("SELECT sum(x) FROM t"))
        (value,) = payload["rows"][0]
        assert type(value) is int and value == 3
        dump_payload(payload)  # JSON-serializable end to end


# ---------------------------------------------------------------------------
# budgets
# ---------------------------------------------------------------------------


class TestBudgetClamping:
    @pytest.mark.parametrize(
        "requested,cap,expected",
        [
            (None, None, None),
            (100.0, None, 100.0),
            (None, 50.0, 50.0),
            (100.0, 50.0, 50.0),   # request cannot widen the cap
            (25.0, 50.0, 25.0),    # request may tighten it
            (0, 50.0, 50.0),       # 0 = "no preference", cap applies
            (100.0, 0, 100.0),     # cap 0 = unlimited tenant
        ],
    )
    def test_clamp(self, requested, cap, expected):
        assert clamp_budget(requested, cap) == expected


# ---------------------------------------------------------------------------
# live server: ops, typed errors over the wire, cancel
# ---------------------------------------------------------------------------


class TestLiveServer:
    def test_connect_query_close(self, server):
        with connect(server) as client:
            assert client.protocol == "repro-wire-1"
            assert client.session_id == "s-1"
            result = client.query("SELECT 1 + 1")
            assert result.scalar() == 2
            assert client.ping()
        assert server.session_count() == 0

    def test_dml_and_params(self, server):
        with connect(server) as client:
            client.execute("CREATE TABLE t (x INTEGER, s TEXT)")
            r = client.execute(
                "INSERT INTO t VALUES (?, ?), (?, ?)",
                [1, "a", 2, "b"],
            )
            assert r.rowcount == 2
            rows = client.query("SELECT * FROM t ORDER BY x").rows
            assert rows == [(1, "a"), (2, "b")]

    def test_typed_errors_cross_the_wire(self, server):
        with connect(server) as client:
            with pytest.raises(ParseError):
                client.query("SELEC nope")
            with pytest.raises(BindError):
                client.query("SELECT * FROM missing_table")
            # the session survives its own errors
            assert client.query("SELECT 7").scalar() == 7

    def test_timeout_budget_over_the_wire(self, server):
        with connect(server) as client:
            with pytest.raises(QueryTimeout) as info:
                client.query(
                    "SELECT * FROM ITERATE((SELECT 1 AS x),"
                    " (SELECT x + 1 FROM iterate),"
                    " (SELECT x FROM iterate WHERE x < 0))",
                    timeout_ms=50,
                )
            assert info.value.wire_code == "QUERY_TIMEOUT"

    def test_tenant_cap_clamps_request(self):
        srv = Server(
            executors=2,
            tenants={"capped": TenantBudget("capped", timeout_ms=40.0)},
        ).start()
        try:
            host, port = srv.address
            with Client(host, port, tenant="capped") as client:
                with pytest.raises(QueryTimeout):
                    # asks for 60s; the tenant cap must win
                    client.query(
                        "SELECT * FROM ITERATE((SELECT 1 AS x),"
                        " (SELECT x + 1 FROM iterate),"
                        " (SELECT x FROM iterate WHERE x < 0))",
                        timeout_ms=60_000,
                    )
        finally:
            srv.stop()

    def test_cancel_in_flight_statement(self):
        # A private server whose iteration ceiling is high enough that
        # the ITERATE below genuinely runs until cancelled.
        db = Database(max_iterations=50_000_000)
        srv = Server(db, executors=2).start()
        try:
            host, port = srv.address
            with Client(host, port) as client:
                done: dict = {}

                def run() -> None:
                    try:
                        client.query(
                            "SELECT * FROM ITERATE((SELECT 1 AS x),"
                            " (SELECT x + 1 FROM iterate),"
                            " (SELECT x FROM iterate WHERE x < 0))",
                            timeout_ms=60_000,
                        )
                        done["outcome"] = "completed"
                    except ReproError as exc:
                        done["outcome"] = exc
                thread = threading.Thread(target=run)
                thread.start()
                # spin until the statement is actually in flight
                for _ in range(200):
                    if client.cancel():
                        break
                    thread.join(timeout=0.05)
                thread.join(timeout=15.0)
                assert not thread.is_alive()
                outcome = done["outcome"]
                assert isinstance(outcome, ReproError), outcome
                assert outcome.wire_code == "QUERY_CANCELLED"
                # ... and the session is still usable afterwards
                assert client.query("SELECT 5").scalar() == 5
        finally:
            srv.stop()
            db.close()

    def test_chaos_fault_surfaces_as_typed_frame(self):
        db = Database(chaos=ChaosInjector("operator_raise", 1))
        db.execute("CREATE TABLE c (x INTEGER)")
        db.execute("INSERT INTO c VALUES (1), (2), (3)")
        db.chaos.arm()
        srv = Server(db, executors=1).start()
        try:
            host, port = srv.address
            with Client(host, port) as client:
                with pytest.raises(ReproError) as info:
                    client.query("SELECT sum(x) FROM c")
                assert info.value.wire_code == "INJECTED_FAULT"
                # fire-once: the session recovers immediately
                assert client.query("SELECT sum(x) FROM c").scalar() == 6
        finally:
            srv.stop()
            db.close()

    def test_malformed_frame_gets_typed_error_then_close(self, server):
        host, port = server.address
        with socket.create_connection((host, port)) as sock:
            fh = sock.makefile("rwb")
            body = b"this is not json"
            fh.write(len(body).to_bytes(4, "big") + body)
            fh.flush()
            response = read_frame(fh)
            assert response["ok"] is False
            assert response["error"]["code"] == "MALFORMED_FRAME"
            # framing is unrecoverable: the server hangs up
            assert fh.read(1) == b""

    def test_oversized_frame_gets_typed_error(self):
        srv = Server(max_frame_bytes=1024).start()
        try:
            host, port = srv.address
            with socket.create_connection((host, port)) as sock:
                fh = sock.makefile("rwb")
                fh.write((4096).to_bytes(4, "big"))
                fh.flush()
                response = read_frame(fh)
                assert response["error"]["code"] == "FRAME_TOO_LARGE"
        finally:
            srv.stop()

    def test_query_before_connect_is_protocol_error(self, server):
        host, port = server.address
        with socket.create_connection((host, port)) as sock:
            fh = sock.makefile("rwb")
            fh.write(encode_frame({"op": "query", "sql": "SELECT 1"}))
            fh.flush()
            response = read_frame(fh)
            assert response["error"]["code"] == "PROTOCOL_ERROR"

    def test_session_limit(self):
        srv = Server(max_sessions=1).start()
        try:
            host, port = srv.address
            first = Client(host, port)
            try:
                with pytest.raises(AdmissionRejected) as info:
                    Client(host, port)
                assert info.value.wire_code == "SESSION_LIMIT"
                # slots free up when sessions close
                first.close()
                with Client(host, port) as again:
                    assert again.query("SELECT 1").scalar() == 1
            finally:
                first.close()
        finally:
            srv.stop()

    def test_http_metrics_on_protocol_port(self, server):
        with connect(server) as client:
            client.query("SELECT 1")
        host, port = server.address
        with socket.create_connection((host, port)) as sock:
            sock.sendall(b"GET /metrics HTTP/1.0\r\n\r\n")
            data = b""
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                data += chunk
        head, _, body = data.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.0 200 OK")
        text = body.decode()
        assert "server_sessions_active" in text
        assert "server_requests_total" in text
        assert 'status="ok"' in text

    def test_metrics_op_matches_http(self, server):
        with connect(server) as client:
            client.query("SELECT 1")
            text = client.metrics_text()
        assert "server_admission_queued_total" in text

    def test_queue_wait_lands_in_history_phases(self, server):
        with connect(server) as client:
            client.query("SELECT 42")
        (record,) = server.db.history.recent(1)
        assert "queue" in record.phases
        assert record.phases["queue"] >= 0.0
        assert "execute" in record.phases  # engine phases still there

    def test_client_connection_refused(self):
        with pytest.raises(ServerError, match="cannot connect"):
            Client("127.0.0.1", 1, connect_timeout=0.5)


class TestAdmissionControl:
    def test_queue_full_rejects_typed_and_fast(self):
        db = Database()
        entered, release = threading.Event(), threading.Event()

        def block(x):
            entered.set()
            release.wait(30.0)
            return x

        db.create_function("test_block", block, "INTEGER", arity=1)
        srv = Server(db, executors=1, queue_depth=0).start()
        try:
            host, port = srv.address
            wedge = Client(host, port)
            other = Client(host, port)
            try:
                thread = threading.Thread(
                    target=lambda: wedge.query("SELECT test_block(1)")
                )
                thread.start()
                assert entered.wait(10.0)
                with pytest.raises(AdmissionRejected) as info:
                    other.query("SELECT 1")
                assert info.value.wire_code == "ADMISSION_REJECTED"
                release.set()
                thread.join(timeout=10.0)
                # both sessions usable after the wedge clears
                assert other.query("SELECT 2").scalar() == 2
                assert wedge.query("SELECT 3").scalar() == 3
                rejected = srv.metrics.counter(
                    "server_admission_rejected_total"
                )
                assert rejected.value >= 1
            finally:
                release.set()
                wedge.close()
                other.close()
        finally:
            srv.stop()
            db.close()
