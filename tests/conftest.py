"""Shared fixtures."""

import pytest

import repro


@pytest.fixture
def db() -> repro.Database:
    """A fresh in-memory database per test."""
    return repro.Database()


@pytest.fixture
def people_db(db: repro.Database) -> repro.Database:
    """A small schema used across relational tests."""
    db.execute(
        "CREATE TABLE people (id INTEGER, name VARCHAR, age INTEGER, "
        "city VARCHAR)"
    )
    db.insert_rows(
        "people",
        [
            (1, "alice", 34, "munich"),
            (2, "bob", 28, "venice"),
            (3, "carol", 41, "munich"),
            (4, "dave", None, "oslo"),
            (5, "erin", 28, None),
        ],
    )
    db.execute(
        "CREATE TABLE orders (order_id INTEGER, person_id INTEGER, "
        "amount FLOAT)"
    )
    db.insert_rows(
        "orders",
        [
            (100, 1, 25.0),
            (101, 1, 75.0),
            (102, 2, 10.0),
            (103, 3, 99.5),
            (104, 9, 1.0),  # dangling person_id
        ],
    )
    return db


@pytest.fixture
def people_db_fullsort(people_db: repro.Database) -> repro.Database:
    """The people schema with top-N sort fusion disabled, so ORDER BY +
    LIMIT keeps the separate Sort and Limit operators."""
    people_db.topn_enabled = False
    return people_db
