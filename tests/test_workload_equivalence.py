"""Integration: the layer-3 SQL workloads match the layer-4 operators
and the competitor baselines, numerically.

This is the correctness backbone of the evaluation: the benchmark series
compare runtimes of computations whose results are verified equal here.
"""

import numpy as np
import pytest

import repro
from repro.baselines import (
    ExternalToolClient,
    SparkLikeContext,
    madlib_like_kmeans,
    madlib_like_naive_bayes_train,
    madlib_like_pagerank,
    matlab_like_kmeans,
    matlab_like_naive_bayes_train,
    matlab_like_pagerank,
)
from repro.datagen.graphs import load_edge_table
from repro.datagen.vectors import (
    feature_names,
    load_centers_table,
    load_vector_table,
)
from repro.workloads import (
    kmeans_iterate_sql,
    kmeans_recursive_sql,
    naive_bayes_train_sql,
    pagerank_iterate_sql,
    pagerank_recursive_sql,
)


@pytest.fixture(scope="module")
def kmeans_world():
    db = repro.Database()
    columns = load_vector_table(db, "data", 800, 3, seed=3)
    centers = load_centers_table(db, "centers", columns, 4, seed=5)
    feats = feature_names(3)
    matrix = np.column_stack([columns[f] for f in feats])
    seeds = np.column_stack([centers[f] for f in feats])
    operator_rows = db.execute(
        f"SELECT cluster, {', '.join(feats)} FROM KMEANS("
        f"(SELECT {', '.join(feats)} FROM data), "
        f"(SELECT {', '.join(feats)} FROM centers), 3) ORDER BY cluster"
    ).rows
    reference = np.asarray([row[1:] for row in operator_rows])
    return db, feats, matrix, seeds, reference


class TestKMeansEquivalence:
    def test_iterate_matches_operator(self, kmeans_world):
        db, feats, _m, _s, reference = kmeans_world
        rows = db.execute(
            kmeans_iterate_sql("data", "centers", feats, 3)
        ).rows
        got = np.asarray([row[1:] for row in rows])
        assert np.allclose(np.sort(got, 0), np.sort(reference, 0))

    def test_recursive_matches_operator(self, kmeans_world):
        db, feats, _m, _s, reference = kmeans_world
        rows = db.execute(
            kmeans_recursive_sql("data", "centers", feats, 3)
        ).rows
        got = np.asarray([row[1:] for row in rows])
        assert np.allclose(np.sort(got, 0), np.sort(reference, 0))

    def test_spark_like_matches(self, kmeans_world):
        _db, _f, matrix, seeds, reference = kmeans_world
        out = SparkLikeContext(8).kmeans(matrix, seeds, 3)
        assert np.allclose(np.sort(out, 0), np.sort(reference, 0))

    def test_matlab_like_matches(self, kmeans_world):
        _db, _f, matrix, seeds, reference = kmeans_world
        out = np.asarray(
            matlab_like_kmeans(matrix.tolist(), seeds.tolist(), 3)
        )
        assert np.allclose(np.sort(out, 0), np.sort(reference, 0))

    def test_madlib_like_matches(self, kmeans_world):
        db, feats, _m, _s, reference = kmeans_world
        rows = madlib_like_kmeans(db, "data", "centers", feats, 3)
        got = np.asarray([row[1:] for row in rows])
        assert np.allclose(np.sort(got, 0), np.sort(reference, 0))

    def test_external_tool_matches(self, kmeans_world):
        db, feats, _m, _s, reference = kmeans_world
        client = ExternalToolClient(db)
        out = client.kmeans(
            f"SELECT {', '.join(feats)} FROM data",
            f"SELECT {', '.join(feats)} FROM centers",
            3,
        )
        assert np.allclose(np.sort(out, 0), np.sort(reference, 0))


@pytest.fixture(scope="module")
def pagerank_world():
    db = repro.Database()
    src, dst = load_edge_table(db, "edges", 120, 1400, seed=9)
    reference = dict(
        db.execute(
            "SELECT vertex, rank FROM PAGERANK("
            "(SELECT src, dest FROM edges), 0.85, 0.0, 8)"
        ).rows
    )
    return db, src, dst, reference


class TestPageRankEquivalence:
    def test_iterate_matches_operator(self, pagerank_world):
        db, _s, _d, reference = pagerank_world
        rows = dict(
            db.execute(pagerank_iterate_sql("edges", 0.85, 8)).rows
        )
        assert rows.keys() == reference.keys()
        for vertex, rank in reference.items():
            assert rows[vertex] == pytest.approx(rank, abs=1e-10)

    def test_recursive_matches_operator(self, pagerank_world):
        db, _s, _d, reference = pagerank_world
        rows = dict(
            db.execute(pagerank_recursive_sql("edges", 0.85, 8)).rows
        )
        for vertex, rank in reference.items():
            assert rows[vertex] == pytest.approx(rank, abs=1e-10)

    def test_spark_like_matches(self, pagerank_world):
        _db, src, dst, reference = pagerank_world
        ids, ranks = SparkLikeContext(8).pagerank(src, dst, 0.85, 8)
        for vid, rank in zip(ids.tolist(), ranks.tolist()):
            assert rank == pytest.approx(reference[vid], abs=1e-10)

    def test_matlab_like_matches(self, pagerank_world):
        _db, src, dst, reference = pagerank_world
        ranks = matlab_like_pagerank(
            list(zip(src.tolist(), dst.tolist())), 0.85, 8
        )
        for vid, rank in ranks.items():
            assert rank == pytest.approx(reference[vid], abs=1e-10)

    def test_madlib_like_matches(self, pagerank_world):
        db, _s, _d, reference = pagerank_world
        rows = dict(madlib_like_pagerank(db, "edges", 0.85, 8))
        for vertex, rank in reference.items():
            assert rows[vertex] == pytest.approx(rank, abs=1e-10)


@pytest.fixture(scope="module")
def nb_world():
    db = repro.Database()
    columns = load_vector_table(
        db, "train", 600, 3, seed=4, with_label=True
    )
    feats = feature_names(3)
    reference = db.execute(
        "SELECT class, attribute, prior, mean, stddev "
        "FROM NAIVE_BAYES_TRAIN("
        f"(SELECT label, {', '.join(feats)} FROM train)) "
        "ORDER BY class, attribute"
    ).rows
    return db, feats, columns, reference


def assert_model_rows_match(got, reference):
    assert len(got) == len(reference)
    for g_row, r_row in zip(got, reference):
        assert g_row[0] == r_row[0] and g_row[1] == r_row[1]
        for g_val, r_val in zip(g_row[2:5], r_row[2:5]):
            assert g_val == pytest.approx(r_val, abs=1e-10)


class TestNaiveBayesEquivalence:
    def test_sql_matches_operator(self, nb_world):
        db, feats, _c, reference = nb_world
        rows = db.execute(
            naive_bayes_train_sql("train", "label", feats)
        ).rows
        assert_model_rows_match(
            [row[:5] for row in rows], reference
        )

    def test_iterate_matches_operator(self, nb_world):
        # Training is single-pass, so its ITERATE formulation is the
        # same model inside a zero-round loop (terminator immediately
        # true) — covering the middle layer on this workload too.
        db, feats, _c, reference = nb_world
        sql = naive_bayes_train_sql("train", "label", feats)
        rows = db.execute(
            "SELECT class, attribute, prior, mean, stddev, cnt "
            f"FROM ITERATE(({sql}), (SELECT * FROM iterate), "
            "(SELECT 1)) ORDER BY class, attribute"
        ).rows
        assert_model_rows_match([row[:5] for row in rows], reference)

    def test_madlib_like_matches(self, nb_world):
        db, feats, _c, reference = nb_world
        rows = madlib_like_naive_bayes_train(db, "train", "label", feats)
        assert_model_rows_match(rows, reference)

    def test_spark_like_matches(self, nb_world):
        _db, feats, columns, reference = nb_world
        matrix = np.column_stack([columns[f] for f in feats])
        classes, priors, means, stds = SparkLikeContext(
            8
        ).naive_bayes_train(columns["label"], matrix)
        lookup = {
            (row[0], row[1]): row for row in reference
        }
        for ci, klass in enumerate(classes.tolist()):
            for ai, attr in enumerate(feats):
                _c, _a, prior, mean, std = lookup[(klass, attr)]
                assert priors[ci] == pytest.approx(prior)
                assert means[ci, ai] == pytest.approx(mean)
                assert stds[ci, ai] == pytest.approx(std)

    def test_matlab_like_matches(self, nb_world):
        _db, feats, columns, reference = nb_world
        matrix = np.column_stack([columns[f] for f in feats])
        model = matlab_like_naive_bayes_train(
            columns["label"].tolist(), matrix.tolist()
        )
        lookup = {(row[0], row[1]): row for row in reference}
        for klass, stats in model.items():
            for ai, attr in enumerate(feats):
                _c, _a, prior, mean, std = lookup[(klass, attr)]
                assert stats["prior"][0] == pytest.approx(prior)
                assert stats["mean"][ai] == pytest.approx(mean)
                assert stats["std"][ai] == pytest.approx(std)

    def test_external_tool_matches(self, nb_world):
        db, feats, _c, reference = nb_world
        model = ExternalToolClient(db).naive_bayes_train(
            f"SELECT label, {', '.join(feats)} FROM train"
        )
        lookup = {(row[0], row[1]): row for row in reference}
        for ci, klass in enumerate(model.classes.tolist()):
            for ai, attr in enumerate(feats):
                _cc, _a, prior, mean, std = lookup[(klass, attr)]
                assert model.priors[ci] == pytest.approx(prior)
                assert model.means[ci, ai] == pytest.approx(mean)
                assert model.stds[ci, ai] == pytest.approx(std)


class TestWindowFormulation:
    def test_window_assignment_matches_join_assignment(self, kmeans_world):
        db, feats, _m, _s, reference = kmeans_world
        rows = db.execute(
            kmeans_iterate_sql(
                "data", "centers", feats, 3, use_window=True
            )
        ).rows
        got = np.asarray([row[1:] for row in rows])
        assert np.allclose(np.sort(got, 0), np.sort(reference, 0))
