"""CSV bulk loading and export."""

import io

import pytest

import repro
from repro.api.csv_io import infer_column_type
from repro.errors import CatalogError
from repro.types import BIGINT, BOOLEAN, DOUBLE, VARCHAR


@pytest.fixture
def csv_file(tmp_path):
    path = tmp_path / "people.csv"
    path.write_text(
        "id,name,age,score,active\n"
        "1,alice,34,91.5,true\n"
        "2,bob,28,,false\n"
        '3,"o""brien, jr",41,77.0,true\n',
        encoding="utf-8",
    )
    return str(path)


class TestTypeInference:
    def test_integers(self):
        assert infer_column_type(["1", "2", ""]) == BIGINT

    def test_floats(self):
        assert infer_column_type(["1.5", "2"]) == DOUBLE

    def test_booleans(self):
        assert infer_column_type(["true", "false"]) == BOOLEAN

    def test_zero_one_is_numeric_not_bool(self):
        assert infer_column_type(["0", "1"]) == BIGINT

    def test_strings(self):
        assert infer_column_type(["a", "2"]) == VARCHAR

    def test_all_empty(self):
        assert infer_column_type(["", ""]) == VARCHAR


class TestLoadCSV:
    def test_create_and_load(self, db, csv_file):
        count = db.load_csv("people", csv_file)
        assert count == 3
        schema = db.table_schema("people")
        assert schema.names() == ["id", "name", "age", "score", "active"]
        assert str(schema.column("id").sql_type) == "BIGINT"
        assert str(schema.column("score").sql_type) == "DOUBLE"
        assert str(schema.column("active").sql_type) == "BOOLEAN"

    def test_quoted_fields_and_nulls(self, db, csv_file):
        db.load_csv("people", csv_file)
        rows = db.execute(
            "SELECT name, score FROM people ORDER BY id"
        ).rows
        assert rows[2][0] == 'o"brien, jr'
        assert rows[1][1] is None

    def test_queryable_after_load(self, db, csv_file):
        db.load_csv("people", csv_file)
        assert db.execute(
            "SELECT avg(age) FROM people WHERE active"
        ).scalar() == pytest.approx(37.5)

    def test_load_into_existing_table(self, db, csv_file):
        db.execute(
            "CREATE TABLE people (id INTEGER, name VARCHAR, "
            "age INTEGER, score FLOAT, active BOOLEAN)"
        )
        db.load_csv("people", csv_file)
        assert db.execute("SELECT count(*) FROM people").scalar() == 3

    def test_column_type_override(self, db, csv_file):
        db.load_csv(
            "people", csv_file, column_types={"id": "VARCHAR"}
        )
        assert str(
            db.table_schema("people").column("id").sql_type
        ) == "VARCHAR"

    def test_headerless(self, db, tmp_path):
        path = tmp_path / "plain.csv"
        path.write_text("1,2\n3,4\n", encoding="utf-8")
        db.load_csv("t", str(path), header=False)
        assert db.table_schema("t").names() == ["c1", "c2"]
        assert db.execute("SELECT sum(c1) FROM t").scalar() == 4

    def test_ragged_rejected(self, db, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1\n", encoding="utf-8")
        with pytest.raises(CatalogError, match="fields"):
            db.load_csv("t", str(path))

    def test_width_mismatch_existing_table(self, db, csv_file):
        db.execute("CREATE TABLE people (id INTEGER)")
        with pytest.raises(CatalogError, match="columns"):
            db.load_csv("people", csv_file)

    def test_create_false_requires_table(self, db, csv_file):
        with pytest.raises(CatalogError, match="no such table"):
            db.load_csv("ghost", csv_file, create=False)


class TestLoadErrorPaths:
    """Malformed input must raise typed errors and leave the target
    table untouched (same row count AND same version token)."""

    @staticmethod
    def _version_token(db, table):
        txn = db.txns.begin()
        try:
            return txn.read(table).version_token
        finally:
            txn.rollback()

    @pytest.fixture
    def seeded(self, db):
        db.execute("CREATE TABLE t (a INTEGER, b VARCHAR)")
        db.insert_rows("t", [(1, "x"), (2, "y")])
        return db

    def test_uncoercible_value_is_typed_error(self, seeded, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n3,z\nnope,w\n", encoding="utf-8")
        before_tok = self._version_token(seeded, "t")
        with pytest.raises(CatalogError, match="row 3, column 'a'"):
            seeded.load_csv("t", str(path))
        assert seeded.row_count("t") == 2
        assert self._version_token(seeded, "t") == before_tok

    def test_wrong_arity_leaves_table_untouched(self, seeded, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("a,b\n3,z\n4\n", encoding="utf-8")
        before_tok = self._version_token(seeded, "t")
        with pytest.raises(CatalogError, match="fields"):
            seeded.load_csv("t", str(path))
        assert seeded.row_count("t") == 2
        assert self._version_token(seeded, "t") == before_tok

    def test_no_stray_table_on_bad_create_load(self, db, tmp_path):
        # Values are parsed BEFORE the CREATE TABLE DDL runs, so a
        # malformed file cannot leave an empty husk behind.
        path = tmp_path / "bad.csv"
        path.write_text("a\n1\nnope\n", encoding="utf-8")
        with pytest.raises(CatalogError, match="cannot convert"):
            db.load_csv("fresh", str(path), column_types={"a": "INTEGER"})
        assert "fresh" not in db.table_names()

    def test_typed_not_bare_valueerror(self, seeded, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\noops,z\n", encoding="utf-8")
        try:
            seeded.load_csv("t", str(path))
        except CatalogError:
            pass
        else:  # pragma: no cover - the load must fail
            pytest.fail("expected CatalogError")


class TestExportCSV:
    def test_roundtrip(self, db, csv_file, tmp_path):
        db.load_csv("people", csv_file)
        out = tmp_path / "out.csv"
        written = db.execute(
            "SELECT id, name, score FROM people ORDER BY id"
        ).to_csv(str(out))
        assert written == 3

        db2 = repro.Database()
        db2.load_csv("copy", str(out))
        assert db2.execute("SELECT count(*) FROM copy").scalar() == 3
        assert db2.execute(
            "SELECT score FROM copy WHERE id = 2"
        ).scalar() is None

    def test_write_to_buffer(self, db):
        db.execute("CREATE TABLE t (a INTEGER)")
        db.insert_rows("t", [(1,), (None,)])
        buffer = io.StringIO()
        db.execute("SELECT a FROM t").to_csv(buffer)
        # The csv module quotes a lone empty field ('""') so the row is
        # distinguishable from a blank line; it reads back as NULL.
        assert buffer.getvalue().splitlines() == ["a", "1", '""']

    def test_analytics_result_export(self, db, tmp_path):
        db.execute("CREATE TABLE pts (x FLOAT)")
        db.insert_rows("pts", [(0.0,), (0.1,), (9.0,)])
        out = tmp_path / "centers.csv"
        db.execute(
            "SELECT * FROM KMEANS((SELECT x FROM pts), "
            "(SELECT x FROM pts LIMIT 2), 10)"
        ).to_csv(str(out))
        text = out.read_text(encoding="utf-8")
        assert text.startswith("cluster,x,size")
