"""Unit tests for the SQL lexer."""

import pytest

from repro.errors import ParseError
from repro.sql.lexer import tokenize
from repro.sql.tokens import TokenKind


def kinds(sql):
    return [t.kind for t in tokenize(sql)]


def texts(sql):
    return [t.text for t in tokenize(sql)[:-1]]  # drop EOF


class TestBasics:
    def test_keywords_uppercased(self):
        tokens = tokenize("select from where")
        assert all(t.kind is TokenKind.KEYWORD for t in tokens[:-1])
        assert texts("select FROM Where") == ["SELECT", "FROM", "WHERE"]

    def test_identifiers_lowercased(self):
        assert texts("MyTable") == ["mytable"]

    def test_quoted_identifier_preserves_case(self):
        token = tokenize('"MyCol"')[0]
        assert token.kind is TokenKind.IDENT
        assert token.text == "MyCol"

    def test_quoted_identifier_escaped_quote(self):
        token = tokenize('"a""b"')[0]
        assert token.text == 'a"b'

    def test_eof_always_last(self):
        assert tokenize("")[-1].kind is TokenKind.EOF
        assert tokenize("select")[-1].kind is TokenKind.EOF


class TestNumbers:
    def test_integer(self):
        token = tokenize("42")[0]
        assert token.kind is TokenKind.NUMBER
        assert token.value == 42 and isinstance(token.value, int)

    def test_decimal(self):
        assert tokenize("3.14")[0].value == pytest.approx(3.14)

    def test_leading_dot(self):
        assert tokenize(".5")[0].value == 0.5

    def test_exponent(self):
        assert tokenize("1e3")[0].value == 1000.0
        assert tokenize("2.5E-2")[0].value == pytest.approx(0.025)

    def test_number_then_dot_ident(self):
        # "1.e" should not swallow the identifier.
        tokens = tokenize("x.y")
        assert [t.kind for t in tokens[:-1]] == [
            TokenKind.IDENT, TokenKind.DOT, TokenKind.IDENT,
        ]


class TestStrings:
    def test_simple(self):
        token = tokenize("'hello'")[0]
        assert token.kind is TokenKind.STRING
        assert token.value == "hello"

    def test_escaped_quote(self):
        assert tokenize("'it''s'")[0].value == "it's"

    def test_unterminated(self):
        with pytest.raises(ParseError, match="unterminated string"):
            tokenize("'oops")

    def test_empty_string(self):
        assert tokenize("''")[0].value == ""


class TestComments:
    def test_line_comment(self):
        assert texts("select -- comment\n 1") == ["SELECT", "1"]

    def test_block_comment(self):
        assert texts("select /* hi */ 1") == ["SELECT", "1"]

    def test_unterminated_block(self):
        with pytest.raises(ParseError, match="unterminated block"):
            tokenize("select /* oops")

    def test_multiline_block(self):
        assert texts("a /* x\ny */ b") == ["a", "b"]


class TestOperators:
    def test_multi_char(self):
        assert texts("<= >= <> != ||") == ["<=", ">=", "<>", "!=", "||"]

    def test_single_char(self):
        assert texts("+ - * / % ^ = < >") == list("+-*/%^=<>")

    def test_punctuation(self):
        assert kinds("( ) , . ;")[:-1] == [
            TokenKind.LPAREN, TokenKind.RPAREN, TokenKind.COMMA,
            TokenKind.DOT, TokenKind.SEMICOLON,
        ]

    def test_unexpected_char(self):
        with pytest.raises(ParseError, match="unexpected character"):
            tokenize("select @")


class TestLambda:
    def test_unicode_lambda(self):
        assert tokenize("λ")[0].kind is TokenKind.LAMBDA

    def test_keyword_lambda(self):
        assert tokenize("LAMBDA")[0].kind is TokenKind.LAMBDA
        assert tokenize("lambda")[0].kind is TokenKind.LAMBDA


class TestPositions:
    def test_line_column_tracking(self):
        tokens = tokenize("select\n  x")
        assert tokens[0].line == 1 and tokens[0].column == 1
        assert tokens[1].line == 2 and tokens[1].column == 3

    def test_error_carries_position(self):
        try:
            tokenize("a\n  @")
        except ParseError as exc:
            assert exc.line == 2
        else:
            pytest.fail("expected ParseError")
