"""The metrics registry, engine counters, exporters, and telemetry."""

import json

import pytest

import repro
from repro.errors import ReproError
from repro.obs.export import (
    main as export_main,
    to_json,
    to_prometheus,
    validate_exposition,
)
from repro.obs.metrics import (
    DEFAULT_TIME_BUCKETS,
    MetricsRegistry,
    global_registry,
)


class TestRegistry:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.counter("hits").inc()
        reg.counter("hits").inc(4)
        assert reg.snapshot()["counters"]["hits"] == 5

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("hits").inc(-1)

    def test_gauge_moves_both_ways(self):
        reg = MetricsRegistry()
        gauge = reg.gauge("active")
        gauge.set(3)
        gauge.inc()
        gauge.dec(2)
        assert reg.snapshot()["gauges"]["active"] == 2

    def test_labels_are_distinct_series(self):
        reg = MetricsRegistry()
        reg.counter("stmt", kind="Select").inc()
        reg.counter("stmt", kind="Insert").inc(2)
        counters = reg.snapshot()["counters"]
        assert counters['stmt{kind="Select"}'] == 1
        assert counters['stmt{kind="Insert"}'] == 2

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="counter"):
            reg.gauge("x")

    def test_histogram_counts_and_sum(self):
        reg = MetricsRegistry()
        hist = reg.histogram("latency", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            hist.observe(value)
        snap = reg.snapshot()["histograms"]["latency"]
        assert snap["counts"] == [1, 1, 1]  # <=0.1, <=1.0, +Inf
        assert snap["count"] == 3
        assert snap["sum"] == pytest.approx(5.55)
        assert hist.cumulative() == [1, 2, 3]

    def test_default_buckets_are_sorted(self):
        assert list(DEFAULT_TIME_BUCKETS) == sorted(DEFAULT_TIME_BUCKETS)

    def test_parent_mirroring(self):
        parent = MetricsRegistry()
        child_a = MetricsRegistry(parent=parent)
        child_b = MetricsRegistry(parent=parent)
        child_a.counter("ops").inc(2)
        child_b.counter("ops").inc(3)
        assert child_a.snapshot()["counters"]["ops"] == 2
        assert parent.snapshot()["counters"]["ops"] == 5

    def test_reset_drops_families(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        reg.reset()
        assert reg.snapshot()["counters"] == {}

    def test_database_mirrors_into_global(self):
        before = (
            global_registry()
            .snapshot()["counters"]
            .get('statements_total{kind="SelectStatement"}', 0)
        )
        repro.Database().execute("SELECT 1")
        after = global_registry().snapshot()["counters"][
            'statements_total{kind="SelectStatement"}'
        ]
        assert after == before + 1


class TestEngineCounters:
    def test_snapshot_nonempty_after_analytics_workload(self, db):
        """Acceptance: metrics flow from the txn layer, executor, and
        analytics after a k-Means + PageRank + ITERATE workload."""
        db.execute("CREATE TABLE pts (x FLOAT, y FLOAT)")
        db.insert_rows(
            "pts", [(0.0, 0.1), (0.2, 0.0), (5.0, 5.1), (5.2, 4.9)]
        )
        db.execute("CREATE TABLE edges (src INTEGER, dest INTEGER)")
        db.insert_rows("edges", [(1, 2), (2, 3), (3, 1)])
        db.execute(
            "SELECT * FROM KMEANS((SELECT x, y FROM pts),"
            " (SELECT x, y FROM pts LIMIT 2), 10)"
        )
        db.execute(
            "SELECT * FROM PAGERANK((SELECT src, dest FROM edges),"
            " 0.85, 0.0001, 50)"
        )
        db.execute(
            "SELECT * FROM ITERATE((SELECT 1 AS n),"
            " (SELECT n + 1 FROM iterate),"
            " (SELECT n FROM iterate WHERE n >= 3))"
        )
        snap = db.metrics.snapshot()
        counters = snap["counters"]
        assert counters["txn_commits_total"] > 0
        assert counters["storage_rows_inserted_total"] == 7
        assert counters["exec_rows_scanned_total"] > 0
        assert counters["exec_iterations_total"] > 0
        assert counters['statements_total{kind="SelectStatement"}'] == 3
        assert snap["histograms"]["statement_seconds"]["count"] > 0
        # Always-on operator profiling feeds per-class histograms.
        assert any(
            s.startswith("operator_self_seconds")
            for s in snap["histograms"]
        )

    def test_dml_counters(self, db):
        db.execute("CREATE TABLE t (v INTEGER)")
        db.insert_rows("t", [(1,), (2,), (3,)])
        db.execute("UPDATE t SET v = v + 1 WHERE v >= 2")
        db.execute("DELETE FROM t WHERE v = 4")
        counters = db.metrics.snapshot()["counters"]
        assert counters["storage_rows_inserted_total"] == 3
        assert counters["storage_rows_updated_total"] == 2
        assert counters["storage_rows_deleted_total"] == 1

    def test_rollback_and_error_counters(self, db):
        db.execute("CREATE TABLE t (v INTEGER)")
        db.begin()
        db.execute("INSERT INTO t VALUES (1)")
        db.rollback()
        with pytest.raises(ReproError):
            db.execute("SELECT * FROM missing")
        counters = db.metrics.snapshot()["counters"]
        assert counters["txn_rollbacks_total"] >= 1
        assert counters["statement_errors_total"] == 1

    def test_wal_bytes_counter(self, tmp_path):
        db = repro.Database(wal_path=str(tmp_path / "wal.jsonl"))
        db.execute("CREATE TABLE t (v INTEGER)")
        db.insert_rows("t", [(1,), (2,)])
        written = db.metrics.snapshot()["counters"][
            "wal_bytes_written_total"
        ]
        assert written > 0
        assert written <= (tmp_path / "wal.jsonl").stat().st_size

    def test_vacuum_counter(self, db):
        db.execute("CREATE TABLE t (v INTEGER)")
        db.insert_rows("t", [(1,)])
        db.insert_rows("t", [(2,)])
        db.vacuum()
        counters = db.metrics.snapshot()["counters"]
        assert counters["storage_versions_vacuumed_total"] >= 1


class TestConvergenceTelemetry:
    def test_kmeans_inertia_monotone(self, db):
        """Acceptance: Lloyd iterations never increase the inertia."""
        db.execute("CREATE TABLE pts (x FLOAT, y FLOAT)")
        db.insert_rows(
            "pts",
            [
                (0.0, 0.0), (0.3, 0.1), (0.1, 0.4), (1.0, 0.8),
                (5.0, 5.0), (5.3, 5.2), (4.8, 5.1), (6.0, 5.5),
            ],
        )
        result = db.execute(
            "SELECT * FROM KMEANS((SELECT x, y FROM pts),"
            " (SELECT x, y FROM pts LIMIT 2), 20)"
        )
        telemetry = result.telemetry["kmeans"]
        inertia = telemetry["inertia"]
        assert len(inertia) == telemetry["iterations"] >= 1
        assert all(b <= a * (1 + 1e-9) for a, b in zip(inertia, inertia[1:]))
        assert len(telemetry["center_shift"]) == telemetry["iterations"]
        assert telemetry["center_shift"][-1] >= 0.0

    def test_pagerank_residuals(self, db):
        db.execute("CREATE TABLE edges (src INTEGER, dest INTEGER)")
        db.insert_rows(
            "edges", [(1, 2), (2, 3), (3, 1), (3, 4), (4, 2)]
        )
        result = db.execute(
            "SELECT * FROM PAGERANK((SELECT src, dest FROM edges),"
            " 0.85, 0.000001, 100)"
        )
        telemetry = result.telemetry["pagerank"]
        residuals = telemetry["residual_l1"]
        assert len(residuals) == telemetry["iterations"] >= 1
        # Power iteration on a stochastic matrix contracts the residual.
        assert residuals[-1] < residuals[0]

    def test_naive_bayes_class_counts(self, db):
        db.execute("CREATE TABLE train (label INTEGER, f FLOAT)")
        db.insert_rows(
            "train", [(0, 1.0)] * 3 + [(1, 5.0)] * 2
        )
        result = db.execute(
            "SELECT * FROM NAIVE_BAYES_TRAIN("
            "(SELECT label, f FROM train))"
        )
        telemetry = result.telemetry["naive_bayes"]
        assert telemetry["class_counts"] == [3, 2]
        assert len(telemetry["classes"]) == 2
        assert sum(telemetry["priors"]) == pytest.approx(1.0)

    def test_telemetry_empty_without_analytics(self, db):
        assert db.execute("SELECT 1").telemetry == {}


class TestExport:
    def _workload_db(self):
        db = repro.Database()
        db.execute("CREATE TABLE t (v INTEGER)")
        db.insert_rows("t", [(1,), (2,)])
        db.execute("SELECT sum(v) FROM t")
        return db

    def test_prometheus_exposition_is_valid(self):
        db = self._workload_db()
        text = to_prometheus(db.metrics)
        assert validate_exposition(text) == []
        assert "# TYPE txn_commits_total counter" in text
        assert "statement_seconds_bucket" in text
        assert 'le="+Inf"' in text

    def test_json_dump_round_trips(self):
        db = self._workload_db()
        payload = json.loads(to_json(db.metrics))
        assert payload["counters"]["txn_commits_total"] >= 2
        hist = payload["histograms"]["statement_seconds"]
        assert hist["count"] == sum(hist["counts"])

    def test_validate_flags_problems(self):
        assert validate_exposition("what is this") != []
        assert validate_exposition("orphan_total 3") != []
        dup = "# TYPE a counter\na 1\na 2"
        assert any("duplicate series" in p for p in validate_exposition(dup))

    def test_summary_quantiles_golden_output(self):
        # Deterministic histogram: 10 observations per bucket, so the
        # whole exposition — including the interpolated p50/p95/p99
        # summary family — is byte-exact.
        reg = MetricsRegistry()
        hist = reg.histogram("latency_seconds", buckets=(1.0, 2.0, 4.0))
        for value in [0.5] * 10 + [1.5] * 10 + [3.0] * 10:
            hist.observe(value)
        reg.counter("requests_total", route="q").inc(7)
        golden = (
            '# TYPE latency_seconds histogram\n'
            'latency_seconds_bucket{le="1"} 10\n'
            'latency_seconds_bucket{le="2"} 20\n'
            'latency_seconds_bucket{le="4"} 30\n'
            'latency_seconds_bucket{le="+Inf"} 30\n'
            'latency_seconds_sum 50\n'
            'latency_seconds_count 30\n'
            '# TYPE latency_seconds_summary gauge\n'
            'latency_seconds_summary{quantile="0.5"} 1.5\n'
            'latency_seconds_summary{quantile="0.95"} 3.7\n'
            'latency_seconds_summary{quantile="0.99"} 3.94\n'
            '# TYPE requests_total counter\n'
            'requests_total{route="q"} 7\n'
        )
        text = to_prometheus(reg)
        assert text == golden
        assert validate_exposition(text) == []

    def test_quantile_interpolation_and_clamp(self):
        reg = MetricsRegistry()
        hist = reg.histogram("h", buckets=(1.0, 2.0))
        assert hist.quantile(0.5) is None
        for value in (0.5, 0.5, 1.5, 1.5):
            hist.observe(value)
        assert hist.quantile(0.0) == 0.0
        assert hist.quantile(0.5) == pytest.approx(1.0)
        assert hist.quantile(1.0) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            hist.quantile(1.5)
        # +Inf-bucket observations clamp to the highest finite bound.
        overflow = reg.histogram("o", buckets=(1.0, 2.0))
        overflow.observe(50.0)
        assert overflow.quantile(0.99) == 2.0

    def test_session_statement_summary_exported(self):
        db = self._workload_db()
        text = to_prometheus(db.metrics)
        assert "# TYPE statement_seconds_summary gauge" in text
        for q in ("0.5", "0.95", "0.99"):
            assert f'quantile="{q}"' in text

    def test_cli_check_passes(self, capsys):
        assert export_main(["--check"]) == 0
        out = capsys.readouterr().out
        assert "observability smoke OK" in out

    def test_cli_json_format(self, capsys):
        assert export_main(["--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["counters"]


class TestBenchSnapshot:
    def test_write_bench_json_embeds_metrics(self, tmp_path):
        from repro.bench.runner import (
            BenchResult, SeriesTable, write_bench_json,
        )

        table = SeriesTable("demo", "n", ["iterate"])
        table.add(BenchResult("iterate", 10, 0.5))
        reg = MetricsRegistry()
        reg.counter("exec_iterations_total").inc(7)
        path = write_bench_json(
            "demo", table, directory=str(tmp_path),
            metrics=reg.snapshot(),
        )
        assert path.endswith("BENCH_demo.json")
        payload = json.loads(open(path, encoding="utf-8").read())
        assert payload["experiment"] == "demo"
        assert payload["results"][0]["series"] == "iterate"
        assert (
            payload["metrics"]["counters"]["exec_iterations_total"] == 7
        )


class TestFuzzCounters:
    def test_oracle_counts_queries(self):
        from repro.testing.oracle import run_seed

        before = global_registry().snapshot()["counters"].get(
            "fuzz_queries_total", 0
        )
        run_seed(0, queries_per_seed=1)
        after = global_registry().snapshot()["counters"][
            "fuzz_queries_total"
        ]
        assert after >= before + 1


class TestThreadSafety:
    """Concurrent hammer: morsel workers update shared metrics, so a
    registry that drops updates under contention would silently corrupt
    every parallel run's telemetry. Totals must be exact."""

    N_THREADS = 8
    N_INCREMENTS = 2_000

    def _hammer(self, worker):
        import threading

        threads = [
            threading.Thread(target=worker)
            for _ in range(self.N_THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    def test_concurrent_counter_increments_are_exact(self):
        reg = MetricsRegistry()
        counter = reg.counter("hammer_total")

        def worker():
            for _ in range(self.N_INCREMENTS):
                counter.inc()

        self._hammer(worker)
        assert counter.value == self.N_THREADS * self.N_INCREMENTS

    def test_concurrent_mirrored_counter_is_exact_in_both(self):
        parent = MetricsRegistry()
        child = MetricsRegistry(parent=parent)
        counter = child.counter("hammer_total")

        def worker():
            for _ in range(self.N_INCREMENTS):
                counter.inc(2.0)

        self._hammer(worker)
        expected = 2.0 * self.N_THREADS * self.N_INCREMENTS
        assert counter.value == expected
        assert parent.counter("hammer_total").value == expected

    def test_concurrent_gauge_inc_dec_balances(self):
        reg = MetricsRegistry()
        gauge = reg.gauge("hammer_gauge")

        def worker():
            for _ in range(self.N_INCREMENTS):
                gauge.inc()
                gauge.dec()

        self._hammer(worker)
        assert gauge.value == 0.0

    def test_concurrent_histogram_stays_consistent(self):
        reg = MetricsRegistry()
        hist = reg.histogram("hammer_seconds")

        def worker():
            for i in range(self.N_INCREMENTS):
                hist.observe(1e-5 * (i % 7))

        self._hammer(worker)
        total = self.N_THREADS * self.N_INCREMENTS
        assert hist.count == total
        assert sum(hist.counts) == total
        per_thread = sum(1e-5 * (i % 7) for i in range(self.N_INCREMENTS))
        assert hist.sum == pytest.approx(self.N_THREADS * per_thread)

    def test_concurrent_registration_yields_one_family(self):
        import threading

        reg = MetricsRegistry()
        barrier = threading.Barrier(self.N_THREADS)

        def worker():
            barrier.wait()
            for i in range(200):
                reg.counter("race_total", worker=str(i % 4)).inc()

        self._hammer(worker)
        counters = reg.snapshot()["counters"]
        series = [s for s in counters if s.startswith("race_total")]
        assert len(series) == 4
        assert sum(counters[s] for s in series) == self.N_THREADS * 200
