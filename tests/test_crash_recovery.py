"""Crash-recovery battery plumbing + a pytest-visible smoke slice.

The full randomized battery runs via ``make crash-battery``
(``python -m repro.testing.crash --seeds 200``); the tests here keep a
small always-on slice in tier-1 so a durability regression fails fast,
and expose the big sweep under the ``crash`` marker.
"""

import random

import pytest

from repro.testing.crash import (
    FAULT_KINDS,
    build_workload,
    run_crash_battery,
    run_crash_seed,
)


def _kind_of(seed: int) -> str:
    rng = random.Random(seed * 7919 + 13)
    return FAULT_KINDS[rng.randrange(len(FAULT_KINDS))]


def test_workload_is_deterministic():
    assert build_workload(42, True) == build_workload(42, True)
    assert build_workload(42, False) == build_workload(42, False)


def test_fault_kinds_all_reachable():
    """The seeded kind selector must cover every fault family quickly,
    or the battery silently stops testing one of them."""
    kinds = {_kind_of(seed) for seed in range(40)}
    assert kinds == set(FAULT_KINDS)


def test_crash_smoke_slice():
    """A small always-on slice of the battery: 6 seeds, all fault
    kinds possible, zero contract violations tolerated."""
    failures = run_crash_battery(6, start=0, jobs=3)
    assert failures == [], "\n".join(failures)


@pytest.mark.crash
@pytest.mark.slow
def test_crash_battery_sweep():
    """A wider sweep for ``-m crash`` runs (the 200-seed battery lives
    in ``make crash-battery``)."""
    failures = run_crash_battery(48, start=100, jobs=8)
    assert failures == [], "\n".join(failures)
