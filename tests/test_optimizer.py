"""Optimizer rules: plan shapes and optimized/unoptimized equivalence."""

import pytest

import repro
from repro.plan import logical as lp
from repro.sql.parser import parse_statement


def plan_of(db, sql):
    statement = parse_statement(sql)
    txn = db.txns.begin()
    try:
        return db._plan_select(statement, txn)
    finally:
        txn.rollback()


def find_nodes(plan, node_type):
    out = []
    stack = [plan]
    while stack:
        node = stack.pop()
        if isinstance(node, node_type):
            out.append(node)
        stack.extend(node.children())
    return out


@pytest.fixture
def schema_db(db):
    db.execute("CREATE TABLE big (k INTEGER, a INTEGER, b VARCHAR)")
    db.execute("CREATE TABLE small (k INTEGER, c INTEGER)")
    db.insert_rows("big", [(i, i * 2, f"s{i}") for i in range(100)])
    db.insert_rows("small", [(i, i) for i in range(5)])
    return db


class TestPredicatePushdown:
    def test_filter_reaches_scan_side_of_join(self, schema_db):
        plan = plan_of(
            schema_db,
            "SELECT * FROM big JOIN small ON big.k = small.k "
            "WHERE big.a > 10 AND small.c < 3",
        )
        joins = find_nodes(plan, lp.LogicalJoin)
        assert len(joins) == 1
        # Both join inputs are filters (predicates pushed to each side).
        kinds = {type(c).__name__ for c in joins[0].children()}
        assert kinds == {"LogicalFilter"}

    def test_where_over_comma_join_becomes_hash_join(self, schema_db):
        plan = plan_of(
            schema_db,
            "SELECT * FROM big, small WHERE big.k = small.k",
        )
        joins = find_nodes(plan, lp.LogicalJoin)
        assert joins[0].kind == "inner"
        assert joins[0].equi_keys

    def test_filter_pushed_below_sort(self, schema_db):
        plan = plan_of(
            schema_db,
            "SELECT * FROM (SELECT a FROM big ORDER BY a) s WHERE a > 5",
        )
        sorts = find_nodes(plan, lp.LogicalSort)
        assert sorts
        # A filter exists somewhere below the sort.
        below = find_nodes(sorts[0], lp.LogicalFilter)
        assert below

    def test_filter_not_pushed_below_limit(self, schema_db):
        plan = plan_of(
            schema_db,
            "SELECT * FROM (SELECT a FROM big LIMIT 3) s WHERE a > 0",
        )
        limits = find_nodes(plan, lp.LogicalLimit)
        assert not find_nodes(limits[0], lp.LogicalFilter)

    def test_group_key_filter_pushed_below_aggregate(self, schema_db):
        plan = plan_of(
            schema_db,
            "SELECT * FROM (SELECT k, count(*) AS n FROM big GROUP BY k) "
            "g WHERE k = 1",
        )
        aggregates = find_nodes(plan, lp.LogicalAggregate)
        assert find_nodes(aggregates[0].child, lp.LogicalFilter)

    def test_aggregate_result_filter_stays_above(self, schema_db):
        plan = plan_of(
            schema_db,
            "SELECT * FROM (SELECT k, count(*) AS n FROM big GROUP BY k) "
            "g WHERE n > 1",
        )
        aggregates = find_nodes(plan, lp.LogicalAggregate)
        assert not find_nodes(aggregates[0].child, lp.LogicalFilter)

    def test_no_pushdown_through_analytics_operator(self, db):
        """Section 5.2: selections must not cross an analytical
        operator — its result depends on the whole input."""
        db.execute("CREATE TABLE pts (x FLOAT, y FLOAT)")
        db.insert_rows("pts", [(0.0, 0.0), (5.0, 5.0)])
        plan = plan_of(
            db,
            "SELECT * FROM KMEANS((SELECT x, y FROM pts), "
            "(SELECT x, y FROM pts), 3) WHERE x > 1",
        )
        ops = find_nodes(plan, lp.LogicalTableFunction)
        assert len(ops) == 1
        assert not find_nodes(ops[0], lp.LogicalFilter)
        # The filter survives above the operator.
        assert find_nodes(plan, lp.LogicalFilter)

    def test_no_pushdown_into_iterate(self, db):
        plan = plan_of(
            db,
            "SELECT * FROM ITERATE((SELECT 1 AS x),"
            " (SELECT x + 1 FROM iterate),"
            " (SELECT x FROM iterate WHERE x > 3)) WHERE x > 100",
        )
        iterates = find_nodes(plan, lp.LogicalIterate)
        filters_above = find_nodes(plan, lp.LogicalFilter)
        # The x > 100 filter stays outside the ITERATE's init plan.
        assert not find_nodes(iterates[0].init, lp.LogicalFilter)
        assert filters_above

    def test_pushdown_into_union_branches(self, schema_db):
        plan = plan_of(
            schema_db,
            "SELECT * FROM (SELECT a FROM big UNION ALL "
            "SELECT c FROM small) u WHERE a > 3",
        )
        setops = find_nodes(plan, lp.LogicalSetOp)
        for branch in setops[0].children():
            assert find_nodes(branch, lp.LogicalFilter)


class TestColumnPruning:
    def test_scan_projects_only_needed_columns(self, schema_db):
        plan = plan_of(schema_db, "SELECT a FROM big WHERE k = 1")
        scans = find_nodes(plan, lp.LogicalScan)
        names = {c.name for c in scans[0].output}
        assert names == {"a", "k"}

    def test_count_star_keeps_one_column(self, schema_db):
        plan = plan_of(schema_db, "SELECT count(*) FROM big")
        scans = find_nodes(plan, lp.LogicalScan)
        assert len(scans[0].output) == 1

    def test_star_keeps_everything(self, schema_db):
        plan = plan_of(schema_db, "SELECT * FROM big")
        scans = find_nodes(plan, lp.LogicalScan)
        assert len(scans[0].output) == 3


class TestJoinSides:
    def test_smaller_input_becomes_build_side(self, schema_db):
        plan = plan_of(
            schema_db,
            "SELECT * FROM small JOIN big ON small.k = big.k",
        )
        joins = find_nodes(plan, lp.LogicalJoin)
        # big (100 rows) should be the probe (left), small the build.
        left_scans = find_nodes(joins[0].left, lp.LogicalScan)
        assert left_scans[0].table_name == "big"

    def test_left_join_sides_pinned(self, schema_db):
        plan = plan_of(
            schema_db,
            "SELECT * FROM small LEFT JOIN big ON small.k = big.k",
        )
        joins = find_nodes(plan, lp.LogicalJoin)
        left_scans = find_nodes(joins[0].left, lp.LogicalScan)
        assert left_scans[0].table_name == "small"


class TestEquivalence:
    """The optimizer must never change results."""

    QUERIES = [
        "SELECT a FROM big WHERE a > 50 AND k < 80 ORDER BY a",
        "SELECT big.k, c FROM big, small WHERE big.k = small.k "
        "ORDER BY big.k",
        "SELECT k % 3, count(*), sum(a) FROM big GROUP BY k % 3 "
        "ORDER BY 1",
        "SELECT * FROM (SELECT k, a FROM big WHERE a > 10) s "
        "JOIN small ON s.k = small.k ORDER BY s.k",
        "SELECT a FROM big WHERE a IN (SELECT c * 2 FROM small) "
        "ORDER BY a",
        "SELECT b FROM big WHERE k IN (1, 2, 3) OR a > 190 ORDER BY b",
    ]

    @pytest.mark.parametrize("sql", QUERIES)
    def test_optimized_matches_unoptimized(self, sql):
        def build(optimize):
            db = repro.Database(optimize=optimize)
            db.execute(
                "CREATE TABLE big (k INTEGER, a INTEGER, b VARCHAR)"
            )
            db.execute("CREATE TABLE small (k INTEGER, c INTEGER)")
            db.insert_rows(
                "big", [(i, i * 2, f"s{i}") for i in range(100)]
            )
            db.insert_rows("small", [(i, i) for i in range(5)])
            return db.execute(sql).rows

        assert build(True) == build(False)


class TestCardinality:
    def test_estimates_available(self, schema_db):
        txn = schema_db.txns.begin()
        try:
            optimizer = schema_db._make_optimizer(txn)
            plan = schema_db._make_binder(txn).bind_query(
                parse_statement("SELECT * FROM big WHERE a = 1")
            )
            estimate = optimizer.estimate(plan)
            assert 0 < estimate < 100
        finally:
            txn.rollback()

    def test_analytics_contract_kmeans(self, db):
        db.execute("CREATE TABLE pts (x FLOAT)")
        db.insert_rows("pts", [(float(i),) for i in range(50)])
        txn = db.txns.begin()
        try:
            optimizer = db._make_optimizer(txn)
            plan = db._make_binder(txn).bind_query(
                parse_statement(
                    "SELECT * FROM KMEANS((SELECT x FROM pts), "
                    "(SELECT x FROM pts LIMIT 3), 5)"
                )
            )
            # Contract: k-Means returns k rows (the centers input size).
            assert optimizer.estimate(plan) <= 5
        finally:
            txn.rollback()
