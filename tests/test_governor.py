"""The resource governor: deadlines, cooperative cancellation, memory
budgets, statement atomicity, and worker-pool fault tolerance
(docs/robustness.md)."""

import threading
import time

import numpy as np
import pytest

import repro
from repro.errors import (
    MemoryBudgetExceeded,
    QueryCancelled,
    QueryTimeout,
    TransactionError,
)
from repro.governor import CancelToken, QueryContext
from repro.testing.chaos import ChaosInjector

LONG_PAGERANK = (
    "SELECT * FROM PAGERANK((SELECT src, dst FROM e), "
    "0.85, 0.0, 1000000)"
)


def _edges_db(n_edges=20_000, n_vertices=3_000, **kwargs):
    db = repro.Database(**kwargs)
    db.execute("CREATE TABLE e (src INTEGER, dst INTEGER)")
    rng = np.random.default_rng(7)
    db.load_columns(
        "e",
        {
            "src": rng.integers(0, n_vertices, size=n_edges),
            "dst": rng.integers(0, n_vertices, size=n_edges),
        },
    )
    return db


def _big_edges_db(**kwargs):
    # Large enough that PAGERANK with epsilon=0 runs for seconds
    # (~20ms per power-iteration round), so deadlines and cross-thread
    # cancels land mid-computation.
    return _edges_db(n_edges=2_000_000, n_vertices=150_000, **kwargs)


class TestQueryContext:
    def test_defaults_never_fire(self):
        governor = QueryContext()
        for _ in range(100):
            governor.check("test")
        governor.reserve(1 << 40, "huge")
        assert governor.verdict == "ok"

    def test_timeout_fires_at_checkpoint(self):
        governor = QueryContext(timeout_ms=1)
        time.sleep(0.01)
        with pytest.raises(QueryTimeout):
            governor.check("test")
        assert governor.verdict == "timeout"

    def test_cancel_token(self):
        token = CancelToken()
        governor = QueryContext(cancel_token=token)
        governor.check("before")
        token.cancel()
        with pytest.raises(QueryCancelled) as excinfo:
            governor.check("after")
        assert governor.verdict == "cancelled"
        assert excinfo.value.report["verdict"] == "cancelled"

    def test_ledger_reserve_release_and_peak(self):
        governor = QueryContext(memory_budget_bytes=100)
        governor.reserve(60, "a")
        governor.release(60)
        governor.reserve(90, "b")
        assert governor.peak_bytes == 90
        with pytest.raises(MemoryBudgetExceeded):
            governor.reserve(20, "c")
        assert governor.verdict == "oom"

    def test_nonpositive_timeout_disables(self):
        assert QueryContext(timeout_ms=0).deadline is None
        assert QueryContext(timeout_ms=-5).deadline is None


class TestTimeout:
    def test_long_pagerank_times_out(self):
        db = _big_edges_db()
        with pytest.raises(QueryTimeout):
            db.execute(LONG_PAGERANK, timeout_ms=100)
        assert db.last_governor["verdict"] == "timeout"
        assert db.last_governor["checkpoints"] > 0
        # Session stays fully usable.
        assert db.execute("SELECT count(*) FROM e").scalar() == 2_000_000
        db.close()

    def test_session_default_applies(self):
        slow = repro.Database(timeout_ms=20)
        slow.execute("CREATE TABLE t (a INTEGER)")
        slow.insert_rows("t", [(i,) for i in range(10)])
        # No per-call limit: the session-wide default governs.
        with pytest.raises(QueryTimeout):
            slow.execute(
                "SELECT * FROM ITERATE((SELECT 1 AS x),"
                " (SELECT x + 1 FROM iterate),"
                " (SELECT x FROM iterate WHERE x >= 100000000))"
            )

    def test_per_call_override_wins(self):
        db = repro.Database(timeout_ms=1)
        db.execute("CREATE TABLE t (a INTEGER)", timeout_ms=None)
        # Override disables the 1ms session default entirely.
        db.insert_rows("t", [(i,) for i in range(5)])
        assert db.execute(
            "SELECT count(*) FROM t", timeout_ms=None
        ).scalar() == 5

    def test_timeout_on_iterate_rounds(self, db):
        with pytest.raises(QueryTimeout):
            db.execute(
                "SELECT * FROM ITERATE((SELECT 1 AS x),"
                " (SELECT x + 1 FROM iterate),"
                " (SELECT x FROM iterate WHERE x >= 100000000))",
                timeout_ms=100,
            )
        assert db.last_governor["verdict"] == "timeout"


class TestCancellation:
    def test_cancel_from_another_thread(self):
        db = _big_edges_db()
        outcome = {}

        def run():
            try:
                db.execute(LONG_PAGERANK)
                outcome["error"] = "completed"
            except QueryCancelled:
                outcome["cancelled_at"] = time.perf_counter()
            except Exception as exc:  # pragma: no cover
                outcome["error"] = repr(exc)

        thread = threading.Thread(target=run)
        thread.start()
        time.sleep(0.15)  # let it get into the iteration loop
        signalled = db.cancel()
        cancelled_from = time.perf_counter()
        thread.join(timeout=10)
        assert not thread.is_alive()
        assert signalled == 1
        assert "cancelled_at" in outcome, outcome.get("error")
        # Cooperative latency is bounded by one SpMV round (~20ms on
        # this graph), far under this generous bound.
        assert outcome["cancelled_at"] - cancelled_from < 2.0
        # Session survives: the next statement runs normally.
        assert db.execute("SELECT count(*) FROM e").scalar() == 2_000_000
        db.close()

    def test_cancel_with_no_statement_running(self, db):
        assert db.cancel() == 0

    def test_cancel_does_not_poison_later_statements(self):
        db = _big_edges_db()
        outcome = {}

        def run():
            try:
                db.execute(LONG_PAGERANK)
            except QueryCancelled:
                outcome["cancelled"] = True

        thread = threading.Thread(target=run)
        thread.start()
        time.sleep(0.15)
        db.cancel()
        thread.join(timeout=10)
        assert outcome.get("cancelled")
        # The cancel token was per-statement: fresh statements are
        # unaffected, including a fresh (convergent) PAGERANK.
        first = db.execute(
            "SELECT vertex, rank FROM PAGERANK("
            "(SELECT src, dst FROM e), 0.85, 0.001, 3) "
            "ORDER BY vertex LIMIT 5"
        ).rows
        assert len(first) == 5
        db.close()


class TestMemoryBudget:
    def test_join_exceeds_budget(self):
        db = _edges_db(n_edges=20_000)
        with pytest.raises(MemoryBudgetExceeded):
            db.execute(
                "SELECT e1.src FROM e e1 JOIN e e2 ON e1.dst = e2.src",
                memory_budget_mb=0.1,
            )
        assert db.last_governor["verdict"] == "oom"
        assert db.last_governor["peak_bytes"] > 0

    def test_generous_budget_passes(self):
        db = _edges_db(n_edges=5_000)
        rows = db.execute(
            "SELECT count(*) FROM e", memory_budget_mb=256
        )
        assert rows.scalar() == 5_000
        assert db.last_governor["verdict"] == "ok"

    def test_iterate_releases_per_round(self, db):
        # ITERATE replaces its per-round reservation (2n semantics):
        # many rounds over a small relation stay within a small budget.
        assert db.execute(
            "SELECT * FROM ITERATE((SELECT 1 AS x),"
            " (SELECT x + 1 FROM iterate),"
            " (SELECT x FROM iterate WHERE x >= 500))",
            memory_budget_mb=1,
        ).scalar() == 500

    def test_budget_error_carries_report(self):
        db = _edges_db(n_edges=20_000)
        with pytest.raises(MemoryBudgetExceeded) as excinfo:
            db.execute(
                "SELECT e1.src FROM e e1 JOIN e e2 ON e1.dst = e2.src",
                memory_budget_mb=0.1,
            )
        report = excinfo.value.report
        assert report["verdict"] == "oom"
        assert report["memory_budget_bytes"] == int(0.1 * 1024 * 1024)


class TestCountersAndReports:
    def test_governor_counters(self):
        db = _edges_db()
        with pytest.raises(QueryTimeout):
            # A deadline already in the past fires at the very first
            # checkpoint regardless of statement cost.
            db.execute(LONG_PAGERANK, timeout_ms=0.0001)
        with pytest.raises(MemoryBudgetExceeded):
            db.execute(
                "SELECT e1.src FROM e e1 JOIN e e2 ON e1.dst = e2.src",
                memory_budget_mb=0.1,
            )
        counters = db.metrics.snapshot()["counters"]
        assert counters["engine_queries_timed_out_total"] == 1
        assert counters["engine_queries_oom_aborted_total"] == 1
        assert "engine_queries_cancelled_total" not in counters

    def test_explain_analyze_reports_governor(self, people_db):
        analyzed = people_db.explain_analyze(
            "SELECT count(*) FROM people"
        )
        assert analyzed.governor["verdict"] == "ok"
        assert analyzed.governor["checkpoints"] > 0
        text = analyzed.format()
        assert "governor: verdict=ok" in text

    def test_explain_analyze_renders_limits(self, people_db):
        analyzed = people_db.explain_analyze(
            "SELECT count(*) FROM people", timeout_ms=60_000
        )
        assert "timeout_ms=60000" in analyzed.format()

    def test_last_governor_set_on_success(self, people_db):
        people_db.execute("SELECT 1")
        assert people_db.last_governor["verdict"] == "ok"


class TestStatementAtomicity:
    def test_timeout_rolls_back_autocommit_dml(self):
        db = _edges_db(n_edges=5_000)
        before = db.row_count("e")
        # The INSERT..SELECT's source query hits the deadline at a
        # checkpoint; nothing may be inserted.
        with pytest.raises(QueryTimeout):
            db.execute(
                "INSERT INTO e SELECT t1.src, t2.dst FROM e t1 "
                "JOIN e t2 ON t1.dst = t2.src",
                timeout_ms=1,
            )
        assert db.row_count("e") == before

    def test_governor_abort_keeps_session_txn_unwound(self):
        db = _edges_db(n_edges=5_000)
        db.begin()
        db.execute("INSERT INTO e VALUES (999991, 999992)")
        with pytest.raises(QueryTimeout):
            db.execute(LONG_PAGERANK, timeout_ms=0.0001)
        # The explicit transaction survives with its earlier write.
        assert db.in_transaction
        db.commit()
        assert db.execute(
            "SELECT count(*) FROM e WHERE src = 999991"
        ).scalar() == 1


class TestExecutemanyAtomicity:
    def test_interrupt_mid_batch_autocommit(self, db, monkeypatch):
        db.execute("CREATE TABLE t (a INTEGER)")
        db.insert_rows("t", [(0,)])
        from repro.types import coerce_scalar as real_coerce

        calls = {"n": 0}

        def exploding(value, sql_type):
            calls["n"] += 1
            if calls["n"] == 3:
                raise KeyboardInterrupt()
            return real_coerce(value, sql_type)

        monkeypatch.setattr(
            "repro.api.database.coerce_scalar", exploding
        )
        with pytest.raises(KeyboardInterrupt):
            db.executemany(
                "INSERT INTO t VALUES (?)", [(1,), (2,), (3,), (4,)]
            )
        monkeypatch.undo()
        # The whole batch rolled back; the session is not mid-txn.
        assert not db.in_transaction
        assert db.execute("SELECT count(*) FROM t").scalar() == 1

    def test_interrupt_mid_batch_inside_session_txn(
        self, db, monkeypatch
    ):
        db.execute("CREATE TABLE t (a INTEGER)")
        from repro.types import coerce_scalar as real_coerce

        calls = {"n": 0}

        def exploding(value, sql_type):
            calls["n"] += 1
            if calls["n"] == 3:
                raise KeyboardInterrupt()
            return real_coerce(value, sql_type)

        db.begin()
        db.execute("INSERT INTO t VALUES (100)")
        monkeypatch.setattr(
            "repro.api.database.coerce_scalar", exploding
        )
        with pytest.raises(KeyboardInterrupt):
            db.executemany(
                "INSERT INTO t VALUES (?)", [(1,), (2,), (3,), (4,)]
            )
        monkeypatch.undo()
        # The batch unwound to its savepoint; the earlier statement of
        # the transaction is intact and the txn still open.
        assert db.in_transaction
        db.commit()
        assert db.execute("SELECT a FROM t ORDER BY a").rows == [(100,)]

    def test_per_row_loop_unwinds_to_savepoint(self, db):
        db.execute("CREATE TABLE t (id INTEGER, a INTEGER)")
        db.insert_rows("t", [(1, 10), (2, 20)])
        db.begin()
        db.execute("UPDATE t SET a = 99 WHERE id = 1")
        with pytest.raises(repro.ReproError):
            # Second tuple's value cannot coerce to INTEGER: the batch
            # fails mid-way and must unwind, keeping the earlier UPDATE.
            db.executemany(
                "UPDATE t SET a = ? WHERE id = ?",
                [(7, 1), ("boom", 2)],
            )
        assert db.in_transaction
        db.commit()
        assert db.execute(
            "SELECT a FROM t ORDER BY id"
        ).rows == [(99,), (20,)]

    def test_savepoint_rollback_to(self, db):
        db.execute("CREATE TABLE t (a INTEGER)")
        db.begin()
        txn = db._session_txn
        db.execute("INSERT INTO t VALUES (1)")
        savepoint = txn.savepoint()
        db.execute("INSERT INTO t VALUES (2)")
        db.execute("CREATE TABLE u (b INTEGER)")
        txn.rollback_to(savepoint)
        db.commit()
        assert db.execute("SELECT a FROM t").rows == [(1,)]
        assert "u" not in db.table_names()

    def test_savepoint_requires_active_txn(self, db):
        db.begin()
        txn = db._session_txn
        db.commit()
        with pytest.raises(TransactionError):
            txn.savepoint()


class TestWorkerPoolRobustness:
    def test_double_close_is_noop(self, db):
        db.close()
        db.close()  # must not raise
        # And the session respawns workers on demand afterwards.
        db.execute("CREATE TABLE t (a INTEGER)")
        assert db.execute("SELECT count(*) FROM t").scalar() == 0

    def test_pool_shutdown_idempotent(self):
        from repro.exec.parallel import WorkerPool

        pool = WorkerPool(2)
        pool.map_ordered(lambda x: x + 1, [1, 2, 3])
        pool.shutdown()
        pool.shutdown()

    def test_worker_crash_retried_serially(self):
        injector = ChaosInjector("worker_crash", 1).arm()
        db = repro.Database(
            workers=2, parallel_threshold=0, morsel_rows=32,
            chaos=injector,
        )
        db.execute("CREATE TABLE t (a INTEGER)")
        db.insert_rows("t", [(i,) for i in range(1_000)])
        # The injected crash on a worker thread is retried serially on
        # the coordinator: the query still answers correctly.
        assert db.execute(
            "SELECT sum(a) FROM t WHERE a >= 0"
        ).scalar() == 499_500
        assert injector.fired
        counters = db.metrics.snapshot()["counters"]
        assert counters.get("parallel_morsel_retries_total", 0) >= 1
        db.close()
