"""Join semantics: hash joins, outer joins, non-equi, NULL keys."""

import pytest

import repro


class TestInnerJoins:
    def test_basic_equi_join(self, people_db):
        rows = people_db.execute(
            "SELECT p.name, o.amount FROM people p "
            "JOIN orders o ON p.id = o.person_id ORDER BY o.order_id"
        ).rows
        assert rows == [
            ("alice", 25.0), ("alice", 75.0), ("bob", 10.0),
            ("carol", 99.5),
        ]

    def test_comma_join_with_where_becomes_equi(self, people_db):
        rows = people_db.execute(
            "SELECT count(*) FROM people p, orders o "
            "WHERE p.id = o.person_id"
        ).scalar()
        assert rows == 4

    def test_using_clause(self, db):
        db.execute("CREATE TABLE a (k INTEGER, x INTEGER)")
        db.execute("CREATE TABLE b (k INTEGER, y INTEGER)")
        db.insert_rows("a", [(1, 10), (2, 20)])
        db.insert_rows("b", [(2, 200), (3, 300)])
        rows = db.execute(
            "SELECT a.k, x, y FROM a JOIN b USING (k)"
        ).rows
        assert rows == [(2, 20, 200)]

    def test_multi_key_join(self, db):
        db.execute("CREATE TABLE a (k1 INTEGER, k2 VARCHAR, v INTEGER)")
        db.execute("CREATE TABLE b (k1 INTEGER, k2 VARCHAR, w INTEGER)")
        db.insert_rows("a", [(1, "x", 10), (1, "y", 11), (2, "x", 20)])
        db.insert_rows("b", [(1, "x", 100), (2, "y", 201)])
        rows = db.execute(
            "SELECT v, w FROM a JOIN b ON a.k1 = b.k1 AND a.k2 = b.k2"
        ).rows
        assert rows == [(10, 100)]

    def test_duplicate_build_keys_expand(self, db):
        db.execute("CREATE TABLE l (k INTEGER)")
        db.execute("CREATE TABLE r (k INTEGER)")
        db.insert_rows("l", [(1,), (1,)])
        db.insert_rows("r", [(1,), (1,), (1,)])
        assert db.execute(
            "SELECT count(*) FROM l JOIN r ON l.k = r.k"
        ).scalar() == 6

    def test_null_keys_never_match(self, db):
        db.execute("CREATE TABLE l (k INTEGER)")
        db.execute("CREATE TABLE r (k INTEGER)")
        db.insert_rows("l", [(1,), (None,)])
        db.insert_rows("r", [(None,), (1,)])
        assert db.execute(
            "SELECT count(*) FROM l JOIN r ON l.k = r.k"
        ).scalar() == 1

    def test_join_expression_keys(self, db):
        db.execute("CREATE TABLE l (k INTEGER)")
        db.execute("CREATE TABLE r (k INTEGER)")
        db.insert_rows("l", [(2,), (3,)])
        db.insert_rows("r", [(4,), (9,)])
        rows = db.execute(
            "SELECT l.k, r.k FROM l JOIN r ON l.k * 2 = r.k"
        ).rows
        assert rows == [(2, 4)]

    def test_self_join_disambiguated(self, people_db):
        rows = people_db.execute(
            "SELECT a.name, b.name FROM people a JOIN people b "
            "ON a.age = b.age AND a.id < b.id"
        ).rows
        assert rows == [("bob", "erin")]

    def test_residual_predicate(self, people_db):
        rows = people_db.execute(
            "SELECT p.name FROM people p JOIN orders o "
            "ON p.id = o.person_id AND o.amount > 50 ORDER BY p.name"
        ).rows
        assert rows == [("alice",), ("carol",)]

    def test_join_three_tables(self, db):
        db.execute("CREATE TABLE a (x INTEGER)")
        db.execute("CREATE TABLE b (x INTEGER)")
        db.execute("CREATE TABLE c (x INTEGER)")
        for table in ("a", "b", "c"):
            db.insert_rows(table, [(1,), (2,)])
        assert db.execute(
            "SELECT count(*) FROM a JOIN b ON a.x = b.x "
            "JOIN c ON b.x = c.x"
        ).scalar() == 2


class TestLeftJoins:
    def test_unmatched_left_rows_null_extended(self, people_db):
        rows = people_db.execute(
            "SELECT p.name, o.amount FROM people p "
            "LEFT JOIN orders o ON p.id = o.person_id "
            "ORDER BY p.id, o.order_id"
        ).rows
        assert ("dave", None) in rows
        assert ("erin", None) in rows
        assert len(rows) == 6

    def test_left_join_empty_right(self, db):
        db.execute("CREATE TABLE l (k INTEGER)")
        db.execute("CREATE TABLE r (k INTEGER, v INTEGER)")
        db.insert_rows("l", [(1,), (2,)])
        rows = db.execute(
            "SELECT l.k, r.v FROM l LEFT JOIN r ON l.k = r.k ORDER BY l.k"
        ).rows
        assert rows == [(1, None), (2, None)]

    def test_left_join_residual_failure_keeps_row(self, people_db):
        # A match that fails the residual makes the row unmatched.
        rows = people_db.execute(
            "SELECT p.name, o.order_id FROM people p "
            "LEFT JOIN orders o ON p.id = o.person_id "
            "AND o.amount > 1000 ORDER BY p.id"
        ).rows
        assert all(order_id is None for _name, order_id in rows)
        assert len(rows) == 5

    def test_is_null_filter_finds_unmatched(self, people_db):
        rows = people_db.execute(
            "SELECT p.name FROM people p "
            "LEFT JOIN orders o ON p.id = o.person_id "
            "WHERE o.order_id IS NULL ORDER BY p.name"
        ).rows
        assert rows == [("dave",), ("erin",)]


class TestCrossAndNonEqui:
    def test_cross_join_cardinality(self, db):
        db.execute("CREATE TABLE a (x INTEGER)")
        db.execute("CREATE TABLE b (y INTEGER)")
        db.insert_rows("a", [(1,), (2,), (3,)])
        db.insert_rows("b", [(10,), (20,)])
        assert db.execute(
            "SELECT count(*) FROM a CROSS JOIN b"
        ).scalar() == 6

    def test_non_equi_join(self, db):
        db.execute("CREATE TABLE a (x INTEGER)")
        db.execute("CREATE TABLE b (y INTEGER)")
        db.insert_rows("a", [(1,), (5,)])
        db.insert_rows("b", [(3,), (4,)])
        rows = db.execute(
            "SELECT x, y FROM a JOIN b ON a.x < b.y ORDER BY x, y"
        ).rows
        assert rows == [(1, 3), (1, 4)]

    def test_empty_inputs(self, db):
        db.execute("CREATE TABLE a (x INTEGER)")
        db.execute("CREATE TABLE b (y INTEGER)")
        db.insert_rows("a", [(1,)])
        assert db.execute(
            "SELECT count(*) FROM a JOIN b ON a.x = b.y"
        ).scalar() == 0
        assert db.execute(
            "SELECT count(*) FROM a CROSS JOIN b"
        ).scalar() == 0
