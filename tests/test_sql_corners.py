"""Regression tests for odd-but-legal SQL corners."""

import pytest

import repro
from repro.errors import ParseError


@pytest.fixture
def corner_db(db):
    db.execute("CREATE TABLE t (a INTEGER, b VARCHAR)")
    db.insert_rows("t", [(1, "x"), (2, "y"), (None, "z")])
    db.execute("CREATE TABLE u (a INTEGER)")
    db.insert_rows("u", [(1,), (3,)])
    return db


class TestCorners:
    def test_qualified_star_with_where(self, corner_db):
        rows = corner_db.execute(
            "SELECT t.* FROM t WHERE a IS NOT NULL"
        ).rows
        assert rows == [(1, "x"), (2, "y")]

    def test_same_column_two_aliases(self, corner_db):
        rows = corner_db.execute(
            "SELECT * FROM (SELECT a AS x, a AS y FROM t) s "
            "WHERE x = y"
        ).rows
        assert rows == [(1, 1), (2, 2)]

    def test_correlated_equals_subquery(self, corner_db):
        assert corner_db.execute(
            "SELECT a FROM t WHERE a = "
            "(SELECT max(a) FROM u WHERE u.a = t.a)"
        ).rows == [(1,)]

    def test_correlated_count_in_select(self, corner_db):
        rows = corner_db.execute(
            "SELECT (SELECT count(*) FROM u WHERE u.a > t.a) FROM t "
            "ORDER BY 1"
        ).rows
        assert rows == [(0,), (1,), (1,)]

    def test_chained_dependent_ctes_joined(self, corner_db):
        assert corner_db.execute(
            "WITH x AS (SELECT 1 AS v), "
            "y AS (SELECT v + 1 AS w FROM x) "
            "SELECT w FROM y JOIN x ON x.v < y.w"
        ).scalar() == 2

    def test_aggregate_over_union(self, corner_db):
        assert corner_db.execute(
            "SELECT sum(a) FROM (SELECT a FROM t UNION ALL "
            "SELECT a FROM u) z"
        ).scalar() == 7

    def test_from_less_select_with_where(self, corner_db):
        assert corner_db.execute("SELECT 1 WHERE 1 = 2").rows == []
        assert corner_db.execute("SELECT 1 WHERE 1 = 1").rows == [(1,)]

    def test_nested_exists(self, corner_db):
        assert corner_db.execute(
            "SELECT a FROM t t1 WHERE EXISTS ("
            "SELECT 1 FROM t t2 WHERE t2.a = t1.a AND EXISTS ("
            "SELECT 1 FROM u WHERE u.a = t2.a))"
        ).rows == [(1,)]

    def test_subquery_inside_aggregate_argument(self, corner_db):
        assert corner_db.execute(
            "SELECT sum(a + (SELECT min(a) FROM u)) FROM t"
        ).scalar() == 5

    def test_distinct_over_boolean_expression(self, corner_db):
        rows = sorted(corner_db.execute(
            "SELECT DISTINCT a IS NULL FROM t"
        ).rows)
        assert rows == [(False,), (True,)]

    def test_order_by_expression_desc_nulls_first(self, corner_db):
        rows = corner_db.execute(
            "SELECT a FROM t ORDER BY a + 1 DESC NULLS FIRST"
        ).rows
        assert rows == [(None,), (2,), (1,)]

    def test_iterate_with_carried_string_column(self, corner_db):
        rows = corner_db.execute(
            "SELECT * FROM ITERATE((SELECT a, b FROM t WHERE a = 1),"
            " (SELECT a + 1, b FROM iterate),"
            " (SELECT 1 FROM iterate WHERE a > 3))"
        ).rows
        assert rows == [(4, "x")]

    def test_window_in_derived_table_filtered(self, corner_db):
        rows = corner_db.execute(
            "SELECT r.rn FROM (SELECT row_number() OVER "
            "(ORDER BY a NULLS LAST) AS rn FROM t) r WHERE r.rn > 1"
        ).rows
        assert sorted(rows) == [(2,), (3,)]

    def test_self_insert_snapshot(self, corner_db):
        corner_db.execute("INSERT INTO u SELECT a FROM u")
        assert corner_db.execute(
            "SELECT count(*) FROM u"
        ).scalar() == 4

    def test_except_null_branch(self, corner_db):
        rows = sorted(
            corner_db.execute(
                "SELECT a FROM t EXCEPT SELECT NULL"
            ).rows,
            key=lambda r: (r[0] is None, r[0]),
        )
        assert rows == [(1,), (2,)]

    def test_values_with_expressions(self, corner_db):
        assert corner_db.execute(
            "VALUES (1+1, 'a' || 'b')"
        ).rows == [(2, "ab")]

    def test_empty_group_by_parens_rejected(self, corner_db):
        with pytest.raises(ParseError):
            corner_db.execute("SELECT count(*) FROM t GROUP BY ()")

    def test_filter_clause_unsupported(self, corner_db):
        with pytest.raises(ParseError):
            corner_db.execute(
                "SELECT count(*) FILTER (WHERE a > 1) FROM t"
            )
