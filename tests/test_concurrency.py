"""Concurrency: analytical snapshots under transactional churn —
the HyPer one-system story the paper builds on (section 3)."""

import threading

import numpy as np
import pytest

import repro
from repro.errors import SerializationConflict


class TestAnalyticsUnderWrites:
    def test_kmeans_sees_consistent_snapshot(self):
        db = repro.Database()
        db.execute("CREATE TABLE pts (x FLOAT, y FLOAT)")
        rng = np.random.default_rng(0)
        db.load_columns(
            "pts", {"x": rng.random(500), "y": rng.random(500)}
        )

        analysis = db.txns.begin()
        # A writer commits new points mid-"analysis".
        writer = db.txns.begin()
        writer.insert_rows("pts", [(100.0, 100.0)] * 50)
        writer.commit()

        # The analysis snapshot still has 500 points.
        assert analysis.read("pts").row_count == 500
        analysis.commit()
        assert db.row_count("pts") == 550

    def test_query_results_stable_within_explicit_txn(self):
        db = repro.Database()
        db.execute("CREATE TABLE t (a INTEGER)")
        db.insert_rows("t", [(1,), (2,)])
        db.begin()
        before = db.execute("SELECT sum(a) FROM t").scalar()
        other = db.txns.begin()
        other.insert_rows("t", [(100,)])
        other.commit()
        after = db.execute("SELECT sum(a) FROM t").scalar()
        db.commit()
        assert before == after == 3
        assert db.execute("SELECT sum(a) FROM t").scalar() == 103

    def test_threaded_readers_with_writer(self):
        """Readers in threads always see a consistent version while a
        writer keeps appending batches of a known size."""
        db = repro.Database()
        db.execute("CREATE TABLE t (a INTEGER)")
        db.insert_rows("t", [(0,)] * 10)
        errors: list[str] = []
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                count = db.execute("SELECT count(*) FROM t").scalar()
                # Writer inserts in chunks of 10: any consistent
                # snapshot has a multiple of 10.
                if count % 10 != 0:
                    errors.append(f"torn read: {count}")

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for t in threads:
            t.start()
        for _ in range(20):
            db.insert_rows("t", [(1,)] * 10)
        stop.set()
        for t in threads:
            t.join()
        assert not errors
        assert db.row_count("t") == 210

    def test_writer_conflict_under_threads(self):
        db = repro.Database()
        db.execute("CREATE TABLE t (a INTEGER)")
        db.insert_rows("t", [(0,)])
        outcomes: list[str] = []
        barrier = threading.Barrier(2)
        lock = threading.Lock()

        def contender(value):
            txn = db.txns.begin()
            txn.insert_rows("t", [(value,)])
            barrier.wait()  # both hold overlapping snapshots
            try:
                txn.commit()
                result = "committed"
            except SerializationConflict:
                result = "aborted"
            with lock:
                outcomes.append(result)

        threads = [
            threading.Thread(target=contender, args=(v,))
            for v in (1, 2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(outcomes) == ["aborted", "committed"]
        assert db.row_count("t") == 2  # original + one winner

    def test_vacuum_after_churn(self):
        db = repro.Database()
        db.execute("CREATE TABLE t (a INTEGER)")
        for i in range(20):
            db.insert_rows("t", [(i,)])
        freed = db.vacuum()
        assert freed > 0
        assert db.execute("SELECT count(*) FROM t").scalar() == 20
        # Data still fully queryable post-vacuum.
        assert db.execute("SELECT sum(a) FROM t").scalar() == sum(
            range(20)
        )

    def test_long_analytics_query_then_vacuum(self):
        db = repro.Database()
        db.execute("CREATE TABLE e (src INTEGER, dest INTEGER)")
        db.insert_rows("e", [(i, (i + 1) % 50) for i in range(50)])
        reader = db.txns.begin()
        db.insert_rows("e", [(0, 25)])
        db.vacuum()  # must not free the reader's version
        assert reader.read("e").row_count == 50
        reader.commit()
        db.vacuum()
