"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.analytics.kmeans import kmeans
from repro.analytics.pagerank import pagerank
from repro.exec.common import factorize, factorize_column
from repro.exec.parallel import morsel_ranges
from repro.storage.column import Column
from repro.types import DOUBLE, INTEGER, VARCHAR

# Bounded integer values (avoid int32 overflow in SQL arithmetic).
small_ints = st.integers(min_value=-10_000, max_value=10_000)
opt_ints = st.one_of(st.none(), small_ints)


def load_ints(values):
    db = repro.Database()
    db.execute("CREATE TABLE t (a INTEGER)")
    db.insert_rows("t", [(v,) for v in values])
    return db


class TestSQLAggregatesMatchPython:
    @given(st.lists(opt_ints, max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_count_sum_min_max(self, values):
        db = load_ints(values)
        row = db.execute(
            "SELECT count(*), count(a), sum(a), min(a), max(a) FROM t"
        ).fetchone()
        non_null = [v for v in values if v is not None]
        assert row[0] == len(values)
        assert row[1] == len(non_null)
        assert row[2] == (sum(non_null) if non_null else None)
        assert row[3] == (min(non_null) if non_null else None)
        assert row[4] == (max(non_null) if non_null else None)

    @given(st.lists(small_ints, min_size=1, max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_group_by_matches_dict(self, values):
        db = load_ints(values)
        rows = db.execute(
            "SELECT a % 5, count(*) FROM t GROUP BY a % 5"
        ).rows
        expected: dict[int, int] = {}
        for v in values:
            key = v - (v // 5) * 5 if v >= 0 else -((-v) % 5)
            # SQL % truncates toward zero: emulate with math.fmod.
            key = int(np.fmod(v, 5))
            expected[key] = expected.get(key, 0) + 1
        assert dict(rows) == expected


class TestSortProperties:
    @given(st.lists(opt_ints, max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_order_matches_python_sorted(self, values):
        db = load_ints(values)
        rows = [r[0] for r in db.execute(
            "SELECT a FROM t ORDER BY a"
        ).rows]
        non_null = sorted(v for v in values if v is not None)
        nulls = [None] * (len(values) - len(non_null))
        assert rows == non_null + nulls  # NULLs last for ASC

    @given(st.lists(st.text(max_size=6), max_size=40))
    @settings(max_examples=30, deadline=None)
    def test_string_sort(self, values):
        db = repro.Database()
        db.execute("CREATE TABLE t (s VARCHAR)")
        db.insert_rows("t", [(v,) for v in values])
        rows = [r[0] for r in db.execute(
            "SELECT s FROM t ORDER BY s DESC"
        ).rows]
        assert rows == sorted(values, reverse=True)

    @given(st.lists(opt_ints, max_size=40), st.integers(0, 10),
           st.integers(0, 10))
    @settings(max_examples=30, deadline=None)
    def test_limit_offset_slice(self, values, limit, offset):
        db = load_ints(values)
        rows = db.execute(
            f"SELECT a FROM t ORDER BY a LIMIT {limit} OFFSET {offset}"
        ).rows
        everything = db.execute("SELECT a FROM t ORDER BY a").rows
        assert rows == everything[offset : offset + limit]


class TestSetOpProperties:
    @given(st.lists(small_ints, max_size=30), st.lists(small_ints, max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_set_ops_match_python_sets(self, left, right):
        db = repro.Database()
        db.execute("CREATE TABLE l (a INTEGER)")
        db.execute("CREATE TABLE r (a INTEGER)")
        db.insert_rows("l", [(v,) for v in left])
        db.insert_rows("r", [(v,) for v in right])
        union = {
            r[0] for r in db.execute(
                "SELECT a FROM l UNION SELECT a FROM r"
            ).rows
        }
        intersect = {
            r[0] for r in db.execute(
                "SELECT a FROM l INTERSECT SELECT a FROM r"
            ).rows
        }
        except_ = {
            r[0] for r in db.execute(
                "SELECT a FROM l EXCEPT SELECT a FROM r"
            ).rows
        }
        assert union == set(left) | set(right)
        assert intersect == set(left) & set(right)
        assert except_ == set(left) - set(right)


class TestJoinProperties:
    @given(st.lists(st.integers(0, 8), max_size=25),
           st.lists(st.integers(0, 8), max_size=25))
    @settings(max_examples=40, deadline=None)
    def test_join_matches_nested_loops(self, left, right):
        db = repro.Database()
        db.execute("CREATE TABLE l (a INTEGER)")
        db.execute("CREATE TABLE r (a INTEGER)")
        db.insert_rows("l", [(v,) for v in left])
        db.insert_rows("r", [(v,) for v in right])
        got = sorted(db.execute(
            "SELECT l.a, r.a FROM l JOIN r ON l.a = r.a"
        ).rows)
        expected = sorted(
            (x, y) for x in left for y in right if x == y
        )
        assert got == expected


class TestFactorize:
    @given(st.lists(opt_ints, max_size=80))
    @settings(max_examples=50, deadline=None)
    def test_codes_respect_equality(self, values):
        col = Column.from_values(values, INTEGER)
        codes, count = factorize_column(col)
        assert len(codes) == len(values)
        if values:
            assert codes.max(initial=-1) < max(count, 1)
        for i in range(len(values)):
            for j in range(i + 1, len(values)):
                same = values[i] == values[j] or (
                    values[i] is None and values[j] is None
                )
                if same:
                    assert codes[i] == codes[j]
                else:
                    assert codes[i] != codes[j]

    @given(
        st.lists(
            st.tuples(st.integers(0, 3), st.text(max_size=2)),
            max_size=50,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_multi_column_rows(self, rows):
        ints = Column.from_values([r[0] for r in rows], INTEGER)
        strs = Column.from_values([r[1] for r in rows], VARCHAR)
        codes, _count = factorize([ints, strs])
        seen: dict[int, tuple] = {}
        for i, row in enumerate(rows):
            code = int(codes[i])
            if code in seen:
                assert seen[code] == row
            else:
                seen[code] = row


class TestAnalyticsInvariants:
    @given(
        st.integers(5, 60), st.integers(1, 3), st.integers(1, 4),
        st.integers(0, 1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_kmeans_invariants(self, n, d, k, seed):
        rng = np.random.default_rng(seed)
        points = rng.random((n, d))
        centers = points[rng.choice(n, size=min(k, n), replace=False)]
        out, assignment, sizes, iterations = kmeans(
            points, centers, max_iterations=10
        )
        assert sizes.sum() == n
        assert out.shape == centers.shape
        assert iterations >= 1
        assert ((assignment >= 0) & (assignment < len(centers))).all()
        # Centers of non-empty clusters lie in the data's bounding box.
        non_empty = sizes > 0
        assert (out[non_empty] >= points.min() - 1e-9).all()
        assert (out[non_empty] <= points.max() + 1e-9).all()

    @given(st.integers(2, 40), st.integers(1, 120), st.integers(0, 99))
    @settings(max_examples=25, deadline=None)
    def test_pagerank_is_a_distribution(self, n, m, seed):
        rng = np.random.default_rng(seed)
        src = rng.integers(0, n, m)
        dst = rng.integers(0, n, m)
        _ids, ranks, _it = pagerank(src, dst, max_iterations=40)
        assert ranks.sum() == pytest.approx(1.0)
        assert (ranks > 0).all()


class TestRoundTrips:
    @given(st.lists(st.tuples(opt_ints, st.one_of(st.none(),
                                                  st.text(max_size=5))),
                    max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_insert_select_roundtrip(self, rows):
        db = repro.Database()
        db.execute("CREATE TABLE t (a INTEGER, s VARCHAR)")
        db.insert_rows("t", rows)
        got = db.execute("SELECT a, s FROM t").rows
        assert got == [tuple(r) for r in rows]

    @given(st.lists(st.tuples(small_ints, st.text(max_size=4)),
                    max_size=15))
    @settings(max_examples=20, deadline=None)
    def test_wal_recovery_roundtrip(self, tmp_path_factory, rows):
        path = str(
            tmp_path_factory.mktemp("wal") / "log.jsonl"
        )
        db = repro.Database(wal_path=path)
        db.execute("CREATE TABLE t (a INTEGER, s VARCHAR)")
        db.insert_rows("t", rows)
        db2 = repro.Database(wal_path=path)
        assert db2.execute("SELECT a, s FROM t").rows == rows


class TestWindowProperties:
    @given(
        st.lists(
            st.tuples(st.integers(0, 3), st.integers(-50, 50)),
            min_size=1,
            max_size=50,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_row_number_rank_against_reference(self, rows):
        db = repro.Database()
        db.execute("CREATE TABLE w (g INTEGER, v INTEGER)")
        db.insert_rows("w", rows)
        got = db.execute(
            "SELECT g, v, "
            "row_number() OVER (PARTITION BY g ORDER BY v) AS rn, "
            "rank() OVER (PARTITION BY g ORDER BY v) AS rk, "
            "dense_rank() OVER (PARTITION BY g ORDER BY v) AS dr, "
            "sum(v) OVER (PARTITION BY g) AS total "
            "FROM w"
        ).rows
        # Brute-force reference per partition.
        by_group: dict[int, list[int]] = {}
        for g, v in rows:
            by_group.setdefault(g, []).append(v)
        for g, v, rn, rk, dr, total in got:
            values = sorted(by_group[g])
            assert total == sum(by_group[g])
            assert rk == values.index(v) + 1  # first peer position
            distinct_below = len({x for x in values if x < v})
            assert dr == distinct_below + 1
            assert 1 <= rn <= len(values)
            assert values[rn - 1] == v  # rn points at a peer slot

    @given(
        st.lists(st.integers(-20, 20), min_size=1, max_size=40)
    )
    @settings(max_examples=30, deadline=None)
    def test_running_sum_matches_prefix_sums(self, values):
        db = repro.Database()
        db.execute("CREATE TABLE w (v INTEGER)")
        db.insert_rows("w", [(v,) for v in values])
        got = db.execute(
            "SELECT v, sum(v) OVER (ORDER BY v) FROM w ORDER BY v"
        ).rows
        ordered = sorted(values)
        for i, (v, running) in enumerate(got):
            # RANGE frame: running sum includes every peer of v.
            expected = sum(x for x in ordered if x <= v)
            assert running == expected


class TestMorselPartitioning:
    """The morsel dispatcher's partitioning invariants, plus SQL-level
    serial equivalence on the edge cases the partitioner must survive:
    empty tables, tables smaller than one morsel, NULL runs straddling
    morsel boundaries, and non-divisible row counts."""

    @given(st.integers(0, 5_000), st.integers(1, 700))
    @settings(max_examples=60, deadline=None)
    def test_ranges_tile_the_input_exactly(self, n, morsel):
        ranges = morsel_ranges(n, morsel)
        if n == 0:
            assert ranges == []
            return
        assert ranges[0][0] == 0
        assert ranges[-1][1] == n
        # Adjacent, disjoint, non-empty: boundaries tile [0, n).
        for (_s, e), (s2, _e2) in zip(ranges, ranges[1:]):
            assert e == s2
        # Every morsel but the last is full; the last holds the
        # non-divisible remainder.
        for start, stop in ranges[:-1]:
            assert stop - start == morsel
        last = ranges[-1][1] - ranges[-1][0]
        assert 0 < last <= morsel
        assert len(ranges) == -(-n // morsel)  # ceil division

    @given(st.integers(0, 200), st.integers(1, 64))
    @settings(max_examples=40, deadline=None)
    def test_boundaries_independent_of_worker_count(self, n, morsel):
        # The contract: partitioning is a pure function of (n, morsel);
        # there is no worker-count input to vary at all. Equal inputs
        # must give equal (not merely equivalent) boundaries.
        assert morsel_ranges(n, morsel) == morsel_ranges(n, morsel)

    @staticmethod
    def _rows_per_worker_count(values, morsel_rows, sql):
        out = []
        for workers in (1, 2, 4):
            db = repro.Database(
                workers=workers,
                parallel_threshold=0,
                morsel_rows=morsel_rows,
            )
            try:
                db.execute("CREATE TABLE t (a INTEGER)")
                if values:
                    db.insert_rows("t", [(v,) for v in values])
                out.append(db.execute(sql).rows)
            finally:
                db.close()
        return out

    @given(st.lists(opt_ints, max_size=50), st.integers(1, 8))
    @settings(max_examples=25, deadline=None)
    def test_pipeline_equivalent_for_any_partitioning(
        self, values, morsel_rows
    ):
        # Covers empty tables (empty list), tables smaller than one
        # morsel, and non-divisible row counts as generated.
        results = self._rows_per_worker_count(
            values, morsel_rows,
            "SELECT a, a + 1 FROM t WHERE a > 0",
        )
        assert results[0] == results[1] == results[2]

    @given(
        st.lists(
            st.tuples(st.one_of(st.none(), small_ints),
                      st.integers(1, 9)),
            max_size=8,
        ),
        st.integers(1, 5),
    )
    @settings(max_examples=25, deadline=None)
    def test_null_runs_straddling_morsel_boundaries(
        self, runs, morsel_rows
    ):
        # Runs of NULLs (and of repeated values) longer than a morsel
        # force validity masks to be split and re-joined across
        # boundaries; every worker count must agree bit for bit.
        values = [v for v, length in runs for _ in range(length)]
        filtered = self._rows_per_worker_count(
            values, morsel_rows,
            "SELECT a FROM t WHERE a IS NOT NULL",
        )
        assert filtered[0] == filtered[1] == filtered[2]
        aggregated = self._rows_per_worker_count(
            values, morsel_rows,
            "SELECT count(*), count(a), sum(a), min(a), max(a) FROM t",
        )
        assert aggregated[0] == aggregated[1] == aggregated[2]

    def test_empty_table_parallel_pipeline(self):
        results = self._rows_per_worker_count(
            [], 4, "SELECT a FROM t WHERE a > 0"
        )
        assert results == [[], [], []]

    def test_table_smaller_than_one_morsel(self):
        results = self._rows_per_worker_count(
            [5], 1_000, "SELECT a + 1 FROM t"
        )
        assert results == [[(6,)], [(6,)], [(6,)]]


class TestExpressionRoundTrip:
    """Generated expression ASTs survive rendering + reparsing.

    Uses the differential harness's expression grammar
    (:func:`repro.testing.random_ast_expr`): render to fully
    parenthesized SQL, parse it back, and require the identical tree
    (dataclass equality is structural).
    """

    @given(st.integers(min_value=0, max_value=10_000_000))
    @settings(max_examples=200, deadline=None)
    def test_parse_of_rendered_expr_is_identity(self, seed):
        import random

        from repro.sql import ast
        from repro.sql.parser import parse_sql
        from repro.testing import expr_to_sql, random_ast_expr

        expr = random_ast_expr(random.Random(seed))
        sql = expr_to_sql(expr)
        statements = parse_sql(f"SELECT {sql} FROM t")
        select = statements[0]
        reparsed = select.body.items[0].expr
        assert isinstance(select, ast.SelectStatement)
        assert reparsed == expr, sql

    @given(st.integers(min_value=0, max_value=10_000_000))
    @settings(max_examples=100, deadline=None)
    def test_rendering_is_deterministic(self, seed):
        import random

        from repro.testing import expr_to_sql, random_ast_expr

        first = expr_to_sql(random_ast_expr(random.Random(seed)))
        second = expr_to_sql(random_ast_expr(random.Random(seed)))
        assert first == second
