"""Extensibility: plugging a new analytics operator into the core.

The paper's layer 4 is implemented "by the database system's
architects" (section 1); this test plays architect and registers a
Z-SCORE normalisation operator with its own lambda variation point,
verifying that binding, cardinality contract, lambda compilation, and
execution all compose through the public registry API.
"""

import numpy as np
import pytest

import repro
from repro.analytics.registry import OperatorDescriptor
from repro.errors import BindError
from repro.plan.logical import LogicalTableFunction, PlanColumn
from repro.storage.column import Column, ColumnBatch
from repro.types import DOUBLE


class ZScoreDescriptor(OperatorDescriptor):
    """``ZSCORE((data) [, λ(x) transform])`` — normalise every numeric
    column to zero mean / unit variance, optionally post-transforming
    values with a lambda over the normalised tuple."""

    name = "zscore"

    def bind(self, binder, func, parent_scope, ctes):
        data_plan = self._arg_subquery(
            binder, func, 0, parent_scope, ctes, "data"
        )
        numeric = self._numeric_columns(data_plan, "ZSCORE data")
        if len(numeric) != len(data_plan.output):
            raise BindError("ZSCORE input must be all numeric")
        attrs = [c.name for c in numeric]
        transform = self._optional_lambda(
            binder, func, 1, [[(a, DOUBLE) for a in attrs]]
        )
        lambdas = {"transform": transform} if transform else {}
        output = [
            PlanColumn(a, binder.fresh_expr_slot(), DOUBLE)
            for a in attrs
        ]
        return LogicalTableFunction(
            name=self.name, inputs=[data_plan], lambdas=lambdas,
            params=[attrs], output=output,
        )

    def estimate_rows(self, node, input_estimates):
        return input_estimates[0]  # contract: row-preserving

    def run(self, node, inputs, ctx, eval_ctx):
        (batch,) = inputs
        (attrs,) = node.params
        columns = {}
        for name in attrs:
            values = batch[name].values.astype(np.float64)
            std = values.std() or 1.0
            columns[name] = Column(
                (values - values.mean()) / std, DOUBLE
            )
        out = ColumnBatch(columns)
        transform = node.lambdas.get("transform")
        if transform is not None:
            fn = ctx.compiler.compile(transform)
            param = transform.params[0]
            lam_batch = ColumnBatch(
                {
                    f"{param}.{a}": out[a]
                    for a in transform.param_attrs[param]
                }
            )
            first = attrs[0]
            columns[first] = fn(lam_batch, eval_ctx)
            out = ColumnBatch(columns)
        return out


@pytest.fixture
def db_with_op(db):
    db.register_operator(ZScoreDescriptor())
    db.execute("CREATE TABLE m (v FLOAT, w FLOAT)")
    db.insert_rows(
        "m", [(1.0, 10.0), (2.0, 20.0), (3.0, 30.0)]
    )
    return db


class TestCustomOperator:
    def test_runs_from_sql(self, db_with_op):
        rows = db_with_op.execute(
            "SELECT v FROM ZSCORE((SELECT v, w FROM m)) ORDER BY v"
        ).rows
        values = [r[0] for r in rows]
        assert values[1] == pytest.approx(0.0)
        assert sum(values) == pytest.approx(0.0)

    def test_composes_with_relational_ops(self, db_with_op):
        top = db_with_op.execute(
            "SELECT count(*) FROM ZSCORE((SELECT v, w FROM m)) "
            "WHERE v > 0"
        ).scalar()
        assert top == 1

    def test_lambda_variation_point(self, db_with_op):
        rows = db_with_op.execute(
            "SELECT v FROM ZSCORE((SELECT v, w FROM m), "
            "LAMBDA(t) abs(t.v)) ORDER BY v"
        ).rows
        assert [round(r[0], 6) for r in rows] == [
            0.0,
            pytest.approx(1.224745),
            pytest.approx(1.224745),
        ]

    def test_bind_errors_surface(self, db_with_op):
        db_with_op.execute("CREATE TABLE s (t VARCHAR)")
        with pytest.raises(BindError, match="numeric"):
            db_with_op.execute(
                "SELECT * FROM ZSCORE((SELECT t FROM s))"
            )

    def test_cardinality_contract_used(self, db_with_op):
        from repro.sql.parser import parse_statement

        txn = db_with_op.txns.begin()
        try:
            optimizer = db_with_op._make_optimizer(txn)
            plan = db_with_op._make_binder(txn).bind_query(
                parse_statement(
                    "SELECT * FROM ZSCORE((SELECT v, w FROM m))"
                )
            )
            assert optimizer.estimate(plan) == pytest.approx(3.0)
        finally:
            txn.rollback()

    def test_unregistered_operator_still_unknown(self, db):
        with pytest.raises(BindError, match="unknown table function"):
            db.execute("SELECT * FROM ZSCORE((SELECT 1))")
