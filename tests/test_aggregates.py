"""Aggregation semantics: GROUP BY, HAVING, DISTINCT, NULL skipping."""

import pytest

import repro
from repro.errors import BindError


@pytest.fixture
def sales(db):
    db.execute(
        "CREATE TABLE sales (region VARCHAR, product VARCHAR, "
        "amount FLOAT, qty INTEGER)"
    )
    db.insert_rows(
        "sales",
        [
            ("north", "apple", 10.0, 1),
            ("north", "pear", 20.0, 2),
            ("north", "apple", None, 4),
            ("south", "apple", 30.0, 3),
            ("south", "pear", 15.0, None),
            (None, "pear", 5.0, 1),
        ],
    )
    return db


class TestGlobalAggregates:
    def test_count_star_vs_count_column(self, sales):
        row = sales.execute(
            "SELECT count(*), count(amount), count(qty) FROM sales"
        ).fetchone()
        assert row == (6, 5, 5)

    def test_sum_avg_skip_nulls(self, sales):
        total, mean = sales.execute(
            "SELECT sum(amount), avg(amount) FROM sales"
        ).fetchone()
        assert total == pytest.approx(80.0)
        assert mean == pytest.approx(16.0)

    def test_min_max(self, sales):
        assert sales.execute(
            "SELECT min(amount), max(amount) FROM sales"
        ).fetchone() == (5.0, 30.0)

    def test_min_max_strings(self, sales):
        assert sales.execute(
            "SELECT min(product), max(product) FROM sales"
        ).fetchone() == ("apple", "pear")

    def test_sum_integer_returns_bigint_exact(self, db):
        db.execute("CREATE TABLE big (a BIGINT)")
        value = 2**60
        db.insert_rows("big", [(value,), (value,)])
        assert db.execute("SELECT sum(a) FROM big").scalar() == 2 * value

    def test_empty_table_global_aggregate(self, db):
        db.execute("CREATE TABLE empty (a INTEGER)")
        row = db.execute(
            "SELECT count(*), sum(a), min(a), avg(a) FROM empty"
        ).fetchone()
        assert row == (0, None, None, None)

    def test_all_null_column(self, db):
        db.execute("CREATE TABLE t (a INTEGER)")
        db.insert_rows("t", [(None,), (None,)])
        row = db.execute(
            "SELECT count(a), sum(a), avg(a) FROM t"
        ).fetchone()
        assert row == (0, None, None)

    def test_stddev_variance(self, db):
        db.execute("CREATE TABLE t (a FLOAT)")
        db.insert_rows("t", [(2.0,), (4.0,), (4.0,), (4.0,), (5.0,),
                             (5.0,), (7.0,), (9.0,)])
        pop = db.execute("SELECT stddev_pop(a) FROM t").scalar()
        samp = db.execute("SELECT stddev(a) FROM t").scalar()
        assert pop == pytest.approx(2.0)
        assert samp == pytest.approx(2.13809, abs=1e-4)
        var = db.execute("SELECT var_pop(a) FROM t").scalar()
        assert var == pytest.approx(4.0)

    def test_stddev_single_value_sample_is_null(self, db):
        db.execute("CREATE TABLE t (a FLOAT)")
        db.insert_rows("t", [(1.0,)])
        assert db.execute("SELECT stddev(a) FROM t").scalar() is None
        assert db.execute("SELECT stddev_pop(a) FROM t").scalar() == 0.0

    def test_bool_aggregates(self, db):
        db.execute("CREATE TABLE t (a BOOLEAN)")
        db.insert_rows("t", [(True,), (False,), (None,)])
        assert db.execute("SELECT bool_and(a) FROM t").scalar() is False
        assert db.execute("SELECT bool_or(a) FROM t").scalar() is True


class TestGroupBy:
    def test_group_counts(self, sales):
        rows = sales.execute(
            "SELECT region, count(*) FROM sales GROUP BY region "
            "ORDER BY region NULLS LAST"
        ).rows
        assert rows == [("north", 3), ("south", 2), (None, 1)]

    def test_nulls_form_one_group(self, sales):
        rows = sales.execute(
            "SELECT region FROM sales GROUP BY region"
        ).rows
        assert len(rows) == 3

    def test_group_by_expression(self, sales):
        rows = sales.execute(
            "SELECT qty % 2, count(*) FROM sales WHERE qty IS NOT NULL "
            "GROUP BY qty % 2 ORDER BY 1"
        ).rows
        assert rows == [(0, 2), (1, 3)]

    def test_group_by_ordinal(self, sales):
        rows = sales.execute(
            "SELECT product, sum(qty) FROM sales GROUP BY 1 ORDER BY 1"
        ).rows
        assert rows == [("apple", 8), ("pear", 3)]

    def test_group_by_alias(self, sales):
        rows = sales.execute(
            "SELECT region AS r, count(*) FROM sales GROUP BY r "
            "ORDER BY r NULLS LAST"
        ).rows
        assert rows[0][0] == "north"

    def test_multi_key_grouping(self, sales):
        rows = sales.execute(
            "SELECT region, product, count(*) FROM sales "
            "GROUP BY region, product ORDER BY region NULLS LAST, product"
        ).rows
        assert len(rows) == 5

    def test_expression_over_aggregate(self, sales):
        rows = sales.execute(
            "SELECT region, sum(amount) / count(amount) AS mean "
            "FROM sales WHERE region IS NOT NULL GROUP BY region "
            "ORDER BY region"
        ).rows
        assert rows[0][1] == pytest.approx(15.0)

    def test_group_key_in_expression(self, sales):
        rows = sales.execute(
            "SELECT upper(region), count(*) FROM sales "
            "WHERE region = 'north' GROUP BY upper(region)"
        ).rows
        assert rows == [("NORTH", 3)]

    def test_non_grouped_column_rejected(self, sales):
        with pytest.raises(BindError, match="GROUP BY"):
            sales.execute(
                "SELECT region, amount FROM sales GROUP BY region"
            )

    def test_nested_aggregate_rejected(self, sales):
        with pytest.raises(BindError, match="nested"):
            sales.execute("SELECT sum(count(*)) FROM sales")

    def test_aggregate_in_where_rejected(self, sales):
        with pytest.raises(BindError):
            sales.execute("SELECT 1 FROM sales WHERE sum(amount) > 0")


class TestHaving:
    def test_having_filters_groups(self, sales):
        rows = sales.execute(
            "SELECT region, count(*) AS n FROM sales GROUP BY region "
            "HAVING count(*) > 1 ORDER BY region"
        ).rows
        assert rows == [("north", 3), ("south", 2)]

    def test_having_with_different_aggregate(self, sales):
        rows = sales.execute(
            "SELECT region FROM sales GROUP BY region "
            "HAVING sum(amount) >= 30 ORDER BY region"
        ).rows
        assert rows == [("north",), ("south",)]

    def test_having_without_group_by(self, sales):
        rows = sales.execute(
            "SELECT count(*) FROM sales HAVING count(*) > 100"
        ).rows
        assert rows == []

    def test_having_requires_aggregation_context(self, sales):
        with pytest.raises(BindError):
            sales.execute("SELECT region FROM sales HAVING region = 'x'")


class TestDistinctAggregates:
    def test_count_distinct(self, sales):
        assert sales.execute(
            "SELECT count(DISTINCT product) FROM sales"
        ).scalar() == 2

    def test_sum_distinct(self, db):
        db.execute("CREATE TABLE t (a INTEGER)")
        db.insert_rows("t", [(1,), (1,), (2,), (3,), (3,)])
        assert db.execute("SELECT sum(DISTINCT a) FROM t").scalar() == 6

    def test_count_distinct_per_group(self, sales):
        rows = sales.execute(
            "SELECT region, count(DISTINCT product) FROM sales "
            "WHERE region IS NOT NULL GROUP BY region ORDER BY region"
        ).rows
        assert rows == [("north", 2), ("south", 2)]


class TestSelectDistinct:
    def test_distinct_rows(self, sales):
        rows = sales.execute(
            "SELECT DISTINCT product FROM sales ORDER BY product"
        ).rows
        assert rows == [("apple",), ("pear",)]

    def test_distinct_keeps_null(self, sales):
        rows = sales.execute("SELECT DISTINCT region FROM sales").rows
        assert len(rows) == 3

    def test_distinct_multi_column(self, sales):
        rows = sales.execute(
            "SELECT DISTINCT region, product FROM sales"
        ).rows
        assert len(rows) == 5
