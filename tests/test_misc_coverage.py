"""Coverage for smaller surfaces: errors, window registry, CLI
ablations, explain formatting of every operator."""

import pytest

import repro
from repro.errors import ParseError
from repro.expr.windows import lookup_window, window_names


class TestErrors:
    def test_parse_error_position_in_message(self):
        error = ParseError("bad thing", line=3, column=7)
        assert "line 3" in str(error) and error.column == 7

    def test_parse_error_without_position(self):
        assert str(ParseError("just bad")) == "just bad"

    def test_hierarchy(self):
        from repro.errors import (
            AnalyticsError,
            ExecutionError,
            IterationLimitError,
            ReproError,
            SerializationConflict,
            TransactionError,
        )

        assert issubclass(IterationLimitError, ExecutionError)
        assert issubclass(AnalyticsError, ExecutionError)
        assert issubclass(SerializationConflict, TransactionError)
        assert issubclass(TransactionError, ReproError)


class TestWindowRegistry:
    def test_names(self):
        names = window_names()
        for expected in ("row_number", "rank", "lag", "sum"):
            assert expected in names

    def test_lookup_case_insensitive(self):
        assert lookup_window("ROW_NUMBER") is not None
        assert lookup_window("ntile") is None

    def test_arity_messages(self):
        from repro.errors import BindError

        descriptor = lookup_window("lag")
        with pytest.raises(BindError, match="1..3"):
            descriptor.check_arity(0)
        descriptor.check_arity(2)  # no raise


class TestCLIAblations:
    def test_ablation_lambda_runs(self, capsys, tmp_path):
        from repro.bench.__main__ import main

        assert main(
            ["ablation_lambda", "--scale", "0.0002",
             "--results-dir", str(tmp_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "black box" in out

    def test_json_export(self, tmp_path, capsys):
        import json

        from repro.bench.__main__ import main

        path = str(tmp_path / "out.json")
        assert main(
            ["fig1_layers", "--scale", "0.00005", "--json", path,
             "--results-dir", str(tmp_path)]
        ) == 0
        payload = json.loads(open(path, encoding="utf-8").read())
        assert "fig1_layers" in payload
        results = payload["fig1_layers"]["results"]
        assert any(r["seconds"] for r in results)


class TestExplainEveryOperator:
    def test_setop_and_values(self, db):
        text = db.explain("SELECT 1 UNION SELECT 2")
        assert "SetOp union" in text
        assert "Values" in text

    def test_distinct_and_window(self, db):
        db.execute("CREATE TABLE t (a INTEGER)")
        text = db.explain(
            "SELECT DISTINCT a, row_number() OVER (ORDER BY a) FROM t"
        )
        assert "LogicalDistinct" in text or "Distinct" in text
        assert "Window" in text

    def test_recursive_cte_explain(self, db):
        text = db.explain(
            "WITH RECURSIVE r(n) AS (SELECT 1 UNION ALL "
            "SELECT n+1 FROM r WHERE n < 3) SELECT * FROM r"
        )
        assert "RecursiveCTE" in text

    def test_nl_join_explain(self, db):
        db.execute("CREATE TABLE a (x INTEGER)")
        db.execute("CREATE TABLE b (y INTEGER)")
        text = db.explain("SELECT * FROM a JOIN b ON a.x < b.y")
        assert "NLJoin" in text
