"""Transaction manager: snapshot isolation, conflicts, WAL recovery."""

import os

import pytest

import repro
from repro.errors import (
    CatalogError,
    SerializationConflict,
    TransactionError,
)
from repro.storage import Catalog, TableSchema
from repro.txn import TransactionManager, WriteAheadLog
from repro.types import INTEGER, VARCHAR


def make_manager(wal=None):
    return TransactionManager(Catalog(), wal)


def simple_schema():
    return TableSchema.of(("id", INTEGER), ("name", VARCHAR))


class TestBasics:
    def test_create_insert_commit(self):
        manager = make_manager()
        txn = manager.begin()
        txn.create_table("t", simple_schema())
        txn.insert_rows("t", [(1, "a")])
        txn.commit()
        assert manager.catalog.data("t").row_count == 1

    def test_rollback_discards(self):
        manager = make_manager()
        txn = manager.begin()
        txn.create_table("t", simple_schema())
        txn.rollback()
        assert not manager.catalog.has_table("t")

    def test_own_writes_visible(self):
        manager = make_manager()
        txn = manager.begin()
        txn.create_table("t", simple_schema())
        txn.insert_rows("t", [(1, "a")])
        assert txn.read("t").row_count == 1
        txn.commit()

    def test_use_after_commit_raises(self):
        manager = make_manager()
        txn = manager.begin()
        txn.commit()
        with pytest.raises(TransactionError):
            txn.read("t")

    def test_context_manager_commit_and_rollback(self):
        manager = make_manager()
        with manager.begin() as txn:
            txn.create_table("t", simple_schema())
        assert manager.catalog.has_table("t")
        with pytest.raises(ValueError):
            with manager.begin() as txn:
                txn.insert_rows("t", [(1, "x")])
                raise ValueError("boom")
        assert manager.catalog.data("t").row_count == 0

    def test_drop_created_in_same_txn(self):
        manager = make_manager()
        txn = manager.begin()
        txn.create_table("t", simple_schema())
        txn.drop_table("t")
        txn.commit()
        assert not manager.catalog.has_table("t")


class TestSnapshotIsolation:
    def test_reader_pins_snapshot(self):
        manager = make_manager()
        setup = manager.begin()
        setup.create_table("t", simple_schema())
        setup.insert_rows("t", [(1, "a")])
        setup.commit()

        reader = manager.begin()
        writer = manager.begin()
        writer.insert_rows("t", [(2, "b")])
        writer.commit()

        assert reader.read("t").row_count == 1  # snapshot unchanged
        reader.commit()
        assert manager.begin().read("t").row_count == 2

    def test_new_table_invisible_to_older_snapshot(self):
        manager = make_manager()
        old = manager.begin()
        creator = manager.begin()
        creator.create_table("t", simple_schema())
        creator.commit()
        assert not old.table_exists("t")
        with pytest.raises(CatalogError):
            old.read("t")

    def test_first_committer_wins(self):
        manager = make_manager()
        setup = manager.begin()
        setup.create_table("t", simple_schema())
        setup.commit()

        a = manager.begin()
        b = manager.begin()
        a.insert_rows("t", [(1, "a")])
        b.insert_rows("t", [(2, "b")])
        a.commit()
        with pytest.raises(SerializationConflict):
            b.commit()
        assert [r[0] for r in manager.catalog.data("t").rows()] == [1]

    def test_disjoint_writes_both_commit(self):
        manager = make_manager()
        setup = manager.begin()
        setup.create_table("t1", simple_schema())
        setup.create_table("t2", simple_schema())
        setup.commit()
        a = manager.begin()
        b = manager.begin()
        a.insert_rows("t1", [(1, "a")])
        b.insert_rows("t2", [(2, "b")])
        a.commit()
        b.commit()
        assert manager.catalog.data("t1").row_count == 1
        assert manager.catalog.data("t2").row_count == 1

    def test_read_only_never_conflicts(self):
        manager = make_manager()
        setup = manager.begin()
        setup.create_table("t", simple_schema())
        setup.commit()
        reader = manager.begin()
        reader.read("t")
        writer = manager.begin()
        writer.insert_rows("t", [(1, "a")])
        writer.commit()
        reader.commit()  # no raise

    def test_concurrent_drop_conflicts(self):
        manager = make_manager()
        setup = manager.begin()
        setup.create_table("t", simple_schema())
        setup.commit()
        dropper = manager.begin()
        writer = manager.begin()
        writer.insert_rows("t", [(1, "a")])
        writer.commit()
        dropper.drop_table("t")
        with pytest.raises(SerializationConflict):
            dropper.commit()

    def test_vacuum_respects_active_snapshots(self):
        manager = make_manager()
        setup = manager.begin()
        setup.create_table("t", simple_schema())
        setup.insert_rows("t", [(1, "a")])
        setup.commit()
        reader = manager.begin()
        writer = manager.begin()
        writer.insert_rows("t", [(2, "b")])
        writer.commit()
        manager.vacuum()
        # The reader's snapshot version must survive vacuum.
        assert reader.read("t").row_count == 1
        reader.commit()


class TestWAL:
    def test_in_memory_roundtrip(self):
        wal = WriteAheadLog()
        manager = make_manager(wal)
        txn = manager.begin()
        txn.create_table("t", simple_schema())
        txn.insert_rows("t", [(1, "a"), (2, None)])
        txn.commit()

        recovered = make_manager()
        count = wal.replay_into(recovered)
        assert count == 2
        assert list(recovered.catalog.data("t").rows()) == [
            (1, "a"), (2, None),
        ]

    def test_uncommitted_not_replayed(self):
        wal = WriteAheadLog()
        manager = make_manager(wal)
        txn = manager.begin()
        txn.create_table("t", simple_schema())
        txn.rollback()  # never logged
        recovered = make_manager()
        assert wal.replay_into(recovered) == 0

    def test_file_recovery(self, tmp_path):
        path = str(tmp_path / "wal.log")
        db = repro.Database(wal_path=path)
        db.execute("CREATE TABLE t (id INTEGER, name VARCHAR)")
        db.insert_rows("t", [(1, "a")])
        db.execute("INSERT INTO t VALUES (2, 'b')")

        db2 = repro.Database(wal_path=path)
        assert db2.execute("SELECT count(*) FROM t").scalar() == 2

    def test_torn_tail_ignored(self, tmp_path):
        path = str(tmp_path / "wal.log")
        db = repro.Database(wal_path=path)
        db.execute("CREATE TABLE t (id INTEGER, name VARCHAR)")
        db.insert_rows("t", [(1, "a")])
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"txn": 99, "op": "insert", "name": "t", "ro')
        db2 = repro.Database(wal_path=path)
        assert db2.execute("SELECT count(*) FROM t").scalar() == 1

    def test_update_delete_replayed(self, tmp_path):
        path = str(tmp_path / "wal.log")
        db = repro.Database(wal_path=path)
        db.execute("CREATE TABLE t (id INTEGER, name VARCHAR)")
        db.insert_rows("t", [(1, "a"), (2, "b"), (3, "c")])
        db.execute("UPDATE t SET name = 'z' WHERE id = 2")
        db.execute("DELETE FROM t WHERE id = 1")

        db2 = repro.Database(wal_path=path)
        rows = db2.execute("SELECT id, name FROM t ORDER BY id").rows
        assert rows == [(2, "z"), (3, "c")]

    def test_drop_replayed(self, tmp_path):
        path = str(tmp_path / "wal.log")
        db = repro.Database(wal_path=path)
        db.execute("CREATE TABLE t (id INTEGER, name VARCHAR)")
        db.execute("DROP TABLE t")
        db2 = repro.Database(wal_path=path)
        assert "t" not in db2.table_names()

    def test_wal_file_created(self, tmp_path):
        path = str(tmp_path / "wal.log")
        repro.Database(wal_path=path)
        assert os.path.exists(path)
