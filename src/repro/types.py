"""SQL type system.

The engine supports a compact but complete scalar type lattice:

    BOOLEAN < INTEGER < BIGINT < DOUBLE
    VARCHAR
    DATE (stored as days since epoch, INTEGER-backed)
    NULL (the type of an untyped NULL literal; coerces to anything)

Columns are numpy-backed; each SQL type maps to a numpy dtype. NULLs are
tracked out-of-band with a boolean validity mask, so the value arrays stay
densely typed (the columnar layout HyPer-style engines rely on).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from .errors import BindError


class TypeKind(enum.Enum):
    """Enumeration of scalar SQL types supported by the engine."""

    BOOLEAN = "BOOLEAN"
    INTEGER = "INTEGER"
    BIGINT = "BIGINT"
    DOUBLE = "DOUBLE"
    VARCHAR = "VARCHAR"
    DATE = "DATE"
    NULL = "NULL"


@dataclass(frozen=True)
class SQLType:
    """A resolved SQL type.

    ``width`` is only meaningful for VARCHAR and is advisory (the storage
    layer does not truncate); it is kept so DDL round-trips faithfully.
    """

    kind: TypeKind
    width: int | None = None

    def __str__(self) -> str:
        if self.kind is TypeKind.VARCHAR and self.width is not None:
            return f"VARCHAR({self.width})"
        return self.kind.value

    @property
    def is_numeric(self) -> bool:
        return self.kind in _NUMERIC_KINDS

    @property
    def is_integral(self) -> bool:
        return self.kind in (TypeKind.INTEGER, TypeKind.BIGINT)

    def numpy_dtype(self) -> np.dtype:
        """The numpy dtype used to store values of this type."""
        return np.dtype(_NUMPY_DTYPES[self.kind])


_NUMERIC_KINDS = frozenset(
    {TypeKind.INTEGER, TypeKind.BIGINT, TypeKind.DOUBLE}
)

_NUMPY_DTYPES = {
    TypeKind.BOOLEAN: np.bool_,
    TypeKind.INTEGER: np.int32,
    TypeKind.BIGINT: np.int64,
    TypeKind.DOUBLE: np.float64,
    TypeKind.VARCHAR: object,
    TypeKind.DATE: np.int32,
    TypeKind.NULL: object,
}

BOOLEAN = SQLType(TypeKind.BOOLEAN)
INTEGER = SQLType(TypeKind.INTEGER)
BIGINT = SQLType(TypeKind.BIGINT)
DOUBLE = SQLType(TypeKind.DOUBLE)
VARCHAR = SQLType(TypeKind.VARCHAR)
DATE = SQLType(TypeKind.DATE)
NULLTYPE = SQLType(TypeKind.NULL)

_TYPE_NAMES = {
    "BOOLEAN": BOOLEAN,
    "BOOL": BOOLEAN,
    "INTEGER": INTEGER,
    "INT": INTEGER,
    "INT4": INTEGER,
    "SMALLINT": INTEGER,
    "BIGINT": BIGINT,
    "INT8": BIGINT,
    "DOUBLE": DOUBLE,
    "FLOAT": DOUBLE,
    "FLOAT8": DOUBLE,
    "REAL": DOUBLE,
    "DOUBLE PRECISION": DOUBLE,
    "NUMERIC": DOUBLE,
    "DECIMAL": DOUBLE,
    "VARCHAR": VARCHAR,
    "TEXT": VARCHAR,
    "CHAR": VARCHAR,
    "STRING": VARCHAR,
    "DATE": DATE,
}

# Numeric promotion order: the result of mixing two numeric types is the
# wider of the two. BOOLEAN deliberately does not promote to numeric.
_NUMERIC_ORDER = [TypeKind.INTEGER, TypeKind.BIGINT, TypeKind.DOUBLE]


def type_from_name(name: str, width: int | None = None) -> SQLType:
    """Resolve a type name appearing in DDL or CAST to an :class:`SQLType`.

    Raises :class:`BindError` for unknown names.
    """
    base = _TYPE_NAMES.get(name.upper())
    if base is None:
        raise BindError(f"unknown type name: {name!r}")
    if base.kind is TypeKind.VARCHAR and width is not None:
        return SQLType(TypeKind.VARCHAR, width)
    return base


def common_supertype(left: SQLType, right: SQLType) -> SQLType:
    """The least common supertype of two types, used for binary operators,
    CASE branches, set operations, and recursive-CTE step unification.

    Raises :class:`BindError` when the types are incompatible.
    """
    if left.kind is TypeKind.NULL:
        return right
    if right.kind is TypeKind.NULL:
        return left
    if left.kind == right.kind:
        # Unify VARCHAR widths to the wider (or unbounded).
        if left.kind is TypeKind.VARCHAR and left.width != right.width:
            return VARCHAR
        return left
    if left.is_numeric and right.is_numeric:
        rank = max(_NUMERIC_ORDER.index(left.kind),
                   _NUMERIC_ORDER.index(right.kind))
        return SQLType(_NUMERIC_ORDER[rank])
    raise BindError(f"incompatible types: {left} and {right}")


def can_implicitly_cast(source: SQLType, target: SQLType) -> bool:
    """Whether ``source`` values may silently flow where ``target`` is
    expected (assignment casts on INSERT, argument binding, comparisons)."""
    if source.kind is TypeKind.NULL:
        return True
    if source.kind == target.kind:
        return True
    if source.is_numeric and target.is_numeric:
        src_rank = _NUMERIC_ORDER.index(source.kind)
        dst_rank = _NUMERIC_ORDER.index(target.kind)
        return dst_rank >= src_rank
    return False


def python_type_of(sql_type: SQLType) -> type:
    """The Python type results of this SQL type materialise as in rows."""
    return {
        TypeKind.BOOLEAN: bool,
        TypeKind.INTEGER: int,
        TypeKind.BIGINT: int,
        TypeKind.DOUBLE: float,
        TypeKind.VARCHAR: str,
        TypeKind.DATE: int,
        TypeKind.NULL: type(None),
    }[sql_type.kind]


def infer_literal_type(value: object) -> SQLType:
    """SQL type of a Python literal (used by the binder for constants and
    by INSERT ... VALUES type inference)."""
    if value is None:
        return NULLTYPE
    if isinstance(value, bool):
        return BOOLEAN
    if isinstance(value, (int, np.integer)):
        if -(2**31) <= int(value) < 2**31:
            return INTEGER
        return BIGINT
    if isinstance(value, (float, np.floating)):
        return DOUBLE
    if isinstance(value, str):
        return VARCHAR
    raise BindError(f"cannot infer SQL type for literal {value!r}")


def coerce_scalar(value: object, target: SQLType) -> object:
    """Coerce a Python scalar to ``target``; raises BindError when the
    value cannot represent the target type."""
    if value is None:
        return None
    kind = target.kind
    try:
        if kind is TypeKind.BOOLEAN:
            if isinstance(value, str):
                lowered = value.strip().lower()
                if lowered in ("true", "t", "1"):
                    return True
                if lowered in ("false", "f", "0"):
                    return False
                raise ValueError(value)
            return bool(value)
        if kind in (TypeKind.INTEGER, TypeKind.BIGINT, TypeKind.DATE):
            return int(value)
        if kind is TypeKind.DOUBLE:
            return float(value)
        if kind is TypeKind.VARCHAR:
            return value if isinstance(value, str) else str(value)
    except (TypeError, ValueError) as exc:
        raise BindError(f"cannot coerce {value!r} to {target}") from exc
    raise BindError(f"cannot coerce to type {target}")
