"""Cardinality feedback: observed rows from history drive re-planning.

``explain_analyze``-grade profiling already records, for every executed
operator, the optimizer's estimate next to the observed row count (the
query-history store keeps them per statement fingerprint). This module
closes the loop:

* every profiled operator is stamped with a **structural node key** —
  operator class plus the sorted set of base tables beneath it plus an
  occurrence index (``Join[lineitem,orders]#0``). The key is invariant
  under join build-side swaps, the one estimate-dependent rewrite, so
  an observation recorded against one plan variant still matches the
  node after re-optimization flips it;
* :class:`CardinalityFeedback` aggregates those observations per
  fingerprint into estimate **overrides** (mean observed rows per node
  key) that :class:`~repro.plan.cardinality.CardinalityEstimator`
  prefers over both static heuristics and table statistics;
* on a plan-cache hit the session asks :meth:`CardinalityFeedback.
  wants_replan` whether the overrides would flip a join build side the
  cached plan committed to. If so, the session bumps its plan-cache
  epoch: the stale plan is re-optimized (now under feedback estimates)
  instead of reused. Re-optimized plans are fixpoints of the build-side
  rule, so the signal fires at most once per feedback change — the
  cache cannot thrash.

Ambiguous keys (the same class-plus-tables shape occurring more than
once in a plan, e.g. a self-join's two scans) are dropped rather than
guessed, so feedback never applies an observation to the wrong node.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import Optional

from . import logical as lp

#: Session switch for feedback-driven re-optimization.
FEEDBACK_ENV = "REPRO_FEEDBACK"

#: Most-recently-used fingerprints retained in the feedback cache.
FEEDBACK_CAPACITY = 256


def resolve_feedback(flag: Optional[bool] = None) -> bool:
    """Resolve the feedback switch: explicit flag, else env, else on."""
    if flag is not None:
        return bool(flag)
    raw = os.environ.get(FEEDBACK_ENV, "").strip().lower()
    if raw in ("0", "off", "false", "no"):
        return False
    return True


def collect_base_tables(plan: lp.LogicalPlan) -> list[str]:
    """Sorted base-table names scanned anywhere beneath ``plan``."""
    tables: set[str] = set()
    stack = [plan]
    while stack:
        node = stack.pop()
        if isinstance(node, lp.LogicalScan):
            tables.add(node.table_name)
        stack.extend(node.children())
    return sorted(tables)


def feedback_key_base(plan: lp.LogicalPlan) -> str:
    """The swap-invariant part of a node's feedback key."""
    name = type(plan).__name__
    if name.startswith("Logical"):
        name = name[len("Logical"):]
    return f"{name}[{','.join(collect_base_tables(plan))}]"


def split_node_key(key: str) -> tuple[str, int]:
    """``Join[a,b]#1`` -> (``Join[a,b]``, 1)."""
    base, _, idx = key.rpartition("#")
    try:
        return base, int(idx)
    except ValueError:
        return key, 0


class CardinalityFeedback:
    """Per-fingerprint cache of observed-cardinality overrides.

    ``history`` is the session's :class:`~repro.obs.history.QueryHistory`.
    Overrides are recomputed only when the history has recorded new
    executions for the fingerprint (checked via its cheap per-fingerprint
    execution counter), so cache-hit hot paths pay one dict lookup and
    one integer compare in the common unchanged case.
    """

    def __init__(self, history, metrics=None):
        self._history = history
        self._metrics = metrics
        #: fingerprint -> {"count": int, "overrides": {base_key: rows}}
        self._states: OrderedDict[str, dict] = OrderedDict()

    def overrides_for(self, fingerprint: Optional[str]) -> dict[str, float]:
        """Current overrides for ``fingerprint``, refreshed from history
        when new executions were recorded. Empty dict when none apply."""
        if not fingerprint or self._history is None:
            return {}
        count = self._history.execution_count(fingerprint)
        if count <= 0:
            return {}
        state = self._states.get(fingerprint)
        if state is not None and state["count"] == count:
            self._states.move_to_end(fingerprint)
            return state["overrides"]
        overrides = self._build_overrides(fingerprint)
        self._states[fingerprint] = {
            "count": count, "overrides": overrides,
        }
        self._states.move_to_end(fingerprint)
        while len(self._states) > FEEDBACK_CAPACITY:
            self._states.popitem(last=False)
        return overrides

    def wants_replan(
        self, fingerprint: Optional[str], plan: lp.LogicalPlan, estimator
    ) -> bool:
        """True when the overrides would flip a build side the cached
        ``plan`` committed to — the signal to bump the plan-cache epoch.

        ``estimator`` must already carry this fingerprint's overrides.
        The check mirrors :func:`repro.plan.rules.choose_join_sides`:
        an inner equi-join swaps when the left side estimates strictly
        smaller than the right, so a freshly optimized plan can never
        want an immediate second swap (left >= right by construction).
        """
        stale = False
        stack = [plan]
        while stack:
            node = stack.pop()
            if (
                isinstance(node, lp.LogicalJoin)
                and node.kind == "inner"
                and node.equi_keys
            ):
                try:
                    left = estimator.estimate(node.left)
                    right = estimator.estimate(node.right)
                except Exception:  # noqa: BLE001 — advisory only
                    left = right = 0.0
                if left < right:
                    stale = True
                    break
            stack.extend(node.children())
        return stale

    def _build_overrides(self, fingerprint: str) -> dict[str, float]:
        observed = self._history.observed_node_cardinalities(fingerprint)
        grouped: dict[str, list[float]] = {}
        for key, slot in observed.items():
            base, _ = split_node_key(key)
            grouped.setdefault(base, []).append(float(slot["mean_rows"]))
        return {
            base: rows[0]
            for base, rows in grouped.items()
            if len(rows) == 1
        }
