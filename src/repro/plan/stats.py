"""Table statistics for the cardinality estimator.

The encoded storage layer already holds exact column properties — a
:class:`~repro.storage.encoding.DictionaryColumn`'s dictionary length is
the exact NDV of its valid rows, a FOR column (and every numeric raw
column via its zone map) knows its min/max, and zone maps count NULLs —
but until this module they were only used for scan pruning. A
:class:`TableStatistics` provider surfaces them to the optimizer so
``=`` / ``IN`` / range / ``IS NULL`` selectivities come from the data
instead of the static 0.1/0.3/0.25 constants.

Statistics are computed lazily per (table, version) and cached against
:attr:`repro.storage.table.TableData.version_token`, so an immutable
snapshot is analyzed at most once no matter how many statements plan
against it.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..storage.encoding import DictionaryColumn, RLEColumn
from ..types import TypeKind

#: Retired (table dropped / long gone) entries beyond this are evicted
#: oldest-first; one live entry per table name is kept regardless.
STATS_CACHE_CAPACITY = 128


@dataclass(frozen=True)
class ColumnStats:
    """Summary statistics of one column of one table version."""

    row_count: int
    #: Exact distinct-value count of the valid rows when the encoding
    #: knows it (dictionary length, RLE distinct run values), an upper
    #: bound for dense integers, else None.
    ndv: Optional[float]
    #: Min/max over valid finite values (numeric columns only).
    min_value: Optional[float]
    max_value: Optional[float]
    #: Fraction of rows that are NULL, in [0, 1].
    null_fraction: float

    def value_in_range(self, value: float) -> Optional[bool]:
        if self.min_value is None or self.max_value is None:
            return None
        return self.min_value <= value <= self.max_value


class TableStatistics:
    """Lazy, version-keyed column statistics over a snapshot reader.

    ``read_table`` maps a base-table name to the statement snapshot's
    :class:`~repro.storage.table.TableData`. ``cache`` may be shared
    across statements (the session passes its own dict) so statistics
    survive between executions of the same table version.
    """

    def __init__(
        self,
        read_table: Callable[[str], object],
        cache: Optional[OrderedDict] = None,
    ):
        self._read = read_table
        self._cache = cache if cache is not None else OrderedDict()

    def row_count(self, table: str) -> Optional[int]:
        data = self._table_data(table)
        return None if data is None else int(data.row_count)

    def column_stats(self, table: str, column: str) -> Optional[ColumnStats]:
        data = self._table_data(table)
        if data is None:
            return None
        entry = self._entry_for(table, data)
        if column not in entry:
            try:
                col = data.column_by_name(column)
            except Exception:  # noqa: BLE001 — schema drift is benign
                col = None
            entry[column] = (
                None if col is None else _analyze_column(col)
            )
        return entry[column]

    # -- internals ---------------------------------------------------------

    def _table_data(self, table: str):
        try:
            return self._read(table)
        except Exception:  # noqa: BLE001 — stats are best-effort
            return None

    def _entry_for(self, table: str, data) -> dict:
        token = getattr(data, "version_token", None)
        cached = self._cache.get(table)
        if cached is not None and cached[0] == token:
            self._cache.move_to_end(table)
            return cached[1]
        entry: dict[str, Optional[ColumnStats]] = {}
        self._cache[table] = (token, entry)
        self._cache.move_to_end(table)
        while len(self._cache) > STATS_CACHE_CAPACITY:
            self._cache.popitem(last=False)
        return entry


def _analyze_column(col) -> Optional[ColumnStats]:
    """Statistics for one column, from encoding metadata and zone maps —
    never by decoding or scanning the full values."""
    n = len(col)
    if n == 0:
        return ColumnStats(0, 0.0, None, None, 0.0)
    null_fraction = float(col.null_count()) / float(n)

    ndv: Optional[float] = None
    if isinstance(col, DictionaryColumn):
        ndv = float(len(col.dictionary))
    elif isinstance(col, RLEColumn):
        ndv = float(len(np.unique(col.run_values)))

    min_value: Optional[float] = None
    max_value: Optional[float] = None
    if col.sql_type.kind is not TypeKind.VARCHAR:
        zones = None
        try:
            zones = col.zone_map()
        except Exception:  # noqa: BLE001 — stats are best-effort
            zones = None
        if zones is not None and len(zones.mins):
            finite = ~np.isnan(zones.mins)
            if bool(finite.any()):
                min_value = float(np.min(zones.mins[finite]))
                max_value = float(np.max(zones.maxs[finite]))
        if isinstance(col, DictionaryColumn):
            # Dictionary zone maps live in code space; the sorted
            # dictionary's ends are the true value bounds.
            min_value = max_value = None
            if len(col.dictionary) and col.sql_type.kind is not (
                TypeKind.VARCHAR
            ):
                try:
                    min_value = float(col.dictionary[0])
                    max_value = float(col.dictionary[-1])
                except (TypeError, ValueError):
                    min_value = max_value = None
        if (
            ndv is None
            and min_value is not None
            and max_value is not None
            and col.sql_type.kind in (TypeKind.INTEGER, TypeKind.BIGINT)
        ):
            # Integers: the span bounds the distinct count.
            span = max_value - min_value + 1.0
            if math.isfinite(span) and span >= 1.0:
                valid_rows = n - int(round(null_fraction * n))
                ndv = min(span, float(max(valid_rows, 1)))
    return ColumnStats(n, ndv, min_value, max_value, null_fraction)
