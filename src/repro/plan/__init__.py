"""Logical query plans, optimizer rules, and cardinality estimation."""

from .logical import LogicalPlan, PlanColumn
from .optimizer import Optimizer

__all__ = ["LogicalPlan", "PlanColumn", "Optimizer"]
