"""The rule-based optimizer pipeline."""

from __future__ import annotations

from typing import Callable, Optional

from . import logical as lp
from .cardinality import CardinalityEstimator
from .rules import (
    choose_join_sides,
    fold_constants,
    prune_columns,
    push_down_limits,
    push_down_predicates,
)


def explain_with_estimates(
    plan: lp.LogicalPlan,
    estimator: CardinalityEstimator,
    indent: int = 0,
) -> str:
    """Render a plan like :meth:`LogicalPlan.explain`, annotating each
    node with its estimated row count and the estimate's provenance
    (``static`` | ``stats`` | ``feedback``)."""
    pad = "  " * indent
    try:
        rows, source = estimator.estimate_with_source(plan)
        note = f"  [est={rows:.0f} src={source}]"
    except Exception:  # noqa: BLE001 — estimates are best-effort
        note = ""
    lines = [f"{pad}{plan.describe()}{note}"]
    for child in plan.children():
        lines.append(explain_with_estimates(child, estimator, indent + 1))
    return "\n".join(lines)


class Optimizer:
    """Applies the rewrite rules in a fixed, dependency-aware order:

    1. constant folding (cheapens later selectivity decisions),
    2. predicate pushdown (the classical rule, bounded by the paper's
       section 5.2 restriction at analytics operators),
    3. limit pushdown (after predicates so a limit never slides past a
       filter that still needs to move),
    4. column pruning (after pushdown so pushed predicates' columns are
       accounted for),
    5. join build-side selection using cardinality estimates — which
       may come from table statistics and observed-cardinality feedback
       (see :mod:`repro.plan.cardinality`).

    Pass ``enabled=False`` (or construct with no stats) to execute the
    binder's plan untouched — used by the ablation benchmarks.
    """

    def __init__(
        self,
        row_count_of: Optional[Callable[[str], int]] = None,
        analytics=None,
        enabled: bool = True,
        stats=None,
        feedback: Optional[dict[str, float]] = None,
        metrics=None,
    ):
        self.enabled = enabled
        self._metrics = metrics
        self._estimator = CardinalityEstimator(
            row_count_of if row_count_of is not None else (lambda name: 1000),
            analytics,
            stats=stats,
            feedback=feedback,
            metrics=metrics,
        )

    @property
    def estimator(self) -> CardinalityEstimator:
        return self._estimator

    def optimize(self, plan: lp.LogicalPlan) -> lp.LogicalPlan:
        if not self.enabled:
            return plan
        plan = fold_constants(plan)
        plan = push_down_predicates(plan)
        plan = push_down_limits(plan, self._count_limit_pushdown)
        plan = prune_columns(plan)
        plan = choose_join_sides(plan, self._estimator)
        plan = self._recurse_into_nested(plan)
        if self._metrics is not None and self._estimator.has_feedback:
            self._metrics.counter(
                "optimizer_feedback_applied_total"
            ).inc()
        return plan

    def _count_limit_pushdown(self) -> None:
        if self._metrics is not None:
            self._metrics.counter("limit_pushdown_total").inc()

    def estimate(self, plan: lp.LogicalPlan) -> float:
        """Estimated output rows (exposed for EXPLAIN and tests)."""
        return self._estimator.estimate(plan)

    def explain(self, plan: lp.LogicalPlan) -> str:
        """The plan tree annotated with per-node estimates and their
        provenance (``static`` | ``stats`` | ``feedback``)."""
        return explain_with_estimates(plan, self._estimator)

    def _recurse_into_nested(self, plan: lp.LogicalPlan) -> lp.LogicalPlan:
        """Optimize the nested plans of iterative and analytical
        operators independently: relational optimization applies *around*
        and *inside* the analytical algorithm, but not across it
        (section 5.2)."""
        if isinstance(plan, lp.LogicalIterate):
            return lp.LogicalIterate(
                key=plan.key,
                init=self.optimize(plan.init),
                step=self.optimize(plan.step),
                stop=self.optimize(plan.stop),
                output=plan.output,
                max_iterations=plan.max_iterations,
            )
        if isinstance(plan, lp.LogicalRecursiveCTE):
            return lp.LogicalRecursiveCTE(
                key=plan.key,
                init=self.optimize(plan.init),
                step=self.optimize(plan.step),
                union_all=plan.union_all,
                output=plan.output,
                max_iterations=plan.max_iterations,
            )
        if isinstance(plan, lp.LogicalTableFunction):
            return lp.LogicalTableFunction(
                name=plan.name,
                inputs=[self.optimize(child) for child in plan.inputs],
                lambdas=plan.lambdas,
                params=plan.params,
                output=plan.output,
            )
        return plan.replace_children(
            [self._recurse_into_nested(c) for c in plan.children()]
        )
