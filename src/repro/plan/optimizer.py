"""The rule-based optimizer pipeline."""

from __future__ import annotations

from typing import Callable, Optional

from . import logical as lp
from .cardinality import CardinalityEstimator
from .rules import (
    choose_join_sides,
    fold_constants,
    prune_columns,
    push_down_predicates,
)


class Optimizer:
    """Applies the rewrite rules in a fixed, dependency-aware order:

    1. constant folding (cheapens later selectivity decisions),
    2. predicate pushdown (the classical rule, bounded by the paper's
       section 5.2 restriction at analytics operators),
    3. column pruning (after pushdown so pushed predicates' columns are
       accounted for),
    4. join build-side selection using cardinality estimates.

    Pass ``enabled=False`` (or construct with no stats) to execute the
    binder's plan untouched — used by the ablation benchmarks.
    """

    def __init__(
        self,
        row_count_of: Optional[Callable[[str], int]] = None,
        analytics=None,
        enabled: bool = True,
    ):
        self.enabled = enabled
        self._estimator = CardinalityEstimator(
            row_count_of if row_count_of is not None else (lambda name: 1000),
            analytics,
        )

    def optimize(self, plan: lp.LogicalPlan) -> lp.LogicalPlan:
        if not self.enabled:
            return plan
        plan = fold_constants(plan)
        plan = push_down_predicates(plan)
        plan = prune_columns(plan)
        plan = choose_join_sides(plan, self._estimator)
        plan = self._recurse_into_nested(plan)
        return plan

    def estimate(self, plan: lp.LogicalPlan) -> float:
        """Estimated output rows (exposed for EXPLAIN and tests)."""
        return self._estimator.estimate(plan)

    def _recurse_into_nested(self, plan: lp.LogicalPlan) -> lp.LogicalPlan:
        """Optimize the nested plans of iterative and analytical
        operators independently: relational optimization applies *around*
        and *inside* the analytical algorithm, but not across it
        (section 5.2)."""
        if isinstance(plan, lp.LogicalIterate):
            return lp.LogicalIterate(
                key=plan.key,
                init=self.optimize(plan.init),
                step=self.optimize(plan.step),
                stop=self.optimize(plan.stop),
                output=plan.output,
                max_iterations=plan.max_iterations,
            )
        if isinstance(plan, lp.LogicalRecursiveCTE):
            return lp.LogicalRecursiveCTE(
                key=plan.key,
                init=self.optimize(plan.init),
                step=self.optimize(plan.step),
                union_all=plan.union_all,
                output=plan.output,
                max_iterations=plan.max_iterations,
            )
        if isinstance(plan, lp.LogicalTableFunction):
            return lp.LogicalTableFunction(
                name=plan.name,
                inputs=[self.optimize(child) for child in plan.inputs],
                lambdas=plan.lambdas,
                params=plan.params,
                output=plan.output,
            )
        return plan.replace_children(
            [self._recurse_into_nested(c) for c in plan.children()]
        )
