"""Statement/plan cache.

Caches the bound+optimized *logical* plan of a SELECT statement, keyed
on a normalized SQL fingerprint plus the SQL types of the supplied
parameters. Physical operators are built per execution (they capture
the transaction snapshot), so a cached plan is reusable across
``execute``/``executemany`` calls and across ITERATE / recursive-CTE
rounds: a hit skips tokenize→parse→bind→optimize entirely.

Invalidation is epoch-based: each entry remembers the ``(catalog DDL
version, session registration epoch)`` pair it was built under and is
discarded on mismatch — CREATE/DROP TABLE bump the former, UDF /
analytics-operator registration bumps the latter (bound plans embed the
registered callables).

Statements that *cannot* be cached (multi-statement scripts, DDL/DML,
constructs that need parameter values at bind time such as ``LIMIT ?``)
store a *negative* entry so repeated executions skip the failed
parameterized attempt and go straight to the literal-substitution path.

The whole hot-path stack (plan cache, expression-kernel cache, zone-map
pruning, CSR cache) is gated by the ``REPRO_PLAN_CACHE`` environment
variable; set it to ``0`` to disable everything at once.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import Optional

#: Environment switch for the whole hot-path stack.
CACHE_ENV = "REPRO_PLAN_CACHE"

#: Plan-cache entries kept per Database (LRU beyond this).
DEFAULT_CAPACITY = 256

_DISABLED_VALUES = {"0", "false", "off", "no"}


def cache_enabled() -> bool:
    """Whether the hot-path caches are enabled (read per call so tests
    can flip the environment at runtime)."""
    value = os.environ.get(CACHE_ENV, "1").strip().lower()
    return value not in _DISABLED_VALUES


#: Raw SQL text -> fingerprint memo. The fingerprint is a pure function
#: of the text (no catalog state), so entries never need invalidating —
#: the bound LRU only guards memory. This keeps re-tokenization off the
#: per-statement hot path: key computation was ~30% of a cached
#: point-query execution before the memo.
_FINGERPRINT_MEMO_CAPACITY = 1024
_fingerprint_memo: "OrderedDict[str, Optional[str]]" = OrderedDict()
_fingerprint_lock = threading.Lock()


def sql_fingerprint(text: str) -> Optional[str]:
    """A normalized fingerprint of ``text``: the lexer's token stream
    joined back together. The lexer uppercases keywords, lowercases
    identifiers, and strips comments/whitespace, so formatting variants
    of the same statement share a fingerprint while ``?`` placeholders
    keep their positions. Returns None when the text does not lex
    (the literal path will raise the real error)."""
    with _fingerprint_lock:
        if text in _fingerprint_memo:
            _fingerprint_memo.move_to_end(text)
            return _fingerprint_memo[text]
    fingerprint = _sql_fingerprint_uncached(text)
    with _fingerprint_lock:
        _fingerprint_memo[text] = fingerprint
        _fingerprint_memo.move_to_end(text)
        while len(_fingerprint_memo) > _FINGERPRINT_MEMO_CAPACITY:
            _fingerprint_memo.popitem(last=False)
    return fingerprint


def _sql_fingerprint_uncached(text: str) -> Optional[str]:
    from ..errors import ParseError
    from ..sql.lexer import tokenize
    from ..sql.tokens import TokenKind

    try:
        tokens = tokenize(text)
    except ParseError:
        return None
    parts: list[str] = []
    for token in tokens:
        if token.kind is TokenKind.EOF:
            break
        if token.kind is TokenKind.STRING:
            escaped = str(token.value).replace("'", "''")
            parts.append(f"'{escaped}'")
        elif token.kind is TokenKind.PARAM:
            parts.append("?")
        else:
            parts.append(token.text)
    return " ".join(parts)


class CachedPlan:
    """A positive entry: the optimized logical plan plus everything
    needed to re-instantiate physical operators."""

    __slots__ = ("plan", "epoch")

    def __init__(self, plan: object, epoch: tuple):
        self.plan = plan
        self.epoch = epoch


class NegativePlan:
    """A negative entry: this fingerprint cannot use the cache (until
    the epoch changes — e.g. the referenced table gets created)."""

    __slots__ = ("epoch",)

    def __init__(self, epoch: tuple):
        self.epoch = epoch


class PlanCache:
    """Thread-safe LRU of :class:`CachedPlan` / :class:`NegativePlan`
    entries keyed on ``(fingerprint, param-type names)``."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        self.capacity = capacity
        self._entries: OrderedDict[tuple, object] = OrderedDict()
        self._lock = threading.Lock()

    def lookup(self, key: tuple, epoch: tuple):
        """The live entry for ``key``, or None. Entries built under a
        different epoch are dropped on sight."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return None
            if entry.epoch != epoch:
                del self._entries[key]
                return None
            self._entries.move_to_end(key)
            return entry

    def store(self, key: tuple, entry: object) -> None:
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
