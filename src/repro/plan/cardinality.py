"""Cardinality estimation.

Estimates drive join build-side selection. Analytics operators supply
their own contracts through the operator registry (section 4.3: "the
query optimizer knows their exact properties"); the generic ITERATE
construct, by contrast, admits only coarse heuristics — the difficulty
the paper discusses in section 5.2.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..expr import bound as b
from . import logical as lp

#: Default selectivities per predicate shape.
EQUALITY_SELECTIVITY = 0.1
RANGE_SELECTIVITY = 0.3
DEFAULT_SELECTIVITY = 0.25
#: Group-count heuristic: |groups| ~= |input| ** GROUP_EXPONENT.
GROUP_EXPONENT = 0.75


class CardinalityEstimator:
    """Estimates output rows for every plan node.

    ``row_count_of`` maps a base-table name to its current row count;
    ``analytics`` is the operator registry (may be None).
    """

    def __init__(
        self,
        row_count_of: Callable[[str], int],
        analytics=None,
    ):
        self._row_count_of = row_count_of
        self._analytics = analytics

    def estimate(self, plan: lp.LogicalPlan) -> float:
        method = getattr(
            self, f"_estimate_{type(plan).__name__}", None
        )
        if method is not None:
            return max(method(plan), 0.0)
        children = plan.children()
        if children:
            return self.estimate(children[0])
        return 1.0

    # -- leaves -----------------------------------------------------------

    def _estimate_LogicalScan(self, plan: lp.LogicalScan) -> float:
        try:
            return float(self._row_count_of(plan.table_name))
        except Exception:  # noqa: BLE001 - stats are best-effort
            return 1000.0

    def _estimate_LogicalValues(self, plan: lp.LogicalValues) -> float:
        return float(len(plan.rows))

    def _estimate_LogicalWorkingTableRef(self, plan) -> float:
        # The working relation's size is data-dependent; a neutral guess.
        return 1000.0

    # -- unary -------------------------------------------------------------

    def _estimate_LogicalFilter(self, plan: lp.LogicalFilter) -> float:
        child = self.estimate(plan.child)
        return child * self.predicate_selectivity(plan.predicate)

    def predicate_selectivity(self, predicate: b.BoundExpr) -> float:
        """Heuristic selectivity of a predicate tree."""
        if isinstance(predicate, b.BoundBinary):
            if predicate.op == "and":
                return self.predicate_selectivity(
                    predicate.left
                ) * self.predicate_selectivity(predicate.right)
            if predicate.op == "or":
                left = self.predicate_selectivity(predicate.left)
                right = self.predicate_selectivity(predicate.right)
                return min(1.0, left + right - left * right)
            if predicate.op == "=":
                return EQUALITY_SELECTIVITY
            if predicate.op in ("<", "<=", ">", ">="):
                return RANGE_SELECTIVITY
            if predicate.op == "<>":
                return 1.0 - EQUALITY_SELECTIVITY
        if isinstance(predicate, b.BoundUnary) and predicate.op == "not":
            return 1.0 - self.predicate_selectivity(predicate.operand)
        if isinstance(predicate, b.BoundIsNull):
            return 0.05 if not predicate.negated else 0.95
        if isinstance(predicate, b.BoundInList):
            return min(
                1.0, EQUALITY_SELECTIVITY * max(len(predicate.items), 1)
            )
        return DEFAULT_SELECTIVITY

    def _estimate_LogicalProject(self, plan: lp.LogicalProject) -> float:
        return self.estimate(plan.child)

    def _estimate_LogicalAggregate(
        self, plan: lp.LogicalAggregate
    ) -> float:
        child = self.estimate(plan.child)
        if not plan.group_exprs:
            return 1.0
        return max(1.0, child**GROUP_EXPONENT)

    def _estimate_LogicalSort(self, plan: lp.LogicalSort) -> float:
        return self.estimate(plan.child)

    def _estimate_LogicalLimit(self, plan: lp.LogicalLimit) -> float:
        child = self.estimate(plan.child)
        if plan.limit is None:
            return max(child - plan.offset, 0.0)
        return min(child, float(plan.limit))

    def _estimate_LogicalDistinct(self, plan: lp.LogicalDistinct) -> float:
        return max(1.0, self.estimate(plan.child) * 0.5)

    # -- binary -------------------------------------------------------------

    def _estimate_LogicalJoin(self, plan: lp.LogicalJoin) -> float:
        left = self.estimate(plan.left)
        right = self.estimate(plan.right)
        if plan.kind == "cross":
            return left * right
        if plan.equi_keys:
            # Foreign-key style assumption: the larger side survives.
            estimate = max(left, right)
        else:
            estimate = left * right * DEFAULT_SELECTIVITY
        if plan.residual is not None:
            estimate *= self.predicate_selectivity(plan.residual)
        if plan.kind == "left":
            estimate = max(estimate, left)
        return estimate

    def _estimate_LogicalSetOp(self, plan: lp.LogicalSetOp) -> float:
        left = self.estimate(plan.left)
        right = self.estimate(plan.right)
        if plan.op == "union_all":
            return left + right
        if plan.op == "union":
            return max(left, right)
        if plan.op == "intersect":
            return min(left, right) * 0.5
        return max(left * 0.5, 1.0)  # except

    # -- iterative & analytics -------------------------------------------------

    def _estimate_LogicalIterate(self, plan: lp.LogicalIterate) -> float:
        # Non-appending: the result has the working relation's size;
        # best guess is the init query's size (k-Means-style workloads
        # keep it constant — section 5.2).
        return self.estimate(plan.init)

    def _estimate_LogicalRecursiveCTE(
        self, plan: lp.LogicalRecursiveCTE
    ) -> float:
        # Appending: grows with the (unknown) iteration count.
        return self.estimate(plan.init) * 10.0

    def _estimate_LogicalTableFunction(
        self, plan: lp.LogicalTableFunction
    ) -> float:
        inputs = [self.estimate(child) for child in plan.inputs]
        if self._analytics is not None:
            descriptor = self._analytics.lookup(plan.name)
            if descriptor is not None:
                return descriptor.estimate_rows(plan, inputs)
        return inputs[0] if inputs else 1.0
