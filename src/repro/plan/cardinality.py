"""Cardinality estimation.

Estimates drive join build-side selection. Analytics operators supply
their own contracts through the operator registry (section 4.3: "the
query optimizer knows their exact properties"); the generic ITERATE
construct, by contrast, admits only coarse heuristics — the difficulty
the paper discusses in section 5.2.

Three sources feed an estimate, strongest first:

* **feedback** — observed row counts from prior executions of the same
  statement fingerprint (:mod:`repro.plan.feedback`), applied as
  per-node overrides;
* **stats** — table statistics (:mod:`repro.plan.stats`): dictionary
  NDV for ``=`` / ``IN`` selectivity, column min/max for ranges, null
  counts for ``IS [NOT] NULL``;
* **static** — the classic constant heuristics below.

:meth:`CardinalityEstimator.estimate_with_source` reports which source
actually influenced a node's number; ``explain`` / ``explain_analyze``
surface it as the estimate's provenance.
"""

from __future__ import annotations

import logging
from typing import Callable, Optional

from ..expr import bound as b
from . import logical as lp
from .feedback import feedback_key_base
from .stats import ColumnStats, TableStatistics

#: Default selectivities per predicate shape.
EQUALITY_SELECTIVITY = 0.1
RANGE_SELECTIVITY = 0.3
DEFAULT_SELECTIVITY = 0.25
#: Group-count heuristic: |groups| ~= |input| ** GROUP_EXPONENT.
GROUP_EXPONENT = 0.75

_log = logging.getLogger(__name__)

#: Tables already warned about (once per process, not once per query).
_warned_scan_tables: set[str] = set()

_RANGE_OPS = ("<", "<=", ">", ">=")
_FLIPPED = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}


class CardinalityEstimator:
    """Estimates output rows for every plan node.

    ``row_count_of`` maps a base-table name to its current row count;
    ``analytics`` is the operator registry (may be None). ``stats`` is
    an optional :class:`~repro.plan.stats.TableStatistics` provider;
    ``feedback`` an optional ``{node_base_key: observed_rows}`` override
    dict from :class:`~repro.plan.feedback.CardinalityFeedback`.
    """

    def __init__(
        self,
        row_count_of: Callable[[str], int],
        analytics=None,
        stats: Optional[TableStatistics] = None,
        feedback: Optional[dict[str, float]] = None,
        metrics=None,
    ):
        self._row_count_of = row_count_of
        self._analytics = analytics
        self._stats = stats
        self._feedback = feedback or {}
        self._metrics = metrics
        self._source_frames: list[set[str]] = []

    @property
    def has_feedback(self) -> bool:
        return bool(self._feedback)

    def estimate(self, plan: lp.LogicalPlan) -> float:
        if self._feedback:
            override = self._feedback.get(feedback_key_base(plan))
            if override is not None:
                self._mark("feedback")
                return max(float(override), 0.0)
        method = getattr(
            self, f"_estimate_{type(plan).__name__}", None
        )
        if method is not None:
            return max(method(plan), 0.0)
        children = plan.children()
        if children:
            return self.estimate(children[0])
        return 1.0

    def estimate_with_source(
        self, plan: lp.LogicalPlan
    ) -> tuple[float, str]:
        """Estimate plus its provenance: the strongest source that
        influenced the number anywhere in the subtree (``feedback`` >
        ``stats`` > ``static``)."""
        self._source_frames.append(set())
        try:
            rows = self.estimate(plan)
        finally:
            frame = self._source_frames.pop()
            if self._source_frames:
                self._source_frames[-1] |= frame
        if "feedback" in frame:
            return rows, "feedback"
        if "stats" in frame:
            return rows, "stats"
        return rows, "static"

    def _mark(self, source: str) -> None:
        if self._source_frames:
            self._source_frames[-1].add(source)

    # -- leaves -----------------------------------------------------------

    def _estimate_LogicalScan(self, plan: lp.LogicalScan) -> float:
        try:
            return float(self._row_count_of(plan.table_name))
        except Exception:  # noqa: BLE001 - stats are best-effort
            self._record_scan_miss(plan.table_name)
            return 1000.0

    def _record_scan_miss(self, table: str) -> None:
        """An estimator blind spot: no row count for ``table``. Counted
        and logged (once per table) instead of silently guessing."""
        if self._metrics is not None:
            try:
                self._metrics.counter(
                    "cardinality_stats_miss_total"
                ).inc()
            except Exception:  # noqa: BLE001 — metrics are best-effort
                pass
        if table not in _warned_scan_tables:
            _warned_scan_tables.add(table)
            _log.warning(
                "no row count available for table %r; "
                "estimating 1000 rows", table,
            )

    def _estimate_LogicalValues(self, plan: lp.LogicalValues) -> float:
        return float(len(plan.rows))

    def _estimate_LogicalWorkingTableRef(self, plan) -> float:
        # The working relation's size is data-dependent; a neutral guess.
        return 1000.0

    # -- unary -------------------------------------------------------------

    def _estimate_LogicalFilter(self, plan: lp.LogicalFilter) -> float:
        child = self.estimate(plan.child)
        slot_map = self._slot_sources(plan.child)
        return child * self.predicate_selectivity(
            plan.predicate, slot_map
        )

    def predicate_selectivity(
        self,
        predicate: b.BoundExpr,
        slot_map: Optional[dict[str, tuple[str, str]]] = None,
    ) -> float:
        """Selectivity of a predicate tree: real statistics where the
        leaf shape allows it, heuristic constants elsewhere.

        ``slot_map`` maps column slots to their originating
        ``(table, column)`` pair; without it (or without a statistics
        provider) the method degrades to the static heuristics.
        """
        from_stats = self._stats_selectivity(predicate, slot_map)
        if from_stats is not None:
            self._mark("stats")
            return from_stats
        if isinstance(predicate, b.BoundBinary):
            if predicate.op == "and":
                return self.predicate_selectivity(
                    predicate.left, slot_map
                ) * self.predicate_selectivity(predicate.right, slot_map)
            if predicate.op == "or":
                left = self.predicate_selectivity(
                    predicate.left, slot_map
                )
                right = self.predicate_selectivity(
                    predicate.right, slot_map
                )
                return min(1.0, left + right - left * right)
            if predicate.op == "=":
                return EQUALITY_SELECTIVITY
            if predicate.op in _RANGE_OPS:
                return RANGE_SELECTIVITY
            if predicate.op == "<>":
                return 1.0 - EQUALITY_SELECTIVITY
        if isinstance(predicate, b.BoundUnary) and predicate.op == "not":
            return 1.0 - self.predicate_selectivity(
                predicate.operand, slot_map
            )
        if isinstance(predicate, b.BoundIsNull):
            return 0.05 if not predicate.negated else 0.95
        if isinstance(predicate, b.BoundInList):
            return min(
                1.0, EQUALITY_SELECTIVITY * max(len(predicate.items), 1)
            )
        return DEFAULT_SELECTIVITY

    # -- statistics-driven selectivity -------------------------------------

    def _slot_sources(
        self, plan: lp.LogicalPlan
    ) -> dict[str, tuple[str, str]]:
        """slot -> (table, column) for every base-table column visible
        beneath ``plan`` (slots are statement-unique, so collecting from
        all scans in the subtree is unambiguous)."""
        mapping: dict[str, tuple[str, str]] = {}
        stack = [plan]
        while stack:
            node = stack.pop()
            if isinstance(node, lp.LogicalScan):
                for col in node.output:
                    mapping[col.slot] = (node.table_name, col.name)
            stack.extend(node.children())
        return mapping

    def _column_stats(
        self,
        expr: b.BoundExpr,
        slot_map: Optional[dict[str, tuple[str, str]]],
    ) -> Optional[ColumnStats]:
        if (
            self._stats is None
            or not slot_map
            or not isinstance(expr, b.BoundColumnRef)
        ):
            return None
        source = slot_map.get(expr.slot)
        if source is None:
            return None
        return self._stats.column_stats(source[0], source[1])

    def _stats_selectivity(
        self,
        predicate: b.BoundExpr,
        slot_map: Optional[dict[str, tuple[str, str]]],
    ) -> Optional[float]:
        """Statistics-backed selectivity for the leaf shapes that allow
        it; None means "no statistics apply, use the heuristics"."""
        if self._stats is None or not slot_map:
            return None
        if isinstance(predicate, b.BoundIsNull):
            stats = self._column_stats(predicate.operand, slot_map)
            if stats is None:
                return None
            null_fraction = min(max(stats.null_fraction, 0.0), 1.0)
            return (
                1.0 - null_fraction if predicate.negated else null_fraction
            )
        if isinstance(predicate, b.BoundInList):
            stats = self._column_stats(predicate.operand, slot_map)
            if stats is None or not stats.ndv:
                return None
            matched = float(max(len(predicate.items), 1))
            valid = 1.0 - stats.null_fraction
            return min(1.0, matched / stats.ndv) * valid
        if not isinstance(predicate, b.BoundBinary):
            return None
        op, column, constant = self._comparison_shape(predicate)
        if op is None:
            return None
        stats = self._column_stats(column, slot_map)
        if stats is None:
            return None
        valid = 1.0 - min(max(stats.null_fraction, 0.0), 1.0)
        if op in ("=", "<>"):
            if not stats.ndv:
                return None
            equality = min(1.0, 1.0 / stats.ndv) * valid
            value = _literal_number(constant)
            if value is not None and stats.value_in_range(value) is False:
                equality = 0.0
            return equality if op == "=" else max(valid - equality, 0.0)
        if op in _RANGE_OPS:
            value = _literal_number(constant)
            if (
                value is None
                or stats.min_value is None
                or stats.max_value is None
            ):
                return None
            span = stats.max_value - stats.min_value
            if span <= 0.0:
                holds = _op_holds(stats.min_value, op, value)
                return valid if holds else 0.0
            fraction = (value - stats.min_value) / span
            fraction = min(max(fraction, 0.0), 1.0)
            if op in (">", ">="):
                fraction = 1.0 - fraction
            return fraction * valid
        return None

    @staticmethod
    def _comparison_shape(predicate: b.BoundBinary):
        """Normalise ``col <op> const`` / ``const <op> col`` to
        ``(op, column_ref, const_expr)``; (None, None, None) otherwise."""
        op = predicate.op
        if op not in ("=", "<>") and op not in _RANGE_OPS:
            return None, None, None
        left, right = predicate.left, predicate.right
        if isinstance(left, b.BoundColumnRef) and isinstance(
            right, (b.BoundLiteral, b.BoundParam)
        ):
            return op, left, right
        if isinstance(right, b.BoundColumnRef) and isinstance(
            left, (b.BoundLiteral, b.BoundParam)
        ):
            return _FLIPPED.get(op, op), right, left
        return None, None, None

    def _estimate_LogicalProject(self, plan: lp.LogicalProject) -> float:
        return self.estimate(plan.child)

    def _estimate_LogicalAggregate(
        self, plan: lp.LogicalAggregate
    ) -> float:
        child = self.estimate(plan.child)
        if not plan.group_exprs:
            return 1.0
        return max(1.0, child**GROUP_EXPONENT)

    def _estimate_LogicalSort(self, plan: lp.LogicalSort) -> float:
        return self.estimate(plan.child)

    def _estimate_LogicalLimit(self, plan: lp.LogicalLimit) -> float:
        child = self.estimate(plan.child)
        if plan.limit is None:
            return max(child - plan.offset, 0.0)
        return min(child, float(plan.limit))

    def _estimate_LogicalDistinct(self, plan: lp.LogicalDistinct) -> float:
        return max(1.0, self.estimate(plan.child) * 0.5)

    # -- binary -------------------------------------------------------------

    def _estimate_LogicalJoin(self, plan: lp.LogicalJoin) -> float:
        left = self.estimate(plan.left)
        right = self.estimate(plan.right)
        if plan.kind == "cross":
            return left * right
        if plan.equi_keys:
            # Foreign-key style assumption: the larger side survives.
            estimate = max(left, right)
        else:
            estimate = left * right * DEFAULT_SELECTIVITY
        if plan.residual is not None:
            slot_map = self._slot_sources(plan)
            estimate *= self.predicate_selectivity(
                plan.residual, slot_map
            )
        if plan.kind == "left":
            estimate = max(estimate, left)
        return estimate

    def _estimate_LogicalSetOp(self, plan: lp.LogicalSetOp) -> float:
        left = self.estimate(plan.left)
        right = self.estimate(plan.right)
        if plan.op == "union_all":
            return left + right
        if plan.op == "union":
            return max(left, right)
        if plan.op == "intersect":
            return min(left, right) * 0.5
        return max(left * 0.5, 1.0)  # except

    # -- iterative & analytics -------------------------------------------------

    def _estimate_LogicalIterate(self, plan: lp.LogicalIterate) -> float:
        # Non-appending: the result has the working relation's size;
        # best guess is the init query's size (k-Means-style workloads
        # keep it constant — section 5.2).
        return self.estimate(plan.init)

    def _estimate_LogicalRecursiveCTE(
        self, plan: lp.LogicalRecursiveCTE
    ) -> float:
        # Appending: grows with the (unknown) iteration count.
        return self.estimate(plan.init) * 10.0

    def _estimate_LogicalTableFunction(
        self, plan: lp.LogicalTableFunction
    ) -> float:
        inputs = [self.estimate(child) for child in plan.inputs]
        if self._analytics is not None:
            descriptor = self._analytics.lookup(plan.name)
            if descriptor is not None:
                return descriptor.estimate_rows(plan, inputs)
        return inputs[0] if inputs else 1.0


def _literal_number(expr) -> Optional[float]:
    if not isinstance(expr, b.BoundLiteral):
        return None
    value = expr.value
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    return float(value)


def _op_holds(x: float, op: str, value: float) -> bool:
    if op == "<":
        return x < value
    if op == "<=":
        return x <= value
    if op == ">":
        return x > value
    return x >= value
