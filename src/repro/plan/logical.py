"""Logical plan operators.

A logical plan is a tree of operators, each publishing an ordered output
schema of :class:`PlanColumn` (display name + unique slot + type). Bound
expressions inside operators reference child columns by slot.

Relational and analytical operators live in one plan space — the paper's
Figure 3: the optimizer inspects both kinds, and analytics operators
declare their cardinality contracts so the rest of the plan optimises
normally around them (section 5.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..expr.bound import BoundExpr, BoundLambda
from ..types import SQLType

#: Default infinite-loop guard for ITERATE / WITH RECURSIVE (section 5.1).
DEFAULT_MAX_ITERATIONS = 10_000


@dataclass(frozen=True)
class PlanColumn:
    """One output column of a plan node."""

    name: str  # user-visible name
    slot: str  # unique batch key
    sql_type: SQLType


class LogicalPlan:
    """Base class for logical operators."""

    output: list[PlanColumn]

    def children(self) -> list["LogicalPlan"]:
        return []

    def replace_children(
        self, new_children: list["LogicalPlan"]
    ) -> "LogicalPlan":
        """A copy of this node with new children (rewrite support)."""
        raise NotImplementedError

    def output_slots(self) -> list[str]:
        return [c.slot for c in self.output]

    def column_types(self) -> dict[str, SQLType]:
        return {c.slot: c.sql_type for c in self.output}

    def explain(self, indent: int = 0) -> str:
        """A human-readable plan tree (EXPLAIN output)."""
        pad = "  " * indent
        lines = [f"{pad}{self.describe()}"]
        for child in self.children():
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)

    def describe(self) -> str:
        return type(self).__name__


@dataclass
class LogicalScan(LogicalPlan):
    """Full scan of a base table (at the query's snapshot)."""

    table_name: str
    output: list[PlanColumn]

    def replace_children(self, new_children):
        assert not new_children
        return self

    def describe(self) -> str:
        return f"Scan {self.table_name}"


@dataclass
class LogicalValues(LogicalPlan):
    """A literal row set (VALUES lists, constant SELECTs).

    Rows hold bound expressions (usually literals, but constant function
    calls and subqueries are allowed); ``rows == [[]]`` with empty output
    encodes the one conceptual row of a FROM-less SELECT.
    """

    rows: list[list[BoundExpr]]
    output: list[PlanColumn]

    def replace_children(self, new_children):
        assert not new_children
        return self

    def describe(self) -> str:
        return f"Values ({len(self.rows)} rows)"


@dataclass
class LogicalFilter(LogicalPlan):
    child: LogicalPlan
    predicate: BoundExpr

    @property
    def output(self) -> list[PlanColumn]:  # type: ignore[override]
        return self.child.output

    def children(self):
        return [self.child]

    def replace_children(self, new_children):
        (child,) = new_children
        return LogicalFilter(child, self.predicate)

    def describe(self) -> str:
        return "Filter"


@dataclass
class LogicalProject(LogicalPlan):
    """Computes expressions; output slot i is exprs[i] evaluated."""

    child: LogicalPlan
    exprs: list[BoundExpr]
    output: list[PlanColumn]

    def children(self):
        return [self.child]

    def replace_children(self, new_children):
        (child,) = new_children
        return LogicalProject(child, self.exprs, self.output)

    def describe(self) -> str:
        names = ", ".join(c.name for c in self.output)
        return f"Project [{names}]"


@dataclass
class LogicalJoin(LogicalPlan):
    """kind: inner | left | cross. ``equi_keys`` holds (left_expr,
    right_expr) pairs extracted for hash joins; ``residual`` is any
    non-equi remainder evaluated on candidate pairs."""

    kind: str
    left: LogicalPlan
    right: LogicalPlan
    equi_keys: list[tuple[BoundExpr, BoundExpr]] = field(default_factory=list)
    residual: Optional[BoundExpr] = None
    output: list[PlanColumn] = field(default_factory=list)

    def children(self):
        return [self.left, self.right]

    def replace_children(self, new_children):
        left, right = new_children
        return LogicalJoin(
            self.kind, left, right, self.equi_keys, self.residual,
            self.output,
        )

    def describe(self) -> str:
        method = "HashJoin" if self.equi_keys else "NLJoin"
        return f"{method} ({self.kind})"


@dataclass
class AggregateSpec:
    """One aggregate computation in a LogicalAggregate."""

    slot: str
    func_name: str  # registry name; "count_star" for COUNT(*)
    arg: Optional[BoundExpr]
    distinct: bool = False
    sql_type: SQLType = None  # type: ignore[assignment]


@dataclass
class LogicalAggregate(LogicalPlan):
    """Hash aggregation: group-by expressions + aggregate computations.

    A pipeline breaker — like the analytics operators, it must consume
    all input before producing output (paper section 3).
    """

    child: LogicalPlan
    group_exprs: list[BoundExpr]
    group_slots: list[str]
    aggregates: list[AggregateSpec]
    output: list[PlanColumn]

    def children(self):
        return [self.child]

    def replace_children(self, new_children):
        (child,) = new_children
        return LogicalAggregate(
            child, self.group_exprs, self.group_slots, self.aggregates,
            self.output,
        )

    def describe(self) -> str:
        aggs = ", ".join(a.func_name for a in self.aggregates)
        return f"Aggregate [groups={len(self.group_exprs)}; {aggs}]"


@dataclass
class SortKey:
    expr: BoundExpr
    descending: bool = False
    nulls_last: Optional[bool] = None


@dataclass
class LogicalSort(LogicalPlan):
    child: LogicalPlan
    keys: list[SortKey]

    @property
    def output(self) -> list[PlanColumn]:  # type: ignore[override]
        return self.child.output

    def children(self):
        return [self.child]

    def replace_children(self, new_children):
        (child,) = new_children
        return LogicalSort(child, self.keys)

    def describe(self) -> str:
        return f"Sort ({len(self.keys)} keys)"


@dataclass
class LogicalLimit(LogicalPlan):
    child: LogicalPlan
    limit: Optional[int]
    offset: int = 0

    @property
    def output(self) -> list[PlanColumn]:  # type: ignore[override]
        return self.child.output

    def children(self):
        return [self.child]

    def replace_children(self, new_children):
        (child,) = new_children
        return LogicalLimit(child, self.limit, self.offset)

    def describe(self) -> str:
        return f"Limit {self.limit} offset {self.offset}"


@dataclass
class LogicalDistinct(LogicalPlan):
    child: LogicalPlan

    @property
    def output(self) -> list[PlanColumn]:  # type: ignore[override]
        return self.child.output

    def children(self):
        return [self.child]

    def replace_children(self, new_children):
        (child,) = new_children
        return LogicalDistinct(child)


@dataclass
class LogicalSetOp(LogicalPlan):
    """union | union_all | intersect | except (left/right positionally
    aligned; output adopts left's names with fresh slots)."""

    op: str
    left: LogicalPlan
    right: LogicalPlan
    output: list[PlanColumn]

    def children(self):
        return [self.left, self.right]

    def replace_children(self, new_children):
        left, right = new_children
        return LogicalSetOp(self.op, left, right, self.output)

    def describe(self) -> str:
        return f"SetOp {self.op}"


@dataclass
class LogicalWorkingTableRef(LogicalPlan):
    """Reads the current working relation of an enclosing iterative
    operator (the ``iterate`` relation of ITERATE, or the recursive CTE's
    previous-round rows)."""

    key: str
    output: list[PlanColumn]

    def replace_children(self, new_children):
        assert not new_children
        return self

    def describe(self) -> str:
        return f"WorkingTable {self.key}"


@dataclass
class LogicalRecursiveCTE(LogicalPlan):
    """The SQL:1999 appending recursion (WITH RECURSIVE): the result grows
    monotonically; each round the step sees only the previous round's rows;
    terminates when a round adds nothing (fixpoint). The paper's HyPer SQL
    baseline (sections 5.1, 8.4.1)."""

    key: str
    init: LogicalPlan
    step: LogicalPlan
    union_all: bool
    output: list[PlanColumn]
    max_iterations: int = DEFAULT_MAX_ITERATIONS

    def children(self):
        return [self.init, self.step]

    def replace_children(self, new_children):
        init, step = new_children
        return LogicalRecursiveCTE(
            self.key, init, step, self.union_all, self.output,
            self.max_iterations,
        )

    def describe(self) -> str:
        return f"RecursiveCTE {self.key}"


@dataclass
class LogicalIterate(LogicalPlan):
    """The paper's non-appending ITERATE construct (section 5.1).

    Each round *replaces* the working relation with the step's result;
    only the current and previous rounds are ever live (2n tuples). The
    stop plan is evaluated after each round; iteration ends when it
    produces at least one row whose first column is true (or any row, if
    the first column is not boolean)."""

    key: str
    init: LogicalPlan
    step: LogicalPlan
    stop: LogicalPlan
    output: list[PlanColumn]
    max_iterations: int = DEFAULT_MAX_ITERATIONS

    def children(self):
        return [self.init, self.step, self.stop]

    def replace_children(self, new_children):
        init, step, stop = new_children
        return LogicalIterate(
            self.key, init, step, stop, self.output, self.max_iterations
        )

    def describe(self) -> str:
        return "Iterate"


@dataclass
class WindowSpec:
    """One window computation: function, arguments, and its window."""

    slot: str
    func_name: str
    args: list[BoundExpr]
    partition_by: list[BoundExpr]
    order_by: list[SortKey]
    sql_type: SQLType


@dataclass
class LogicalWindow(LogicalPlan):
    """Window computations over the child: the output carries every
    child column plus one column per spec. Original row order is
    preserved (windows sort internally and unsort)."""

    child: LogicalPlan
    specs: list[WindowSpec]
    output: list[PlanColumn]

    def children(self):
        return [self.child]

    def replace_children(self, new_children):
        (child,) = new_children
        return LogicalWindow(child, self.specs, self.output)

    def describe(self) -> str:
        names = ", ".join(s.func_name for s in self.specs)
        return f"Window [{names}]"


@dataclass
class LogicalTableFunction(LogicalPlan):
    """A layer-4 analytics operator (or table UDF) in the plan.

    ``inputs`` are full subplans (arbitrary pre-processing, Listing 2);
    ``lambdas`` are the operator's bound variation points (section 7);
    ``params`` are constant scalars (k, damping factor, max iterations).
    The node's cardinality contract comes from the operator registry.
    """

    name: str
    inputs: list[LogicalPlan]
    lambdas: dict[str, BoundLambda]
    params: list[object]
    output: list[PlanColumn]

    def children(self):
        return list(self.inputs)

    def replace_children(self, new_children):
        return LogicalTableFunction(
            self.name, list(new_children), self.lambdas, self.params,
            self.output,
        )

    def describe(self) -> str:
        return f"AnalyticsOperator {self.name}"
