"""Optimizer rewrite rules.

Three classical rules plus the paper's constraint:

* **Predicate pushdown** — filters move toward the data, splitting
  conjunctions across joins, sliding through projections (with slot
  substitution) and below sorts/distincts, and into both branches of a
  UNION. Pushdown **stops at analytics operators, ITERATE, recursive
  CTEs, and aggregation over non-group columns** — an analytical
  operator's result depends on its whole input (section 5.2), so a
  selection above it is not a selection below it.
* **Column pruning** — base-table scans materialise only the columns the
  plan above actually consumes.
* **Join side selection** — for inner hash joins, the side estimated
  smaller becomes the build side.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from ..errors import PlanError
from ..expr import bound as b
from ..types import BOOLEAN
from . import logical as lp
from .cardinality import CardinalityEstimator


# ---------------------------------------------------------------------------
# expression helpers
# ---------------------------------------------------------------------------


def split_conjuncts(expr: b.BoundExpr) -> list[b.BoundExpr]:
    if isinstance(expr, b.BoundBinary) and expr.op == "and":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def conjoin(conjuncts: list[b.BoundExpr]) -> Optional[b.BoundExpr]:
    result: Optional[b.BoundExpr] = None
    for conjunct in conjuncts:
        result = (
            conjunct
            if result is None
            else b.BoundBinary("and", result, conjunct, BOOLEAN)
        )
    return result


def substitute_slots(
    expr: b.BoundExpr, mapping: dict[str, b.BoundExpr]
) -> b.BoundExpr:
    """Replace column references by expressions (projection pushdown)."""
    if isinstance(expr, b.BoundColumnRef):
        replacement = mapping.get(expr.slot)
        return replacement if replacement is not None else expr
    if isinstance(expr, b.BoundUnary):
        return replace(expr, operand=substitute_slots(expr.operand, mapping))
    if isinstance(expr, b.BoundBinary):
        return replace(
            expr,
            left=substitute_slots(expr.left, mapping),
            right=substitute_slots(expr.right, mapping),
        )
    if isinstance(expr, b.BoundFunction):
        return replace(
            expr, args=[substitute_slots(a, mapping) for a in expr.args]
        )
    if isinstance(expr, b.BoundUDF):
        return replace(
            expr, args=[substitute_slots(a, mapping) for a in expr.args]
        )
    if isinstance(expr, b.BoundCast):
        return replace(expr, operand=substitute_slots(expr.operand, mapping))
    if isinstance(expr, b.BoundCase):
        return replace(
            expr,
            whens=[
                (
                    substitute_slots(c, mapping),
                    substitute_slots(r, mapping),
                )
                for c, r in expr.whens
            ],
            else_result=(
                substitute_slots(expr.else_result, mapping)
                if expr.else_result is not None
                else None
            ),
        )
    if isinstance(expr, b.BoundIsNull):
        return replace(expr, operand=substitute_slots(expr.operand, mapping))
    if isinstance(expr, b.BoundInList):
        return replace(
            expr,
            operand=substitute_slots(expr.operand, mapping),
            items=[substitute_slots(i, mapping) for i in expr.items],
        )
    if isinstance(expr, b.BoundLike):
        return replace(
            expr,
            operand=substitute_slots(expr.operand, mapping),
            pattern=substitute_slots(expr.pattern, mapping),
        )
    # Literals, params, subqueries (conservatively not rewritten inside).
    return expr


# ---------------------------------------------------------------------------
# predicate pushdown
# ---------------------------------------------------------------------------


def push_down_predicates(plan: lp.LogicalPlan) -> lp.LogicalPlan:
    """Recursively push filter conjuncts as deep as legal."""
    plan = plan.replace_children(
        [push_down_predicates(c) for c in plan.children()]
    )
    if not isinstance(plan, lp.LogicalFilter):
        return plan
    conjuncts = split_conjuncts(plan.predicate)
    child = plan.child
    remaining: list[b.BoundExpr] = []
    for conjunct in conjuncts:
        pushed = _try_push(conjunct, child)
        if pushed is None:
            remaining.append(conjunct)
        else:
            child = pushed
    predicate = conjoin(remaining)
    if predicate is None:
        return child
    return lp.LogicalFilter(child, predicate)


def _try_push(
    conjunct: b.BoundExpr, child: lp.LogicalPlan
) -> Optional[lp.LogicalPlan]:
    """Push one conjunct below ``child``; None if it must stay above."""
    if conjunct.contains_subquery():
        return None  # conservative: subqueries stay where bound

    if isinstance(child, lp.LogicalFilter):
        inner = _try_push(conjunct, child.child)
        if inner is not None:
            return lp.LogicalFilter(inner, child.predicate)
        return lp.LogicalFilter(
            child.child,
            b.BoundBinary("and", child.predicate, conjunct, BOOLEAN),
        )

    if isinstance(child, lp.LogicalProject):
        mapping = {
            col.slot: expr
            for col, expr in zip(child.output, child.exprs)
        }
        refs = conjunct.referenced_slots()
        if not refs <= set(mapping):
            return None
        # Don't duplicate expensive work: only substitute through cheap
        # projection expressions (column refs, casts of refs, literals).
        for slot in refs:
            if not _is_cheap(mapping[slot]):
                return None
        rewritten = substitute_slots(conjunct, mapping)
        inner = _try_push(rewritten, child.child)
        if inner is None:
            inner = lp.LogicalFilter(child.child, rewritten)
        return lp.LogicalProject(inner, child.exprs, child.output)

    if isinstance(child, lp.LogicalJoin):
        refs = conjunct.referenced_slots()
        left_slots = set(child.left.output_slots())
        right_slots = set(child.right.output_slots())
        if refs and refs <= left_slots:
            inner = _try_push(conjunct, child.left)
            if inner is None:
                inner = lp.LogicalFilter(child.left, conjunct)
            return child.replace_children([inner, child.right])
        if refs and refs <= right_slots and child.kind != "left":
            inner = _try_push(conjunct, child.right)
            if inner is None:
                inner = lp.LogicalFilter(child.right, conjunct)
            return child.replace_children([child.left, inner])
        # A conjunct spanning both sides of a cross/inner join becomes a
        # join condition: WHERE over a cross product IS an inner join.
        # Equality conjuncts with one side per input become hash keys —
        # this is what turns the comma-join SQL formulations of the
        # paper's workloads into hash joins.
        if child.kind in ("cross", "inner") and refs:
            equi = _as_equi_pair(conjunct, left_slots, right_slots)
            if equi is not None:
                return lp.LogicalJoin(
                    "inner", child.left, child.right,
                    child.equi_keys + [equi], child.residual,
                    child.output,
                )
            if refs <= (left_slots | right_slots):
                residual = (
                    conjunct
                    if child.residual is None
                    else b.BoundBinary(
                        "and", child.residual, conjunct, BOOLEAN
                    )
                )
                return lp.LogicalJoin(
                    "inner", child.left, child.right, child.equi_keys,
                    residual, child.output,
                )
        return None

    if isinstance(child, (lp.LogicalSort, lp.LogicalDistinct)):
        grandchild = child.children()[0]
        inner = _try_push(conjunct, grandchild)
        if inner is None:
            inner = lp.LogicalFilter(grandchild, conjunct)
        return child.replace_children([inner])

    if isinstance(child, lp.LogicalAggregate):
        # Only conjuncts over group-key slots may move below (they are
        # functions of single input rows); aggregates depend on the
        # whole input — same argument as for analytics operators.
        refs = conjunct.referenced_slots()
        group_mapping = {
            slot: expr
            for slot, expr in zip(child.group_slots, child.group_exprs)
        }
        if not refs or not refs <= set(group_mapping):
            return None
        rewritten = substitute_slots(conjunct, group_mapping)
        inner = _try_push(rewritten, child.child)
        if inner is None:
            inner = lp.LogicalFilter(child.child, rewritten)
        return child.replace_children([inner])

    if isinstance(child, lp.LogicalSetOp) and child.op in (
        "union", "union_all"
    ):
        # Rewrite output slots to each branch's slots positionally and
        # push into both branches.
        new_children = []
        for branch in (child.left, child.right):
            mapping = {
                out.slot: b.BoundColumnRef(src.slot, src.sql_type, src.name)
                for out, src in zip(child.output, branch.output)
            }
            rewritten = substitute_slots(conjunct, mapping)
            inner = _try_push(rewritten, branch)
            if inner is None:
                inner = lp.LogicalFilter(branch, rewritten)
            new_children.append(inner)
        return child.replace_children(new_children)

    # LogicalScan / Values / Limit / TableFunction / Iterate /
    # RecursiveCTE / WorkingTableRef: the filter stays above. For the
    # analytical operators this is the section 5.2 rule, for LIMIT it is
    # a semantic requirement, for scans there is simply nothing deeper.
    return None


def _as_equi_pair(
    conjunct: b.BoundExpr,
    left_slots: set[str],
    right_slots: set[str],
) -> Optional[tuple[b.BoundExpr, b.BoundExpr]]:
    """An equality conjunct with one operand per join side, oriented as
    (left_key, right_key); None otherwise."""
    if not (
        isinstance(conjunct, b.BoundBinary) and conjunct.op == "="
    ):
        return None
    lrefs = conjunct.left.referenced_slots()
    rrefs = conjunct.right.referenced_slots()
    if not lrefs or not rrefs:
        return None
    if lrefs <= left_slots and rrefs <= right_slots:
        return (conjunct.left, conjunct.right)
    if lrefs <= right_slots and rrefs <= left_slots:
        return (conjunct.right, conjunct.left)
    return None


def _is_cheap(expr: b.BoundExpr) -> bool:
    if isinstance(expr, (b.BoundColumnRef, b.BoundLiteral, b.BoundParam)):
        return True
    if isinstance(expr, b.BoundCast):
        return _is_cheap(expr.operand)
    return False


# ---------------------------------------------------------------------------
# column pruning
# ---------------------------------------------------------------------------


def prune_columns(plan: lp.LogicalPlan) -> lp.LogicalPlan:
    """Trim base-table scans to the columns consumed above them."""
    required = _collect_required(plan, set())
    return _apply_pruning(plan, required)


def _collect_required(
    plan: lp.LogicalPlan, needed_from_above: set[str]
) -> set[str]:
    """All slots consumed anywhere in the plan (a global set is
    sufficient because slots are unique per statement)."""
    from ..sql.binder import _plan_expressions

    required = set(needed_from_above)
    stack = [plan]
    roots_seen = set()
    while stack:
        node = stack.pop()
        if id(node) in roots_seen:
            continue
        roots_seen.add(id(node))
        for expr in _plan_expressions(node):
            required |= _expr_required(expr)
        # Filters/sorts/limits/joins merely forward columns — they do
        # not require them, so scans below can shed unused ones. Set
        # operations and the iterative/analytical operators map columns
        # positionally and keep their full inputs.
        if isinstance(node, lp.LogicalSetOp):
            required |= set(node.left.output_slots())
            required |= set(node.right.output_slots())
        if isinstance(
            node,
            (
                lp.LogicalRecursiveCTE,
                lp.LogicalIterate,
                lp.LogicalTableFunction,
            ),
        ):
            for child in node.children():
                required |= set(child.output_slots())
        stack.extend(node.children())
    required |= set(plan.output_slots())
    return required


def _expr_required(expr: b.BoundExpr) -> set[str]:
    slots = expr.referenced_slots()
    # Subquery plans may reference outer slots through params — those
    # slots are required too; and their internal scans are pruned when
    # the subplan itself is optimized (conservative: require everything
    # a subquery touches from its own scope).
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, b.BoundSubquery):
            slots |= set(node.outer_slots)
        stack.extend(node.children())
    return slots


def _apply_pruning(
    plan: lp.LogicalPlan, required: set[str]
) -> lp.LogicalPlan:
    new_children = [
        _apply_pruning(child, required) for child in plan.children()
    ]
    plan = plan.replace_children(new_children)
    if isinstance(plan, lp.LogicalScan):
        kept = [c for c in plan.output if c.slot in required]
        if not kept:
            kept = [plan.output[0]]  # keep one column for the row count
        if len(kept) != len(plan.output):
            return lp.LogicalScan(plan.table_name, kept)
    if isinstance(plan, lp.LogicalJoin):
        # The join's static output list must track its (possibly
        # pruned) children.
        output = list(plan.left.output) + list(plan.right.output)
        if [c.slot for c in output] != [c.slot for c in plan.output]:
            return lp.LogicalJoin(
                plan.kind, plan.left, plan.right, plan.equi_keys,
                plan.residual, output,
            )
    return plan


# ---------------------------------------------------------------------------
# join side selection
# ---------------------------------------------------------------------------


def choose_join_sides(
    plan: lp.LogicalPlan, estimator: CardinalityEstimator
) -> lp.LogicalPlan:
    """For inner equi-joins, make the smaller input the build (right)
    side. LEFT joins are pinned: the probe side must stay left."""
    plan = plan.replace_children(
        [choose_join_sides(c, estimator) for c in plan.children()]
    )
    if (
        isinstance(plan, lp.LogicalJoin)
        and plan.kind == "inner"
        and plan.equi_keys
    ):
        left_rows = estimator.estimate(plan.left)
        right_rows = estimator.estimate(plan.right)
        if left_rows < right_rows:
            swapped_keys = [(rk, lk) for lk, rk in plan.equi_keys]
            return lp.LogicalJoin(
                "inner",
                plan.right,
                plan.left,
                swapped_keys,
                plan.residual,
                plan.output,
            )
    return plan


# ---------------------------------------------------------------------------
# limit pushdown
# ---------------------------------------------------------------------------


def push_down_limits(plan: lp.LogicalPlan, on_push=None) -> lp.LogicalPlan:
    """Sink LIMIT toward the data where row-preservation allows it.

    * ``Limit(Project(x))`` relocates below the projection (1:1
      operator) — ``Project(Limit(x))`` — which also creates the
      Sort+Limit adjacency the planner fuses into a top-N sort when the
      projection sat between ORDER BY and LIMIT;
    * ``Limit k OFFSET o`` above a **left outer** join copies
      ``Limit k+o`` onto the streaming (left / probe) side: every
      probe row produces at least one output row, so ``k+o`` probe rows
      bound the output. The outer limit stays for exactness;
    * ``Limit k OFFSET o`` above **UNION ALL** copies ``Limit k+o``
      into both branches (bag concatenation; the outer limit trims).

    Filters, aggregates, distinct, inner joins, and the ordered set
    operations are not row-preserving, so the limit stops above them.
    ``on_push`` is called once per applied rewrite (metrics hook).
    """
    plan = plan.replace_children(
        [push_down_limits(c, on_push) for c in plan.children()]
    )
    if not isinstance(plan, lp.LogicalLimit) or plan.limit is None:
        return plan
    child = plan.child
    cap = plan.limit + (plan.offset or 0)

    if isinstance(child, lp.LogicalProject):
        if on_push is not None:
            on_push()
        inner = push_down_limits(
            lp.LogicalLimit(child.child, plan.limit, plan.offset or 0),
            on_push,
        )
        return lp.LogicalProject(inner, child.exprs, child.output)

    if (
        isinstance(child, lp.LogicalJoin)
        and child.kind == "left"
        and not _has_limit_cap(child.left, cap)
    ):
        if on_push is not None:
            on_push()
        capped = push_down_limits(
            lp.LogicalLimit(child.left, cap, 0), on_push
        )
        return lp.LogicalLimit(
            lp.LogicalJoin(
                child.kind,
                capped,
                child.right,
                child.equi_keys,
                child.residual,
                child.output,
            ),
            plan.limit,
            plan.offset,
        )

    if (
        isinstance(child, lp.LogicalSetOp)
        and child.op == "union_all"
        and not (
            _has_limit_cap(child.left, cap)
            and _has_limit_cap(child.right, cap)
        )
    ):
        if on_push is not None:
            on_push()
        left = push_down_limits(
            lp.LogicalLimit(child.left, cap, 0), on_push
        )
        right = push_down_limits(
            lp.LogicalLimit(child.right, cap, 0), on_push
        )
        return lp.LogicalLimit(
            lp.LogicalSetOp(child.op, left, right, child.output),
            plan.limit,
            plan.offset,
        )
    return plan


def _has_limit_cap(plan: lp.LogicalPlan, cap: int) -> bool:
    """True when ``plan`` is already limited to ``cap`` rows or fewer —
    the idempotence guard that keeps re-optimization (plan-cache epoch
    bumps re-run the rules) from stacking redundant limits."""
    return (
        isinstance(plan, lp.LogicalLimit)
        and plan.limit is not None
        and plan.offset == 0
        and plan.limit <= cap
    )


# ---------------------------------------------------------------------------
# constant folding
# ---------------------------------------------------------------------------


def fold_constants(plan: lp.LogicalPlan) -> lp.LogicalPlan:
    """Evaluate literal-only arithmetic/comparison subtrees at plan time."""
    plan = plan.replace_children(
        [fold_constants(c) for c in plan.children()]
    )
    if isinstance(plan, lp.LogicalFilter):
        return lp.LogicalFilter(plan.child, _fold(plan.predicate))
    if isinstance(plan, lp.LogicalProject):
        return lp.LogicalProject(
            plan.child, [_fold(e) for e in plan.exprs], plan.output
        )
    return plan


def _fold(expr: b.BoundExpr) -> b.BoundExpr:
    if isinstance(expr, b.BoundBinary):
        left = _fold(expr.left)
        right = _fold(expr.right)
        expr = replace(expr, left=left, right=right)
        if isinstance(left, b.BoundLiteral) and isinstance(
            right, b.BoundLiteral
        ):
            folded = _fold_binary(expr.op, left.value, right.value)
            if folded is not _NOT_FOLDED:
                return b.BoundLiteral(folded, expr.sql_type)
        return expr
    if isinstance(expr, b.BoundUnary):
        operand = _fold(expr.operand)
        expr = replace(expr, operand=operand)
        if isinstance(operand, b.BoundLiteral):
            if expr.op == "-" and operand.value is not None:
                return b.BoundLiteral(-operand.value, expr.sql_type)
            if expr.op == "not" and operand.value is not None:
                return b.BoundLiteral(
                    not operand.value, expr.sql_type
                )
        return expr
    if isinstance(expr, b.BoundCast):
        operand = _fold(expr.operand)
        return replace(expr, operand=operand)
    return expr


_NOT_FOLDED = object()


def _fold_binary(op: str, left: object, right: object):
    # Kleene logic folds differently from strict NULL propagation.
    if op == "and":
        if left is False or right is False:
            return False
        if left is None or right is None:
            return None
        return bool(left) and bool(right)
    if op == "or":
        if left is True or right is True:
            return True
        if left is None or right is None:
            return None
        return bool(left) or bool(right)
    if left is None or right is None:
        return None
    try:
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                return _NOT_FOLDED  # keep runtime error semantics
            if isinstance(left, int) and isinstance(right, int):
                quotient = left / right
                return int(quotient) if quotient >= 0 else -int(-quotient)
            return left / right
        if op == "=":
            return left == right
        if op == "<>":
            return left != right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
        if op == "and":
            return bool(left) and bool(right)
        if op == "or":
            return bool(left) or bool(right)
    except Exception:  # noqa: BLE001 - never fail a plan on folding
        return _NOT_FOLDED
    return _NOT_FOLDED
