"""UDF registration and the table-UDF operator adapter."""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from ..errors import BindError, UDFError
from ..plan.logical import LogicalTableFunction, PlanColumn
from ..storage.column import Column, ColumnBatch
from ..types import SQLType
from ..analytics.registry import OperatorDescriptor


@dataclass(frozen=True)
class ScalarUDF:
    """A registered scalar UDF: a Python callable plus its declared
    return type. Arity is taken from the function signature unless
    overridden."""

    name: str
    func: Callable
    return_type: SQLType
    arity: Optional[int] = None

    def check_arity(self, count: int) -> None:
        if self.arity is not None and count != self.arity:
            raise BindError(
                f"UDF {self.name}() takes {self.arity} arguments, "
                f"got {count}"
            )


@dataclass(frozen=True)
class TableUDF:
    """A registered table UDF: takes scalar arguments, returns an
    iterable of row tuples matching ``output_schema``."""

    name: str
    func: Callable
    output_schema: list[tuple[str, SQLType]]


class TableUDFDescriptor(OperatorDescriptor):
    """Adapts a :class:`TableUDF` to the operator-registry protocol so it
    is callable in FROM, like the built-in analytics operators — the
    paper's point that UDFs, SQL and operators share one syntax."""

    def __init__(self, udf: TableUDF):
        self.name = udf.name
        self._udf = udf

    def bind(self, binder, func, parent_scope, ctes) -> LogicalTableFunction:
        params = []
        for i, arg in enumerate(func.args):
            if arg.scalar is None:
                raise BindError(
                    f"table UDF {self.name}() takes scalar arguments only "
                    f"(argument {i + 1})"
                )
            params.append(
                binder.constant_scalar(arg.scalar, f"argument {i + 1}")
            )
        output = [
            PlanColumn(name, binder.fresh_expr_slot(), sql_type)
            for name, sql_type in self._udf.output_schema
        ]
        return LogicalTableFunction(
            name=self.name,
            inputs=[],
            lambdas={},
            params=params,
            output=output,
        )

    def estimate_rows(self, node, input_estimates) -> float:
        return 100.0  # black box: the optimizer cannot know (section 4.1)

    def run(self, node, inputs, ctx, eval_ctx) -> ColumnBatch:
        try:
            rows = list(self._udf.func(*node.params))
        except Exception as exc:  # noqa: BLE001 - sandbox boundary
            raise UDFError(
                f"table UDF {self.name!r} raised "
                f"{type(exc).__name__}: {exc}"
            ) from exc
        columns = {}
        for i, (name, sql_type) in enumerate(self._udf.output_schema):
            columns[name] = Column.from_values(
                [row[i] for row in rows], sql_type
            )
        return ColumnBatch(columns)


class UDFRegistry:
    """Holds scalar UDFs; table UDFs are forwarded into the analytics
    operator registry the database composes."""

    def __init__(self) -> None:
        self._scalars: dict[str, ScalarUDF] = {}
        self._tables: dict[str, TableUDF] = {}

    def register_scalar(
        self,
        name: str,
        func: Callable,
        return_type: SQLType,
        arity: Optional[int] = None,
    ) -> ScalarUDF:
        if arity is None:
            try:
                signature = inspect.signature(func)
                if all(
                    p.kind
                    in (
                        inspect.Parameter.POSITIONAL_ONLY,
                        inspect.Parameter.POSITIONAL_OR_KEYWORD,
                    )
                    for p in signature.parameters.values()
                ):
                    arity = len(signature.parameters)
            except (TypeError, ValueError):
                arity = None
        udf = ScalarUDF(name.lower(), func, return_type, arity)
        self._scalars[udf.name] = udf
        return udf

    def register_table(
        self,
        name: str,
        func: Callable,
        output_schema: Sequence[tuple[str, SQLType]],
    ) -> TableUDF:
        udf = TableUDF(name.lower(), func, list(output_schema))
        self._tables[udf.name] = udf
        return udf

    def lookup_scalar(self, name: str) -> Optional[ScalarUDF]:
        return self._scalars.get(name.lower())

    def lookup_table(self, name: str) -> Optional[TableUDF]:
        return self._tables.get(name.lower())

    def scalar_names(self) -> list[str]:
        return sorted(self._scalars)

    def table_names(self) -> list[str]:
        return sorted(self._tables)
