"""User-defined functions — the paper's layer 2.

UDFs execute inside the database but as black boxes: the optimizer can
not inspect, vectorise, or reorder them (section 4.1). Scalar UDFs are
callable from any SQL expression; table UDFs appear in FROM like
analytics operators but run row-at-a-time Python.
"""

from .registry import ScalarUDF, TableUDF, UDFRegistry

__all__ = ["ScalarUDF", "TableUDF", "UDFRegistry"]
