"""Token kinds and the keyword table for the SQL lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TokenKind(enum.Enum):
    KEYWORD = "KEYWORD"
    IDENT = "IDENT"
    NUMBER = "NUMBER"
    STRING = "STRING"
    OPERATOR = "OPERATOR"
    LPAREN = "LPAREN"
    RPAREN = "RPAREN"
    COMMA = "COMMA"
    DOT = "DOT"
    SEMICOLON = "SEMICOLON"
    LAMBDA = "LAMBDA"  # the λ sign or the LAMBDA keyword
    PARAM = "PARAM"  # a ? placeholder
    EOF = "EOF"


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (1-based)."""

    kind: TokenKind
    text: str
    value: object = None
    line: int = 0
    column: int = 0

    def is_keyword(self, *names: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text in names

    def __repr__(self) -> str:
        return f"Token({self.kind.name}, {self.text!r})"


#: Reserved words. Matching is case-insensitive; tokens store the
#: upper-cased spelling. Non-reserved function names (SUM, KMEANS, ...)
#: deliberately stay ordinary identifiers so they can also name columns.
KEYWORDS = frozenset(
    {
        "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER",
        "LIMIT", "OFFSET", "AS", "ON", "USING", "JOIN", "INNER", "LEFT",
        "RIGHT", "FULL", "OUTER", "CROSS", "AND", "OR", "NOT", "IN",
        "IS", "NULL", "TRUE", "FALSE", "BETWEEN", "LIKE", "EXISTS",
        "CASE", "WHEN", "THEN", "ELSE", "END", "CAST", "DISTINCT", "ALL",
        "UNION", "INTERSECT", "EXCEPT", "WITH", "RECURSIVE", "VALUES",
        "INSERT", "INTO", "UPDATE", "SET", "DELETE", "CREATE", "TABLE",
        "DROP", "IF", "ASC", "DESC", "ITERATE", "LAMBDA", "BEGIN",
        "COMMIT", "ROLLBACK", "TRANSACTION", "PRIMARY", "DEFAULT",
        "NULLS", "FIRST", "LAST", "EXPLAIN", "OVER", "PARTITION",
    }
)

#: Multi-character operators, longest match first.
MULTI_CHAR_OPERATORS = ("<=", ">=", "<>", "!=", "||")

SINGLE_CHAR_OPERATORS = frozenset("+-*/%^=<>")
