"""Recursive-descent SQL parser.

Grammar highlights beyond the usual SELECT core:

* ``WITH [RECURSIVE] name [(cols)] AS (query), ...`` common table
  expressions, including the paper's appending-recursion baseline;
* ``ITERATE((init), (step), (stop))`` in FROM — the paper's non-appending
  iteration construct (section 5.1, Listing 1);
* table functions in FROM taking subqueries, lambda expressions, and
  scalars as arguments — the analytics operators of section 6
  (``KMEANS``, ``PAGERANK``, ``NAIVE_BAYES_TRAIN`` ...);
* lambda expressions ``λ(a, b) body`` / ``LAMBDA(a, b) body``
  (section 7, Listing 3).

Expression precedence, loosest first::

    OR < AND < NOT < comparison/IS/IN/BETWEEN/LIKE < || < +,- < *,/,% < ^
    < unary -,+ < postfix/primary
"""

from __future__ import annotations

from typing import Sequence

from ..errors import ParseError
from . import ast
from .lexer import tokenize
from .tokens import Token, TokenKind

_COMPARISON_OPS = {"=", "<>", "!=", "<", "<=", ">", ">="}


class Parser:
    """Parses a token stream into AST statements.

    ``params`` supplies values for ``?`` placeholders positionally; each
    placeholder becomes a plain literal during parsing, so parameter
    values can never be interpreted as SQL (injection-safe by
    construction).
    """

    def __init__(
        self,
        text: str,
        params: "Sequence[object] | None" = None,
        parameterize: bool = False,
    ):
        self.tokens = tokenize(text)
        self.pos = 0
        self._params = list(params) if params is not None else None
        self._next_param = 0
        self._parameterize = parameterize

    def _take_param(self) -> object:
        if self._params is None:
            raise self._error(
                "query contains ? placeholders but no parameters were "
                "supplied"
            )
        if self._next_param >= len(self._params):
            raise self._error(
                f"query has more ? placeholders than the "
                f"{len(self._params)} parameter(s) supplied"
            )
        value = self._params[self._next_param]
        self._next_param += 1
        return value

    def check_params_consumed(self) -> None:
        if self._params is not None and self._next_param < len(
            self._params
        ):
            raise ParseError(
                f"{len(self._params)} parameter(s) supplied but only "
                f"{self._next_param} ? placeholder(s) found"
            )

    # -- token helpers -------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        idx = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[idx]

    def _advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind is not TokenKind.EOF:
            self.pos += 1
        return token

    def _error(self, message: str) -> ParseError:
        token = self._peek()
        return ParseError(message, token.line, token.column)

    def _at_keyword(self, *names: str) -> bool:
        return self._peek().is_keyword(*names)

    def _accept_keyword(self, *names: str) -> bool:
        if self._at_keyword(*names):
            self._advance()
            return True
        return False

    def _expect_keyword(self, name: str) -> Token:
        if not self._at_keyword(name):
            raise self._error(f"expected {name}, found {self._peek().text!r}")
        return self._advance()

    def _accept(self, kind: TokenKind) -> Token | None:
        if self._peek().kind is kind:
            return self._advance()
        return None

    def _expect(self, kind: TokenKind, what: str) -> Token:
        token = self._accept(kind)
        if token is None:
            raise self._error(
                f"expected {what}, found {self._peek().text!r}"
            )
        return token

    def _accept_operator(self, *ops: str) -> Token | None:
        token = self._peek()
        if token.kind is TokenKind.OPERATOR and token.text in ops:
            return self._advance()
        return None

    def _expect_identifier(self, what: str = "identifier") -> str:
        token = self._peek()
        if token.kind is TokenKind.IDENT:
            self._advance()
            return token.text
        # Allow a handful of non-reserved-looking keywords as identifiers
        # in alias position (none currently), otherwise fail.
        raise self._error(f"expected {what}, found {token.text!r}")

    # -- entry points -------------------------------------------------------------

    def parse_statements(self) -> list[ast.Statement]:
        """Parse a script of one or more ``;``-separated statements."""
        statements: list[ast.Statement] = []
        while True:
            while self._accept(TokenKind.SEMICOLON):
                pass
            if self._peek().kind is TokenKind.EOF:
                return statements
            statements.append(self.parse_statement())

    def parse_statement(self) -> ast.Statement:
        """Parse exactly one statement (not consuming a trailing ``;``)."""
        token = self._peek()
        if token.is_keyword("SELECT", "WITH", "VALUES"):
            return self.parse_select_statement()
        if token.is_keyword("EXPLAIN"):
            self._advance()
            return ast.Explain(self.parse_select_statement())
        if token.is_keyword("CREATE"):
            return self._parse_create()
        if token.is_keyword("DROP"):
            return self._parse_drop()
        if token.is_keyword("INSERT"):
            return self._parse_insert()
        if token.is_keyword("UPDATE"):
            return self._parse_update()
        if token.is_keyword("DELETE"):
            return self._parse_delete()
        if token.is_keyword("BEGIN"):
            self._advance()
            self._accept_keyword("TRANSACTION")
            return ast.BeginTransaction()
        if token.is_keyword("COMMIT"):
            self._advance()
            self._accept_keyword("TRANSACTION")
            return ast.CommitTransaction()
        if token.is_keyword("ROLLBACK"):
            self._advance()
            self._accept_keyword("TRANSACTION")
            return ast.RollbackTransaction()
        raise self._error(f"unexpected start of statement: {token.text!r}")

    # -- DDL / DML ----------------------------------------------------------------

    def _parse_create(self) -> ast.CreateTable:
        self._expect_keyword("CREATE")
        self._expect_keyword("TABLE")
        if_not_exists = False
        if self._accept_keyword("IF"):
            self._expect_keyword("NOT")
            self._expect_keyword("EXISTS")
            if_not_exists = True
        name = self._expect_identifier("table name")
        if self._accept_keyword("AS"):
            query = self.parse_select_statement()
            return ast.CreateTable(
                name=name, if_not_exists=if_not_exists, as_query=query
            )
        self._expect(TokenKind.LPAREN, "(")
        columns = [self._parse_column_def()]
        while self._accept(TokenKind.COMMA):
            columns.append(self._parse_column_def())
        self._expect(TokenKind.RPAREN, ")")
        return ast.CreateTable(
            name=name, columns=columns, if_not_exists=if_not_exists
        )

    def _parse_column_def(self) -> ast.ColumnDef:
        name = self._expect_identifier("column name")
        type_name = self._parse_type_name()
        # Consume "DOUBLE PRECISION"-style two-word types.
        if type_name == "double" and self._peek().kind is TokenKind.IDENT \
                and self._peek().text == "precision":
            self._advance()
        width = None
        if self._accept(TokenKind.LPAREN):
            width_token = self._expect(TokenKind.NUMBER, "type width")
            width = int(width_token.value)  # type: ignore[arg-type]
            self._expect(TokenKind.RPAREN, ")")
        not_null = False
        while True:
            if self._accept_keyword("NOT"):
                self._expect_keyword("NULL")
                not_null = True
            elif self._accept_keyword("PRIMARY"):
                # KEY is deliberately not reserved (it is a natural
                # column name); match it as an identifier here.
                word = self._expect_identifier("KEY")
                if word != "key":
                    raise self._error("expected KEY after PRIMARY")
                not_null = True
            elif self._accept_keyword("NULL"):
                pass
            else:
                break
        return ast.ColumnDef(
            name=name, type_name=type_name, width=width, not_null=not_null
        )

    def _parse_drop(self) -> ast.DropTable:
        self._expect_keyword("DROP")
        self._expect_keyword("TABLE")
        if_exists = False
        if self._accept_keyword("IF"):
            self._expect_keyword("EXISTS")
            if_exists = True
        name = self._expect_identifier("table name")
        return ast.DropTable(name=name, if_exists=if_exists)

    def _parse_insert(self) -> ast.Insert:
        self._expect_keyword("INSERT")
        self._expect_keyword("INTO")
        table = self._expect_identifier("table name")
        columns = None
        if self._peek().kind is TokenKind.LPAREN:
            self._advance()
            columns = [self._expect_identifier("column name")]
            while self._accept(TokenKind.COMMA):
                columns.append(self._expect_identifier("column name"))
            self._expect(TokenKind.RPAREN, ")")
        if self._accept_keyword("VALUES"):
            rows = [self._parse_value_row()]
            while self._accept(TokenKind.COMMA):
                rows.append(self._parse_value_row())
            return ast.Insert(table=table, columns=columns, rows=rows)
        query = self.parse_select_statement()
        return ast.Insert(table=table, columns=columns, query=query)

    def _parse_update(self) -> ast.Update:
        self._expect_keyword("UPDATE")
        table = self._expect_identifier("table name")
        self._expect_keyword("SET")
        assignments = [self._parse_assignment()]
        while self._accept(TokenKind.COMMA):
            assignments.append(self._parse_assignment())
        where = None
        if self._accept_keyword("WHERE"):
            where = self.parse_expression()
        return ast.Update(table=table, assignments=assignments, where=where)

    def _parse_assignment(self) -> tuple[str, ast.Expr]:
        column = self._expect_identifier("column name")
        if self._accept_operator("=") is None:
            raise self._error("expected = in SET assignment")
        return column, self.parse_expression()

    def _parse_delete(self) -> ast.Delete:
        self._expect_keyword("DELETE")
        self._expect_keyword("FROM")
        table = self._expect_identifier("table name")
        where = None
        if self._accept_keyword("WHERE"):
            where = self.parse_expression()
        return ast.Delete(table=table, where=where)

    # -- SELECT -----------------------------------------------------------------

    def parse_select_statement(self) -> ast.SelectStatement:
        ctes: list[ast.CommonTableExpr] = []
        if self._accept_keyword("WITH"):
            recursive = self._accept_keyword("RECURSIVE")
            while True:
                ctes.append(self._parse_cte(recursive))
                if not self._accept(TokenKind.COMMA):
                    break
        body = self._parse_query_body()
        order_by: list[ast.OrderItem] = []
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            while True:
                order_by.append(self._parse_order_item())
                if not self._accept(TokenKind.COMMA):
                    break
        limit = offset = None
        if self._accept_keyword("LIMIT"):
            limit = self.parse_expression()
        if self._accept_keyword("OFFSET"):
            offset = self.parse_expression()
        return ast.SelectStatement(
            body=body, ctes=ctes, order_by=order_by, limit=limit,
            offset=offset,
        )

    def _parse_cte(self, recursive: bool) -> ast.CommonTableExpr:
        name = self._expect_identifier("CTE name")
        column_names = None
        if self._accept(TokenKind.LPAREN):
            column_names = [self._expect_identifier("column name")]
            while self._accept(TokenKind.COMMA):
                column_names.append(self._expect_identifier("column name"))
            self._expect(TokenKind.RPAREN, ")")
        self._expect_keyword("AS")
        self._expect(TokenKind.LPAREN, "(")
        query = self.parse_select_statement()
        self._expect(TokenKind.RPAREN, ")")
        return ast.CommonTableExpr(
            name=name, query=query, column_names=column_names,
            recursive=recursive,
        )

    def _parse_order_item(self) -> ast.OrderItem:
        expr = self.parse_expression()
        descending = False
        if self._accept_keyword("ASC"):
            descending = False
        elif self._accept_keyword("DESC"):
            descending = True
        nulls_last = None
        if self._accept_keyword("NULLS"):
            if self._accept_keyword("FIRST"):
                nulls_last = False
            else:
                self._expect_keyword("LAST")
                nulls_last = True
        return ast.OrderItem(expr, descending, nulls_last)

    def _parse_query_body(self):
        left = self._parse_query_term()
        while True:
            if self._accept_keyword("UNION"):
                op = "union_all" if self._accept_keyword("ALL") else "union"
                self._accept_keyword("DISTINCT")
            elif self._accept_keyword("INTERSECT"):
                op = "intersect"
            elif self._accept_keyword("EXCEPT"):
                op = "except"
            else:
                return left
            right = self._parse_query_term()
            left = ast.SetOp(op=op, left=left, right=right)

    def _parse_query_term(self):
        if self._accept(TokenKind.LPAREN):
            # A parenthesised term may be a full statement (WITH /
            # ORDER BY / LIMIT); desugar those to SELECT * over a
            # derived table so set operations stay core-shaped.
            statement = self.parse_select_statement()
            self._expect(TokenKind.RPAREN, ")")
            plain = (
                not statement.ctes
                and not statement.order_by
                and statement.limit is None
                and statement.offset is None
            )
            if plain:
                return statement.body
            return ast.SelectCore(
                items=[ast.SelectItem(ast.Star(), None)],
                from_clause=ast.SubqueryRef(query=statement),
            )
        if self._at_keyword("VALUES"):
            return self._parse_values_core()
        return self._parse_select_core()

    def _parse_values_core(self) -> ast.SelectCore:
        """``VALUES (...), (...)`` as a query body: desugars to a
        SelectCore over a ValuesRef with generated column names."""
        self._expect_keyword("VALUES")
        rows = [self._parse_value_row()]
        while self._accept(TokenKind.COMMA):
            rows.append(self._parse_value_row())
        width = len(rows[0])
        column_aliases = [f"column{i + 1}" for i in range(width)]
        values = ast.ValuesRef(
            rows=rows, alias="values", column_aliases=column_aliases
        )
        items = [
            ast.SelectItem(ast.ColumnRef(name), None)
            for name in column_aliases
        ]
        return ast.SelectCore(items=items, from_clause=values)

    def _parse_value_row(self) -> list[ast.Expr]:
        self._expect(TokenKind.LPAREN, "(")
        row = [self.parse_expression()]
        while self._accept(TokenKind.COMMA):
            row.append(self.parse_expression())
        self._expect(TokenKind.RPAREN, ")")
        return row

    def _parse_select_core(self) -> ast.SelectCore:
        self._expect_keyword("SELECT")
        distinct = False
        if self._accept_keyword("DISTINCT"):
            distinct = True
        else:
            self._accept_keyword("ALL")
        items = [self._parse_select_item()]
        while self._accept(TokenKind.COMMA):
            items.append(self._parse_select_item())
        from_clause = None
        if self._accept_keyword("FROM"):
            from_clause = self._parse_from()
        where = None
        if self._accept_keyword("WHERE"):
            where = self.parse_expression()
        group_by: list[ast.Expr] = []
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            group_by.append(self.parse_expression())
            while self._accept(TokenKind.COMMA):
                group_by.append(self.parse_expression())
        having = None
        if self._accept_keyword("HAVING"):
            having = self.parse_expression()
        return ast.SelectCore(
            items=items, from_clause=from_clause, where=where,
            group_by=group_by, having=having, distinct=distinct,
        )

    def _parse_select_item(self) -> ast.SelectItem:
        token = self._peek()
        if token.kind is TokenKind.OPERATOR and token.text == "*":
            self._advance()
            return ast.SelectItem(ast.Star(), None)
        if (
            token.kind is TokenKind.IDENT
            and self._peek(1).kind is TokenKind.DOT
            and self._peek(2).kind is TokenKind.OPERATOR
            and self._peek(2).text == "*"
        ):
            self._advance()
            self._advance()
            self._advance()
            return ast.SelectItem(ast.Star(table=token.text), None)
        expr = self.parse_expression()
        alias = None
        if self._accept_keyword("AS"):
            alias = self._parse_alias_name()
        elif self._peek().kind in (TokenKind.IDENT, TokenKind.STRING):
            alias = self._parse_alias_name()
        return ast.SelectItem(expr, alias)

    def _parse_alias_name(self) -> str:
        token = self._peek()
        if token.kind is TokenKind.IDENT:
            self._advance()
            return token.text
        if token.kind is TokenKind.STRING:
            # HyPer-style: SELECT 7 "x" — a string alias.
            self._advance()
            return token.value  # type: ignore[return-value]
        raise self._error("expected alias name")

    # -- FROM ----------------------------------------------------------------------

    def _parse_from(self) -> ast.TableExpr:
        left = self._parse_joined_table()
        while self._accept(TokenKind.COMMA):
            right = self._parse_joined_table()
            left = ast.Join(kind="cross", left=left, right=right)
        return left

    def _parse_joined_table(self) -> ast.TableExpr:
        left = self._parse_table_primary()
        while True:
            kind = None
            if self._accept_keyword("CROSS"):
                self._expect_keyword("JOIN")
                kind = "cross"
            elif self._accept_keyword("INNER"):
                self._expect_keyword("JOIN")
                kind = "inner"
            elif self._accept_keyword("LEFT"):
                self._accept_keyword("OUTER")
                self._expect_keyword("JOIN")
                kind = "left"
            elif self._at_keyword("JOIN"):
                self._advance()
                kind = "inner"
            else:
                return left
            right = self._parse_table_primary()
            condition = None
            using = None
            if kind != "cross":
                if self._accept_keyword("ON"):
                    condition = self.parse_expression()
                elif self._accept_keyword("USING"):
                    self._expect(TokenKind.LPAREN, "(")
                    using = [self._expect_identifier("column name")]
                    while self._accept(TokenKind.COMMA):
                        using.append(self._expect_identifier("column name"))
                    self._expect(TokenKind.RPAREN, ")")
                else:
                    raise self._error("expected ON or USING after JOIN")
            left = ast.Join(
                kind=kind, left=left, right=right, condition=condition,
                using=using,
            )

    def _parse_table_primary(self) -> ast.TableExpr:
        token = self._peek()
        if token.is_keyword("ITERATE"):
            if self._peek(1).kind is TokenKind.LPAREN:
                return self._parse_iterate()
            # Inside the construct's subqueries the working relation is
            # referenced by the name "iterate" (Listing 1).
            self._advance()
            alias, _ = self._parse_table_alias()
            return ast.TableRef(name="iterate", alias=alias)
        if token.kind is TokenKind.LPAREN:
            self._advance()
            if self._at_keyword("VALUES"):
                core = self._parse_values_core()
                self._expect(TokenKind.RPAREN, ")")
                values: ast.ValuesRef = core.from_clause  # type: ignore[assignment]
                alias, column_aliases = self._parse_table_alias()
                if alias:
                    values.alias = alias
                if column_aliases:
                    values.column_aliases = column_aliases
                return values
            query = self.parse_select_statement()
            self._expect(TokenKind.RPAREN, ")")
            alias, column_aliases = self._parse_table_alias()
            return ast.SubqueryRef(
                query=query, alias=alias, column_aliases=column_aliases
            )
        if token.kind is TokenKind.IDENT:
            if self._peek(1).kind is TokenKind.LPAREN:
                return self._parse_table_function()
            name = self._advance().text
            alias, _ = self._parse_table_alias()
            return ast.TableRef(name=name, alias=alias)
        raise self._error(f"expected table expression, found {token.text!r}")

    def _parse_table_alias(self) -> tuple[str | None, list[str] | None]:
        alias = None
        column_aliases = None
        if self._accept_keyword("AS"):
            alias = self._expect_identifier("alias")
        elif self._peek().kind is TokenKind.IDENT:
            alias = self._advance().text
        if alias is not None and self._peek().kind is TokenKind.LPAREN:
            self._advance()
            column_aliases = [self._expect_identifier("column alias")]
            while self._accept(TokenKind.COMMA):
                column_aliases.append(
                    self._expect_identifier("column alias")
                )
            self._expect(TokenKind.RPAREN, ")")
        return alias, column_aliases

    def _parse_iterate(self) -> ast.IterateRef:
        self._expect_keyword("ITERATE")
        self._expect(TokenKind.LPAREN, "(")
        init_query = self._parse_parenthesised_query()
        self._expect(TokenKind.COMMA, ",")
        step_query = self._parse_parenthesised_query()
        self._expect(TokenKind.COMMA, ",")
        stop_query = self._parse_parenthesised_query()
        self._expect(TokenKind.RPAREN, ")")
        alias, _ = self._parse_table_alias()
        return ast.IterateRef(
            init_query=init_query, step_query=step_query,
            stop_query=stop_query, alias=alias,
        )

    def _parse_parenthesised_query(self) -> ast.SelectStatement:
        self._expect(TokenKind.LPAREN, "(")
        query = self.parse_select_statement()
        self._expect(TokenKind.RPAREN, ")")
        return query

    def _parse_table_function(self) -> ast.TableFunction:
        name = self._advance().text
        self._expect(TokenKind.LPAREN, "(")
        args: list[ast.TableFunctionArg] = []
        if self._peek().kind is not TokenKind.RPAREN:
            args.append(self._parse_table_function_arg())
            while self._accept(TokenKind.COMMA):
                args.append(self._parse_table_function_arg())
        self._expect(TokenKind.RPAREN, ")")
        alias, _ = self._parse_table_alias()
        return ast.TableFunction(name=name, args=args, alias=alias)

    def _parse_table_function_arg(self) -> ast.TableFunctionArg:
        token = self._peek()
        if token.kind is TokenKind.LPAREN and self._peek(1).is_keyword(
            "SELECT", "WITH", "VALUES"
        ):
            query = self._parse_parenthesised_query()
            return ast.TableFunctionArg(query=query)
        if token.kind is TokenKind.LAMBDA:
            return ast.TableFunctionArg(lambda_expr=self._parse_lambda())
        return ast.TableFunctionArg(scalar=self.parse_expression())

    def _parse_lambda(self) -> ast.LambdaExpr:
        self._expect(TokenKind.LAMBDA, "lambda")
        self._expect(TokenKind.LPAREN, "(")
        params = [self._expect_identifier("lambda parameter")]
        while self._accept(TokenKind.COMMA):
            params.append(self._expect_identifier("lambda parameter"))
        self._expect(TokenKind.RPAREN, ")")
        body = self.parse_expression()
        return ast.LambdaExpr(params=params, body=body)

    # -- expressions ------------------------------------------------------------------

    def parse_expression(self) -> ast.Expr:
        return self._parse_or()

    def _parse_or(self) -> ast.Expr:
        left = self._parse_and()
        while self._accept_keyword("OR"):
            left = ast.Binary("or", left, self._parse_and())
        return left

    def _parse_and(self) -> ast.Expr:
        left = self._parse_not()
        while self._accept_keyword("AND"):
            left = ast.Binary("and", left, self._parse_not())
        return left

    def _parse_not(self) -> ast.Expr:
        if self._accept_keyword("NOT"):
            return ast.Unary("not", self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> ast.Expr:
        left = self._parse_concat()
        while True:
            op_token = self._accept_operator(*_COMPARISON_OPS)
            if op_token is not None:
                op = "<>" if op_token.text == "!=" else op_token.text
                left = ast.Binary(op, left, self._parse_concat())
                continue
            if self._at_keyword("IS"):
                self._advance()
                negated = bool(self._accept_keyword("NOT"))
                self._expect_keyword("NULL")
                left = ast.IsNull(left, negated)
                continue
            negated = False
            checkpoint = self.pos
            if self._accept_keyword("NOT"):
                negated = True
            if self._accept_keyword("IN"):
                left = self._parse_in_rhs(left, negated)
                continue
            if self._accept_keyword("BETWEEN"):
                low = self._parse_concat()
                self._expect_keyword("AND")
                high = self._parse_concat()
                left = ast.Between(left, low, high, negated)
                continue
            if self._accept_keyword("LIKE"):
                pattern = self._parse_concat()
                left = ast.Like(left, pattern, negated)
                continue
            if negated:
                self.pos = checkpoint  # the NOT belonged to someone else
            return left

    def _parse_in_rhs(self, operand: ast.Expr, negated: bool) -> ast.Expr:
        self._expect(TokenKind.LPAREN, "(")
        if self._at_keyword("SELECT", "WITH"):
            query = self.parse_select_statement()
            self._expect(TokenKind.RPAREN, ")")
            return ast.InSubquery(operand, query, negated)
        items = [self.parse_expression()]
        while self._accept(TokenKind.COMMA):
            items.append(self.parse_expression())
        self._expect(TokenKind.RPAREN, ")")
        return ast.InList(operand, items, negated)

    def _parse_concat(self) -> ast.Expr:
        left = self._parse_additive()
        while self._accept_operator("||"):
            left = ast.Binary("||", left, self._parse_additive())
        return left

    def _parse_additive(self) -> ast.Expr:
        left = self._parse_multiplicative()
        while True:
            token = self._accept_operator("+", "-")
            if token is None:
                return left
            left = ast.Binary(token.text, left, self._parse_multiplicative())

    def _parse_multiplicative(self) -> ast.Expr:
        left = self._parse_power()
        while True:
            token = self._accept_operator("*", "/", "%")
            if token is None:
                return left
            left = ast.Binary(token.text, left, self._parse_power())

    def _parse_power(self) -> ast.Expr:
        base = self._parse_unary()
        if self._accept_operator("^"):
            # Right-associative exponentiation.
            return ast.Binary("^", base, self._parse_power())
        return base

    def _parse_unary(self) -> ast.Expr:
        token = self._accept_operator("-", "+")
        if token is not None:
            operand = self._parse_unary()
            if token.text == "-":
                if isinstance(operand, ast.Literal) and isinstance(
                    operand.value, (int, float)
                ):
                    return ast.Literal(-operand.value)
                return ast.Unary("-", operand)
            return operand
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expr:
        token = self._peek()
        if token.kind is TokenKind.NUMBER:
            self._advance()
            return ast.Literal(token.value)
        if token.kind is TokenKind.STRING:
            self._advance()
            return ast.Literal(token.value)
        if token.is_keyword("NULL"):
            self._advance()
            return ast.Literal(None)
        if token.is_keyword("TRUE"):
            self._advance()
            return ast.Literal(True)
        if token.is_keyword("FALSE"):
            self._advance()
            return ast.Literal(False)
        if token.kind is TokenKind.PARAM:
            self._advance()
            if self._parameterize:
                index = self._next_param
                self._take_param()  # keep count validation identical
                return ast.Placeholder(index)
            return ast.Literal(self._take_param())
        if token.kind is TokenKind.LAMBDA:
            return self._parse_lambda()
        if token.is_keyword("CAST"):
            return self._parse_cast()
        if token.is_keyword("CASE"):
            return self._parse_case()
        if token.is_keyword("EXISTS"):
            self._advance()
            query = self._parse_parenthesised_query()
            return ast.Exists(query)
        if token.is_keyword("NOT"):
            # NOT EXISTS handled by _parse_not; direct path for safety.
            self._advance()
            return ast.Unary("not", self._parse_primary())
        if token.kind is TokenKind.LPAREN:
            self._advance()
            if self._at_keyword("SELECT", "WITH"):
                query = self.parse_select_statement()
                self._expect(TokenKind.RPAREN, ")")
                return ast.ScalarSubquery(query)
            expr = self.parse_expression()
            self._expect(TokenKind.RPAREN, ")")
            return expr
        if token.kind is TokenKind.IDENT:
            return self._parse_identifier_expression()
        if token.is_keyword("ITERATE"):
            # Column references qualified by the working relation,
            # e.g. "iterate.x" inside an ITERATE subquery.
            self._advance()
            if self._peek().kind is TokenKind.DOT:
                self._advance()
                column = self._expect_identifier("column name")
                return ast.ColumnRef(name=column, table="iterate")
            return ast.ColumnRef(name="iterate")
        raise self._error(f"unexpected token in expression: {token.text!r}")

    def _parse_cast(self) -> ast.Expr:
        self._expect_keyword("CAST")
        self._expect(TokenKind.LPAREN, "(")
        operand = self.parse_expression()
        self._expect_keyword("AS")
        type_name = self._parse_type_name()
        width = None
        if self._accept(TokenKind.LPAREN):
            width_token = self._expect(TokenKind.NUMBER, "type width")
            width = int(width_token.value)  # type: ignore[arg-type]
            self._expect(TokenKind.RPAREN, ")")
        self._expect(TokenKind.RPAREN, ")")
        return ast.Cast(operand, type_name, width)

    def _parse_type_name(self) -> str:
        token = self._peek()
        if token.kind is TokenKind.IDENT:
            self._advance()
            return token.text
        raise self._error("expected type name")

    def _parse_case(self) -> ast.Expr:
        self._expect_keyword("CASE")
        operand = None
        if not self._at_keyword("WHEN"):
            operand = self.parse_expression()
        whens: list[tuple[ast.Expr, ast.Expr]] = []
        while self._accept_keyword("WHEN"):
            condition = self.parse_expression()
            self._expect_keyword("THEN")
            result = self.parse_expression()
            whens.append((condition, result))
        if not whens:
            raise self._error("CASE requires at least one WHEN")
        else_result = None
        if self._accept_keyword("ELSE"):
            else_result = self.parse_expression()
        self._expect_keyword("END")
        return ast.Case(operand, whens, else_result)

    def _parse_identifier_expression(self) -> ast.Expr:
        name = self._advance().text
        if self._peek().kind is TokenKind.LPAREN:
            return self._parse_function_call(name)
        if self._peek().kind is TokenKind.DOT:
            self._advance()
            nxt = self._peek()
            if nxt.kind is TokenKind.OPERATOR and nxt.text == "*":
                self._advance()
                return ast.Star(table=name)
            column = self._expect_identifier("column name")
            return ast.ColumnRef(name=column, table=name)
        return ast.ColumnRef(name=name)

    def _parse_function_call(self, name: str) -> ast.Expr:
        self._expect(TokenKind.LPAREN, "(")
        distinct = bool(self._accept_keyword("DISTINCT"))
        args: list[ast.Expr] = []
        token = self._peek()
        if token.kind is TokenKind.OPERATOR and token.text == "*":
            self._advance()
            args.append(ast.Star())
        elif token.kind is not TokenKind.RPAREN:
            args.append(self.parse_expression())
            while self._accept(TokenKind.COMMA):
                args.append(self.parse_expression())
        self._expect(TokenKind.RPAREN, ")")
        if self._at_keyword("OVER"):
            if distinct:
                raise self._error(
                    "DISTINCT is not supported in window functions"
                )
            return self._parse_over(name.lower(), args)
        return ast.FunctionCall(name=name.lower(), args=args, distinct=distinct)

    def _parse_over(
        self, name: str, args: list[ast.Expr]
    ) -> ast.WindowFunction:
        self._expect_keyword("OVER")
        self._expect(TokenKind.LPAREN, "(")
        partition_by: list[ast.Expr] = []
        order_by: list[ast.OrderItem] = []
        if self._accept_keyword("PARTITION"):
            self._expect_keyword("BY")
            partition_by.append(self.parse_expression())
            while self._accept(TokenKind.COMMA):
                partition_by.append(self.parse_expression())
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            order_by.append(self._parse_order_item())
            while self._accept(TokenKind.COMMA):
                order_by.append(self._parse_order_item())
        self._expect(TokenKind.RPAREN, ")")
        return ast.WindowFunction(
            name=name, args=args, partition_by=partition_by,
            order_by=order_by,
        )


def parse_sql(
    text: str,
    params: Sequence[object] | None = None,
    parameterize: bool = False,
) -> list[ast.Statement]:
    """Parse a SQL script into a list of statements. ``params`` fills
    ``?`` placeholders positionally (injection-safe). With
    ``parameterize=True`` each placeholder stays a symbolic
    :class:`ast.Placeholder` (plan-cache mode) while the count checks
    against ``params`` behave exactly as in the default mode."""
    parser = Parser(text, params, parameterize=parameterize)
    statements = parser.parse_statements()
    parser.check_params_consumed()
    return statements


def parse_statement(
    text: str, params: Sequence[object] | None = None
) -> ast.Statement:
    """Parse exactly one statement; raises if the input holds more."""
    statements = parse_sql(text, params)
    if len(statements) != 1:
        raise ParseError(
            f"expected exactly one statement, found {len(statements)}"
        )
    return statements[0]
