"""Abstract syntax tree for the SQL dialect.

Plain dataclasses, produced by :mod:`repro.sql.parser` and consumed by
:mod:`repro.sql.binder`. Expression nodes and statement/query nodes live
side by side; nothing here is resolved — names are raw strings and types
are unknown until binding.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr:
    """Base class for expression nodes."""


@dataclass
class Literal(Expr):
    """A constant: number, string, boolean, or NULL (value None)."""

    value: object


@dataclass
class Placeholder(Expr):
    """A ``?`` parameter slot kept symbolic for plan caching.

    Only produced when the parser runs in ``parameterize`` mode; the
    default path substitutes parameter values as :class:`Literal` during
    parsing."""

    index: int


@dataclass
class ColumnRef(Expr):
    """A possibly qualified column reference ``[table.]name``."""

    name: str
    table: Optional[str] = None

    def __str__(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass
class Star(Expr):
    """``*`` or ``t.*`` in a select list or COUNT(*)."""

    table: Optional[str] = None


@dataclass
class Unary(Expr):
    """Unary operator: ``-x``, ``+x``, ``NOT x``."""

    op: str
    operand: Expr


@dataclass
class Binary(Expr):
    """Binary operator: arithmetic, comparison, AND/OR, ``||``, ``^``."""

    op: str
    left: Expr
    right: Expr


@dataclass
class FunctionCall(Expr):
    """A function application ``name(args)``.

    The binder decides whether this is a scalar built-in, an aggregate,
    or a registered UDF. ``distinct`` applies to aggregates
    (``COUNT(DISTINCT x)``).
    """

    name: str
    args: list[Expr]
    distinct: bool = False


@dataclass
class Cast(Expr):
    """``CAST(expr AS type)``."""

    operand: Expr
    type_name: str
    width: Optional[int] = None


@dataclass
class Case(Expr):
    """Searched or simple CASE expression."""

    operand: Optional[Expr]
    whens: list[tuple[Expr, Expr]]
    else_result: Optional[Expr]


@dataclass
class IsNull(Expr):
    """``expr IS [NOT] NULL``."""

    operand: Expr
    negated: bool = False


@dataclass
class InList(Expr):
    """``expr [NOT] IN (item, ...)``."""

    operand: Expr
    items: list[Expr]
    negated: bool = False


@dataclass
class InSubquery(Expr):
    """``expr [NOT] IN (SELECT ...)``."""

    operand: Expr
    query: "SelectStatement"
    negated: bool = False


@dataclass
class Exists(Expr):
    """``[NOT] EXISTS (SELECT ...)``."""

    query: "SelectStatement"
    negated: bool = False


@dataclass
class ScalarSubquery(Expr):
    """A parenthesised SELECT used as a scalar value."""

    query: "SelectStatement"


@dataclass
class Between(Expr):
    """``expr [NOT] BETWEEN low AND high``."""

    operand: Expr
    low: Expr
    high: Expr
    negated: bool = False


@dataclass
class Like(Expr):
    """``expr [NOT] LIKE pattern``."""

    operand: Expr
    pattern: Expr
    negated: bool = False


@dataclass
class WindowFunction(Expr):
    """``func(args) OVER (PARTITION BY ... ORDER BY ...)``.

    The default frame applies: the whole partition when there is no
    ORDER BY; RANGE UNBOUNDED PRECEDING .. CURRENT ROW (running values,
    peers share results) when there is one.
    """

    name: str
    args: list[Expr]
    partition_by: list[Expr]
    order_by: list["OrderItem"]


@dataclass
class LambdaExpr(Expr):
    """A lambda expression ``λ(a, b) body`` (paper section 7).

    ``params`` are tuple variables; inside ``body`` their attributes are
    referenced as ``a.x``. Input and output types are inferred at binding
    time from the variation point the lambda is plugged into.
    """

    params: list[str]
    body: Expr


# ---------------------------------------------------------------------------
# Query structure
# ---------------------------------------------------------------------------


@dataclass
class SelectItem:
    """One projection in a select list."""

    expr: Expr
    alias: Optional[str] = None


class TableExpr:
    """Base class for things that can appear in FROM."""


@dataclass
class TableRef(TableExpr):
    """A base table or CTE reference, optionally aliased."""

    name: str
    alias: Optional[str] = None


@dataclass
class SubqueryRef(TableExpr):
    """A derived table: ``(SELECT ...) AS alias(cols)``."""

    query: "SelectStatement"
    alias: Optional[str] = None
    column_aliases: Optional[list[str]] = None


@dataclass
class ValuesRef(TableExpr):
    """``(VALUES (...), (...)) AS alias(cols)``."""

    rows: list[list[Expr]]
    alias: Optional[str] = None
    column_aliases: Optional[list[str]] = None


@dataclass
class Join(TableExpr):
    """A binary join. ``kind`` is inner|left|cross."""

    kind: str
    left: TableExpr
    right: TableExpr
    condition: Optional[Expr] = None
    using: Optional[list[str]] = None


@dataclass
class IterateRef(TableExpr):
    """The paper's ITERATE construct (section 5.1, Listing 1).

    ``ITERATE((init), (step), (stop))``: a working relation named
    ``iterate`` is initialised from ``init``; each round replaces it with
    the result of ``step``; iteration ends when ``stop`` returns at least
    one row whose first column is true (or any row, for row-existence
    predicates). The final contents of the working relation are the result.
    """

    init_query: "SelectStatement"
    step_query: "SelectStatement"
    stop_query: "SelectStatement"
    alias: Optional[str] = None


@dataclass
class TableFunctionArg:
    """One argument to a table function: exactly one field is set."""

    query: Optional["SelectStatement"] = None
    lambda_expr: Optional[LambdaExpr] = None
    scalar: Optional[Expr] = None


@dataclass
class TableFunction(TableExpr):
    """An analytics operator or table UDF in FROM (Listing 2/3):
    ``KMEANS((SELECT ...), (SELECT ...), λ(a,b) ..., 3)``."""

    name: str
    args: list[TableFunctionArg]
    alias: Optional[str] = None


@dataclass
class OrderItem:
    """One ORDER BY key."""

    expr: Expr
    descending: bool = False
    nulls_last: Optional[bool] = None


@dataclass
class SelectCore:
    """A single SELECT block (no set ops / ORDER BY / LIMIT)."""

    items: list[SelectItem]
    from_clause: Optional[TableExpr] = None
    where: Optional[Expr] = None
    group_by: list[Expr] = field(default_factory=list)
    having: Optional[Expr] = None
    distinct: bool = False


@dataclass
class SetOp:
    """UNION [ALL] / INTERSECT / EXCEPT between two query bodies."""

    op: str  # "union" | "union_all" | "intersect" | "except"
    left: Union[SelectCore, "SetOp"]
    right: Union[SelectCore, "SetOp"]


@dataclass
class CommonTableExpr:
    """One CTE in a WITH clause."""

    name: str
    query: "SelectStatement"
    column_names: Optional[list[str]] = None
    recursive: bool = False


@dataclass
class SelectStatement:
    """A full query: WITH + body + ORDER BY + LIMIT/OFFSET."""

    body: Union[SelectCore, SetOp]
    ctes: list[CommonTableExpr] = field(default_factory=list)
    order_by: list[OrderItem] = field(default_factory=list)
    limit: Optional[Expr] = None
    offset: Optional[Expr] = None


# ---------------------------------------------------------------------------
# DML / DDL / transaction statements
# ---------------------------------------------------------------------------


@dataclass
class ColumnDef:
    """One column in CREATE TABLE."""

    name: str
    type_name: str
    width: Optional[int] = None
    not_null: bool = False


@dataclass
class CreateTable:
    name: str
    columns: list[ColumnDef] = field(default_factory=list)
    if_not_exists: bool = False
    as_query: Optional[SelectStatement] = None


@dataclass
class DropTable:
    name: str
    if_exists: bool = False


@dataclass
class Insert:
    table: str
    columns: Optional[list[str]]
    rows: Optional[list[list[Expr]]] = None
    query: Optional[SelectStatement] = None


@dataclass
class Update:
    table: str
    assignments: list[tuple[str, Expr]] = field(default_factory=list)
    where: Optional[Expr] = None


@dataclass
class Delete:
    table: str
    where: Optional[Expr] = None


@dataclass
class Explain:
    """``EXPLAIN <select>`` — returns the optimized plan as text."""

    query: SelectStatement


@dataclass
class BeginTransaction:
    pass


@dataclass
class CommitTransaction:
    pass


@dataclass
class RollbackTransaction:
    pass


Statement = Union[
    SelectStatement,
    Explain,
    CreateTable,
    DropTable,
    Insert,
    Update,
    Delete,
    BeginTransaction,
    CommitTransaction,
    RollbackTransaction,
]
