"""SQL front end: lexer, AST, parser, and binder.

The dialect is a substantial PostgreSQL-flavoured subset plus the paper's
extensions: the non-appending ``ITERATE`` table construct (section 5.1),
lambda expressions (section 7), and analytics table functions in ``FROM``
(section 6, Listing 2).
"""

from .lexer import Lexer, tokenize
from .parser import Parser, parse_sql, parse_statement

__all__ = ["Lexer", "tokenize", "Parser", "parse_sql", "parse_statement"]
