"""Semantic analysis: AST -> bound logical plan.

The binder resolves names against the catalog and scopes, infers and
coerces types, classifies function calls (scalar built-in / aggregate /
UDF), detects correlation, expands stars, desugars simple CASE, rewrites
aggregate queries into aggregate + post-projection, and binds the paper's
extensions:

* ``ITERATE`` (section 5.1) -> :class:`LogicalIterate`,
* ``WITH RECURSIVE`` -> :class:`LogicalRecursiveCTE`,
* analytics table functions with lambda arguments (sections 6, 7)
  -> :class:`LogicalTableFunction` via the analytics operator registry.

Slots: every relation instance gets a fresh scope id; its columns get
slots ``t{n}.{col}``. Expression outputs get slots ``e{n}``. Slots are
globally unique inside one statement, so batches never carry ambiguity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Protocol

from ..errors import BindError
from ..expr import bound as b
from ..plan import logical as lp
from ..storage.schema import TableSchema
from ..types import (
    BOOLEAN,
    DOUBLE,
    INTEGER,
    NULLTYPE,
    SQLType,
    TypeKind,
    VARCHAR,
    can_implicitly_cast,
    common_supertype,
    infer_literal_type,
    type_from_name,
)
from . import ast


class CatalogReader(Protocol):
    """What the binder needs from the environment."""

    def table_exists(self, name: str) -> bool: ...

    def schema_of(self, name: str) -> TableSchema: ...


@dataclass
class RelationBinding:
    """One relation visible in a scope."""

    alias: Optional[str]
    columns: list[lp.PlanColumn]

    def find(self, name: str) -> Optional[lp.PlanColumn]:
        lowered = name.lower()
        for col in self.columns:
            if col.name.lower() == lowered:
                return col
        return None


class Scope:
    """A name-resolution scope; chains to the parent for correlation."""

    def __init__(self, parent: Optional["Scope"] = None):
        self.parent = parent
        self.relations: list[RelationBinding] = []
        #: Outer slots referenced from within this scope's query
        #: (propagated upward so subquery nodes know their parameters).
        self.outer_refs: set[str] = set()
        #: For output scopes of plain (non-aggregate, non-distinct)
        #: SELECT cores: the FROM scope, so ORDER BY may reference
        #: non-projected columns via hidden sort columns.
        self.order_scope: Optional["Scope"] = None

    def add(self, binding: RelationBinding) -> None:
        if binding.alias is not None:
            lowered = binding.alias.lower()
            for existing in self.relations:
                if existing.alias and existing.alias.lower() == lowered:
                    raise BindError(
                        f"duplicate table alias {binding.alias!r}"
                    )
        self.relations.append(binding)

    def all_columns(self) -> list[lp.PlanColumn]:
        out: list[lp.PlanColumn] = []
        for rel in self.relations:
            out.extend(rel.columns)
        return out

    def resolve(
        self, name: str, table: Optional[str]
    ) -> tuple[lp.PlanColumn, bool]:
        """Resolve a column reference. Returns (column, is_outer)."""
        found = self._resolve_local(name, table)
        if found is not None:
            return found, False
        if self.parent is not None:
            col, _outer = self.parent.resolve(name, table)
            self.outer_refs.add(col.slot)
            return col, True
        target = f"{table}.{name}" if table else name
        raise BindError(f"column not found: {target!r}")

    def _resolve_local(
        self, name: str, table: Optional[str]
    ) -> Optional[lp.PlanColumn]:
        if table is not None:
            lowered = table.lower()
            for rel in self.relations:
                if rel.alias and rel.alias.lower() == lowered:
                    col = rel.find(name)
                    if col is None:
                        raise BindError(
                            f"column {name!r} not found in {table!r}"
                        )
                    return col
            return None
        matches = [
            col
            for rel in self.relations
            if (col := rel.find(name)) is not None
        ]
        if len(matches) > 1:
            raise BindError(f"ambiguous column reference: {name!r}")
        return matches[0] if matches else None


@dataclass
class _HiddenKey:
    """Marker: an ORDER BY key bound against the pre-projection scope."""

    expr: b.BoundExpr


@dataclass
class WorkingTableDef:
    """A name bound to an iterative operator's working relation."""

    key: str
    columns: list[tuple[str, SQLType]]  # (display name, type)


#: What a CTE name can resolve to while binding.
CTEDef = object  # LogicalPlan (inline) or WorkingTableDef


class Binder:
    """Binds statements; one instance per statement (slot counter state)."""

    def __init__(
        self,
        catalog: CatalogReader,
        udfs=None,
        analytics=None,
        param_types=None,
    ):
        self.catalog = catalog
        self.udfs = udfs  # UDFRegistry or None
        self.analytics = analytics  # OperatorRegistry or None
        #: SQL types for ast.Placeholder slots (plan-cache mode), by index.
        self.param_types = param_types
        self._scope_counter = 0
        self._expr_counter = 0
        self._iterate_counter = 0

    # -- slot helpers -----------------------------------------------------

    def fresh_scope_id(self) -> str:
        self._scope_counter += 1
        return f"t{self._scope_counter}"

    def fresh_expr_slot(self) -> str:
        self._expr_counter += 1
        return f"e{self._expr_counter}"

    # ======================================================================
    # statements
    # ======================================================================

    def bind_query(self, stmt: ast.SelectStatement) -> lp.LogicalPlan:
        """Bind a full SELECT statement to a logical plan."""
        return self._bind_select(stmt, parent_scope=None, ctes={})

    def _bind_select(
        self,
        stmt: ast.SelectStatement,
        parent_scope: Optional[Scope],
        ctes: dict[str, CTEDef],
    ) -> lp.LogicalPlan:
        ctes = dict(ctes)
        for cte in stmt.ctes:
            if cte.recursive and self._cte_is_self_referencing(cte):
                ctes[cte.name.lower()] = self._bind_recursive_cte(
                    cte, parent_scope, ctes
                )
            else:
                plan = self._bind_select(cte.query, parent_scope, ctes)
                plan = self._apply_column_aliases(plan, cte.column_names)
                ctes[cte.name.lower()] = plan

        plan, output_scope = self._bind_body(stmt.body, parent_scope, ctes)

        if stmt.order_by:
            plan = self._bind_order_by(plan, stmt.order_by, output_scope)
        if stmt.limit is not None or stmt.offset is not None:
            plan = lp.LogicalLimit(
                plan,
                self._constant_int(stmt.limit, "LIMIT"),
                self._constant_int(stmt.offset, "OFFSET") or 0,
            )
        return plan

    @staticmethod
    def _cte_is_self_referencing(cte: ast.CommonTableExpr) -> bool:
        """Heuristic check used only to decide recursive binding: does the
        CTE body's FROM mention its own name? (A full reference walk.)"""
        target = cte.name.lower()
        hits = []

        def walk_table(expr):
            if isinstance(expr, ast.TableRef):
                if expr.name.lower() == target:
                    hits.append(expr)
            elif isinstance(expr, ast.Join):
                walk_table(expr.left)
                walk_table(expr.right)
            elif isinstance(expr, ast.SubqueryRef):
                walk_query(expr.query)
            elif isinstance(expr, ast.IterateRef):
                walk_query(expr.init_query)
                walk_query(expr.step_query)
                walk_query(expr.stop_query)
            elif isinstance(expr, ast.TableFunction):
                for arg in expr.args:
                    if arg.query is not None:
                        walk_query(arg.query)

        def walk_body(body):
            if isinstance(body, ast.SetOp):
                walk_body(body.left)
                walk_body(body.right)
            elif isinstance(body, ast.SelectCore):
                if body.from_clause is not None:
                    walk_table(body.from_clause)

        def walk_query(query):
            walk_body(query.body)
            for inner in query.ctes:
                walk_query(inner.query)

        walk_query(cte.query)
        return bool(hits)

    def _apply_column_aliases(
        self, plan: lp.LogicalPlan, names: Optional[list[str]]
    ) -> lp.LogicalPlan:
        if not names:
            return plan
        if len(names) != len(plan.output):
            raise BindError(
                f"column alias list has {len(names)} names, query "
                f"produces {len(plan.output)} columns"
            )
        output = [
            lp.PlanColumn(alias, col.slot, col.sql_type)
            for alias, col in zip(names, plan.output)
        ]
        exprs = [
            b.BoundColumnRef(col.slot, col.sql_type, col.name)
            for col in plan.output
        ]
        return lp.LogicalProject(plan, exprs, output)

    # -- recursive CTEs -------------------------------------------------------

    def _bind_recursive_cte(
        self,
        cte: ast.CommonTableExpr,
        parent_scope: Optional[Scope],
        ctes: dict[str, CTEDef],
    ) -> lp.LogicalPlan:
        body = cte.query.body
        if not isinstance(body, ast.SetOp) or body.op not in (
            "union", "union_all"
        ):
            raise BindError(
                "recursive CTE must be 'initial UNION [ALL] step'"
            )
        if cte.query.order_by or cte.query.limit is not None:
            raise BindError(
                "ORDER BY / LIMIT not allowed directly in a recursive CTE"
            )
        init_plan, _scope = self._bind_body(body.left, parent_scope, ctes)
        names = cte.column_names or [c.name for c in init_plan.output]
        if len(names) != len(init_plan.output):
            raise BindError(
                "recursive CTE column list arity mismatch"
            )
        key = f"rcte_{cte.name.lower()}_{self.fresh_scope_id()}"
        working = WorkingTableDef(
            key,
            [
                (name, col.sql_type)
                for name, col in zip(names, init_plan.output)
            ],
        )
        step_ctes = dict(ctes)
        step_ctes[cte.name.lower()] = working
        step_plan, _scope2 = self._bind_body(
            body.right, parent_scope, step_ctes
        )
        step_plan = self._coerce_to_layout(
            step_plan,
            [t for _n, t in working.columns],
            "recursive CTE step",
        )
        output = [
            lp.PlanColumn(name, self.fresh_expr_slot(), sql_type)
            for name, sql_type in working.columns
        ]
        return lp.LogicalRecursiveCTE(
            key=key,
            init=init_plan,
            step=step_plan,
            union_all=(body.op == "union_all"),
            output=output,
        )

    # -- query bodies -----------------------------------------------------------

    def _bind_body(
        self,
        body,
        parent_scope: Optional[Scope],
        ctes: dict[str, CTEDef],
    ) -> tuple[lp.LogicalPlan, Scope]:
        if isinstance(body, ast.SetOp):
            return self._bind_setop(body, parent_scope, ctes)
        return self._bind_select_core(body, parent_scope, ctes)

    def _bind_setop(
        self,
        body: ast.SetOp,
        parent_scope: Optional[Scope],
        ctes: dict[str, CTEDef],
    ) -> tuple[lp.LogicalPlan, Scope]:
        left, _ls = self._bind_body(body.left, parent_scope, ctes)
        right, _rs = self._bind_body(body.right, parent_scope, ctes)
        if len(left.output) != len(right.output):
            raise BindError(
                f"set operation arity mismatch: {len(left.output)} vs "
                f"{len(right.output)} columns"
            )
        types = [
            common_supertype(lc.sql_type, rc.sql_type)
            for lc, rc in zip(left.output, right.output)
        ]
        left = self._coerce_to_layout(left, types, "set operation")
        right = self._coerce_to_layout(right, types, "set operation")
        output = [
            lp.PlanColumn(col.name, self.fresh_expr_slot(), t)
            for col, t in zip(left.output, types)
        ]
        plan = lp.LogicalSetOp(body.op, left, right, output)
        scope = Scope(parent_scope)
        scope.add(RelationBinding(None, output))
        return plan, scope

    def _coerce_to_layout(
        self,
        plan: lp.LogicalPlan,
        types: list[SQLType],
        what: str,
    ) -> lp.LogicalPlan:
        """Insert a cast projection so ``plan`` outputs exactly ``types``."""
        if len(types) != len(plan.output):
            raise BindError(f"{what}: arity mismatch")
        needs_cast = any(
            col.sql_type != t and col.sql_type.kind != t.kind
            for col, t in zip(plan.output, types)
        )
        if not needs_cast:
            return plan
        exprs: list[b.BoundExpr] = []
        output: list[lp.PlanColumn] = []
        for col, t in zip(plan.output, types):
            ref: b.BoundExpr = b.BoundColumnRef(col.slot, col.sql_type, col.name)
            if col.sql_type.kind != t.kind:
                if not can_implicitly_cast(col.sql_type, t) and not (
                    t.is_numeric and col.sql_type.is_numeric
                ):
                    raise BindError(
                        f"{what}: cannot unify {col.sql_type} with {t}"
                    )
                ref = b.BoundCast(ref, t)
            slot = self.fresh_expr_slot()
            exprs.append(ref)
            output.append(lp.PlanColumn(col.name, slot, t))
        return lp.LogicalProject(plan, exprs, output)

    # -- SELECT core ----------------------------------------------------------------

    def _bind_select_core(
        self,
        core: ast.SelectCore,
        parent_scope: Optional[Scope],
        ctes: dict[str, CTEDef],
    ) -> tuple[lp.LogicalPlan, Scope]:
        scope = Scope(parent_scope)
        if core.from_clause is not None:
            plan = self._bind_from(core.from_clause, scope, ctes)
        else:
            # SELECT without FROM: one conceptual row.
            plan = lp.LogicalValues(rows=[[]], output=[])

        if core.where is not None:
            predicate = self._bind_scalar(core.where, scope, ctes)
            self._require_boolean(predicate, "WHERE")
            plan = lp.LogicalFilter(plan, predicate)

        has_aggregates = any(
            self._contains_aggregate(item.expr) for item in core.items
        ) or (
            core.having is not None
            and self._contains_aggregate(core.having)
        )

        if core.group_by or has_aggregates:
            if any(
                self._contains_window(item.expr) for item in core.items
            ):
                raise BindError(
                    "window functions cannot be combined with GROUP BY "
                    "or aggregates in the same SELECT; compute the "
                    "aggregate in a derived table first"
                )
            plan, output = self._bind_aggregate_query(
                core, plan, scope, ctes
            )
        else:
            if core.having is not None:
                raise BindError("HAVING requires GROUP BY or aggregates")
            plan, output = self._bind_plain_projection(
                core, plan, scope, ctes
            )

        if core.distinct:
            plan = lp.LogicalDistinct(plan)

        out_scope = Scope(parent_scope)
        out_scope.add(RelationBinding(None, plan.output))
        if not (core.group_by or has_aggregates or core.distinct):
            # Plain projections allow ORDER BY on non-projected columns
            # (hidden sort columns); aggregates and DISTINCT restrict
            # ordering to the output, per SQL.
            out_scope.order_scope = scope
        return plan, out_scope

    def _bind_plain_projection(
        self,
        core: ast.SelectCore,
        plan: lp.LogicalPlan,
        scope: Scope,
        ctes: dict[str, CTEDef],
    ) -> tuple[lp.LogicalPlan, list[lp.PlanColumn]]:
        window_specs: list[lp.WindowSpec] = []

        def bind_item(expr: ast.Expr) -> b.BoundExpr:
            if isinstance(expr, ast.WindowFunction):
                return self._bind_window_call(
                    expr, scope, ctes, window_specs
                )
            if self._contains_window(expr):
                return self._rebind_composite(expr, bind_item, scope, ctes)
            return self._bind_scalar(expr, scope, ctes)

        exprs: list[b.BoundExpr] = []
        output: list[lp.PlanColumn] = []
        for item in self._expand_stars(core.items, scope):
            bound_expr = bind_item(item.expr)
            name = item.alias or self._derive_name(item.expr, len(output))
            slot = self.fresh_expr_slot()
            exprs.append(bound_expr)
            output.append(lp.PlanColumn(name, slot, bound_expr.sql_type))
        if window_specs:
            window_output = list(plan.output) + [
                lp.PlanColumn(spec.func_name, spec.slot, spec.sql_type)
                for spec in window_specs
            ]
            plan = lp.LogicalWindow(plan, window_specs, window_output)
        return lp.LogicalProject(plan, exprs, output), output

    def _contains_window(self, expr: ast.Expr) -> bool:
        if isinstance(expr, ast.WindowFunction):
            return True
        return any(
            self._contains_window(child)
            for child in self._ast_children(expr)
        )

    def _bind_window_call(
        self,
        call: ast.WindowFunction,
        scope: Scope,
        ctes: dict[str, CTEDef],
        specs: list[lp.WindowSpec],
    ) -> b.BoundExpr:
        from ..expr.windows import lookup_window

        descriptor = lookup_window(call.name)
        if descriptor is None:
            raise BindError(
                f"unknown window function: {call.name!r}"
            )
        call_args = list(call.args)
        if (
            call.name.lower() == "count"
            and len(call_args) == 1
            and isinstance(call_args[0], ast.Star)
        ):
            call_args = []  # count(*) over (...) counts rows
        descriptor.check_arity(len(call_args))
        if descriptor.requires_order and not call.order_by:
            raise BindError(
                f"{call.name}() requires an ORDER BY in its window"
            )
        args = [self._bind_scalar(a, scope, ctes) for a in call_args]
        partition = [
            self._bind_scalar(p, scope, ctes) for p in call.partition_by
        ]
        order = [
            lp.SortKey(
                self._bind_scalar(item.expr, scope, ctes),
                item.descending,
                item.nulls_last,
            )
            for item in call.order_by
        ]
        result_type = descriptor.infer_type(
            [a.sql_type for a in args]
        )
        slot = self.fresh_expr_slot()
        specs.append(
            lp.WindowSpec(
                slot=slot,
                func_name=call.name,
                args=args,
                partition_by=partition,
                order_by=order,
                sql_type=result_type,
            )
        )
        return b.BoundColumnRef(slot, result_type)

    def _expand_stars(
        self, items: list[ast.SelectItem], scope: Scope
    ) -> list[ast.SelectItem]:
        expanded: list[ast.SelectItem] = []
        for item in items:
            if not isinstance(item.expr, ast.Star):
                expanded.append(item)
                continue
            star: ast.Star = item.expr
            relations = scope.relations
            if star.table is not None:
                lowered = star.table.lower()
                relations = [
                    r
                    for r in scope.relations
                    if r.alias and r.alias.lower() == lowered
                ]
                if not relations:
                    raise BindError(f"unknown table in star: {star.table!r}")
            if not relations:
                raise BindError("SELECT * with no FROM relations")
            for rel in relations:
                for col in rel.columns:
                    expanded.append(
                        ast.SelectItem(
                            ast.ColumnRef(col.name, rel.alias), col.name
                        )
                    )
        return expanded

    @staticmethod
    def _derive_name(expr: ast.Expr, ordinal: int) -> str:
        if isinstance(expr, ast.ColumnRef):
            return expr.name
        if isinstance(expr, ast.FunctionCall):
            return expr.name
        if isinstance(expr, ast.Cast):
            return Binder._derive_name(expr.operand, ordinal)
        return f"column{ordinal + 1}"

    # -- aggregation -------------------------------------------------------------------

    def _contains_aggregate(self, expr: ast.Expr) -> bool:
        from ..expr import aggregates

        if isinstance(expr, ast.FunctionCall):
            if aggregates.is_aggregate_name(expr.name):
                return True
            return any(self._contains_aggregate(a) for a in expr.args)
        for child in self._ast_children(expr):
            if self._contains_aggregate(child):
                return True
        return False

    @staticmethod
    def _ast_children(expr: ast.Expr) -> list[ast.Expr]:
        if isinstance(expr, ast.Unary):
            return [expr.operand]
        if isinstance(expr, ast.Binary):
            return [expr.left, expr.right]
        if isinstance(expr, ast.FunctionCall):
            return list(expr.args)
        if isinstance(expr, ast.Cast):
            return [expr.operand]
        if isinstance(expr, ast.Case):
            out = []
            if expr.operand is not None:
                out.append(expr.operand)
            for cond, res in expr.whens:
                out.extend([cond, res])
            if expr.else_result is not None:
                out.append(expr.else_result)
            return out
        if isinstance(expr, ast.IsNull):
            return [expr.operand]
        if isinstance(expr, ast.InList):
            return [expr.operand, *expr.items]
        if isinstance(expr, ast.WindowFunction):
            out = list(expr.args) + list(expr.partition_by)
            out.extend(item.expr for item in expr.order_by)
            return out
        if isinstance(expr, (ast.InSubquery, ast.Like, ast.Between)):
            if isinstance(expr, ast.Between):
                return [expr.operand, expr.low, expr.high]
            if isinstance(expr, ast.Like):
                return [expr.operand, expr.pattern]
            return [expr.operand]
        return []

    def _bind_aggregate_query(
        self,
        core: ast.SelectCore,
        plan: lp.LogicalPlan,
        scope: Scope,
        ctes: dict[str, CTEDef],
    ) -> tuple[lp.LogicalPlan, list[lp.PlanColumn]]:
        from ..expr import aggregates as agg_registry

        items = self._expand_stars(core.items, scope)

        # 1. Bind the GROUP BY expressions (ordinals and aliases allowed).
        group_exprs: list[b.BoundExpr] = []
        group_slots: list[str] = []
        group_map: dict[str, tuple[str, SQLType]] = {}
        for g in core.group_by:
            resolved = self._resolve_group_item(g, items)
            bound_expr = self._bind_scalar(resolved, scope, ctes)
            slot = self.fresh_expr_slot()
            group_exprs.append(bound_expr)
            group_slots.append(slot)
            group_map[repr(bound_expr)] = (slot, bound_expr.sql_type)

        specs: list[lp.AggregateSpec] = []

        def bind_in_agg_context(expr: ast.Expr) -> b.BoundExpr:
            """Bind an expression above the aggregation boundary."""
            # Whole expression matches a GROUP BY item?
            if not self._contains_aggregate(expr):
                probe = self._bind_scalar(expr, scope, ctes)
                key = repr(probe)
                if key in group_map:
                    slot, sql_type = group_map[key]
                    return b.BoundColumnRef(slot, sql_type)
                if isinstance(probe, b.BoundLiteral):
                    return probe
                if not probe.referenced_slots():
                    return probe
                raise BindError(
                    "expression must appear in GROUP BY or be used in "
                    f"an aggregate: {self._describe_ast(expr)}"
                )
            if isinstance(expr, ast.FunctionCall) and (
                agg_registry.is_aggregate_name(expr.name)
            ):
                return bind_aggregate_call(expr)
            # Recurse structurally, rebuilding the expression above the
            # aggregate boundary.
            return self._rebind_composite(
                expr, bind_in_agg_context, scope, ctes
            )

        def bind_aggregate_call(call: ast.FunctionCall) -> b.BoundExpr:
            func = agg_registry.lookup(call.name)
            assert func is not None
            arg_expr: Optional[b.BoundExpr] = None
            func_name = call.name.lower()
            if len(call.args) == 1 and isinstance(call.args[0], ast.Star):
                if func_name != "count":
                    raise BindError(
                        f"{call.name}(*) is not valid"
                    )
                func_name = "count_star"
                func = agg_registry.lookup("count_star")
            elif func.needs_argument or call.args:
                if len(call.args) != 1:
                    raise BindError(
                        f"aggregate {call.name}() takes one argument"
                    )
                if self._contains_aggregate(call.args[0]):
                    raise BindError("aggregates cannot be nested")
                arg_expr = self._bind_scalar(call.args[0], scope, ctes)
            result_type = func.infer_type(
                arg_expr.sql_type if arg_expr is not None else None
            )
            slot = self.fresh_expr_slot()
            specs.append(
                lp.AggregateSpec(
                    slot, func_name, arg_expr, call.distinct, result_type
                )
            )
            return b.BoundColumnRef(slot, result_type)

        # 2. Bind select items and HAVING above the aggregation.
        post_exprs: list[b.BoundExpr] = []
        output: list[lp.PlanColumn] = []
        for item in items:
            bound_expr = bind_in_agg_context(item.expr)
            name = item.alias or self._derive_name(item.expr, len(output))
            slot = self.fresh_expr_slot()
            post_exprs.append(bound_expr)
            output.append(lp.PlanColumn(name, slot, bound_expr.sql_type))

        having_expr: Optional[b.BoundExpr] = None
        if core.having is not None:
            having_expr = bind_in_agg_context(core.having)
            self._require_boolean(having_expr, "HAVING")

        agg_output = [
            lp.PlanColumn(f"group{i}", slot, expr.sql_type)
            for i, (slot, expr) in enumerate(zip(group_slots, group_exprs))
        ] + [
            lp.PlanColumn(spec.func_name, spec.slot, spec.sql_type)
            for spec in specs
        ]
        plan = lp.LogicalAggregate(
            plan, group_exprs, group_slots, specs, agg_output
        )
        if having_expr is not None:
            plan = lp.LogicalFilter(plan, having_expr)
        return lp.LogicalProject(plan, post_exprs, output), output

    def _resolve_group_item(
        self, expr: ast.Expr, items: list[ast.SelectItem]
    ) -> ast.Expr:
        """GROUP BY 1 / GROUP BY alias resolve to select-list items."""
        if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
            ordinal = expr.value
            if not 1 <= ordinal <= len(items):
                raise BindError(f"GROUP BY position {ordinal} out of range")
            return items[ordinal - 1].expr
        if isinstance(expr, ast.ColumnRef) and expr.table is None:
            for item in items:
                if item.alias and item.alias.lower() == expr.name.lower():
                    if self._contains_aggregate(item.expr):
                        raise BindError(
                            "cannot GROUP BY an aggregate expression"
                        )
                    return item.expr
        return expr

    def _rebind_composite(
        self,
        expr: ast.Expr,
        recurse: Callable[[ast.Expr], b.BoundExpr],
        scope: Scope,
        ctes: dict[str, CTEDef],
    ) -> b.BoundExpr:
        """Rebuild a composite AST expression with ``recurse`` applied to
        sub-expressions (used above the aggregation boundary)."""
        if isinstance(expr, ast.Unary):
            operand = recurse(expr.operand)
            return self._make_unary(expr.op, operand)
        if isinstance(expr, ast.Binary):
            return self._make_binary(
                expr.op, recurse(expr.left), recurse(expr.right)
            )
        if isinstance(expr, ast.FunctionCall):
            args = [recurse(a) for a in expr.args]
            return self._make_function(expr.name, args)
        if isinstance(expr, ast.Cast):
            target = type_from_name(expr.type_name, expr.width)
            return b.BoundCast(recurse(expr.operand), target)
        if isinstance(expr, ast.Case):
            return self._make_case(expr, recurse)
        if isinstance(expr, ast.IsNull):
            return b.BoundIsNull(recurse(expr.operand), expr.negated)
        if isinstance(expr, ast.InList):
            return self._make_in_list(
                recurse(expr.operand),
                [recurse(i) for i in expr.items],
                expr.negated,
            )
        if isinstance(expr, ast.Between):
            return self._make_between(
                recurse(expr.operand), recurse(expr.low),
                recurse(expr.high), expr.negated,
            )
        if isinstance(expr, ast.Like):
            return b.BoundLike(
                recurse(expr.operand), recurse(expr.pattern), expr.negated
            )
        raise BindError(
            f"unsupported expression above aggregation: "
            f"{type(expr).__name__}"
        )

    @staticmethod
    def _describe_ast(expr: ast.Expr) -> str:
        if isinstance(expr, ast.ColumnRef):
            return str(expr)
        return type(expr).__name__

    # -- ORDER BY ---------------------------------------------------------------------

    def _bind_order_by(
        self,
        plan: lp.LogicalPlan,
        order_by: list[ast.OrderItem],
        output_scope: Scope,
    ) -> lp.LogicalPlan:
        keys: list[lp.SortKey] = []
        #: Keys referencing non-projected columns, evaluated below the
        #: final projection via hidden sort columns.
        hidden: list[b.BoundExpr] = []
        hidden_key_index: list[int] = []
        for item in order_by:
            expr = item.expr
            if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
                ordinal = expr.value
                if not 1 <= ordinal <= len(plan.output):
                    raise BindError(
                        f"ORDER BY position {ordinal} out of range"
                    )
                col = plan.output[ordinal - 1]
                bound_expr: b.BoundExpr = b.BoundColumnRef(
                    col.slot, col.sql_type, col.name
                )
            else:
                try:
                    bound_expr = self._bind_scalar(expr, output_scope, {})
                except BindError:
                    bound_expr = self._bind_order_fallback(
                        expr, output_scope
                    )
                    if bound_expr is None:
                        raise
                    if isinstance(bound_expr, _HiddenKey):
                        hidden.append(bound_expr.expr)
                        hidden_key_index.append(len(keys))
                        bound_expr = bound_expr.expr
            keys.append(
                lp.SortKey(bound_expr, item.descending, item.nulls_last)
            )

        if not hidden:
            return lp.LogicalSort(plan, keys)
        return self._sort_with_hidden_columns(
            plan, keys, hidden, hidden_key_index
        )

    def _bind_order_fallback(self, expr: ast.Expr, output_scope: Scope):
        """Resolve an ORDER BY key that is not visible in the output:
        first a qualified name whose bare column is projected, then the
        pre-projection scope (yielding a hidden sort column)."""
        if isinstance(expr, ast.ColumnRef) and expr.table is not None:
            try:
                return self._bind_scalar(
                    ast.ColumnRef(expr.name), output_scope, {}
                )
            except BindError:
                pass
        if output_scope.order_scope is not None:
            bound = self._bind_scalar(
                expr, output_scope.order_scope, {}
            )
            return _HiddenKey(bound)
        return None

    def _sort_with_hidden_columns(
        self,
        plan: lp.LogicalPlan,
        keys: list[lp.SortKey],
        hidden: list[b.BoundExpr],
        hidden_key_index: list[int],
    ) -> lp.LogicalPlan:
        """Extend the top projection with hidden sort columns, sort,
        then project them away again."""
        if not isinstance(plan, lp.LogicalProject):
            raise BindError(
                "ORDER BY references a column that is not in the "
                "query's output"
            )
        extended_exprs = list(plan.exprs)
        extended_output = list(plan.output)
        for i, expr in enumerate(hidden):
            slot = self.fresh_expr_slot()
            extended_exprs.append(expr)
            extended_output.append(
                lp.PlanColumn(f"__sort{i}", slot, expr.sql_type)
            )
            keys[hidden_key_index[i]] = lp.SortKey(
                b.BoundColumnRef(slot, expr.sql_type),
                keys[hidden_key_index[i]].descending,
                keys[hidden_key_index[i]].nulls_last,
            )
        extended = lp.LogicalProject(
            plan.child, extended_exprs, extended_output
        )
        sorted_plan = lp.LogicalSort(extended, keys)
        final_exprs = [
            b.BoundColumnRef(c.slot, c.sql_type, c.name)
            for c in plan.output
        ]
        final_output = [
            lp.PlanColumn(c.name, self.fresh_expr_slot(), c.sql_type)
            for c in plan.output
        ]
        return lp.LogicalProject(sorted_plan, final_exprs, final_output)

    def _constant_int(
        self, expr: Optional[ast.Expr], what: str
    ) -> Optional[int]:
        if expr is None:
            return None
        if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
            if expr.value < 0:
                raise BindError(f"{what} must be non-negative")
            return expr.value
        raise BindError(f"{what} must be an integer literal")

    # ======================================================================
    # FROM clause
    # ======================================================================

    def _bind_from(
        self,
        table_expr: ast.TableExpr,
        scope: Scope,
        ctes: dict[str, CTEDef],
    ) -> lp.LogicalPlan:
        if isinstance(table_expr, ast.TableRef):
            return self._bind_table_ref(table_expr, scope, ctes)
        if isinstance(table_expr, ast.SubqueryRef):
            return self._bind_subquery_ref(table_expr, scope, ctes)
        if isinstance(table_expr, ast.ValuesRef):
            return self._bind_values_ref(table_expr, scope, ctes)
        if isinstance(table_expr, ast.Join):
            return self._bind_join(table_expr, scope, ctes)
        if isinstance(table_expr, ast.IterateRef):
            return self._bind_iterate(table_expr, scope, ctes)
        if isinstance(table_expr, ast.TableFunction):
            return self._bind_table_function(table_expr, scope, ctes)
        raise BindError(
            f"unsupported FROM element: {type(table_expr).__name__}"
        )

    def _bind_table_ref(
        self, ref: ast.TableRef, scope: Scope, ctes: dict[str, CTEDef]
    ) -> lp.LogicalPlan:
        name = ref.name.lower()
        alias = ref.alias or ref.name

        definition = ctes.get(name)
        if isinstance(definition, WorkingTableDef):
            output = [
                lp.PlanColumn(
                    col_name, f"{self.fresh_scope_id()}.{col_name}", t
                )
                for col_name, t in definition.columns
            ]
            plan: lp.LogicalPlan = lp.LogicalWorkingTableRef(
                definition.key, output
            )
            scope.add(RelationBinding(alias, output))
            return plan
        if definition is not None:
            # Inline CTE: re-alias its output with fresh slots so two
            # references to the same CTE never collide.
            cte_plan: lp.LogicalPlan = definition  # type: ignore[assignment]
            scope_id = self.fresh_scope_id()
            output = [
                lp.PlanColumn(c.name, f"{scope_id}.{c.name}", c.sql_type)
                for c in cte_plan.output
            ]
            exprs = [
                b.BoundColumnRef(c.slot, c.sql_type, c.name)
                for c in cte_plan.output
            ]
            plan = lp.LogicalProject(cte_plan, exprs, output)
            scope.add(RelationBinding(alias, output))
            return plan

        if not self.catalog.table_exists(name):
            raise BindError(f"no such table: {ref.name!r}")
        schema = self.catalog.schema_of(name)
        scope_id = self.fresh_scope_id()
        output = [
            lp.PlanColumn(c.name, f"{scope_id}.{c.name}", c.sql_type)
            for c in schema
        ]
        plan = lp.LogicalScan(name, output)
        scope.add(RelationBinding(alias, output))
        return plan

    def _bind_subquery_ref(
        self, ref: ast.SubqueryRef, scope: Scope, ctes: dict[str, CTEDef]
    ) -> lp.LogicalPlan:
        plan = self._bind_select(ref.query, scope.parent, ctes)
        names = ref.column_aliases or [c.name for c in plan.output]
        if len(names) != len(plan.output):
            raise BindError("derived-table column alias arity mismatch")
        scope_id = self.fresh_scope_id()
        output = [
            lp.PlanColumn(n, f"{scope_id}.{n}", c.sql_type)
            for n, c in zip(names, plan.output)
        ]
        exprs = [
            b.BoundColumnRef(c.slot, c.sql_type, c.name)
            for c in plan.output
        ]
        wrapped = lp.LogicalProject(plan, exprs, output)
        scope.add(RelationBinding(ref.alias, output))
        return wrapped

    def _bind_values_ref(
        self, ref: ast.ValuesRef, scope: Scope, ctes: dict[str, CTEDef]
    ) -> lp.LogicalPlan:
        if not ref.rows:
            raise BindError("VALUES requires at least one row")
        width = len(ref.rows[0])
        bound_rows: list[list[b.BoundExpr]] = []
        for row in ref.rows:
            if len(row) != width:
                raise BindError("VALUES rows differ in arity")
            bound_rows.append(
                [self._bind_scalar(e, Scope(scope.parent), ctes) for e in row]
            )
        types: list[SQLType] = []
        for i in range(width):
            t = NULLTYPE
            for row in bound_rows:
                t = common_supertype(t, row[i].sql_type)
            if t.kind is TypeKind.NULL:
                t = VARCHAR
            types.append(t)
        names = ref.column_aliases or [
            f"column{i + 1}" for i in range(width)
        ]
        scope_id = self.fresh_scope_id()
        output = [
            lp.PlanColumn(n, f"{scope_id}.{n}", t)
            for n, t in zip(names, types)
        ]
        plan = lp.LogicalValues(rows=bound_rows, output=output)
        scope.add(RelationBinding(ref.alias, output))
        return plan

    def _bind_join(
        self, join: ast.Join, scope: Scope, ctes: dict[str, CTEDef]
    ) -> lp.LogicalPlan:
        left = self._bind_from(join.left, scope, ctes)
        right = self._bind_from(join.right, scope, ctes)
        output = list(left.output) + list(right.output)

        if join.kind == "cross":
            return lp.LogicalJoin(
                "cross", left, right, [], None, output
            )

        condition: Optional[b.BoundExpr]
        if join.using:
            clauses: list[b.BoundExpr] = []
            left_names = {c.slot: c for c in left.output}
            for col_name in join.using:
                lcol = self._find_output_column(left, col_name, "left")
                rcol = self._find_output_column(right, col_name, "right")
                clauses.append(
                    self._make_binary(
                        "=",
                        b.BoundColumnRef(lcol.slot, lcol.sql_type, lcol.name),
                        b.BoundColumnRef(rcol.slot, rcol.sql_type, rcol.name),
                    )
                )
            condition = clauses[0]
            for clause in clauses[1:]:
                condition = b.BoundBinary("and", condition, clause, BOOLEAN)
        else:
            assert join.condition is not None
            condition = self._bind_scalar(join.condition, scope, ctes)
            self._require_boolean(condition, "JOIN ON")
            self._check_on_scope(condition, output, scope)

        equi, residual = self._split_equi_keys(condition, left, right)
        return lp.LogicalJoin(
            join.kind, left, right, equi, residual, output
        )

    @staticmethod
    def _check_on_scope(
        condition: b.BoundExpr,
        output: list[lp.PlanColumn],
        scope: Scope,
    ) -> None:
        """Reject ON conditions referencing FROM entries outside the
        join's own operands (PostgreSQL semantics; SQLite would accept
        them). Without this check the reference resolves at bind time
        but its slot is absent from the join's batches at execution."""
        used = set(condition.referenced_slots())
        display: dict[str, str] = {}
        stack = [condition]
        while stack:
            node = stack.pop()
            if isinstance(node, b.BoundSubquery):
                used.update(node.outer_slots)
            elif isinstance(node, b.BoundColumnRef) and node.display:
                display[node.slot] = node.display
            stack.extend(node.children())
        available = {c.slot for c in output}
        missing = used - available - scope.outer_refs
        if missing:
            names = ", ".join(
                sorted(display.get(slot, slot) for slot in missing)
            )
            raise BindError(
                "JOIN ON may only reference columns of its own "
                f"operands; out of scope: {names}"
            )

    @staticmethod
    def _find_output_column(
        plan: lp.LogicalPlan, name: str, side: str
    ) -> lp.PlanColumn:
        lowered = name.lower()
        matches = [c for c in plan.output if c.name.lower() == lowered]
        if not matches:
            raise BindError(
                f"USING column {name!r} not found on {side} side"
            )
        if len(matches) > 1:
            raise BindError(f"USING column {name!r} ambiguous on {side}")
        return matches[0]

    def _split_equi_keys(
        self,
        condition: b.BoundExpr,
        left: lp.LogicalPlan,
        right: lp.LogicalPlan,
    ) -> tuple[list[tuple[b.BoundExpr, b.BoundExpr]], Optional[b.BoundExpr]]:
        """Split an AND-tree into hashable equi-key pairs + a residual."""
        left_slots = set(left.output_slots())
        right_slots = set(right.output_slots())
        conjuncts: list[b.BoundExpr] = []

        def collect(e: b.BoundExpr) -> None:
            if isinstance(e, b.BoundBinary) and e.op == "and":
                collect(e.left)
                collect(e.right)
            else:
                conjuncts.append(e)

        collect(condition)
        equi: list[tuple[b.BoundExpr, b.BoundExpr]] = []
        residual: list[b.BoundExpr] = []
        for conj in conjuncts:
            if (
                isinstance(conj, b.BoundBinary)
                and conj.op == "="
                and not conj.contains_subquery()
            ):
                lrefs = conj.left.referenced_slots()
                rrefs = conj.right.referenced_slots()
                if lrefs and rrefs:
                    if lrefs <= left_slots and rrefs <= right_slots:
                        equi.append((conj.left, conj.right))
                        continue
                    if lrefs <= right_slots and rrefs <= left_slots:
                        equi.append((conj.right, conj.left))
                        continue
            residual.append(conj)
        residual_expr: Optional[b.BoundExpr] = None
        for conj in residual:
            residual_expr = (
                conj
                if residual_expr is None
                else b.BoundBinary("and", residual_expr, conj, BOOLEAN)
            )
        return equi, residual_expr

    # -- ITERATE (section 5.1) ---------------------------------------------------------

    def _bind_iterate(
        self, ref: ast.IterateRef, scope: Scope, ctes: dict[str, CTEDef]
    ) -> lp.LogicalPlan:
        init_plan = self._bind_select(ref.init_query, scope.parent, ctes)
        self._iterate_counter += 1
        key = f"iterate_{self._iterate_counter}"
        working = WorkingTableDef(
            key,
            [(c.name, c.sql_type) for c in init_plan.output],
        )
        inner_ctes = dict(ctes)
        inner_ctes["iterate"] = working
        step_plan = self._bind_select(
            ref.step_query, scope.parent, inner_ctes
        )
        step_plan = self._coerce_to_layout(
            step_plan,
            [c.sql_type for c in init_plan.output],
            "ITERATE step",
        )
        stop_plan = self._bind_select(
            ref.stop_query, scope.parent, inner_ctes
        )
        scope_id = self.fresh_scope_id()
        alias = ref.alias or "iterate"
        output = [
            lp.PlanColumn(c.name, f"{scope_id}.{c.name}", c.sql_type)
            for c in init_plan.output
        ]
        plan = lp.LogicalIterate(
            key=key, init=init_plan, step=step_plan, stop=stop_plan,
            output=output,
        )
        scope.add(RelationBinding(alias, output))
        return plan

    # -- analytics table functions (sections 6-7) ------------------------------------------

    def _bind_table_function(
        self,
        func: ast.TableFunction,
        scope: Scope,
        ctes: dict[str, CTEDef],
    ) -> lp.LogicalPlan:
        if self.analytics is None:
            raise BindError(
                f"no table function registry available for {func.name!r}"
            )
        descriptor = self.analytics.lookup(func.name)
        if descriptor is None:
            raise BindError(f"unknown table function: {func.name!r}")
        node = descriptor.bind(self, func, scope.parent, ctes)
        alias = func.alias or func.name.lower()
        scope.add(RelationBinding(alias, node.output))
        return node

    # Helpers exposed to operator descriptors -------------------------------

    def bind_subquery_arg(
        self,
        query: ast.SelectStatement,
        parent_scope: Optional[Scope],
        ctes: dict[str, CTEDef],
    ) -> lp.LogicalPlan:
        """Bind a subquery argument of a table function."""
        return self._bind_select(query, parent_scope, ctes)

    def bind_lambda_arg(
        self,
        lam: ast.LambdaExpr,
        param_schemas: list[list[tuple[str, SQLType]]],
    ) -> b.BoundLambda:
        """Bind a lambda against the tuple layouts of its parameters.

        ``param_schemas[i]`` lists (attribute, type) for parameter ``i``.
        Types are inferred — the user never declares them (section 7).
        """
        if len(lam.params) != len(param_schemas):
            raise BindError(
                f"lambda takes {len(param_schemas)} parameters, "
                f"got {len(lam.params)}"
            )
        lambda_scope = Scope()
        param_attrs: dict[str, list[str]] = {}
        for param, attrs in zip(lam.params, param_schemas):
            columns = [
                lp.PlanColumn(attr, f"{param}.{attr}", t)
                for attr, t in attrs
            ]
            lambda_scope.add(RelationBinding(param, columns))
            param_attrs[param] = [attr for attr, _t in attrs]
        body = self._bind_scalar(lam.body, lambda_scope, {})
        return b.BoundLambda(
            params=list(lam.params), body=body, param_attrs=param_attrs
        )

    def bind_standalone(
        self, expr: ast.Expr, columns: list[lp.PlanColumn]
    ) -> b.BoundExpr:
        """Bind an expression against a flat column list (UPDATE SET,
        DELETE WHERE — no query context)."""
        scope = Scope()
        scope.add(RelationBinding(None, columns))
        return self._bind_scalar(expr, scope, {})

    def constant_scalar(self, expr: ast.Expr, what: str) -> object:
        """Evaluate a constant scalar table-function argument."""
        bound_expr = self._bind_scalar(expr, Scope(), {})
        if isinstance(bound_expr, b.BoundLiteral):
            return bound_expr.value
        if (
            isinstance(bound_expr, b.BoundUnary)
            and bound_expr.op == "-"
            and isinstance(bound_expr.operand, b.BoundLiteral)
        ):
            return -bound_expr.operand.value  # type: ignore[operator]
        raise BindError(f"{what} must be a constant scalar")

    # ======================================================================
    # scalar expressions
    # ======================================================================

    def _bind_scalar(
        self,
        expr: ast.Expr,
        scope: Scope,
        ctes: dict[str, CTEDef],
    ) -> b.BoundExpr:
        if isinstance(expr, ast.Literal):
            return b.BoundLiteral(expr.value, infer_literal_type(expr.value))
        if isinstance(expr, ast.Placeholder):
            if self.param_types is None or expr.index >= len(
                self.param_types
            ):
                raise BindError(
                    "? placeholder outside a parameterized statement"
                )
            return b.BoundParam(
                f"?{expr.index}", self.param_types[expr.index]
            )
        if isinstance(expr, ast.ColumnRef):
            col, is_outer = scope.resolve(expr.name, expr.table)
            if is_outer:
                return b.BoundParam(col.slot, col.sql_type)
            return b.BoundColumnRef(col.slot, col.sql_type, str(expr))
        if isinstance(expr, ast.Star):
            raise BindError("* is only allowed in SELECT lists and COUNT(*)")
        if isinstance(expr, ast.Unary):
            return self._make_unary(
                expr.op, self._bind_scalar(expr.operand, scope, ctes)
            )
        if isinstance(expr, ast.Binary):
            return self._make_binary(
                expr.op,
                self._bind_scalar(expr.left, scope, ctes),
                self._bind_scalar(expr.right, scope, ctes),
            )
        if isinstance(expr, ast.FunctionCall):
            return self._bind_function_call(expr, scope, ctes)
        if isinstance(expr, ast.Cast):
            target = type_from_name(expr.type_name, expr.width)
            return b.BoundCast(
                self._bind_scalar(expr.operand, scope, ctes), target
            )
        if isinstance(expr, ast.Case):
            return self._make_case(
                expr, lambda e: self._bind_scalar(e, scope, ctes)
            )
        if isinstance(expr, ast.IsNull):
            return b.BoundIsNull(
                self._bind_scalar(expr.operand, scope, ctes), expr.negated
            )
        if isinstance(expr, ast.InList):
            return self._make_in_list(
                self._bind_scalar(expr.operand, scope, ctes),
                [self._bind_scalar(i, scope, ctes) for i in expr.items],
                expr.negated,
            )
        if isinstance(expr, ast.Between):
            return self._make_between(
                self._bind_scalar(expr.operand, scope, ctes),
                self._bind_scalar(expr.low, scope, ctes),
                self._bind_scalar(expr.high, scope, ctes),
                expr.negated,
            )
        if isinstance(expr, ast.Like):
            operand = self._bind_scalar(expr.operand, scope, ctes)
            pattern = self._bind_scalar(expr.pattern, scope, ctes)
            if operand.sql_type.kind not in (
                TypeKind.VARCHAR, TypeKind.NULL
            ):
                raise BindError("LIKE requires a string operand")
            return b.BoundLike(operand, pattern, expr.negated)
        if isinstance(expr, ast.ScalarSubquery):
            return self._bind_subquery_expr(expr.query, "scalar", scope, ctes)
        if isinstance(expr, ast.Exists):
            node = self._bind_subquery_expr(
                expr.query, "exists", scope, ctes
            )
            node.negated = expr.negated
            return node
        if isinstance(expr, ast.InSubquery):
            probe = self._bind_scalar(expr.operand, scope, ctes)
            node = self._bind_subquery_expr(expr.query, "in", scope, ctes)
            node.probe = probe
            node.negated = expr.negated
            return node
        if isinstance(expr, ast.WindowFunction):
            raise BindError(
                "window functions are only allowed in the SELECT list"
            )
        if isinstance(expr, ast.LambdaExpr):
            raise BindError(
                "lambda expressions are only valid as analytics operator "
                "arguments"
            )
        raise BindError(
            f"unsupported expression: {type(expr).__name__}"
        )

    def _bind_subquery_expr(
        self,
        query: ast.SelectStatement,
        kind: str,
        scope: Scope,
        ctes: dict[str, CTEDef],
    ) -> b.BoundSubquery:
        inner_scope_parent = scope
        # Bind with the current scope as parent so the subquery can
        # correlate; collect which outer slots it actually used.
        before = set(scope.outer_refs)
        plan = self._bind_select(query, inner_scope_parent, ctes)
        # Outer refs recorded on `scope` during the child bind are the
        # correlation parameters whose values come from *this* query's
        # rows. Refs that resolve even further out stay as params of the
        # enclosing query and are forwarded transparently.
        used = self._collect_params(plan)
        own = {s for s in used if s in {c.slot for c in scope.all_columns()}}
        scope.outer_refs = before | (used - own)
        if kind == "scalar":
            if len(plan.output) != 1:
                raise BindError("scalar subquery must return one column")
            sql_type = plan.output[0].sql_type
        elif kind == "in":
            if len(plan.output) != 1:
                raise BindError("IN subquery must return one column")
            sql_type = BOOLEAN
        else:
            sql_type = BOOLEAN
        return b.BoundSubquery(
            plan=plan, kind=kind, sql_type=sql_type,
            outer_slots=tuple(sorted(own)),
        )

    @staticmethod
    def _collect_params(plan: lp.LogicalPlan) -> set[str]:
        """All BoundParam slots appearing anywhere in a plan."""
        slots: set[str] = set()

        def walk_expr(e: b.BoundExpr) -> None:
            if isinstance(e, b.BoundParam):
                slots.add(e.slot)
            if isinstance(e, b.BoundSubquery):
                walk_plan(e.plan)
            for child in e.children():
                walk_expr(child)

        def walk_plan(node: lp.LogicalPlan) -> None:
            for e in _plan_expressions(node):
                walk_expr(e)
            for child in node.children():
                walk_plan(child)

        walk_plan(plan)
        return slots

    # -- expression constructors with type rules --------------------------------------

    def _make_unary(self, op: str, operand: b.BoundExpr) -> b.BoundExpr:
        if op == "-":
            if not (
                operand.sql_type.is_numeric
                or operand.sql_type.kind is TypeKind.NULL
            ):
                raise BindError(f"cannot negate {operand.sql_type}")
            return b.BoundUnary("-", operand, operand.sql_type)
        if op == "not":
            self._require_boolean(operand, "NOT")
            return b.BoundUnary("not", operand, BOOLEAN)
        raise BindError(f"unknown unary operator {op!r}")

    def _make_binary(
        self, op: str, left: b.BoundExpr, right: b.BoundExpr
    ) -> b.BoundExpr:
        if op in ("and", "or"):
            self._require_boolean(left, op.upper())
            self._require_boolean(right, op.upper())
            return b.BoundBinary(op, left, right, BOOLEAN)
        if op in ("=", "<>", "<", "<=", ">", ">="):
            common = common_supertype(left.sql_type, right.sql_type)
            left = self._maybe_cast(left, common)
            right = self._maybe_cast(right, common)
            return b.BoundBinary(op, left, right, BOOLEAN)
        if op == "||":
            return b.BoundBinary("||", left, right, VARCHAR)
        if op in ("+", "-", "*", "/", "%"):
            common = common_supertype(left.sql_type, right.sql_type)
            if not (common.is_numeric or common.kind is TypeKind.NULL):
                raise BindError(
                    f"operator {op} requires numeric operands, got "
                    f"{left.sql_type} and {right.sql_type}"
                )
            if common.kind is TypeKind.NULL:
                common = DOUBLE
            left = self._maybe_cast(left, common)
            right = self._maybe_cast(right, common)
            return b.BoundBinary(op, left, right, common)
        if op == "^":
            for side in (left, right):
                if not (
                    side.sql_type.is_numeric
                    or side.sql_type.kind is TypeKind.NULL
                ):
                    raise BindError("operator ^ requires numeric operands")
            return b.BoundBinary("^", left, right, DOUBLE)
        raise BindError(f"unknown binary operator {op!r}")

    def _maybe_cast(self, expr: b.BoundExpr, target: SQLType) -> b.BoundExpr:
        if expr.sql_type.kind == target.kind:
            return expr
        if expr.sql_type.kind is TypeKind.NULL:
            return b.BoundCast(expr, target)
        return b.BoundCast(expr, target)

    def _make_function(
        self, name: str, args: list[b.BoundExpr]
    ) -> b.BoundExpr:
        from ..expr import functions

        func = functions.lookup(name)
        if func is not None:
            func.check_arity(len(args))
            result = func.infer_type([a.sql_type for a in args])
            return b.BoundFunction(name.lower(), args, result)
        if self.udfs is not None:
            udf = self.udfs.lookup_scalar(name)
            if udf is not None:
                udf.check_arity(len(args))
                return b.BoundUDF(
                    name.lower(), udf.func, args, udf.return_type
                )
        raise BindError(f"unknown function: {name!r}")

    def _bind_function_call(
        self,
        call: ast.FunctionCall,
        scope: Scope,
        ctes: dict[str, CTEDef],
    ) -> b.BoundExpr:
        from ..expr import aggregates

        if aggregates.is_aggregate_name(call.name):
            raise BindError(
                f"aggregate {call.name}() is not allowed here"
            )
        args = [self._bind_scalar(a, scope, ctes) for a in call.args]
        return self._make_function(call.name, args)

    def _make_case(
        self,
        expr: ast.Case,
        recurse: Callable[[ast.Expr], b.BoundExpr],
    ) -> b.BoundExpr:
        whens: list[tuple[b.BoundExpr, b.BoundExpr]] = []
        operand = recurse(expr.operand) if expr.operand is not None else None
        result_type = NULLTYPE
        for cond_ast, result_ast in expr.whens:
            cond = recurse(cond_ast)
            if operand is not None:
                cond = self._make_binary("=", operand, cond)
            else:
                self._require_boolean(cond, "CASE WHEN")
            result = recurse(result_ast)
            result_type = common_supertype(result_type, result.sql_type)
            whens.append((cond, result))
        else_result = (
            recurse(expr.else_result)
            if expr.else_result is not None
            else None
        )
        if else_result is not None:
            result_type = common_supertype(
                result_type, else_result.sql_type
            )
        if result_type.kind is TypeKind.NULL:
            result_type = VARCHAR
        return b.BoundCase(whens, else_result, result_type)

    def _make_in_list(
        self,
        operand: b.BoundExpr,
        items: list[b.BoundExpr],
        negated: bool,
    ) -> b.BoundExpr:
        common = operand.sql_type
        for item in items:
            common = common_supertype(common, item.sql_type)
        operand = self._maybe_cast(operand, common)
        items = [self._maybe_cast(i, common) for i in items]
        return b.BoundInList(operand, items, negated)

    def _make_between(
        self,
        operand: b.BoundExpr,
        low: b.BoundExpr,
        high: b.BoundExpr,
        negated: bool,
    ) -> b.BoundExpr:
        lower = self._make_binary("<=", low, operand)
        upper = self._make_binary("<=", operand, high)
        both = b.BoundBinary("and", lower, upper, BOOLEAN)
        if negated:
            return b.BoundUnary("not", both, BOOLEAN)
        return both

    @staticmethod
    def _require_boolean(expr: b.BoundExpr, where: str) -> None:
        if expr.sql_type.kind not in (TypeKind.BOOLEAN, TypeKind.NULL):
            raise BindError(
                f"{where} requires a boolean expression, got "
                f"{expr.sql_type}"
            )


def _plan_expressions(node: lp.LogicalPlan) -> list[b.BoundExpr]:
    """All bound expressions directly held by a plan node."""
    out: list[b.BoundExpr] = []
    if isinstance(node, lp.LogicalFilter):
        out.append(node.predicate)
    elif isinstance(node, lp.LogicalProject):
        out.extend(node.exprs)
    elif isinstance(node, lp.LogicalJoin):
        for lk, rk in node.equi_keys:
            out.extend([lk, rk])
        if node.residual is not None:
            out.append(node.residual)
    elif isinstance(node, lp.LogicalAggregate):
        out.extend(node.group_exprs)
        for spec in node.aggregates:
            if spec.arg is not None:
                out.append(spec.arg)
    elif isinstance(node, lp.LogicalSort):
        out.extend(k.expr for k in node.keys)
    elif isinstance(node, lp.LogicalValues):
        for row in node.rows:
            out.extend(row)
    elif isinstance(node, lp.LogicalWindow):
        for spec in node.specs:
            out.extend(spec.args)
            out.extend(spec.partition_by)
            out.extend(key.expr for key in spec.order_by)
    elif isinstance(node, lp.LogicalTableFunction):
        out.extend(node.lambdas.values())
    return out
