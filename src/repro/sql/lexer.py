"""Hand-written SQL lexer.

Produces a flat token stream with source positions. Handles:

* ``--`` line comments and ``/* ... */`` block comments,
* single-quoted strings with ``''`` escaping,
* double-quoted (case-preserving) identifiers,
* integer and decimal numbers including exponent form,
* the lambda introducer, either the ``λ`` sign or the ``LAMBDA`` keyword.
"""

from __future__ import annotations

from ..errors import ParseError
from .tokens import (
    KEYWORDS,
    MULTI_CHAR_OPERATORS,
    SINGLE_CHAR_OPERATORS,
    Token,
    TokenKind,
)


class Lexer:
    """Single-pass scanner over a SQL string."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        self.line = 1
        self.column = 1

    # -- character helpers ----------------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        idx = self.pos + offset
        return self.text[idx] if idx < len(self.text) else ""

    def _advance(self, count: int = 1) -> str:
        chunk = self.text[self.pos : self.pos + count]
        for ch in chunk:
            if ch == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
        self.pos += count
        return chunk

    def _error(self, message: str) -> ParseError:
        return ParseError(message, self.line, self.column)

    # -- scanning ----------------------------------------------------------------

    def tokens(self) -> list[Token]:
        """Scan the whole input; the list always ends with an EOF token."""
        out: list[Token] = []
        while True:
            self._skip_trivia()
            if self.pos >= len(self.text):
                out.append(Token(TokenKind.EOF, "", None, self.line, self.column))
                return out
            out.append(self._next_token())

    def _skip_trivia(self) -> None:
        while self.pos < len(self.text):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "-" and self._peek(1) == "-":
                while self.pos < len(self.text) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start_line, start_col = self.line, self.column
                self._advance(2)
                while self.pos < len(self.text):
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
                else:
                    raise ParseError(
                        "unterminated block comment", start_line, start_col
                    )
            else:
                return

    def _next_token(self) -> Token:
        line, column = self.line, self.column
        ch = self._peek()

        if ch == "λ":
            self._advance()
            return Token(TokenKind.LAMBDA, "λ", None, line, column)
        if ch == "'":
            return self._string(line, column)
        if ch == '"':
            return self._quoted_identifier(line, column)
        if ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
            return self._number(line, column)
        if ch.isalpha() or ch == "_":
            return self._word(line, column)
        if ch == "(":
            self._advance()
            return Token(TokenKind.LPAREN, "(", None, line, column)
        if ch == ")":
            self._advance()
            return Token(TokenKind.RPAREN, ")", None, line, column)
        if ch == ",":
            self._advance()
            return Token(TokenKind.COMMA, ",", None, line, column)
        if ch == ".":
            self._advance()
            return Token(TokenKind.DOT, ".", None, line, column)
        if ch == ";":
            self._advance()
            return Token(TokenKind.SEMICOLON, ";", None, line, column)
        if ch == "?":
            self._advance()
            return Token(TokenKind.PARAM, "?", None, line, column)
        for op in MULTI_CHAR_OPERATORS:
            if self.text.startswith(op, self.pos):
                self._advance(len(op))
                return Token(TokenKind.OPERATOR, op, None, line, column)
        if ch in SINGLE_CHAR_OPERATORS:
            self._advance()
            return Token(TokenKind.OPERATOR, ch, None, line, column)
        raise self._error(f"unexpected character {ch!r}")

    def _string(self, line: int, column: int) -> Token:
        self._advance()  # opening quote
        parts: list[str] = []
        while True:
            if self.pos >= len(self.text):
                raise ParseError("unterminated string literal", line, column)
            ch = self._advance()
            if ch == "'":
                if self._peek() == "'":  # escaped quote
                    self._advance()
                    parts.append("'")
                else:
                    break
            else:
                parts.append(ch)
        value = "".join(parts)
        return Token(TokenKind.STRING, value, value, line, column)

    def _quoted_identifier(self, line: int, column: int) -> Token:
        self._advance()  # opening quote
        parts: list[str] = []
        while True:
            if self.pos >= len(self.text):
                raise ParseError(
                    "unterminated quoted identifier", line, column
                )
            ch = self._advance()
            if ch == '"':
                if self._peek() == '"':
                    self._advance()
                    parts.append('"')
                else:
                    break
            else:
                parts.append(ch)
        name = "".join(parts)
        return Token(TokenKind.IDENT, name, name, line, column)

    def _number(self, line: int, column: int) -> Token:
        start = self.pos
        is_float = False
        while self._peek().isdigit():
            self._advance()
        if self._peek() == "." and self._peek(1).isdigit():
            is_float = True
            self._advance()
            while self._peek().isdigit():
                self._advance()
        elif self._peek() == "." and not self._peek(1).isalpha():
            # trailing dot as in "7." — treat as float
            is_float = True
            self._advance()
        if self._peek() in "eE" and (
            self._peek(1).isdigit()
            or (self._peek(1) in "+-" and self._peek(2).isdigit())
        ):
            is_float = True
            self._advance()
            if self._peek() in "+-":
                self._advance()
            while self._peek().isdigit():
                self._advance()
        text = self.text[start : self.pos]
        value: object = float(text) if is_float else int(text)
        return Token(TokenKind.NUMBER, text, value, line, column)

    def _word(self, line: int, column: int) -> Token:
        start = self.pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self.text[start : self.pos]
        upper = text.upper()
        if upper == "LAMBDA":
            return Token(TokenKind.LAMBDA, upper, None, line, column)
        if upper in KEYWORDS:
            return Token(TokenKind.KEYWORD, upper, None, line, column)
        return Token(TokenKind.IDENT, text.lower(), text.lower(), line, column)


def tokenize(text: str) -> list[Token]:
    """Tokenize ``text``; convenience wrapper over :class:`Lexer`."""
    return Lexer(text).tokens()
