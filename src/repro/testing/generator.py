"""Deterministic schema-aware SQL workload generator.

One :class:`QueryGenerator` is seeded with an integer; everything it
emits — schemas, data, queries — is a pure function of that seed, so a
divergence found anywhere reproduces from two numbers (seed, query
index).

The generated dialect is the *intersection* of our engine's and
SQLite's, with documented dodges around genuine dialect differences
(see docs/testing.md):

* ``ORDER BY`` always spells ``NULLS FIRST/LAST`` explicitly — the
  engines disagree on the default (PostgreSQL-style "NULLs largest"
  vs SQLite's "NULLs smallest").
* Division only ever has a non-zero literal divisor — SQLite yields
  NULL on division by zero where we raise.
* String data, literals, and LIKE patterns are lowercase ASCII —
  SQLite's LIKE is case-insensitive for ASCII, ours is not.
* Integer arithmetic is bounded well inside int32 — our INTEGER
  columns are 32-bit, SQLite's are 64-bit.
* ``LIMIT`` appears only under a total ORDER BY (all output columns),
  otherwise the selected rows are legitimately engine-dependent.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Optional

from ..sql import ast

# ---------------------------------------------------------------------------
# Schemas and data
# ---------------------------------------------------------------------------

#: Type categories the generator reasons about (maps 1:1 onto both
#: engines' column types).
INTEGER = "INTEGER"
FLOAT = "FLOAT"
VARCHAR = "VARCHAR"
BOOLEAN = "BOOLEAN"

_WORDS = [
    "alder", "birch", "cedar", "dahlia", "elm", "fir",
    "ginkgo", "hazel", "iris", "juniper", "karri", "larch",
]


@dataclass(frozen=True)
class GenColumn:
    name: str
    sql_type: str  # one of INTEGER/FLOAT/VARCHAR/BOOLEAN


@dataclass
class GenTable:
    name: str
    columns: list[GenColumn]
    rows: list[tuple]

    def ddl(self) -> str:
        cols = ", ".join(
            f"{c.name} {c.sql_type}" for c in self.columns
        )
        return f"CREATE TABLE {self.name} ({cols})"

    def insert_statements(self) -> list[str]:
        """INSERT statements reproducing the data (for reports)."""
        out = []
        for row in self.rows:
            values = ", ".join(_render_literal(v) for v in row)
            out.append(f"INSERT INTO {self.name} VALUES ({values})")
        return out


def _render_literal(value: object) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    return str(value)


# ---------------------------------------------------------------------------
# Query spec
# ---------------------------------------------------------------------------


@dataclass
class GenExpr:
    """A rendered scalar expression plus the metadata the minimizer
    needs: its type category and the FROM aliases it references."""

    sql: str
    sql_type: str
    aliases: frozenset = frozenset()


@dataclass
class JoinSpec:
    """One FROM element after the first.

    ``kind`` is ``comma`` (cross join; the equi predicate lives in
    WHERE), ``inner``, or ``left`` (predicate in ON).
    """

    kind: str
    table: str
    alias: str
    on: Optional[GenExpr] = None

    def render(self) -> str:
        if self.kind == "comma":
            return f", {self.table} {self.alias}"
        keyword = "LEFT JOIN" if self.kind == "left" else "JOIN"
        return f" {keyword} {self.table} {self.alias} ON {self.on.sql}"


@dataclass
class GenQuery:
    """A structured SELECT the minimizer can shrink part by part."""

    items: list[GenExpr]
    base_table: str
    base_alias: str
    joins: list[JoinSpec] = field(default_factory=list)
    where: list[GenExpr] = field(default_factory=list)
    group_by: list[GenExpr] = field(default_factory=list)
    having: Optional[GenExpr] = None
    distinct: bool = False
    set_op: Optional[tuple[str, "GenQuery"]] = None
    #: (1-based ordinal, descending, nulls_last) per sort key.
    order_by: list[tuple[int, bool, bool]] = field(default_factory=list)
    limit: Optional[int] = None
    offset: Optional[int] = None

    @property
    def ordered(self) -> bool:
        """True when the ORDER BY pins a total order over the output
        (every column is a key), so results compare as lists."""
        return len(self.order_by) >= len(self.items)

    @property
    def has_float(self) -> bool:
        return any(item.sql_type == FLOAT for item in self.items)

    def core_sql(self) -> str:
        parts = ["SELECT "]
        if self.distinct:
            parts.append("DISTINCT ")
        parts.append(
            ", ".join(
                f"{item.sql} AS c{i}"
                for i, item in enumerate(self.items)
            )
        )
        parts.append(f" FROM {self.base_table} {self.base_alias}")
        for join in self.joins:
            parts.append(join.render())
        if self.where:
            parts.append(
                " WHERE " + " AND ".join(p.sql for p in self.where)
            )
        if self.group_by:
            parts.append(
                " GROUP BY " + ", ".join(g.sql for g in self.group_by)
            )
        if self.having is not None:
            parts.append(f" HAVING {self.having.sql}")
        return "".join(parts)

    def to_sql(self) -> str:
        parts = [self.core_sql()]
        if self.set_op is not None:
            op, arm = self.set_op
            parts.append(f" {op} {arm.core_sql()}")
        if self.order_by:
            keys = []
            for ordinal, descending, nulls_last in self.order_by:
                direction = "DESC" if descending else "ASC"
                nulls = "LAST" if nulls_last else "FIRST"
                keys.append(f"{ordinal} {direction} NULLS {nulls}")
            parts.append(" ORDER BY " + ", ".join(keys))
        if self.limit is not None:
            parts.append(f" LIMIT {self.limit}")
            if self.offset:
                parts.append(f" OFFSET {self.offset}")
        return "".join(parts)


# ---------------------------------------------------------------------------
# The generator
# ---------------------------------------------------------------------------


class QueryGenerator:
    """Seeded source of schemas, data, and queries.

    Typical use::

        gen = QueryGenerator(seed)
        tables = gen.schema()
        for _ in range(3):
            query = gen.query(tables)

    The same seed always yields the same schema and query sequence.
    """

    def __init__(
        self,
        seed: int,
        allow_subqueries: bool = True,
        schema_profile: str = "default",
    ):
        if schema_profile not in ("default", "strings"):
            raise ValueError(
                f"unknown schema profile {schema_profile!r}; "
                "expected 'default' or 'strings'"
            )
        self.seed = seed
        self.rng = random.Random(seed)
        self.allow_subqueries = allow_subqueries
        #: ``"strings"`` skews schemas toward wide, low-cardinality
        #: VARCHAR columns — the shape dictionary encoding targets.
        self.schema_profile = schema_profile
        self._alias_counter = 0

    # -- schema / data -----------------------------------------------------

    def schema(self) -> list[GenTable]:
        rng = self.rng
        strings = self.schema_profile == "strings"
        if strings:
            type_pool = [VARCHAR] * 4 + [INTEGER, BOOLEAN]
        else:
            type_pool = [INTEGER, INTEGER, FLOAT, VARCHAR, BOOLEAN]
        tables = []
        for t in range(rng.randint(2, 3)):
            columns = [GenColumn("k", INTEGER)]
            n_extra = rng.randint(3, 5) if strings else rng.randint(2, 4)
            for c in range(n_extra):
                sql_type = rng.choice(type_pool)
                columns.append(GenColumn(f"c{c}", sql_type))
            if strings:
                n_rows = rng.choice([0] + [rng.randint(20, 120)] * 9)
            else:
                n_rows = rng.choice([0] + [rng.randint(1, 60)] * 9)
            rows = [
                tuple(self._cell(col) for col in columns)
                for _ in range(n_rows)
            ]
            tables.append(GenTable(f"t{t}", columns, rows))
        return tables

    def _cell(self, col: GenColumn) -> object:
        rng = self.rng
        if rng.random() < 0.12:
            return None
        if col.sql_type == INTEGER:
            return rng.randint(-9, 30)
        if col.sql_type == FLOAT:
            return round(rng.uniform(-50.0, 50.0), 2)
        if col.sql_type == VARCHAR:
            if self.schema_profile == "strings":
                # Low cardinality on purpose: repeated words make the
                # dictionary path dominant and its codes dense.
                return rng.choice(_WORDS[:5])
            word = rng.choice(_WORDS)
            if rng.random() < 0.3:
                word += str(rng.randint(0, 9))
            return word
        return rng.random() < 0.5

    # -- queries -----------------------------------------------------------

    def query(self, tables: list[GenTable]) -> GenQuery:
        rng = self.rng
        shape = rng.random()
        if shape < 0.45:
            query = self._plain_query(tables)
        elif shape < 0.75:
            query = self._group_query(tables)
        else:
            query = self._setop_query(tables)
        self._attach_order(query)
        return query

    # Each alias is unique within the generator so reproducers stay
    # readable when queries are concatenated into one report.
    def _next_alias(self) -> str:
        alias = f"a{self._alias_counter}"
        self._alias_counter += 1
        return alias

    def _pick_from(
        self, tables: list[GenTable], max_joins: int = 2
    ) -> tuple[str, str, list[JoinSpec], list[GenExpr], list]:
        """Choose a FROM clause; returns (base table, base alias,
        joins, extra WHERE conjuncts, visible columns)."""
        rng = self.rng
        base = rng.choice(tables)
        base_alias = self._next_alias()
        scope = [(base_alias, col) for col in base.columns]
        # An ON clause may only reference its own join-chain arms
        # (PostgreSQL scoping): a comma starts a fresh arm, so track
        # the current arm's aliases separately from the full scope.
        arm_scope = list(scope)
        joins: list[JoinSpec] = []
        where: list[GenExpr] = []
        n_joins = rng.choice([0, 0, 1, 1, 1, 2])
        n_joins = min(n_joins, max_joins)
        for _ in range(n_joins):
            other = rng.choice(tables)
            alias = self._next_alias()
            kind = rng.choice(["comma", "inner", "left"])
            # Join on a same-typed column pair (prefer the integer key).
            # Comma-join equi predicates live in WHERE, where the whole
            # scope is visible; ON predicates see only the current arm.
            pred_scope = scope if kind == "comma" else arm_scope
            left_alias, left_col = rng.choice(
                [
                    (a, c)
                    for a, c in pred_scope
                    if c.sql_type in (INTEGER, VARCHAR)
                ]
            )
            candidates = [
                c for c in other.columns
                if c.sql_type == left_col.sql_type
            ]
            right_col = rng.choice(candidates) if candidates else None
            if right_col is None:
                cond = None
            else:
                cond = GenExpr(
                    f"{left_alias}.{left_col.name} = "
                    f"{alias}.{right_col.name}",
                    BOOLEAN,
                    frozenset({left_alias, alias}),
                )
            if cond is None:
                kind = "comma"  # no equi key: plain cross join
            if kind == "comma":
                joins.append(JoinSpec("comma", other.name, alias))
                if cond is not None:
                    where.append(cond)
                arm_scope = [
                    (alias, col) for col in other.columns
                ]
            else:
                joins.append(JoinSpec(kind, other.name, alias, cond))
                arm_scope.extend(
                    (alias, col) for col in other.columns
                )
            scope.extend((alias, col) for col in other.columns)
        return base.name, base_alias, joins, where, scope

    def _plain_query(self, tables: list[GenTable]) -> GenQuery:
        rng = self.rng
        base, base_alias, joins, where, scope = self._pick_from(tables)
        exprs = _ExprGen(rng, scope, tables, self.allow_subqueries)
        items = [
            exprs.scalar() for _ in range(rng.randint(1, 4))
        ]
        for _ in range(rng.randint(0, 2)):
            where.append(exprs.boolean(depth=2))
        return GenQuery(
            items=items,
            base_table=base,
            base_alias=base_alias,
            joins=joins,
            where=where,
            distinct=rng.random() < 0.2,
        )

    def _group_query(self, tables: list[GenTable]) -> GenQuery:
        rng = self.rng
        base, base_alias, joins, where, scope = self._pick_from(
            tables, max_joins=1
        )
        exprs = _ExprGen(rng, scope, tables, self.allow_subqueries)
        if rng.random() < 0.2:
            # Global aggregation: one row, aggregates only.
            keys: list[GenExpr] = []
        else:
            keys = [
                exprs.column_ref()
                for _ in range(rng.randint(1, 2))
            ]
        aggs = [exprs.aggregate() for _ in range(rng.randint(1, 3))]
        having = None
        if keys and rng.random() < 0.4:
            having = exprs.having_predicate()
        if rng.random() < 0.5:
            where.append(exprs.boolean(depth=1))
        return GenQuery(
            items=keys + aggs,
            base_table=base,
            base_alias=base_alias,
            joins=joins,
            where=where,
            group_by=list(keys),
            having=having,
        )

    def _setop_query(self, tables: list[GenTable]) -> GenQuery:
        rng = self.rng
        left = self._setop_arm(tables, None)
        signature = [item.sql_type for item in left.items]
        right = self._setop_arm(tables, signature)
        op = rng.choice(
            ["UNION", "UNION ALL", "INTERSECT", "EXCEPT"]
        )
        left.set_op = (op, right)
        return left

    def _setop_arm(
        self, tables: list[GenTable], signature: Optional[list[str]]
    ) -> GenQuery:
        """One set-operation arm. Arms avoid FLOAT items: set semantics
        compare values exactly, and only integer/string/boolean scalar
        expressions are bit-stable across both engines."""
        rng = self.rng
        base, base_alias, joins, where, scope = self._pick_from(
            tables, max_joins=1
        )
        exprs = _ExprGen(rng, scope, tables, self.allow_subqueries)
        if signature is None:
            signature = [
                rng.choice([INTEGER, INTEGER, VARCHAR, BOOLEAN])
                for _ in range(rng.randint(1, 3))
            ]
        items = [exprs.scalar_of(t) for t in signature]
        if rng.random() < 0.5:
            where.append(exprs.boolean(depth=1))
        return GenQuery(
            items=items,
            base_table=base,
            base_alias=base_alias,
            joins=joins,
            where=where,
        )

    def _attach_order(self, query: GenQuery) -> None:
        rng = self.rng
        if rng.random() < 0.35:
            return
        n = len(query.items)
        keys = []
        for ordinal in range(1, n + 1):
            keys.append(
                (ordinal, rng.random() < 0.5, rng.random() < 0.5)
            )
        rng.shuffle(keys)
        query.order_by = keys
        # LIMIT only under a deterministic total order on exact types.
        if query.ordered and not query.has_float and rng.random() < 0.4:
            query.limit = rng.randint(1, 20)
            if rng.random() < 0.5:
                query.offset = rng.randint(1, 3)


# ---------------------------------------------------------------------------
# Expression generation (rendered SQL, type- and NULL-aware)
# ---------------------------------------------------------------------------


class _ExprGen:
    """Generates scalar/boolean/aggregate expressions over a scope of
    (alias, column) pairs, staying inside both engines' dialects."""

    def __init__(
        self,
        rng: random.Random,
        scope: list[tuple[str, GenColumn]],
        tables: list[GenTable],
        allow_subqueries: bool,
    ):
        self.rng = rng
        self.scope = scope
        self.tables = tables
        self.allow_subqueries = allow_subqueries

    def _cols(self, *types: str) -> list[tuple[str, GenColumn]]:
        return [
            (a, c) for a, c in self.scope if c.sql_type in types
        ]

    def column_ref(self, *types: str) -> GenExpr:
        pool = self._cols(*types) if types else self.scope
        alias, col = self.rng.choice(pool)
        return GenExpr(
            f"{alias}.{col.name}", col.sql_type, frozenset({alias})
        )

    # -- leaf literals -----------------------------------------------------

    def _int_literal(self) -> str:
        return str(self.rng.randint(-20, 40))

    def _float_literal(self) -> str:
        return repr(round(self.rng.uniform(-40.0, 40.0), 2))

    def _string_literal(self) -> str:
        word = self.rng.choice(_WORDS)
        return f"'{word}'"

    # -- scalar expressions ------------------------------------------------

    def scalar(self) -> GenExpr:
        pick = self.rng.random()
        if pick < 0.45:
            return self.numeric(depth=2)
        if pick < 0.7:
            return self.string(depth=1)
        if pick < 0.85:
            pred = self.boolean(depth=1)
            return GenExpr(f"({pred.sql})", BOOLEAN, pred.aliases)
        return self.column_ref()

    def scalar_of(self, sql_type: str) -> GenExpr:
        if sql_type == INTEGER:
            return self.numeric(depth=2, force_int=True)
        if sql_type == FLOAT:
            return self.numeric(depth=2, force_float=True)
        if sql_type == VARCHAR:
            return self.string(depth=1)
        pred = self.boolean(depth=1)
        return GenExpr(f"({pred.sql})", BOOLEAN, pred.aliases)

    def numeric(
        self,
        depth: int,
        force_int: bool = False,
        force_float: bool = False,
    ) -> GenExpr:
        rng = self.rng
        if depth <= 0:
            return self._numeric_leaf(force_int, force_float)
        choice = rng.random()
        if choice < 0.3:
            return self._numeric_leaf(force_int, force_float)
        if choice < 0.55:
            left = self.numeric(depth - 1, force_int, force_float)
            right = self.numeric(depth - 1, force_int, force_float)
            op = rng.choice(["+", "-"])
            out_type = (
                FLOAT
                if FLOAT in (left.sql_type, right.sql_type)
                else INTEGER
            )
            return GenExpr(
                f"({left.sql} {op} {right.sql})",
                out_type,
                left.aliases | right.aliases,
            )
        if choice < 0.65:
            # Multiplication only by a small literal: keeps everything
            # far inside int32 (our INTEGER storage width).
            operand = self.numeric(depth - 1, force_int, force_float)
            factor = rng.randint(0, 8)
            return GenExpr(
                f"({operand.sql} * {factor})",
                operand.sql_type,
                operand.aliases,
            )
        if choice < 0.72:
            # Division by a non-zero literal only (SQLite returns NULL
            # on division by zero; we raise).
            operand = self.numeric(depth - 1, force_int, force_float)
            if operand.sql_type == INTEGER:
                divisor = str(rng.choice([1, 2, 3, 4, 5, 7]))
            else:
                divisor = repr(
                    rng.choice([1.5, 2.0, 2.5, 4.0, 8.0])
                )
            return GenExpr(
                f"({operand.sql} / {divisor})",
                operand.sql_type,
                operand.aliases,
            )
        if choice < 0.8:
            operand = self.numeric(depth - 1, force_int, force_float)
            return GenExpr(
                f"abs({operand.sql})",
                operand.sql_type,
                operand.aliases,
            )
        if choice < 0.88:
            condition = self.boolean(depth - 1)
            then = self.numeric(depth - 1, force_int, force_float)
            otherwise = self.numeric(0, force_int, force_float)
            then, otherwise = self._promote(then, otherwise)
            return GenExpr(
                f"(CASE WHEN {condition.sql} THEN {then.sql} "
                f"ELSE {otherwise.sql} END)",
                then.sql_type,
                condition.aliases | then.aliases | otherwise.aliases,
            )
        if choice < 0.94:
            operand = self.numeric(depth - 1, force_int, force_float)
            fallback = self._numeric_leaf(
                force_int or operand.sql_type == INTEGER,
                force_float or operand.sql_type == FLOAT,
                literal_only=True,
            )
            operand2, fallback = self._promote(operand, fallback)
            return GenExpr(
                f"coalesce({operand2.sql}, {fallback.sql})",
                operand2.sql_type,
                operand2.aliases,
            )
        operand = self.numeric(depth - 1, force_int, force_float)
        probe = self._numeric_leaf(
            operand.sql_type == INTEGER,
            operand.sql_type == FLOAT,
            literal_only=True,
        )
        return GenExpr(
            f"nullif({operand.sql}, {probe.sql})",
            operand.sql_type,
            operand.aliases,
        )

    def _promote(
        self, left: GenExpr, right: GenExpr
    ) -> tuple[GenExpr, GenExpr]:
        """Give both expressions the same type category (CAST the
        integer side when one is FLOAT)."""
        if left.sql_type == right.sql_type:
            return left, right
        if left.sql_type == INTEGER:
            left = GenExpr(
                f"CAST({left.sql} AS FLOAT)", FLOAT, left.aliases
            )
        else:
            right = GenExpr(
                f"CAST({right.sql} AS FLOAT)", FLOAT, right.aliases
            )
        return left, right

    def _numeric_leaf(
        self,
        force_int: bool = False,
        force_float: bool = False,
        literal_only: bool = False,
    ) -> GenExpr:
        rng = self.rng
        want_float = force_float or (
            not force_int and rng.random() < 0.35
        )
        wanted = FLOAT if want_float else INTEGER
        pool = [] if literal_only else self._cols(wanted)
        if pool and rng.random() < 0.7:
            alias, col = rng.choice(pool)
            return GenExpr(
                f"{alias}.{col.name}", wanted, frozenset({alias})
            )
        literal = (
            self._float_literal() if want_float else self._int_literal()
        )
        return GenExpr(literal, wanted)

    def string(self, depth: int) -> GenExpr:
        rng = self.rng
        pool = self._cols(VARCHAR)
        if not pool or depth <= 0:
            if pool and rng.random() < 0.7:
                alias, col = rng.choice(pool)
                return GenExpr(
                    f"{alias}.{col.name}", VARCHAR, frozenset({alias})
                )
            return GenExpr(self._string_literal(), VARCHAR)
        choice = rng.random()
        base = self.string(depth - 1)
        if choice < 0.4:
            return base
        if choice < 0.6:
            other = self.string(0)
            return GenExpr(
                f"({base.sql} || {other.sql})",
                VARCHAR,
                base.aliases | other.aliases,
            )
        if choice < 0.8:
            start = rng.randint(1, 3)
            length = rng.randint(1, 4)
            return GenExpr(
                f"substr({base.sql}, {start}, {length})",
                VARCHAR,
                base.aliases,
            )
        return GenExpr(
            f"coalesce({base.sql}, {self._string_literal()})",
            VARCHAR,
            base.aliases,
        )

    # -- predicates --------------------------------------------------------

    def boolean(self, depth: int) -> GenExpr:
        rng = self.rng
        if depth > 0 and rng.random() < 0.35:
            left = self.boolean(depth - 1)
            choice = rng.random()
            if choice < 0.4:
                right = self.boolean(depth - 1)
                op = rng.choice(["AND", "OR"])
                return GenExpr(
                    f"({left.sql} {op} {right.sql})",
                    BOOLEAN,
                    left.aliases | right.aliases,
                )
            return GenExpr(
                f"(NOT {left.sql})", BOOLEAN, left.aliases
            )
        return self._simple_predicate(depth)

    def _simple_predicate(self, depth: int) -> GenExpr:
        rng = self.rng
        choice = rng.random()
        if choice < 0.35:
            left = self.numeric(max(depth - 1, 0))
            right = self.numeric(max(depth - 1, 0))
            op = rng.choice(["=", "<>", "<", "<=", ">", ">="])
            return GenExpr(
                f"({left.sql} {op} {right.sql})",
                BOOLEAN,
                left.aliases | right.aliases,
            )
        if choice < 0.45:
            operand = self.column_ref()
            negated = "NOT " if rng.random() < 0.5 else ""
            return GenExpr(
                f"({operand.sql} IS {negated}NULL)",
                BOOLEAN,
                operand.aliases,
            )
        if choice < 0.55:
            operand = self.numeric(0)
            low, high = sorted(
                [rng.randint(-20, 40), rng.randint(-20, 40)]
            )
            negated = "NOT " if rng.random() < 0.3 else ""
            return GenExpr(
                f"({operand.sql} {negated}BETWEEN {low} AND {high})",
                BOOLEAN,
                operand.aliases,
            )
        if choice < 0.68:
            operand = self.column_ref(INTEGER, VARCHAR)
            if operand.sql_type == INTEGER:
                values = ", ".join(
                    str(rng.randint(-9, 30)) for _ in range(3)
                )
            else:
                values = ", ".join(
                    self._string_literal() for _ in range(3)
                )
            negated = "NOT " if rng.random() < 0.3 else ""
            return GenExpr(
                f"({operand.sql} {negated}IN ({values}))",
                BOOLEAN,
                operand.aliases,
            )
        if choice < 0.78:
            operand = self.string(0)
            fragment = rng.choice(_WORDS)[: rng.randint(1, 3)]
            pattern = rng.choice(
                [f"{fragment}%", f"%{fragment}%", f"%{fragment}",
                 f"{fragment}_%"]
            )
            negated = "NOT " if rng.random() < 0.3 else ""
            return GenExpr(
                f"({operand.sql} {negated}LIKE '{pattern}')",
                BOOLEAN,
                operand.aliases,
            )
        if choice < 0.85:
            pool = self._cols(BOOLEAN)
            if pool:
                alias, col = rng.choice(pool)
                return GenExpr(
                    f"{alias}.{col.name}",
                    BOOLEAN,
                    frozenset({alias}),
                )
            # fall through to a string comparison below
        if choice < 0.93 or not self.allow_subqueries:
            left = self.string(0)
            right = self.string(0)
            op = rng.choice(["=", "<>", "<", ">"])
            return GenExpr(
                f"({left.sql} {op} {right.sql})",
                BOOLEAN,
                left.aliases | right.aliases,
            )
        # Uncorrelated IN-subquery over a same-typed base column.
        operand = self.column_ref(INTEGER, VARCHAR)
        candidates = [
            (t, c)
            for t in self.tables
            for c in t.columns
            if c.sql_type == operand.sql_type
        ]
        table, col = rng.choice(candidates)
        negated = "NOT " if rng.random() < 0.3 else ""
        return GenExpr(
            f"({operand.sql} {negated}IN "
            f"(SELECT {col.name} FROM {table.name}))",
            BOOLEAN,
            operand.aliases,
        )

    # -- aggregates --------------------------------------------------------

    def aggregate(self) -> GenExpr:
        rng = self.rng
        choice = rng.random()
        if choice < 0.2:
            return GenExpr("count(*)", INTEGER)
        if choice < 0.35:
            operand = self.column_ref()
            distinct = "DISTINCT " if rng.random() < 0.3 else ""
            return GenExpr(
                f"count({distinct}{operand.sql})",
                INTEGER,
                operand.aliases,
            )
        if choice < 0.55:
            operand = self.column_ref(INTEGER)
            distinct = "DISTINCT " if rng.random() < 0.2 else ""
            return GenExpr(
                f"sum({distinct}{operand.sql})",
                INTEGER,
                operand.aliases,
            )
        if choice < 0.7:
            operand = self.numeric(1)
            return GenExpr(
                f"avg({operand.sql})", FLOAT, operand.aliases
            )
        if choice < 0.8:
            operand = self.numeric(1, force_float=True)
            return GenExpr(
                f"sum({operand.sql})", FLOAT, operand.aliases
            )
        func = rng.choice(["min", "max"])
        operand = self.column_ref(INTEGER, VARCHAR, FLOAT)
        return GenExpr(
            f"{func}({operand.sql})",
            operand.sql_type,
            operand.aliases,
        )

    def having_predicate(self) -> GenExpr:
        rng = self.rng
        agg = rng.choice(
            ["count(*)", "min(1)", None]
        )
        if agg is None:
            inner = self.column_ref(INTEGER)
            agg = f"max({inner.sql})"
            aliases = inner.aliases
        else:
            aliases = frozenset()
        op = rng.choice([">", ">=", "<", "<=", "=", "<>"])
        return GenExpr(
            f"({agg} {op} {rng.randint(0, 5)})", BOOLEAN, aliases
        )


# ---------------------------------------------------------------------------
# AST-level expression grammar (round-trip testing)
# ---------------------------------------------------------------------------

#: Columns assumed by :func:`random_ast_expr` (names only; round-trip
#: testing never binds them against a catalog).
_AST_COLUMNS = ["a", "b", "c", "val", "name"]
_AST_TABLES = [None, "t", "u"]


def random_ast_expr(rng: random.Random, depth: int = 3) -> ast.Expr:
    """A random expression AST from the generator's grammar, built from
    the same node constructors the parser uses — so rendering it with
    :func:`expr_to_sql` and reparsing must reproduce it exactly."""
    if depth <= 0:
        return _ast_leaf(rng)
    choice = rng.randrange(10)
    if choice == 0:
        return _ast_leaf(rng)
    if choice == 1:
        op = rng.choice(["+", "-", "*", "/", "%", "^", "||"])
        return ast.Binary(
            op,
            random_ast_expr(rng, depth - 1),
            random_ast_expr(rng, depth - 1),
        )
    if choice == 2:
        op = rng.choice(["=", "<>", "<", "<=", ">", ">=", "and", "or"])
        return ast.Binary(
            op,
            random_ast_expr(rng, depth - 1),
            random_ast_expr(rng, depth - 1),
        )
    if choice == 3:
        return ast.Unary("not", random_ast_expr(rng, depth - 1))
    if choice == 4:
        name = rng.choice(
            ["abs", "coalesce", "nullif", "least", "length", "lower"]
        )
        n_args = 1 if name in ("abs", "length", "lower") else 2
        return ast.FunctionCall(
            name,
            [random_ast_expr(rng, depth - 1) for _ in range(n_args)],
        )
    if choice == 5:
        return ast.Cast(
            random_ast_expr(rng, depth - 1),
            rng.choice(["integer", "float", "varchar", "boolean"]),
        )
    if choice == 6:
        whens = [
            (
                random_ast_expr(rng, depth - 1),
                random_ast_expr(rng, depth - 1),
            )
            for _ in range(rng.randint(1, 2))
        ]
        else_result = (
            random_ast_expr(rng, depth - 1)
            if rng.random() < 0.7
            else None
        )
        return ast.Case(None, whens, else_result)
    if choice == 7:
        return ast.IsNull(
            random_ast_expr(rng, depth - 1),
            negated=rng.random() < 0.5,
        )
    if choice == 8:
        return ast.Between(
            random_ast_expr(rng, depth - 1),
            _ast_leaf(rng),
            _ast_leaf(rng),
            negated=rng.random() < 0.5,
        )
    return ast.InList(
        random_ast_expr(rng, depth - 1),
        [_ast_leaf(rng) for _ in range(rng.randint(1, 3))],
        negated=rng.random() < 0.5,
    )


def _ast_leaf(rng: random.Random) -> ast.Expr:
    choice = rng.randrange(6)
    if choice == 0:
        return ast.Literal(rng.randint(-99, 99))
    if choice == 1:
        return ast.Literal(round(rng.uniform(0.1, 99.9), 3))
    if choice == 2:
        return ast.Literal(rng.choice(_WORDS))
    if choice == 3:
        return ast.Literal(rng.choice([None, True, False]))
    name = rng.choice(_AST_COLUMNS)
    table = rng.choice(_AST_TABLES)
    return ast.ColumnRef(name=name, table=table)


def expr_to_sql(expr: ast.Expr) -> str:
    """Render an expression AST back to parseable SQL text.

    Fully parenthesized, so rendering is precedence-independent; the
    parser drops the parentheses again (grouping has no AST node),
    which is exactly what makes the round-trip equality exact.
    """
    if isinstance(expr, ast.Literal):
        return _render_literal(expr.value)
    if isinstance(expr, ast.ColumnRef):
        return (
            f"{expr.table}.{expr.name}" if expr.table else expr.name
        )
    if isinstance(expr, ast.Unary):
        op = "NOT" if expr.op == "not" else expr.op
        return f"({op} {expr_to_sql(expr.operand)})"
    if isinstance(expr, ast.Binary):
        op = expr.op.upper() if expr.op in ("and", "or") else expr.op
        return (
            f"({expr_to_sql(expr.left)} {op} "
            f"{expr_to_sql(expr.right)})"
        )
    if isinstance(expr, ast.FunctionCall):
        args = ", ".join(expr_to_sql(a) for a in expr.args)
        distinct = "DISTINCT " if expr.distinct else ""
        return f"{expr.name}({distinct}{args})"
    if isinstance(expr, ast.Cast):
        width = f"({expr.width})" if expr.width is not None else ""
        return (
            f"CAST({expr_to_sql(expr.operand)} AS "
            f"{expr.type_name}{width})"
        )
    if isinstance(expr, ast.Case):
        parts = ["CASE"]
        if expr.operand is not None:
            parts.append(expr_to_sql(expr.operand))
        for condition, result in expr.whens:
            parts.append(
                f"WHEN {expr_to_sql(condition)} "
                f"THEN {expr_to_sql(result)}"
            )
        if expr.else_result is not None:
            parts.append(f"ELSE {expr_to_sql(expr.else_result)}")
        parts.append("END")
        return "(" + " ".join(parts) + ")"
    if isinstance(expr, ast.IsNull):
        negated = "NOT " if expr.negated else ""
        return f"({expr_to_sql(expr.operand)} IS {negated}NULL)"
    if isinstance(expr, ast.Between):
        negated = "NOT " if expr.negated else ""
        return (
            f"({expr_to_sql(expr.operand)} {negated}BETWEEN "
            f"{expr_to_sql(expr.low)} AND {expr_to_sql(expr.high)})"
        )
    if isinstance(expr, ast.Like):
        negated = "NOT " if expr.negated else ""
        return (
            f"({expr_to_sql(expr.operand)} {negated}LIKE "
            f"{expr_to_sql(expr.pattern)})"
        )
    if isinstance(expr, ast.InList):
        items = ", ".join(expr_to_sql(i) for i in expr.items)
        negated = "NOT " if expr.negated else ""
        return f"({expr_to_sql(expr.operand)} {negated}IN ({items}))"
    raise TypeError(
        f"expr_to_sql: unsupported node {type(expr).__name__}"
    )
