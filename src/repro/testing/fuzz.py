"""Fuzzing CLI for the differential oracle.

Usage::

    python -m repro.testing.fuzz --seeds 1000
    python -m repro.testing.fuzz --seeds 1 --start 4242 -v

Exit status is 0 when every seed agrees with SQLite, 1 when any
divergence was found (minimized reproducers are printed), 2 on bad
arguments.
"""

from __future__ import annotations

import argparse
import sys
import time

from .oracle import run_seed


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.testing.fuzz",
        description=(
            "Differential fuzzing of repro.Database against SQLite."
        ),
    )
    parser.add_argument(
        "--seeds", type=int, default=100,
        help="number of seeds to run (default: 100)",
    )
    parser.add_argument(
        "--start", type=int, default=0,
        help="first seed (default: 0)",
    )
    parser.add_argument(
        "--queries-per-seed", type=int, default=3,
        help="queries generated per seed/schema (default: 3)",
    )
    parser.add_argument(
        "--no-minimize", action="store_true",
        help="report raw reproducers without shrinking",
    )
    parser.add_argument(
        "--no-subqueries", action="store_true",
        help="disable IN-subquery generation",
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help=(
            "worker threads for the repro engine; >1 fuzzes the "
            "morsel-driven parallel paths (tiny morsels, no "
            "cardinality threshold) against SQLite (default: 1)"
        ),
    )
    parser.add_argument(
        "--cache-check", action="store_true",
        help=(
            "run every statement three ways on the repro side — cold, "
            "plan-cached, and on a cache-disabled twin database — and "
            "fail on any divergence between the legs"
        ),
    )
    parser.add_argument(
        "--chaos", action="store_true",
        help=(
            "arm a seeded fault injector on the repro side per seed; "
            "injected aborts are tolerated but every later query must "
            "still agree with SQLite (statement atomicity)"
        ),
    )
    parser.add_argument(
        "--encoding-check", action="store_true",
        help=(
            "run every statement on encoded-storage and raw-storage "
            "twin databases and fail if they disagree on rows or "
            "errors (exercises dictionary/RLE/FOR columns and the "
            "predicate-on-codes paths)"
        ),
    )
    parser.add_argument(
        "--topn-check", action="store_true",
        help=(
            "run every statement on a twin database with top-N sort "
            "fusion disabled (full sort + limit) and fail if the "
            "ordered output is not bit-identical, ties included"
        ),
    )
    parser.add_argument(
        "--durability-check", action="store_true",
        help=(
            "run every statement on a WAL-backed twin database, then "
            "recover a fresh database from that WAL and fail if the "
            "round-tripped committed state differs from the live twin "
            "(exercises WAL v2 framing, replay grouping, and "
            "checkpoint/restore; docs/durability.md)"
        ),
    )
    parser.add_argument(
        "--schema", choices=["default", "strings"], default="default",
        help=(
            "schema profile; 'strings' generates string-heavy, "
            "low-cardinality tables that stress dictionary encoding "
            "(default: default)"
        ),
    )
    parser.add_argument(
        "-v", "--verbose", action="store_true",
        help="progress line every 50 seeds",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help=(
            "print a metrics snapshot after the run (queries run, "
            "divergences, rows compared, engine counters)"
        ),
    )
    args = parser.parse_args(argv)
    if args.seeds < 1 or args.queries_per_seed < 1 or args.workers < 1:
        parser.print_usage(sys.stderr)
        return 2

    started = time.perf_counter()
    n_divergences = 0
    for offset in range(args.seeds):
        seed = args.start + offset
        divergences = run_seed(
            seed,
            queries_per_seed=args.queries_per_seed,
            minimize=not args.no_minimize,
            allow_subqueries=not args.no_subqueries,
            workers=args.workers,
            cache_check=args.cache_check,
            chaos=args.chaos,
            encoding_check=args.encoding_check,
            topn_check=args.topn_check,
            durability_check=args.durability_check,
            schema_profile=args.schema,
        )
        for divergence in divergences:
            n_divergences += 1
            print(divergence.report())
            print()
        if args.verbose and (offset + 1) % 50 == 0:
            elapsed = time.perf_counter() - started
            print(
                f"... {offset + 1}/{args.seeds} seeds "
                f"({elapsed:.1f}s, {n_divergences} divergence(s))",
                file=sys.stderr,
            )

    elapsed = time.perf_counter() - started
    total = args.seeds * args.queries_per_seed
    if args.profile:
        _print_profile()
    if n_divergences:
        print(
            f"FAIL: {n_divergences} divergence(s) in {total} queries "
            f"across {args.seeds} seed(s) ({elapsed:.1f}s)"
        )
        return 1
    print(
        f"OK: {total} queries across {args.seeds} seed(s) agree "
        f"with SQLite ({elapsed:.1f}s)"
    )
    return 0


def _print_profile() -> None:
    """Summarize the run's metrics (fuzz counters first, then every
    engine counter the workload touched)."""
    from ..obs.metrics import global_registry

    snapshot = global_registry().snapshot()
    counters = snapshot["counters"]
    print("-- fuzz profile --")
    for name in (
        "fuzz_queries_total",
        "fuzz_divergences_total",
        "fuzz_rows_compared_total",
    ):
        print(f"{name} {counters.get(name, 0)}")
    for series, value in sorted(counters.items()):
        if not series.startswith("fuzz_"):
            print(f"{series} {value}")


if __name__ == "__main__":
    sys.exit(main())
