"""Kill-point crash-recovery battery (docs/durability.md).

Proves the durability contract — *every acknowledged commit survives a
crash, and recovery always lands on a prefix-consistent committed
state* — by actually crashing processes:

1. A **driver** subprocess (``--driver``) replays a seeded,
   deterministic DML workload against a durable
   :class:`repro.Database` and journals one JSON line to stdout per
   *acknowledged* commit (``{"i": k, "wal_bytes": n}``), flushed
   before the next statement starts.
2. The harness injects one seeded fault per run:

   - ``kill_at_bytes`` — the child SIGKILLs itself mid-append the
     moment the WAL crosses a random byte count
     (``REPRO_WAL_KILL_AT_BYTES``), leaving a genuinely torn frame;
   - ``kill_after_ack`` — the harness SIGKILLs the child at a random
     acknowledged-commit count, mid-statement-stream;
   - ``torn_truncate`` — after a kill, the log is truncated at a
     random offset **at or past the acknowledged prefix** (simulating
     an unfsynced tail vanishing — fsync means bytes *before* the last
     ack can never be torn);
   - ``fsync_fail`` — the Nth commit fsync raises
     (``REPRO_WAL_FSYNC_FAIL``); the driver verifies the log poisons
     itself (further commits refuse) and exits without acknowledging;
   - ``corrupt_flip`` — a random byte of the completed log is
     bit-flipped (detection test: bit rot, not a crash);
   - ``corrupt_snapshot`` — a checkpoint is forced and a random byte
     of the ``.ckpt`` is flipped (recovery must *fail typed*, never
     silently serve partial data).

3. The harness recovers the survivor and diffs its full state against
   a twin that replayed only a prefix of the workload: the recovered
   state must equal ``prefix[K]`` for some ``K >= acknowledged`` (kill
   faults) — unacknowledged trailing commits may survive, acknowledged
   ones must. Corruption faults are detection-only: any prefix is
   acceptable, but data loss must be *signalled* (discard counters in
   ``db.last_recovery``, or a typed ``WalCorruptionError`` whose
   recovery failure leaves a loadable flight-recorder bundle).
4. Every recovered database must still be writable-and-durable: a
   probe table is committed, the database reopened, and the probe row
   checked.

Usage::

    python -m repro.testing.crash --seeds 200
    python -m repro.testing.crash --seeds 1 --start 17 -v

Exit status 0 when every seed upholds the contract, 1 otherwise.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import random
import signal
import subprocess
import sys
import tempfile
import time

WORDS = (
    "alpha", "bravo", "china", "delta", "echo", "fox",
    "golf", "hotel", "india", "jazz", "kilo", "lima",
)

FAULT_KINDS = (
    "kill_at_bytes",
    "kill_after_ack",
    "torn_truncate",
    "fsync_fail",
    "corrupt_flip",
    "corrupt_snapshot",
)

#: Fault kinds whose workload may include explicit CHECKPOINT ops
#: (byte-offset faults need a monotonically growing log to stay
#: meaningful, so they exclude them).
_CHECKPOINT_OK = ("kill_after_ack", "fsync_fail", "corrupt_snapshot")


# ---------------------------------------------------------------------------
# deterministic workload (shared by driver, harness reference, and twin)
# ---------------------------------------------------------------------------


def build_workload(seed: int, allow_checkpoints: bool) -> list[dict]:
    """The seed's operation list — pure function of its arguments, so
    the driver subprocess and the harness twin derive the same one."""
    rng = random.Random(seed)
    ops: list[dict] = []
    tables = [f"t{i}" for i in range(rng.choice((1, 2)))]
    for name in tables:
        ops.append({"kind": "create", "table": name})
    next_id = {name: 0 for name in tables}

    def fresh_rows(name: str, n: int) -> list[list]:
        rows = []
        for _ in range(n):
            i = next_id[name]
            next_id[name] += 1
            rows.append([i, rng.choice(WORDS), rng.randint(0, 100)])
        return rows

    for _ in range(rng.randint(10, 22)):
        name = rng.choice(tables)
        roll = rng.random()
        if roll < 0.55 or next_id[name] == 0:
            ops.append(
                {
                    "kind": "insert",
                    "table": name,
                    "rows": fresh_rows(name, rng.randint(1, 5)),
                }
            )
        elif roll < 0.75:
            ops.append(
                {
                    "kind": "update",
                    "table": name,
                    "cut": rng.randint(0, 100),
                    "word": rng.choice(WORDS),
                }
            )
        elif roll < 0.90:
            ops.append(
                {"kind": "delete", "table": name, "cut": rng.randint(0, 100)}
            )
        elif allow_checkpoints:
            ops.append({"kind": "checkpoint"})
        else:
            ops.append(
                {"kind": "insert", "table": name, "rows": fresh_rows(name, 1)}
            )
    return ops


def apply_op(db, op: dict, durable: bool) -> None:
    """Apply one workload operation (one autocommitted transaction)."""
    kind = op["kind"]
    if kind == "create":
        db.execute(
            f"CREATE TABLE {op['table']} "
            "(id INTEGER, word VARCHAR, score INTEGER)"
        )
    elif kind == "insert":
        db.insert_rows(op["table"], [tuple(r) for r in op["rows"]])
    elif kind == "update":
        db.execute(
            f"UPDATE {op['table']} SET word = '{op['word']}' "
            f"WHERE score < {op['cut']}"
        )
    elif kind == "delete":
        db.execute(
            f"DELETE FROM {op['table']} WHERE score > {op['cut']}"
        )
    elif kind == "checkpoint":
        if durable:
            db.checkpoint()
    else:  # pragma: no cover - workload generator and apply_op co-evolve
        raise ValueError(f"unknown workload op {kind!r}")


def dump_state(db) -> dict:
    """Full committed state as ``{table: sorted rows}`` (JSON-stable)."""
    out = {}
    for name in db.catalog.table_names():
        rows = [list(r) for r in db.catalog.data(name).rows()]
        out[name] = sorted(rows, key=repr)
    return out


# ---------------------------------------------------------------------------
# driver (the process that gets crashed)
# ---------------------------------------------------------------------------


def run_driver(seed: int, wal_path: str, allow_checkpoints: bool) -> int:
    import repro
    from repro.errors import TransactionError

    ops = build_workload(seed, allow_checkpoints)
    db = repro.Database(wal_path=wal_path, workers=1)
    for i, op in enumerate(ops):
        try:
            apply_op(db, op, durable=True)
        except TransactionError as exc:
            # A failed commit fsync must poison the log: later commits
            # have to refuse rather than ack on an unknowable prefix.
            # The probe commit must not depend on any workload table —
            # the failed commit may have been the CREATE TABLE itself.
            try:
                db.execute("CREATE TABLE poison_probe (id INTEGER)")
                poison_ok = False
            except TransactionError:
                poison_ok = True
            print(
                json.dumps(
                    {"panic": str(exc), "i": i, "poison_ok": poison_ok}
                ),
                flush=True,
            )
            return 3
        # The commit was acknowledged: journal it *after* it is durable.
        print(
            json.dumps({"i": i, "wal_bytes": db.txns.wal.size_bytes()}),
            flush=True,
        )
    print(json.dumps({"done": True}), flush=True)
    return 0


# ---------------------------------------------------------------------------
# harness
# ---------------------------------------------------------------------------


def _spawn_driver(
    seed: int,
    wal_path: str,
    allow_checkpoints: bool,
    encoding: str,
    extra_env: dict,
) -> subprocess.Popen:
    src_dir = os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )
    env = {
        k: v
        for k, v in os.environ.items()
        if not k.startswith("REPRO_")
    }
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_ENCODING"] = encoding
    env["REPRO_WORKERS"] = "1"
    env.update(extra_env)
    argv = [
        sys.executable, "-m", "repro.testing.crash",
        "--driver", "--seed", str(seed), "--wal", wal_path,
    ]
    if allow_checkpoints:
        argv.append("--allow-checkpoints")
    return subprocess.Popen(
        argv, env=env, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
        text=True,
    )


def _read_acks(proc, kill_after: int | None = None) -> tuple[list[dict], dict | None]:
    """Drain the driver's journal; optionally SIGKILL it after the
    ``kill_after``-th acknowledgement. Returns (acks, panic)."""
    acks: list[dict] = []
    panic = None
    while True:
        line = proc.stdout.readline()
        if not line:
            break
        try:
            entry = json.loads(line)
        except json.JSONDecodeError:
            continue
        if "panic" in entry:
            panic = entry
            continue
        if "done" in entry:
            continue
        acks.append(entry)
        if kill_after is not None and len(acks) >= kill_after:
            try:
                os.kill(proc.pid, signal.SIGKILL)
            except OSError:
                pass
            # Keep draining: acks already flushed stay valid.
            kill_after = None
    proc.wait(timeout=60)
    return acks, panic


def _flip_byte(path: str, offset: int) -> None:
    with open(path, "r+b") as handle:
        handle.seek(offset)
        byte = handle.read(1)
        handle.seek(offset)
        handle.write(bytes((byte[0] ^ 0x40,)))


def _loadable_bundles(flight_dir: str) -> int:
    """How many loadable flight bundles ``flight_dir`` holds; -1 when a
    bundle exists but does not validate."""
    from ..obs.flight import load_bundle

    paths = sorted(glob.glob(os.path.join(flight_dir, "*.json")))
    for path in paths:
        try:
            load_bundle(path)
        except (OSError, ValueError):
            return -1
    return len(paths)


def run_crash_seed(seed: int, verbose: bool = False) -> list[str]:
    """Run one seeded crash scenario end to end; returns failure
    descriptions (empty = contract upheld)."""
    import repro
    from repro.errors import WalCorruptionError

    failures: list[str] = []
    rng = random.Random(seed * 7919 + 13)
    kind = FAULT_KINDS[rng.randrange(len(FAULT_KINDS))]
    recovery = rng.choice(("tolerant", "tolerant", "strict"))
    encoding = rng.choice(("auto", "raw"))
    allow_ckpt = kind in _CHECKPOINT_OK and rng.random() < 0.5
    ops = build_workload(seed, allow_ckpt)
    label = f"seed {seed} [{kind}, {recovery}, {encoding}]"

    with tempfile.TemporaryDirectory(prefix="repro-crash-") as tmp:
        # Reference run: per-prefix states plus per-op WAL byte counts.
        ref_wal = os.path.join(tmp, "ref", "db.wal")
        os.makedirs(os.path.dirname(ref_wal))
        ref = repro.Database(wal_path=ref_wal, workers=1, encoding=encoding)
        states = [dump_state(ref)]
        ref_bytes = []
        for op in ops:
            apply_op(ref, op, durable=True)
            states.append(dump_state(ref))
            ref_bytes.append(ref.txns.wal.size_bytes())
        ref.close()

        wal_path = os.path.join(tmp, "subject", "db.wal")
        os.makedirs(os.path.dirname(wal_path))
        extra_env = {}
        kill_after = None
        if kind == "kill_at_bytes":
            extra_env["REPRO_WAL_KILL_AT_BYTES"] = str(
                rng.randint(9, max(10, ref_bytes[-1] + 64))
            )
        elif kind == "fsync_fail":
            extra_env["REPRO_WAL_FSYNC_FAIL"] = str(
                rng.randint(1, len(ops))
            )
        elif kind in ("kill_after_ack", "torn_truncate"):
            kill_after = rng.randint(1, max(1, len(ops) - 1))
        elif kind == "corrupt_snapshot":
            # Guarantee a snapshot exists by checkpointing eagerly.
            extra_env["REPRO_CHECKPOINT_BYTES"] = "64"

        proc = _spawn_driver(seed, wal_path, allow_ckpt, encoding, extra_env)
        acks, panic = _read_acks(proc, kill_after=kill_after)
        acked = len(acks)

        if kind == "fsync_fail":
            if panic is None and proc.returncode == 0:
                # The injected fsync landed on a checkpoint-rewrite or
                # never fired: nothing to check beyond a clean run.
                pass
            elif panic is None:
                failures.append(f"{label}: driver died without a panic")
            elif not panic.get("poison_ok"):
                failures.append(
                    f"{label}: WAL accepted a commit after a failed fsync"
                )

        # Inject the post-mortem faults.
        if kind == "torn_truncate" and os.path.exists(wal_path):
            size = os.path.getsize(wal_path)
            floor = acks[-1]["wal_bytes"] if acks else 8
            if floor <= size:
                os.truncate(wal_path, rng.randint(floor, size))
        elif kind == "corrupt_flip" and os.path.exists(wal_path):
            size = os.path.getsize(wal_path)
            if size > 9:
                _flip_byte(wal_path, rng.randint(8, size - 1))
        elif kind == "corrupt_snapshot":
            snap = wal_path + ".ckpt"
            if not os.path.exists(snap):
                failures.append(f"{label}: forced checkpoint never fired")
                return failures
            size = os.path.getsize(snap)
            _flip_byte(snap, rng.randint(9, size - 1))

        # Recover and judge.
        flight_dir = os.path.join(tmp, "flightrec")
        corrupt_fault = kind in ("corrupt_flip", "corrupt_snapshot")
        db = None
        try:
            db = repro.Database(
                wal_path=wal_path, workers=1, encoding=encoding,
                recovery=recovery, flight_dir=flight_dir,
            )
        except WalCorruptionError:
            if not corrupt_fault:
                failures.append(
                    f"{label}: WalCorruptionError without injected "
                    "corruption"
                )
            bundles = _loadable_bundles(flight_dir)
            if bundles <= 0:
                failures.append(
                    f"{label}: recovery failure left no loadable "
                    f"flight bundle ({bundles})"
                )
            return failures
        except Exception as exc:  # noqa: BLE001 — contract verdict
            failures.append(
                f"{label}: recovery died untyped: "
                f"{type(exc).__name__}: {exc}"
            )
            return failures

        state = dump_state(db)
        floor_k = 0 if corrupt_fault else acked
        match = next(
            (
                k
                for k in range(floor_k, len(states))
                if states[k] == state
            ),
            None,
        )
        if match is None:
            failures.append(
                f"{label}: recovered state is not prefix-consistent "
                f"(acked {acked}/{len(ops)}); "
                f"last_recovery={db.last_recovery}"
            )
        elif corrupt_fault and match < len(ops) and kind == "corrupt_flip":
            # Data went missing: it must have been *signalled*.
            rec = db.last_recovery
            if not (
                rec["records_discarded"]
                or rec["bytes_discarded"]
                or rec["torn_bytes"]
            ):
                failures.append(
                    f"{label}: corruption dropped commits silently: "
                    f"{rec}"
                )

        # The survivor must still be writable — and durably so.
        try:
            db.execute("CREATE TABLE probe (id INTEGER)")
            db.insert_rows("probe", [(seed,)])
            db.close()
            db2 = repro.Database(
                wal_path=wal_path, workers=1, encoding=encoding,
                recovery=recovery, flight_dir=flight_dir,
            )
            rows = db2.execute("SELECT id FROM probe").rows
            if rows != [(seed,)]:
                failures.append(
                    f"{label}: post-recovery commit lost on reopen "
                    f"({rows!r})"
                )
            db2.close()
        except Exception as exc:  # noqa: BLE001 — contract verdict
            failures.append(
                f"{label}: survivor unusable: "
                f"{type(exc).__name__}: {exc}"
            )
        if verbose and not failures:
            print(
                f"  {label}: ok (acked {acked}/{len(ops)}, "
                f"prefix {match})",
                file=sys.stderr,
            )
    return failures


def run_crash_battery(
    seeds: int, start: int = 0, jobs: int = 1, verbose: bool = False
) -> list[str]:
    """Run ``seeds`` scenarios (optionally ``jobs``-wide — each seed is
    fully independent); returns all failures."""
    failures: list[str] = []
    if jobs <= 1:
        for offset in range(seeds):
            failures.extend(run_crash_seed(start + offset, verbose))
        return failures
    from concurrent.futures import ThreadPoolExecutor

    with ThreadPoolExecutor(max_workers=jobs) as pool:
        for result in pool.map(
            lambda s: run_crash_seed(s, verbose),
            range(start, start + seeds),
        ):
            failures.extend(result)
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.testing.crash",
        description="Kill-point crash-recovery battery.",
    )
    parser.add_argument(
        "--seeds", type=int, default=50,
        help="number of scenarios to run (default: 50)",
    )
    parser.add_argument(
        "--start", type=int, default=0, help="first seed (default: 0)"
    )
    parser.add_argument(
        "--jobs", type=int, default=4,
        help="concurrent scenarios (default: 4)",
    )
    parser.add_argument(
        "-v", "--verbose", action="store_true",
        help="one line per passing seed",
    )
    parser.add_argument(
        "--driver", action="store_true", help=argparse.SUPPRESS
    )
    parser.add_argument("--seed", type=int, help=argparse.SUPPRESS)
    parser.add_argument("--wal", help=argparse.SUPPRESS)
    parser.add_argument(
        "--allow-checkpoints", action="store_true", help=argparse.SUPPRESS
    )
    args = parser.parse_args(argv)

    if args.driver:
        if args.seed is None or not args.wal:
            parser.print_usage(sys.stderr)
            return 2
        return run_driver(args.seed, args.wal, args.allow_checkpoints)

    if args.seeds < 1 or args.jobs < 1:
        parser.print_usage(sys.stderr)
        return 2
    started = time.perf_counter()
    failures = run_crash_battery(
        args.seeds, start=args.start, jobs=args.jobs, verbose=args.verbose
    )
    elapsed = time.perf_counter() - started
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        print(
            f"FAIL: {len(failures)} violation(s) across {args.seeds} "
            f"crash seed(s) ({elapsed:.1f}s)"
        )
        return 1
    print(
        f"OK: {args.seeds} crash seed(s) upheld the durability "
        f"contract ({elapsed:.1f}s)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
