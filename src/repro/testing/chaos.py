"""Deterministic chaos-injection harness (docs/robustness.md).

A :class:`ChaosInjector` is a seeded, fire-once fault injector hooked
into the three places a statement can die mid-flight:

* ``on_checkpoint`` — the governor's cooperative checkpoint, called at
  every morsel / iteration-round boundary. Kinds ``operator_raise``
  (raise :class:`~repro.errors.InjectedFault` at the Nth checkpoint)
  and ``cancel`` (fire the statement's cancel token at the Nth
  checkpoint, surfacing as :class:`~repro.errors.QueryCancelled`).
* ``on_alloc`` — the governor's memory ledger. Kind ``alloc_fail``
  raises :class:`~repro.errors.MemoryBudgetExceeded` at the Nth
  reservation, simulating an allocation failure at a pipeline breaker.
* ``on_worker_task`` — the worker pool's task entry. Kind
  ``worker_crash`` raises :class:`~repro.errors.WorkerCrashError` on
  the Nth task that lands on a non-coordinator thread; the pool retries
  the morsel serially, so the statement *succeeds* and the injection
  proves the pool survives a crashed worker.

The seed fully determines (kind, Nth, database configuration), so a
failing seed replays exactly: ``python -m repro.testing.chaos --seeds 1
--start <seed>``.

:func:`run_chaos_seed` is the oracle: it runs a statement battery
covering the serial, fused, parallel, ITERATE, recursive-CTE and
analytics paths against a chaos-armed *subject* database, mirrors every
*successful* statement onto an untouched *twin*, and requires

1. every statement to either succeed (matching the twin's rows) or fail
   with a typed governor error, and
2. after the injected fault, a differential probe suite (including a
   plan-cached re-run) to answer identically on subject and twin, with
   no transaction left open — statement atomicity.

Enable engine-wide via ``REPRO_CHAOS=<seed>`` (or ``<kind>:<nth>``) or
per-database via ``Database(chaos=ChaosInjector(...))``; the fuzzer
grows a ``--chaos`` flag that arms a fresh injector per fuzz seed.
"""

from __future__ import annotations

import argparse
import os
import random
import sys
import threading
import time
from typing import Optional

from ..errors import (
    InjectedFault,
    MemoryBudgetExceeded,
    ResourceGovernorError,
    WorkerCrashError,
)

#: The injectable fault kinds, in the order the seed RNG draws from.
KINDS = ("operator_raise", "cancel", "alloc_fail", "worker_crash")

#: Per-kind range for the Nth call that fires, sized to the number of
#: hook calls the battery actually makes on that path.
_NTH_RANGES = {
    "operator_raise": (1, 20),
    "cancel": (1, 20),
    "alloc_fail": (1, 6),
    "worker_crash": (1, 8),
}


class ChaosInjector:
    """Seeded, fire-once fault injection.

    The injector starts *disarmed* so databases can be populated
    fault-free; :meth:`arm` turns the hooks live. All counters are
    lock-protected (checkpoints run on worker threads too), and the
    fire decision happens under the same lock so exactly one call
    fires.
    """

    def __init__(self, kind: str, nth: int, seed: Optional[int] = None):
        if kind not in KINDS:
            raise ValueError(f"unknown chaos kind {kind!r}")
        self.kind = kind
        self.nth = max(1, int(nth))
        self.seed = seed
        self.armed = False
        self.fired = False
        self.fired_at: Optional[str] = None
        self._lock = threading.Lock()
        self._checkpoint_calls = 0
        self._alloc_calls = 0
        self._worker_calls = 0

    def __repr__(self) -> str:
        return (
            f"ChaosInjector(kind={self.kind!r}, nth={self.nth}, "
            f"seed={self.seed}, fired={self.fired})"
        )

    @classmethod
    def from_seed(cls, seed: int) -> "ChaosInjector":
        rng = random.Random(int(seed))
        kind = rng.choice(KINDS)
        lo, hi = _NTH_RANGES[kind]
        return cls(kind, rng.randint(lo, hi), seed=int(seed))

    @classmethod
    def from_env(cls, environ=None) -> Optional["ChaosInjector"]:
        """An injector from ``REPRO_CHAOS``, or None when unset/``0``.

        Accepts a numeric seed (``REPRO_CHAOS=17``) or an explicit
        ``kind:nth`` pair (``REPRO_CHAOS=cancel:3``). Env-configured
        injectors come back already armed."""
        value = (environ if environ is not None else os.environ).get(
            "REPRO_CHAOS", ""
        ).strip()
        if not value or value == "0":
            return None
        if ":" in value:
            kind, _, nth = value.partition(":")
            injector = cls(kind, int(nth))
        else:
            injector = cls.from_seed(int(value))
        injector.arm()
        return injector

    def arm(self) -> "ChaosInjector":
        self.armed = True
        return self

    def _take_shot(self, counter: str) -> bool:
        """Increment ``counter`` and decide, atomically, whether this
        call is the one that fires."""
        with self._lock:
            if self.fired:
                return False
            count = getattr(self, counter) + 1
            setattr(self, counter, count)
            if count < self.nth:
                return False
            self.fired = True
            return True

    # -- hooks (called from governor / worker pool) ----------------------

    def on_checkpoint(self, governor, where: str) -> None:
        if not self.armed or self.kind not in ("operator_raise", "cancel"):
            return
        if not self._take_shot("_checkpoint_calls"):
            return
        self.fired_at = where
        if self.kind == "cancel":
            # The enclosing check() observes the token immediately and
            # raises QueryCancelled — a cancel landing mid-round.
            governor.cancel_token.cancel()
            return
        raise governor._fail(
            "injected_fault",
            InjectedFault(
                f"chaos: injected fault at checkpoint {where!r} "
                f"(seed={self.seed}, nth={self.nth})"
            ),
        )

    def on_alloc(self, governor, nbytes: int, where: str) -> None:
        if not self.armed or self.kind != "alloc_fail":
            return
        if not self._take_shot("_alloc_calls"):
            return
        self.fired_at = where
        raise governor._fail(
            "oom",
            MemoryBudgetExceeded(
                f"chaos: injected allocation failure of {nbytes} bytes "
                f"at {where!r} (seed={self.seed}, nth={self.nth})"
            ),
        )

    def on_worker_task(self, worker_id: int) -> None:
        if not self.armed or self.kind != "worker_crash":
            return
        # Only crash genuine worker threads: the serial retry on the
        # coordinator must succeed, proving the pool survives.
        if worker_id == 0:
            return
        if not self._take_shot("_worker_calls"):
            return
        # Which pool thread picks up the Nth task is scheduling noise;
        # keep fired_at seed-deterministic (the error message carries
        # the id for debugging).
        self.fired_at = "worker_task"
        raise WorkerCrashError(
            f"chaos: injected crash on worker {worker_id} "
            f"(seed={self.seed}, nth={self.nth})"
        )


# ---------------------------------------------------------------------------
# The chaos oracle
# ---------------------------------------------------------------------------

#: The probe suite run on subject and twin after the battery; results
#: must match exactly (the subject's fault must leave no trace).
PROBES = (
    ("SELECT count(*), sum(amount) FROM sales", False),
    ("SELECT region, count(*) FROM sales GROUP BY region "
     "ORDER BY region", True),
    ("SELECT count(*) FROM regions", False),
    ("SELECT vertex, rank FROM PAGERANK((SELECT src, dst FROM edges), "
     "0.85, 0.000001) ORDER BY vertex", True),
    ("SELECT s.id, r.name FROM sales s JOIN regions r "
     "ON s.region = r.id ORDER BY s.id LIMIT 10", True),
)


def _battery(seed_rng: random.Random) -> list[tuple[str, bool]]:
    """The (sql, ordered) statements thrown at the subject, covering
    the serial, fused, parallel, ITERATE, recursive-CTE and analytics
    execution paths. Order is seed-shuffled so the Nth hook call lands
    in a different operator per seed."""
    statements = [
        # serial / fused scan-filter-project pipelines
        ("SELECT id, amount * 2 FROM sales WHERE amount > 10 "
         "ORDER BY id LIMIT 50", True),
        ("SELECT region, count(*), sum(amount) FROM sales "
         "GROUP BY region ORDER BY region", True),
        # join + sort
        ("SELECT s.id, r.name FROM sales s JOIN regions r "
         "ON s.region = r.id ORDER BY s.id LIMIT 20", True),
        # window
        ("SELECT id, sum(amount) OVER (PARTITION BY region ORDER BY id) "
         "FROM sales ORDER BY id LIMIT 20", True),
        # set op + distinct
        ("SELECT region FROM sales UNION SELECT id FROM regions", False),
        # ITERATE (paper section 5.1)
        ("SELECT * FROM ITERATE((SELECT 1 AS x),"
         " (SELECT x + 1 FROM iterate),"
         " (SELECT x FROM iterate WHERE x >= 12))", False),
        # recursive CTE
        ("WITH RECURSIVE t(n) AS (SELECT 1 UNION ALL "
         "SELECT n + 1 FROM t WHERE n < 15) SELECT sum(n) FROM t",
         False),
        # analytics: PageRank over the edge table
        ("SELECT vertex, rank FROM PAGERANK("
         "(SELECT src, dst FROM edges), 0.85, 0.000001) "
         "ORDER BY vertex", True),
        # DML mid-battery: atomicity under faults
        ("UPDATE sales SET amount = amount + 1 WHERE id < 40", False),
        ("INSERT INTO sales SELECT id + 1000, region, amount "
         "FROM sales WHERE id < 20", False),
        ("DELETE FROM sales WHERE id >= 1000", False),
    ]
    seed_rng.shuffle(statements)
    return statements


def _populate(db) -> None:
    rng = random.Random(97)
    db.execute(
        "CREATE TABLE sales (id INTEGER, region INTEGER, amount INTEGER)"
    )
    db.execute("CREATE TABLE regions (id INTEGER, name VARCHAR)")
    db.execute("CREATE TABLE edges (src INTEGER, dst INTEGER)")
    db.insert_rows(
        "sales",
        [(i, i % 7, rng.randint(0, 500)) for i in range(300)],
    )
    db.insert_rows("regions", [(i, f"region-{i}") for i in range(7)])
    db.insert_rows(
        "edges",
        [
            (rng.randint(0, 60), rng.randint(0, 60))
            for _ in range(400)
        ],
    )


def _build_pair(
    seed: int, injector: "ChaosInjector", flight_dir: Optional[str] = None
):
    """(subject, twin) databases with identical data; the subject
    carries the (still disarmed) injector. Worker-crash seeds force a
    parallel pool; other kinds draw the worker count from the seed so
    the battery covers serial and parallel dispatch. ``flight_dir``
    points both sessions' flight recorders at a scratch directory so
    the oracle can assert every injected abort leaves a bundle."""
    from ..api.database import Database

    rng = random.Random(seed ^ 0x9E3779B9)
    if injector.kind == "worker_crash":
        workers = 2
    else:
        workers = rng.choice((1, 1, 2))
    config = dict(
        workers=workers,
        parallel_threshold=0 if workers > 1 else None,
        morsel_rows=64,
        profile_operators=False,
        flight_dir=flight_dir,
    )
    config = {k: v for k, v in config.items() if v is not None}
    subject = Database(chaos=injector, **config)
    twin = Database(**config)
    _populate(subject)
    _populate(twin)
    return subject, twin, rng


def _check_flight_bundle(subject, bundles_seen: int, what: str) -> list[str]:
    """Assert the subject's flight recorder wrote one more loadable
    bundle than ``bundles_seen`` — part of the engine's failure
    contract: every injected abort must leave a post-mortem behind."""
    from ..obs.flight import load_bundle

    if subject.flight.bundles_written <= bundles_seen:
        return [f"no flight-recorder bundle for {what}"]
    try:
        load_bundle(subject.flight.last_bundle_path)
    except (OSError, ValueError) as exc:
        return [f"flight bundle for {what} not loadable: {exc}"]
    return []


def run_chaos_seed(seed: int) -> dict:
    """Run one seeded injection and its oracle.

    Returns a dict with ``seed``, ``kind``, ``nth``, ``fired`` and a
    (hopefully empty) ``failures`` list of oracle violations."""
    import tempfile

    from .oracle import normalize_rows, rows_equal

    injector = ChaosInjector.from_seed(seed)
    flight_tmp = tempfile.TemporaryDirectory(prefix="repro-chaos-flight-")
    subject, twin, rng = _build_pair(seed, injector, flight_tmp.name)
    failures: list[str] = []
    faults: list[str] = []
    bundles_seen = 0
    try:
        injector.arm()
        for sql, ordered in _battery(rng):
            try:
                subject_rows = normalize_rows(
                    subject.execute(sql).rows, ordered
                )
            except (ResourceGovernorError, InjectedFault) as exc:
                # Typed governor family: the expected way to die. The
                # flight recorder must have dumped a loadable bundle.
                faults.append(f"{type(exc).__name__}: {sql[:60]}")
                failures.extend(
                    _check_flight_bundle(
                        subject, bundles_seen,
                        f"{type(exc).__name__} on {sql[:60]!r}",
                    )
                )
                bundles_seen = subject.flight.bundles_written
                continue
            except Exception as exc:  # noqa: BLE001 — oracle verdict
                failures.append(
                    f"untyped error from {sql!r}: "
                    f"{type(exc).__name__}: {exc}"
                )
                continue
            # Success: mirror onto the twin; rows must agree.
            twin_rows = normalize_rows(twin.execute(sql).rows, ordered)
            if not rows_equal(subject_rows, twin_rows, ordered):
                failures.append(
                    f"result divergence on {sql!r}: "
                    f"{len(subject_rows)} vs {len(twin_rows)} row(s)"
                )
        injector.armed = False
        if injector.fired and injector.kind == "worker_crash":
            # The statement *succeeded* (serial retry), so the dump on
            # the survived crash is the only evidence it happened.
            failures.extend(
                _check_flight_bundle(
                    subject, 0, "survived worker crash"
                )
            )

        # -- post-fault oracle: subject must answer like the twin ----
        if subject._session_txn is not None:
            failures.append("subject left with an open transaction")
        for sql, ordered in PROBES:
            try:
                subject_rows = normalize_rows(
                    subject.execute(sql).rows, ordered
                )
                twin_rows = normalize_rows(
                    twin.execute(sql).rows, ordered
                )
            except Exception as exc:  # noqa: BLE001 — oracle verdict
                failures.append(
                    f"probe raised {type(exc).__name__} on {sql!r}: "
                    f"{exc}"
                )
                continue
            if not rows_equal(subject_rows, twin_rows, ordered):
                failures.append(
                    f"probe divergence on {sql!r}: "
                    f"{len(subject_rows)} vs {len(twin_rows)} row(s)"
                )
        # Plan-cache consistency: a cached re-run of the first probe
        # must match its own first answer.
        sql, ordered = PROBES[0]
        first = normalize_rows(subject.execute(sql).rows, ordered)
        second = normalize_rows(subject.execute(sql).rows, ordered)
        if first != second:
            failures.append("cached re-run diverged from cold run")
    finally:
        subject.close()
        twin.close()
        flight_tmp.cleanup()
    return {
        "seed": seed,
        "kind": injector.kind,
        "nth": injector.nth,
        "fired": injector.fired,
        "fired_at": injector.fired_at,
        "faults": faults,
        "failures": failures,
    }


def run_chaos_battery(
    seeds: int, start: int = 1, verbose: bool = False
) -> dict:
    """Run ``seeds`` consecutive seeded injections; returns a summary
    with total ``fired`` count and all oracle ``failures``."""
    fired = 0
    failures: list[str] = []
    per_kind: dict[str, int] = {k: 0 for k in KINDS}
    started = time.perf_counter()
    for offset in range(seeds):
        seed = start + offset
        result = run_chaos_seed(seed)
        if result["fired"]:
            fired += 1
            per_kind[result["kind"]] += 1
        for failure in result["failures"]:
            failures.append(f"seed {seed}: {failure}")
        if verbose and (offset + 1) % 50 == 0:
            elapsed = time.perf_counter() - started
            print(
                f"... {offset + 1}/{seeds} seeds "
                f"({fired} fired, {len(failures)} failure(s), "
                f"{elapsed:.1f}s)",
                file=sys.stderr,
            )
    return {
        "seeds": seeds,
        "fired": fired,
        "per_kind": per_kind,
        "failures": failures,
        "elapsed_s": time.perf_counter() - started,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.testing.chaos",
        description=(
            "Seeded chaos injection against repro.Database with a "
            "differential-twin oracle."
        ),
    )
    parser.add_argument(
        "--seeds", type=int, default=100,
        help="number of seeds to run (default: 100)",
    )
    parser.add_argument(
        "--start", type=int, default=1,
        help="first seed (default: 1)",
    )
    parser.add_argument(
        "-v", "--verbose", action="store_true",
        help="progress line every 50 seeds",
    )
    args = parser.parse_args(argv)
    if args.seeds < 1:
        parser.print_usage(sys.stderr)
        return 2

    summary = run_chaos_battery(
        args.seeds, start=args.start, verbose=args.verbose
    )
    for failure in summary["failures"]:
        print(f"FAILURE: {failure}")
    kinds = ", ".join(
        f"{kind}={count}" for kind, count in summary["per_kind"].items()
    )
    status = "FAIL" if summary["failures"] else "OK"
    print(
        f"{status}: {summary['fired']}/{summary['seeds']} seeds fired "
        f"({kinds}); {len(summary['failures'])} oracle failure(s) "
        f"({summary['elapsed_s']:.1f}s)"
    )
    return 1 if summary["failures"] else 0


if __name__ == "__main__":
    sys.exit(main())
