"""Deterministic TPC-H-shaped dataset for the SQL battery.

A miniature decision-support schema — region, nation, supplier, part,
customer, orders, lineitem — whose column shapes mirror TPC-H closely
enough that the classic query patterns (multi-way joins over the key
chain, group-by with CASE aggregates, date-range filters, correlated
subqueries) all make sense, while staying small enough to cross-check
row-for-row against SQLite in a tier-1 test run.

Everything is a pure function of ``(scale, seed)`` via one
:class:`random.Random`, so the battery's expectations never drift.
The data stays inside the differential dialect (see generator.py):
strings are lowercase ASCII, dates are integer day numbers, floats are
rounded to two decimals, and integers stay far inside int32.

The low-cardinality flag/status/mode/segment columns are exactly the
shape the dictionary encoder targets, so the same dataset doubles as
the footprint benchmark workload.
"""

from __future__ import annotations

import random

from .generator import FLOAT, INTEGER, VARCHAR, GenColumn, GenTable

#: TPC-H's date domain, as day numbers (1992-01-01..1998-12-01 is
#: roughly day 8035..10561 since 1970-01-01; exact anchors don't
#: matter, only that queries and data agree on the window).
DATE_LO = 8035
DATE_HI = 10561

_REGIONS = ["africa", "america", "asia", "europe", "middle east"]

#: (nation name, region key) — 25 nations, 5 per region.
_NATIONS = [
    ("algeria", 0), ("ethiopia", 0), ("kenya", 0),
    ("morocco", 0), ("mozambique", 0),
    ("argentina", 1), ("brazil", 1), ("canada", 1),
    ("peru", 1), ("united states", 1),
    ("china", 2), ("india", 2), ("indonesia", 2),
    ("japan", 2), ("vietnam", 2),
    ("france", 3), ("germany", 3), ("romania", 3),
    ("russia", 3), ("united kingdom", 3),
    ("egypt", 4), ("iran", 4), ("iraq", 4),
    ("jordan", 4), ("saudi arabia", 4),
]

_SEGMENTS = [
    "automobile", "building", "furniture", "household", "machinery",
]
_PRIORITIES = [
    "1-urgent", "2-high", "3-medium", "4-not specified", "5-low",
]
_SHIPMODES = ["air", "fob", "mail", "rail", "reg air", "ship", "truck"]
_SHIPINSTRUCT = [
    "collect cod", "deliver in person", "none", "take back return",
]
_CONTAINERS = [
    "jumbo box", "lg case", "med bag", "sm pack", "wrap jar",
]
_BRANDS = [f"brand#{i}{j}" for i in (1, 2, 3, 4, 5) for j in (1, 3, 5)]
_TYPE_PREFIX = ["economy", "large", "medium", "promo", "small", "standard"]
_TYPE_MID = ["anodized", "brushed", "burnished", "plated", "polished"]
_TYPE_SUFFIX = ["brass", "copper", "nickel", "steel", "tin"]
_ORDER_STATUS = ["f", "o", "p"]


def generate(scale: float = 1.0, seed: int = 7) -> list[GenTable]:
    """The seven-table dataset at ``scale`` (1.0 ≈ 300 orders, ~1200
    lineitems). Returns :class:`GenTable` objects ready for the
    differential harness (``build_repro_db`` / ``build_sqlite_db``)."""
    rng = random.Random(seed * 1_000_003 + round(scale * 1000))

    n_supplier = max(4, round(40 * scale))
    n_part = max(8, round(80 * scale))
    n_customer = max(6, round(60 * scale))
    n_orders = max(20, round(300 * scale))

    region = GenTable(
        "region",
        [GenColumn("r_regionkey", INTEGER), GenColumn("r_name", VARCHAR)],
        [(i, name) for i, name in enumerate(_REGIONS)],
    )

    nation = GenTable(
        "nation",
        [
            GenColumn("n_nationkey", INTEGER),
            GenColumn("n_name", VARCHAR),
            GenColumn("n_regionkey", INTEGER),
        ],
        [
            (i, name, regionkey)
            for i, (name, regionkey) in enumerate(_NATIONS)
        ],
    )

    supplier = GenTable(
        "supplier",
        [
            GenColumn("s_suppkey", INTEGER),
            GenColumn("s_name", VARCHAR),
            GenColumn("s_nationkey", INTEGER),
            GenColumn("s_acctbal", FLOAT),
        ],
        [
            (
                k,
                f"supplier#{k:06d}",
                rng.randrange(len(_NATIONS)),
                round(rng.uniform(-999.99, 9999.99), 2),
            )
            for k in range(1, n_supplier + 1)
        ],
    )

    part_rows = []
    for k in range(1, n_part + 1):
        p_type = (
            f"{rng.choice(_TYPE_PREFIX)} {rng.choice(_TYPE_MID)} "
            f"{rng.choice(_TYPE_SUFFIX)}"
        )
        part_rows.append(
            (
                k,
                f"part#{k:06d}",
                f"manufacturer#{rng.randint(1, 5)}",
                rng.choice(_BRANDS),
                p_type,
                rng.randint(1, 50),
                rng.choice(_CONTAINERS),
                round(900.0 + k + rng.uniform(0.0, 100.0), 2),
            )
        )
    part = GenTable(
        "part",
        [
            GenColumn("p_partkey", INTEGER),
            GenColumn("p_name", VARCHAR),
            GenColumn("p_mfgr", VARCHAR),
            GenColumn("p_brand", VARCHAR),
            GenColumn("p_type", VARCHAR),
            GenColumn("p_size", INTEGER),
            GenColumn("p_container", VARCHAR),
            GenColumn("p_retailprice", FLOAT),
        ],
        part_rows,
    )

    customer = GenTable(
        "customer",
        [
            GenColumn("c_custkey", INTEGER),
            GenColumn("c_name", VARCHAR),
            GenColumn("c_nationkey", INTEGER),
            GenColumn("c_acctbal", FLOAT),
            GenColumn("c_mktsegment", VARCHAR),
        ],
        [
            (
                k,
                f"customer#{k:06d}",
                rng.randrange(len(_NATIONS)),
                round(rng.uniform(-999.99, 9999.99), 2),
                rng.choice(_SEGMENTS),
            )
            for k in range(1, n_customer + 1)
        ],
    )

    orders_rows = []
    lineitem_rows = []
    for orderkey in range(1, n_orders + 1):
        orderdate = rng.randint(DATE_LO, DATE_HI - 151)
        status = rng.choice(_ORDER_STATUS)
        n_lines = rng.randint(1, 7)
        total = 0.0
        for linenumber in range(1, n_lines + 1):
            partkey = rng.randint(1, n_part)
            quantity = rng.randint(1, 50)
            retail = part_rows[partkey - 1][7]
            extendedprice = round(quantity * retail, 2)
            discount = round(rng.randint(0, 10) / 100.0, 2)
            tax = round(rng.randint(0, 8) / 100.0, 2)
            shipdate = orderdate + rng.randint(1, 121)
            commitdate = orderdate + rng.randint(30, 90)
            receiptdate = shipdate + rng.randint(1, 30)
            returnflag = (
                rng.choice(["a", "r"]) if receiptdate <= 9400 else "n"
            )
            linestatus = "f" if shipdate <= 9400 else "o"
            total += extendedprice
            lineitem_rows.append(
                (
                    orderkey,
                    partkey,
                    rng.randint(1, n_supplier),
                    linenumber,
                    quantity,
                    extendedprice,
                    discount,
                    tax,
                    returnflag,
                    linestatus,
                    shipdate,
                    commitdate,
                    receiptdate,
                    rng.choice(_SHIPMODES),
                    rng.choice(_SHIPINSTRUCT),
                )
            )
        orders_rows.append(
            (
                orderkey,
                rng.randint(1, n_customer),
                status,
                round(total, 2),
                orderdate,
                rng.choice(_PRIORITIES),
            )
        )

    orders = GenTable(
        "orders",
        [
            GenColumn("o_orderkey", INTEGER),
            GenColumn("o_custkey", INTEGER),
            GenColumn("o_orderstatus", VARCHAR),
            GenColumn("o_totalprice", FLOAT),
            GenColumn("o_orderdate", INTEGER),
            GenColumn("o_orderpriority", VARCHAR),
        ],
        orders_rows,
    )

    lineitem = GenTable(
        "lineitem",
        [
            GenColumn("l_orderkey", INTEGER),
            GenColumn("l_partkey", INTEGER),
            GenColumn("l_suppkey", INTEGER),
            GenColumn("l_linenumber", INTEGER),
            GenColumn("l_quantity", INTEGER),
            GenColumn("l_extendedprice", FLOAT),
            GenColumn("l_discount", FLOAT),
            GenColumn("l_tax", FLOAT),
            GenColumn("l_returnflag", VARCHAR),
            GenColumn("l_linestatus", VARCHAR),
            GenColumn("l_shipdate", INTEGER),
            GenColumn("l_commitdate", INTEGER),
            GenColumn("l_receiptdate", INTEGER),
            GenColumn("l_shipmode", VARCHAR),
            GenColumn("l_shipinstruct", VARCHAR),
        ],
        lineitem_rows,
    )

    return [region, nation, supplier, part, customer, orders, lineitem]
