"""Differential oracle: our engine vs an in-memory SQLite mirror.

Both engines load identical data (from the generator's table specs),
run the same generated query, and must produce the same *normalized*
result. Normalization bridges representation differences that are not
semantic: numpy scalars vs Python scalars, booleans vs SQLite's 0/1,
float rounding noise (different summation orders), and row order when
the query doesn't pin a total order.

On divergence the oracle shrinks the query (dropping clauses, items,
joins) and then the data (dropping rows) while the divergence persists,
so the reported reproducer is close to minimal.
"""

from __future__ import annotations

import copy
import math
import os
import sqlite3
from dataclasses import dataclass, field
from typing import Iterable, Optional

import numpy as np

from ..api.database import Database
from ..errors import InjectedFault, ReproError, ResourceGovernorError
from ..obs.metrics import global_registry
from .generator import (
    BOOLEAN,
    FLOAT,
    GenQuery,
    GenTable,
    INTEGER,
    QueryGenerator,
    VARCHAR,
)

_SQLITE_TYPES = {
    INTEGER: "INTEGER",
    FLOAT: "REAL",
    VARCHAR: "TEXT",
    BOOLEAN: "INTEGER",
}

#: Tolerances for float comparison: generated data is O(100) and row
#: counts are O(100), so genuine equality holds far tighter than this.
_ABS_TOL = 1e-6
_REL_TOL = 1e-6


# ---------------------------------------------------------------------------
# Result normalization
# ---------------------------------------------------------------------------


def normalize_value(value: object) -> object:
    """Engine-independent canonical form of one result cell."""
    if value is None:
        return None
    if isinstance(value, np.generic):
        value = value.item()
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, float):
        if math.isnan(value):
            return "NaN"
        if value == 0.0:  # merge -0.0 and +0.0
            return 0.0
        return value
    return value


def _sort_key(row: tuple) -> tuple:
    """Total order over normalized rows of mixed types (bag compare)."""
    key = []
    for value in row:
        if value is None:
            key.append((0, ""))
        elif isinstance(value, (int, float)):
            key.append((1, float(value)))
        else:
            key.append((2, str(value)))
    return tuple(key)


def normalize_rows(
    rows: Iterable[tuple], ordered: bool
) -> list[tuple]:
    out = [
        tuple(normalize_value(v) for v in row) for row in rows
    ]
    if not ordered:
        out.sort(key=_sort_key)
    return out


def _values_match(left: object, right: object) -> bool:
    if isinstance(left, float) and isinstance(right, (int, float)):
        return math.isclose(
            left, float(right), rel_tol=_REL_TOL, abs_tol=_ABS_TOL
        )
    if isinstance(right, float) and isinstance(left, (int, float)):
        return math.isclose(
            float(left), right, rel_tol=_REL_TOL, abs_tol=_ABS_TOL
        )
    return left == right


def rows_equal(
    left: list[tuple], right: list[tuple], ordered: bool
) -> bool:
    """Compare two *normalized* result sets.

    Exact match first; on mismatch, floats get a tolerance pass —
    after aligning by sort order when the comparison is unordered
    (tiny float noise rarely flips the sort in only one engine: the
    generator keeps float expressions out of anything order-critical).
    """
    if left == right:
        return True
    if len(left) != len(right):
        return False
    for lrow, rrow in zip(left, right):
        if len(lrow) != len(rrow):
            return False
        for lval, rval in zip(lrow, rrow):
            if not _values_match(lval, rval):
                return False
    return True


# ---------------------------------------------------------------------------
# Engine harnesses
# ---------------------------------------------------------------------------


def build_repro_db(
    tables: list[GenTable],
    workers: int = 1,
    plan_cache: Optional[bool] = None,
    chaos=None,
    encoding: Optional[str] = None,
    topn: Optional[bool] = None,
    wal_path: Optional[str] = None,
) -> Database:
    # profile_operators=False takes the production operator shapes —
    # notably the serial fused pipeline, which profiled plans bypass —
    # so the differential corpus covers the hot path.
    if workers > 1:
        # Force the parallel paths even on fuzz-sized tables: no
        # cardinality threshold and tiny morsels, so every generated
        # query genuinely dispatches multi-morsel pipelines.
        db = Database(
            workers=workers, parallel_threshold=0, morsel_rows=32,
            profile_operators=False, plan_cache=plan_cache,
            chaos=chaos, encoding=encoding, topn=topn,
            wal_path=wal_path,
        )
    else:
        # Tiny morsels here too: multi-morsel fused pipelines and the
        # all-morsels-pruned path get differential coverage.
        db = Database(
            workers=1, morsel_rows=32,
            profile_operators=False, plan_cache=plan_cache,
            chaos=chaos, encoding=encoding, topn=topn,
            wal_path=wal_path,
        )
    for table in tables:
        db.execute(table.ddl())
        if table.rows:
            db.insert_rows(table.name, table.rows)
    return db


def build_sqlite_db(tables: list[GenTable]) -> sqlite3.Connection:
    conn = sqlite3.connect(":memory:")
    for table in tables:
        cols = ", ".join(
            f"{c.name} {_SQLITE_TYPES[c.sql_type]}"
            for c in table.columns
        )
        conn.execute(f"CREATE TABLE {table.name} ({cols})")
        if table.rows:
            placeholders = ", ".join("?" * len(table.columns))
            converted = [
                tuple(
                    int(v) if isinstance(v, bool) else v
                    for v in row
                )
                for row in table.rows
            ]
            conn.executemany(
                f"INSERT INTO {table.name} VALUES ({placeholders})",
                converted,
            )
    conn.commit()
    return conn


# ---------------------------------------------------------------------------
# Divergences
# ---------------------------------------------------------------------------


@dataclass
class Divergence:
    """One observed disagreement, carrying a standalone reproducer."""

    seed: int
    query_index: int
    kind: str  # "result" | "error"
    sql: str
    tables: list[GenTable]
    detail: str
    repro_rows: Optional[list[tuple]] = None
    sqlite_rows: Optional[list[tuple]] = None

    def report(self) -> str:
        lines = [
            f"=== divergence (seed={self.seed}, "
            f"query={self.query_index}, kind={self.kind}) ===",
            f"-- reproduce: python -m repro.testing.fuzz "
            f"--seeds 1 --start {self.seed}",
            "-- schema + data:",
        ]
        for table in self.tables:
            lines.append(f"{table.ddl()};")
            lines.extend(
                f"{stmt};" for stmt in table.insert_statements()
            )
        lines.append("-- query:")
        lines.append(f"{self.sql};")
        lines.append(f"-- {self.detail}")
        if self.repro_rows is not None:
            lines.append(f"-- repro rows:  {self.repro_rows[:10]}")
        if self.sqlite_rows is not None:
            lines.append(f"-- sqlite rows: {self.sqlite_rows[:10]}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# The oracle
# ---------------------------------------------------------------------------


class DifferentialOracle:
    """Runs generated queries through both engines and compares.

    With ``cache_check`` the repro side runs three legs per statement —
    cold (populates the plan cache), cached (served from it), and a twin
    database with the whole hot-path stack disabled — and any
    disagreement between legs is a ``"cache"`` divergence.

    ``chaos_injector`` arms a seeded fault injector on the repro side
    *after* data population; statements aborted by the injected fault
    (the typed governor family) are not divergences — the oracle then
    checks that later statements still agree with SQLite, i.e. the
    fault left no partial state behind.

    With ``encoding_check`` the repro side additionally runs every
    statement on two storage twins — one forced to encoded columns
    (dictionary/RLE/FOR), one forced raw — and any disagreement between
    them is an ``"encoding"`` divergence, shrunk to a minimal
    reproducer exactly like an engine bug.

    With ``topn_check`` the repro side runs every statement on a twin
    with top-N sort fusion disabled (every ORDER BY + LIMIT takes the
    full-sort-then-limit path), and any disagreement — ties included,
    since the bounded sort is required to be bit-identical — is a
    ``"topn"`` divergence.

    With ``durability_check`` the repro side additionally maintains a
    WAL-backed twin: every statement runs on it too, and after each
    statement a *fresh* database is recovered from that WAL and its
    full committed state compared against the live twin — any
    round-trip loss through the log (or through checkpoint/replay) is
    a ``"durability"`` divergence (docs/durability.md)."""

    def __init__(
        self,
        tables: list[GenTable],
        workers: int = 1,
        cache_check: bool = False,
        chaos_injector=None,
        encoding_check: bool = False,
        topn_check: bool = False,
        durability_check: bool = False,
    ):
        self.tables = tables
        self.workers = workers
        self.cache_check = cache_check
        self.encoding_check = encoding_check
        self.topn_check = topn_check
        self.durability_check = durability_check
        # With the encoding twin active the primary runs forced-auto so
        # the comparison is encoded-vs-raw regardless of REPRO_ENCODING.
        self.db = build_repro_db(
            tables, workers=workers, chaos=chaos_injector,
            encoding="auto" if encoding_check else None,
        )
        if chaos_injector is not None:
            chaos_injector.arm()
        self.db_nocache = (
            build_repro_db(tables, workers=workers, plan_cache=False)
            if cache_check
            else None
        )
        self.db_raw = (
            build_repro_db(tables, workers=workers, encoding="raw")
            if encoding_check
            else None
        )
        self.db_fullsort = (
            build_repro_db(tables, workers=workers, topn=False)
            if topn_check
            else None
        )
        self._wal_dir = None
        self.db_durable = None
        if durability_check:
            import tempfile

            self._wal_dir = tempfile.TemporaryDirectory(
                prefix="repro-fuzz-wal-"
            )
            self._wal_path = os.path.join(self._wal_dir.name, "db.wal")
            self.db_durable = build_repro_db(
                tables, workers=workers, wal_path=self._wal_path
            )
        self.conn = build_sqlite_db(tables)

    def close(self) -> None:
        self.conn.close()
        self.db.close()
        if self.db_nocache is not None:
            self.db_nocache.close()
        if self.db_raw is not None:
            self.db_raw.close()
        if self.db_fullsort is not None:
            self.db_fullsort.close()
        if self.db_durable is not None:
            self.db_durable.close()
        if self._wal_dir is not None:
            self._wal_dir.cleanup()

    def _check_cache_legs(
        self, sql: str, ordered: bool, cold_rows: list[tuple]
    ) -> Optional[dict]:
        """Compare the cold run's rows against the cached re-run and
        the cache-disabled twin."""
        for leg, db in (
            ("cached", self.db),
            ("cache-disabled", self.db_nocache),
        ):
            try:
                rows = normalize_rows(db.execute(sql).rows, ordered)
            except (ResourceGovernorError, InjectedFault):
                # Chaos fault in a cache leg: abort, not a divergence.
                global_registry().counter(
                    "fuzz_chaos_faults_total"
                ).inc()
                return None
            except (ReproError, OverflowError, ValueError) as exc:
                return {
                    "kind": "cache",
                    "detail": (
                        f"{leg} leg raised where the cold run "
                        f"succeeded: {type(exc).__name__}: {exc}"
                    ),
                    "repro_rows": cold_rows,
                }
            if not rows_equal(cold_rows, rows, ordered):
                return {
                    "kind": "cache",
                    "detail": (
                        f"{leg} leg differs from the cold run: "
                        f"{len(cold_rows)} vs {len(rows)} row(s)"
                    ),
                    "repro_rows": cold_rows,
                    "sqlite_rows": rows,
                }
        return None

    def _check_encoding_leg(
        self, sql: str, ordered: bool, cold_rows: list[tuple]
    ) -> Optional[dict]:
        """Compare the (encoded) primary's rows against the raw-storage
        twin: encoding must change footprint, never results."""
        try:
            rows = normalize_rows(
                self.db_raw.execute(sql).rows, ordered
            )
        except (ResourceGovernorError, InjectedFault):
            global_registry().counter("fuzz_chaos_faults_total").inc()
            return None
        except (ReproError, OverflowError, ValueError) as exc:
            return {
                "kind": "encoding",
                "detail": (
                    f"raw-storage twin raised where the encoded run "
                    f"succeeded: {type(exc).__name__}: {exc}"
                ),
                "repro_rows": cold_rows,
            }
        if not rows_equal(cold_rows, rows, ordered):
            return {
                "kind": "encoding",
                "detail": (
                    f"encoded and raw storage disagree: "
                    f"{len(cold_rows)} vs {len(rows)} row(s)"
                ),
                "repro_rows": cold_rows,
                "sqlite_rows": rows,
            }
        return None

    def _check_topn_leg(
        self, sql: str, ordered: bool, cold_rows: list[tuple]
    ) -> Optional[dict]:
        """Compare the primary (top-N fusion enabled) against the
        full-sort twin. Ordered queries compare positionally, so a
        top-N that resolves ties differently from the stable full sort
        is caught as a divergence."""
        try:
            rows = normalize_rows(
                self.db_fullsort.execute(sql).rows, ordered
            )
        except (ResourceGovernorError, InjectedFault):
            global_registry().counter("fuzz_chaos_faults_total").inc()
            return None
        except (ReproError, OverflowError, ValueError) as exc:
            return {
                "kind": "topn",
                "detail": (
                    f"full-sort twin raised where the top-N run "
                    f"succeeded: {type(exc).__name__}: {exc}"
                ),
                "repro_rows": cold_rows,
            }
        if not rows_equal(cold_rows, rows, ordered):
            return {
                "kind": "topn",
                "detail": (
                    f"top-N and full-sort disagree: "
                    f"{len(cold_rows)} vs {len(rows)} row(s)"
                ),
                "repro_rows": cold_rows,
                "sqlite_rows": rows,
            }
        return None

    def _check_durability_leg(
        self, sql: str, ordered: bool, cold_rows: list[tuple]
    ) -> Optional[dict]:
        """Run the statement on the WAL-backed twin, then recover a
        fresh database from that WAL and require its full committed
        state to match the live twin's — the log must round-trip
        everything, after every statement."""
        try:
            rows = normalize_rows(
                self.db_durable.execute(sql).rows, ordered
            )
        except (ResourceGovernorError, InjectedFault):
            global_registry().counter("fuzz_chaos_faults_total").inc()
            return None
        except (ReproError, OverflowError, ValueError) as exc:
            return {
                "kind": "durability",
                "detail": (
                    f"WAL-backed twin raised where the primary "
                    f"succeeded: {type(exc).__name__}: {exc}"
                ),
                "repro_rows": cold_rows,
            }
        if not rows_equal(cold_rows, rows, ordered):
            return {
                "kind": "durability",
                "detail": (
                    f"WAL-backed twin differs from the primary: "
                    f"{len(cold_rows)} vs {len(rows)} row(s)"
                ),
                "repro_rows": cold_rows,
                "sqlite_rows": rows,
            }
        from .crash import dump_state

        recovered = Database(wal_path=self._wal_path, workers=1)
        try:
            live_state = dump_state(self.db_durable)
            rec_state = dump_state(recovered)
        finally:
            recovered.close()
        if live_state != rec_state:
            return {
                "kind": "durability",
                "detail": (
                    "state recovered from the WAL differs from the "
                    "live twin: "
                    + ", ".join(
                        f"{name}: {len(rec_state.get(name, []))} vs "
                        f"{len(live_state.get(name, []))} row(s)"
                        for name in sorted(
                            set(live_state) | set(rec_state)
                        )
                        if live_state.get(name) != rec_state.get(name)
                    )
                ),
                "repro_rows": cold_rows,
            }
        return None

    def check(self, query: GenQuery) -> Optional[dict]:
        """None when both engines agree; otherwise a dict describing
        the disagreement (used by :meth:`check_query` and the
        minimizer)."""
        return self._check_sql(query.to_sql(), query.ordered)

    def _check_sql(self, sql: str, ordered: bool) -> Optional[dict]:
        metrics = global_registry()
        metrics.counter("fuzz_queries_total").inc()
        repro_error = sqlite_error = None
        repro_rows = sqlite_rows = None
        try:
            repro_rows = normalize_rows(
                self.db.execute(sql).rows, ordered
            )
            metrics.counter("fuzz_rows_compared_total").inc(
                len(repro_rows)
            )
        except (ResourceGovernorError, InjectedFault):
            # A chaos-injected abort is not a semantic divergence; the
            # statement rolled back and later queries re-check state.
            metrics.counter("fuzz_chaos_faults_total").inc()
            return None
        except (ReproError, OverflowError, ValueError) as exc:
            repro_error = f"{type(exc).__name__}: {exc}"
        try:
            sqlite_rows = normalize_rows(
                self.conn.execute(sql).fetchall(), ordered
            )
        except sqlite3.Error as exc:
            sqlite_error = f"{type(exc).__name__}: {exc}"

        if repro_error is None and self.db_nocache is not None:
            cache_failure = self._check_cache_legs(
                sql, ordered, repro_rows
            )
            if cache_failure is not None:
                return cache_failure
        if repro_error is None and self.db_raw is not None:
            encoding_failure = self._check_encoding_leg(
                sql, ordered, repro_rows
            )
            if encoding_failure is not None:
                return encoding_failure
        if repro_error is None and self.db_fullsort is not None:
            topn_failure = self._check_topn_leg(
                sql, ordered, repro_rows
            )
            if topn_failure is not None:
                return topn_failure
        if repro_error is None and self.db_durable is not None:
            durability_failure = self._check_durability_leg(
                sql, ordered, repro_rows
            )
            if durability_failure is not None:
                return durability_failure
        if repro_error is None and sqlite_error is None:
            if rows_equal(repro_rows, sqlite_rows, ordered):
                return None
            return {
                "kind": "result",
                "detail": (
                    f"results differ: {len(repro_rows)} vs "
                    f"{len(sqlite_rows)} row(s)"
                ),
                "repro_rows": repro_rows,
                "sqlite_rows": sqlite_rows,
            }
        if repro_error is not None and sqlite_error is not None:
            # Both engines reject the statement: not a semantic
            # divergence (the generator overstepped both dialects).
            return None
        return {
            "kind": "error",
            "detail": (
                f"repro error: {repro_error}"
                if repro_error is not None
                else f"sqlite error: {sqlite_error}"
            ),
            "repro_rows": repro_rows,
            "sqlite_rows": sqlite_rows,
        }


# ---------------------------------------------------------------------------
# Minimization
# ---------------------------------------------------------------------------


def _query_variants(query: GenQuery) -> list[GenQuery]:
    """Candidate one-step shrinks of a query, all well-formed."""
    out = []

    def clone() -> GenQuery:
        return copy.deepcopy(query)

    if query.limit is not None:
        candidate = clone()
        candidate.limit = None
        candidate.offset = None
        out.append(candidate)
    if query.order_by:
        candidate = clone()
        candidate.order_by = []
        candidate.limit = None
        candidate.offset = None
        out.append(candidate)
    if query.set_op is not None:
        candidate = clone()
        candidate.set_op = None
        out.append(candidate)
    if query.having is not None:
        candidate = clone()
        candidate.having = None
        out.append(candidate)
    if query.distinct:
        candidate = clone()
        candidate.distinct = False
        out.append(candidate)
    for i in range(len(query.where)):
        candidate = clone()
        del candidate.where[i]
        out.append(candidate)
    # Select items: only in plain queries without set op (arms must
    # keep matching signatures; group keys stay tied to GROUP BY).
    if query.set_op is None and not query.group_by:
        for i in range(len(query.items)):
            if len(query.items) > 1:
                candidate = clone()
                del candidate.items[i]
                candidate.order_by = []
                candidate.limit = None
                candidate.offset = None
                out.append(candidate)
    # Aggregates beyond the group keys can drop one by one.
    if query.group_by and query.set_op is None:
        n_keys = len(query.group_by)
        for i in range(n_keys, len(query.items)):
            if len(query.items) > 1:
                candidate = clone()
                del candidate.items[i]
                candidate.order_by = []
                candidate.limit = None
                candidate.offset = None
                out.append(candidate)
    # Drop a join plus everything that references its alias.
    for i, join in enumerate(query.joins):
        alias = join.alias
        used = any(
            alias in item.aliases for item in query.items
        ) or any(alias in g.aliases for g in query.group_by)
        if query.having is not None and alias in query.having.aliases:
            used = True
        if used:
            continue
        candidate = clone()
        del candidate.joins[i]
        candidate.where = [
            p for p in candidate.where if alias not in p.aliases
        ]
        out.append(candidate)
    return out


def minimize_query(
    oracle: DifferentialOracle, query: GenQuery
) -> GenQuery:
    """Greedy shrink: keep applying the first one-step variant that
    still diverges, until none does."""
    current = query
    for _ in range(64):
        for candidate in _query_variants(current):
            if oracle.check(candidate) is not None:
                current = candidate
                break
        else:
            return current
    return current


def minimize_data(
    tables: list[GenTable],
    query: GenQuery,
    workers: int = 1,
    cache_check: bool = False,
    encoding_check: bool = False,
    topn_check: bool = False,
    durability_check: bool = False,
) -> list[GenTable]:
    """Drop row chunks (halves, then quarters, ...) from each table
    while the divergence persists. Rebuilds both engines per probe."""

    def diverges(candidate_tables: list[GenTable]) -> bool:
        oracle = DifferentialOracle(
            candidate_tables, workers=workers, cache_check=cache_check,
            encoding_check=encoding_check, topn_check=topn_check,
            durability_check=durability_check,
        )
        try:
            return oracle.check(query) is not None
        finally:
            oracle.close()

    current = copy.deepcopy(tables)
    for t_index in range(len(current)):
        chunk = max(len(current[t_index].rows) // 2, 1)
        while chunk >= 1:
            start = 0
            rows = current[t_index].rows
            progressed = False
            while start < len(rows):
                candidate = copy.deepcopy(current)
                del candidate[t_index].rows[start:start + chunk]
                if candidate[t_index].rows != rows and diverges(
                    candidate
                ):
                    current = candidate
                    rows = current[t_index].rows
                    progressed = True
                else:
                    start += chunk
            if not progressed or chunk == 1:
                chunk //= 2
            else:
                chunk = min(chunk, max(len(rows) // 2, 1))
    return current


# ---------------------------------------------------------------------------
# Seed-level driver (shared by tests and the fuzz CLI)
# ---------------------------------------------------------------------------


def run_seed(
    seed: int,
    queries_per_seed: int = 3,
    minimize: bool = True,
    allow_subqueries: bool = True,
    workers: int = 1,
    cache_check: bool = False,
    chaos: bool = False,
    encoding_check: bool = False,
    topn_check: bool = False,
    durability_check: bool = False,
    schema_profile: str = "default",
) -> list[Divergence]:
    """Run one seed's schema + queries; returns found divergences.

    ``workers > 1`` runs the repro side with a parallel pool (zero
    cardinality threshold, tiny morsels) so the differential corpus
    exercises the morsel-driven paths against SQLite. ``cache_check``
    additionally compares cold vs plan-cached vs cache-disabled
    executions of every statement. ``chaos`` arms a seeded fault
    injector on the repro side: the injected abort itself is tolerated,
    but every query after it must still agree with SQLite.
    ``encoding_check`` runs every statement on encoded-vs-raw storage
    twins; ``topn_check`` runs every statement on a full-sort twin
    (top-N fusion disabled) and requires bit-identical ordered output;
    ``durability_check`` keeps a WAL-backed twin and recovers a fresh
    database from its log after every statement, requiring the
    round-tripped state to match; ``schema_profile="strings"``
    generates the string-heavy, low-cardinality schemas that stress
    dictionary encoding."""
    generator = QueryGenerator(
        seed, allow_subqueries=allow_subqueries,
        schema_profile=schema_profile,
    )
    tables = generator.schema()
    chaos_injector = None
    if chaos:
        from .chaos import ChaosInjector

        chaos_injector = ChaosInjector.from_seed(seed)
    oracle = DifferentialOracle(
        tables, workers=workers, cache_check=cache_check,
        chaos_injector=chaos_injector, encoding_check=encoding_check,
        topn_check=topn_check, durability_check=durability_check,
    )
    divergences = []
    try:
        for index in range(queries_per_seed):
            query = generator.query(tables)
            failure = oracle.check(query)
            if failure is None:
                continue
            small_tables = tables
            if minimize:
                query = minimize_query(oracle, query)
                small_tables = minimize_data(
                    tables, query,
                    workers=workers, cache_check=cache_check,
                    encoding_check=encoding_check,
                    topn_check=topn_check,
                    durability_check=durability_check,
                )
                probe = DifferentialOracle(
                    small_tables,
                    workers=workers, cache_check=cache_check,
                    encoding_check=encoding_check,
                    topn_check=topn_check,
                    durability_check=durability_check,
                )
                try:
                    failure = probe.check(query) or failure
                finally:
                    probe.close()
            global_registry().counter("fuzz_divergences_total").inc()
            divergences.append(
                Divergence(
                    seed=seed,
                    query_index=index,
                    kind=failure["kind"],
                    sql=query.to_sql(),
                    tables=small_tables,
                    detail=failure["detail"],
                    repro_rows=failure.get("repro_rows"),
                    sqlite_rows=failure.get("sqlite_rows"),
                )
            )
    finally:
        oracle.close()
    return divergences


def run_seeds(
    seeds: Iterable[int],
    queries_per_seed: int = 3,
    minimize: bool = True,
    allow_subqueries: bool = True,
    workers: int = 1,
    cache_check: bool = False,
    chaos: bool = False,
    encoding_check: bool = False,
    topn_check: bool = False,
    durability_check: bool = False,
    schema_profile: str = "default",
) -> list[Divergence]:
    out = []
    for seed in seeds:
        out.extend(
            run_seed(
                seed,
                queries_per_seed=queries_per_seed,
                minimize=minimize,
                allow_subqueries=allow_subqueries,
                workers=workers,
                cache_check=cache_check,
                chaos=chaos,
                encoding_check=encoding_check,
                topn_check=topn_check,
                durability_check=durability_check,
                schema_profile=schema_profile,
            )
        )
    return out
