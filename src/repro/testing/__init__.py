"""Differential correctness tooling (generator + SQLite oracle).

The paper's layers — recursive-CTE SQL, ITERATE, physical operators —
must agree on results; this package provides the machinery to check our
whole SQL surface against a reference implementation:

* :mod:`repro.testing.generator` — a deterministic, schema-aware random
  SQL workload generator (seed in, queries out).
* :mod:`repro.testing.oracle` — runs each query through both our
  :class:`repro.Database` and an in-memory ``sqlite3`` mirror of the
  same data, normalizes both results, and minimizes reproducers on
  divergence.
* :mod:`repro.testing.fuzz` — the CLI entry point
  (``python -m repro.testing.fuzz --seeds N``).
"""

from .generator import (
    GenColumn,
    GenQuery,
    GenTable,
    QueryGenerator,
    expr_to_sql,
    random_ast_expr,
)
from .oracle import Divergence, DifferentialOracle, run_seed, run_seeds

__all__ = [
    "GenColumn",
    "GenQuery",
    "GenTable",
    "QueryGenerator",
    "expr_to_sql",
    "random_ast_expr",
    "Divergence",
    "DifferentialOracle",
    "run_seed",
    "run_seeds",
]
