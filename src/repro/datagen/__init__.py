"""Synthetic workload generators for the evaluation (paper section 8.1).

* :mod:`repro.datagen.vectors` — uniformly distributed vector datasets
  on the Table 1 grid (k-Means and Naive Bayes experiments).
* :mod:`repro.datagen.graphs` — LDBC-SNB-like undirected social graphs
  (PageRank experiments).
"""

from .vectors import (
    KMEANS_CLUSTER_SWEEP,
    KMEANS_DEFAULTS,
    KMEANS_DIMENSION_SWEEP,
    KMEANS_TUPLE_SWEEP,
    generate_labels,
    generate_vectors,
    load_vector_table,
    table1_experiments,
)
from .graphs import LDBC_SCALES, generate_social_graph, load_edge_table

__all__ = [
    "generate_vectors",
    "generate_labels",
    "load_vector_table",
    "table1_experiments",
    "KMEANS_TUPLE_SWEEP",
    "KMEANS_DIMENSION_SWEEP",
    "KMEANS_CLUSTER_SWEEP",
    "KMEANS_DEFAULTS",
    "generate_social_graph",
    "load_edge_table",
    "LDBC_SCALES",
]
