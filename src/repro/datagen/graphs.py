"""LDBC-SNB-like social graph generation.

The paper runs PageRank on the undirected person-knows-person graph of
the LDBC Social Network Benchmark at three sizes (section 8.1.3):

    11k vertices / 452k edges, 73k / 4.6M, 499k / 46M.

The original generator is an external Java tool; this module substitutes
a synthetic graph with the properties that matter for PageRank cost:
heavy-tailed degree distribution (social-network-like), undirected edges
stored in both directions, and the paper's vertex/edge ratios. A scale
factor shrinks both while keeping the average degree.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: The paper's three LDBC SNB scale points: (vertices, directed edges).
LDBC_SCALES = (
    (11_000, 452_000),
    (73_000, 4_600_000),
    (499_000, 46_000_000),
)

#: Zipf-ish exponent of the degree weight distribution.
DEGREE_SKEW = 0.6


@dataclass(frozen=True)
class GraphExperiment:
    """One PageRank evaluation point."""

    n_vertices: int
    n_edges: int  # directed edge count (both directions counted)

    def scaled(self, scale: float) -> "GraphExperiment":
        return GraphExperiment(
            max(int(self.n_vertices * scale), 16),
            max(int(self.n_edges * scale), 32),
        )


def graph_experiments(scale: float = 1.0) -> list[GraphExperiment]:
    return [
        GraphExperiment(v, e).scaled(scale) for v, e in LDBC_SCALES
    ]


def generate_social_graph(
    n_vertices: int, n_edges: int, seed: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """An undirected multigraph with skewed degrees.

    ``n_edges`` counts *directed* edges; the generator draws
    ``n_edges // 2`` undirected pairs with Zipf-weighted endpoints,
    drops self loops, guarantees every vertex at least one undirected
    edge (a ring backbone), and returns both directions.

    Returns (src, dst) int64 arrays of equal length ~ n_edges.
    """
    if n_vertices < 2:
        raise ValueError("need at least two vertices")
    rng = np.random.default_rng(seed)

    # Heavy-tailed endpoint weights over a shuffled vertex order.
    ranks = np.arange(1, n_vertices + 1, dtype=np.float64)
    weights = ranks ** (-DEGREE_SKEW)
    weights /= weights.sum()
    order = rng.permutation(n_vertices)

    undirected = max(n_edges // 2 - n_vertices, 0)
    a = order[rng.choice(n_vertices, size=undirected, p=weights)]
    b = order[rng.choice(n_vertices, size=undirected, p=weights)]
    loops = a == b
    if loops.any():
        b[loops] = (a[loops] + 1) % n_vertices

    # Ring backbone: every vertex has degree >= 2, so the relational
    # PageRank formulation (which drops isolated vertices) and the CSR
    # operator agree on the vertex set.
    ring_a = np.arange(n_vertices, dtype=np.int64)
    ring_b = (ring_a + 1) % n_vertices

    src_half = np.concatenate([a, ring_a]).astype(np.int64)
    dst_half = np.concatenate([b, ring_b]).astype(np.int64)
    src = np.concatenate([src_half, dst_half])
    dst = np.concatenate([dst_half, src_half])
    return src, dst


def load_edge_table(
    db, table: str, n_vertices: int, n_edges: int, seed: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Create and bulk-load an edge table; returns (src, dst)."""
    src, dst = generate_social_graph(n_vertices, n_edges, seed)
    db.execute(f"DROP TABLE IF EXISTS {table}")
    db.execute(f"CREATE TABLE {table} (src BIGINT, dest BIGINT)")
    db.load_columns(table, {"src": src, "dest": dst})
    return src, dst
