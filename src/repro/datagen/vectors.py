"""Uniform synthetic vector datasets — the Table 1 grid.

The paper evaluates k-Means over artificial, uniformly distributed data
("the performance of plain k-Means with a fixed number of iterations is
irrespective of data skew", section 8.1.1) on three sweeps sharing a
common center point (n=4M, d=10, k=5):

* tuples n ∈ {160k, 800k, 4M, 20M, 100M, 500M},
* dimensions d ∈ {3, 5, 10, 25, 50},
* clusters k ∈ {3, 5, 10, 25, 50}.

A scale factor shrinks n for laptop-sized runs while preserving the
sweep's shape; the default benchmark scale is 1/1000.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Paper sweep values (Table 1).
KMEANS_TUPLE_SWEEP = (
    160_000, 800_000, 4_000_000, 20_000_000, 100_000_000, 500_000_000
)
KMEANS_DIMENSION_SWEEP = (3, 5, 10, 25, 50)
KMEANS_CLUSTER_SWEEP = (3, 5, 10, 25, 50)
#: The shared center configuration connecting the three sweeps.
KMEANS_DEFAULTS = {"n": 4_000_000, "d": 10, "k": 5, "iterations": 3}


@dataclass(frozen=True)
class VectorExperiment:
    """One Table 1 row: a dataset size plus k-Means parameters."""

    sweep: str  # "tuples" | "dimensions" | "clusters"
    n: int
    d: int
    k: int
    iterations: int = 3

    def scaled(self, scale: float) -> "VectorExperiment":
        """Shrink the tuple count (only) by ``scale``; parameters that
        shape the computation per tuple (d, k, iterations) stay."""
        n = max(int(self.n * scale), 16)
        return VectorExperiment(self.sweep, n, self.d, self.k,
                                self.iterations)


def table1_experiments(scale: float = 1.0) -> list[VectorExperiment]:
    """The full Table 1 grid, optionally scaled."""
    experiments = []
    d0, k0 = KMEANS_DEFAULTS["d"], KMEANS_DEFAULTS["k"]
    n0 = KMEANS_DEFAULTS["n"]
    for n in KMEANS_TUPLE_SWEEP:
        experiments.append(VectorExperiment("tuples", n, d0, k0))
    for d in KMEANS_DIMENSION_SWEEP:
        experiments.append(VectorExperiment("dimensions", n0, d, k0))
    for k in KMEANS_CLUSTER_SWEEP:
        experiments.append(VectorExperiment("clusters", n0, d0, k))
    return [e.scaled(scale) for e in experiments]


def feature_names(d: int) -> list[str]:
    return [f"f{i}" for i in range(d)]


def generate_vectors(
    n: int, d: int, seed: int = 0
) -> dict[str, np.ndarray]:
    """Uniform [0, 1) columns ``f0..f{d-1}`` plus an ``id`` key column."""
    rng = np.random.default_rng(seed)
    columns: dict[str, np.ndarray] = {
        "id": np.arange(n, dtype=np.int64)
    }
    for name in feature_names(d):
        columns[name] = rng.random(n)
    return columns


def generate_labels(n: int, n_classes: int = 2, seed: int = 1) -> np.ndarray:
    """Uniformly distributed class labels (section 8.1.2: a uniform
    probability density over two labels 0 and 1)."""
    rng = np.random.default_rng(seed)
    return rng.integers(0, n_classes, size=n, dtype=np.int32)


def pick_initial_centers(
    columns: dict[str, np.ndarray], k: int, seed: int = 2
) -> dict[str, np.ndarray]:
    """Random selection of k rows as initial centers — the simplest
    initialization strategy, used for cross-system comparability
    (section 8.1.1)."""
    rng = np.random.default_rng(seed)
    n = len(columns["id"])
    chosen = rng.choice(n, size=min(k, n), replace=False)
    chosen.sort()
    centers = {"cid": np.arange(len(chosen), dtype=np.int64)}
    for name, values in columns.items():
        if name == "id":
            continue
        centers[name] = values[chosen]
    return centers


def load_vector_table(
    db,
    table: str,
    n: int,
    d: int,
    seed: int = 0,
    with_label: bool = False,
    n_classes: int = 2,
) -> dict[str, np.ndarray]:
    """Create and bulk-load a vector table; returns the raw columns."""
    columns = generate_vectors(n, d, seed)
    ddl_cols = ["id BIGINT"]
    if with_label:
        columns["label"] = generate_labels(n, n_classes, seed + 1)
        ddl_cols.append("label INTEGER")
    ddl_cols += [f"{name} FLOAT" for name in feature_names(d)]
    db.execute(f"DROP TABLE IF EXISTS {table}")
    db.execute(f"CREATE TABLE {table} ({', '.join(ddl_cols)})")
    db.load_columns(table, columns)
    return columns


def load_centers_table(
    db,
    table: str,
    data_columns: dict[str, np.ndarray],
    k: int,
    seed: int = 2,
) -> dict[str, np.ndarray]:
    """Create and load the initial-centers table for a dataset."""
    centers = pick_initial_centers(data_columns, k, seed)
    d = len(centers) - 1
    ddl_cols = ["cid BIGINT"] + [
        f"{name} FLOAT" for name in feature_names(d)
    ]
    db.execute(f"DROP TABLE IF EXISTS {table}")
    db.execute(f"CREATE TABLE {table} ({', '.join(ddl_cols)})")
    db.load_columns(table, centers)
    return centers
