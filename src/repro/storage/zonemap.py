"""Zone maps: per-chunk column statistics for morsel skipping.

A :class:`ZoneMap` partitions a column into fixed ``ZONE_ROWS``-row
zones and keeps, per zone, the min/max over *finite* valid values plus
null/valid/finite counts. Scan operators consult them through
:class:`ScanPruner` to skip whole morsels that cannot contain a row
satisfying a conjunctive predicate — the cheapest possible win for a
memory-bandwidth-bound engine: the skipped morsel is never sliced,
never filtered, never materialised.

NULL/NaN semantics (the correctness core — see docs/performance.md):

* NULL rows never satisfy a comparison (3VL unknown -> filtered), so a
  zone's min/max ignore them; ``IS NULL`` prunes only when the zone has
  ``null_count == 0`` and ``IS NOT NULL`` only when ``valid_count == 0``.
* NaN values are *valid non-NULL* doubles. IEEE comparisons with NaN
  yield False for ``= < <= > >=`` — a zone of only NULLs/NaNs is
  prunable for those — but ``NaN <> c`` is True, so ``<>`` may prune
  only zones that contain no NaN at all.

Pruning is also gated on the *whole* predicate being side-effect-free
(:func:`prune_safe`): skipping a morsel suppresses evaluation of every
conjunct on it, and an expression like ``b / a > 1`` must keep raising
division-by-zero exactly as the unpruned plan would.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..expr import bound as b
from ..types import TypeKind

#: Rows per zone. Smaller than a morsel so every morsel boundary is
#: covered by whole zones plus at most two partial overlaps.
ZONE_ROWS = 4096

#: Binary operators that cannot raise at evaluation time (no division,
#: no modulo, no exponentiation — those carry data-dependent errors).
_SAFE_BINARY_OPS = frozenset(
    {"and", "or", "=", "<>", "!=", "<", "<=", ">", ">=",
     "+", "-", "*", "||"}
)

_SAFE_UNARY_OPS = frozenset({"-", "+", "not"})

_COMPARISONS = frozenset({"=", "<>", "!=", "<", "<=", ">", ">="})

_FLIPPED = {"<": ">", "<=": ">=", ">": "<", ">=": "<=",
            "=": "=", "<>": "<>", "!=": "!="}


class ZoneMap:
    """Per-zone statistics of one column (immutable once built)."""

    __slots__ = (
        "zone_rows", "n_rows", "mins", "maxs",
        "null_counts", "valid_counts", "finite_counts",
    )

    def __init__(self, zone_rows, n_rows, mins, maxs,
                 null_counts, valid_counts, finite_counts):
        self.zone_rows = zone_rows
        self.n_rows = n_rows
        self.mins = mins
        self.maxs = maxs
        self.null_counts = null_counts
        self.valid_counts = valid_counts
        self.finite_counts = finite_counts

    @property
    def n_zones(self) -> int:
        return len(self.mins)


def build_zone_map(
    column, zone_rows: int = ZONE_ROWS
) -> Optional[ZoneMap]:
    """Build the zone map of a column; None when the type has no
    ordered zone statistics (VARCHAR) or the column is empty."""
    if column.sql_type.kind is TypeKind.VARCHAR:
        return None
    n = len(column)
    if n == 0:
        return None
    values = np.asarray(column.values)
    valid = column.valid  # None == all valid
    is_float = values.dtype.kind == "f"
    n_zones = (n + zone_rows - 1) // zone_rows
    mins = np.full(n_zones, np.nan)
    maxs = np.full(n_zones, np.nan)
    null_counts = np.zeros(n_zones, dtype=np.int64)
    valid_counts = np.zeros(n_zones, dtype=np.int64)
    finite_counts = np.zeros(n_zones, dtype=np.int64)
    for z in range(n_zones):
        start = z * zone_rows
        stop = min(start + zone_rows, n)
        vals = values[start:stop]
        if valid is None:
            n_valid = stop - start
            live = vals
        else:
            mask = valid[start:stop]
            n_valid = int(mask.sum())
            live = vals[mask]
        null_counts[z] = (stop - start) - n_valid
        valid_counts[z] = n_valid
        if is_float:
            finite = live[~np.isnan(live)]
        else:
            finite = live
        finite_counts[z] = len(finite)
        if len(finite):
            mins[z] = float(finite.min())
            maxs[z] = float(finite.max())
    return ZoneMap(
        zone_rows, n, mins, maxs,
        null_counts, valid_counts, finite_counts,
    )


# ---------------------------------------------------------------------------
# Predicate analysis
# ---------------------------------------------------------------------------


def prune_safe(expr: b.BoundExpr) -> bool:
    """Whether an entire predicate is free of data-dependent errors, so
    skipping its evaluation on a pruned morsel is unobservable."""
    if isinstance(expr, (b.BoundLiteral, b.BoundColumnRef, b.BoundParam)):
        return True
    if isinstance(expr, b.BoundUnary):
        return expr.op in _SAFE_UNARY_OPS and prune_safe(expr.operand)
    if isinstance(expr, b.BoundBinary):
        return (
            expr.op in _SAFE_BINARY_OPS
            and prune_safe(expr.left)
            and prune_safe(expr.right)
        )
    if isinstance(expr, b.BoundIsNull):
        return prune_safe(expr.operand)
    if isinstance(expr, b.BoundInList):
        return prune_safe(expr.operand) and all(
            prune_safe(item) for item in expr.items
        )
    # Functions, UDFs, CASE, CAST, LIKE, subqueries, lambdas: excluded —
    # any of them may raise (or observe evaluation) at run time.
    return False


def split_conjuncts(expr: b.BoundExpr) -> list[b.BoundExpr]:
    """Flatten a tree of AND into its conjuncts."""
    if isinstance(expr, b.BoundBinary) and expr.op == "and":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def _const_source(expr: b.BoundExpr):
    """A resolver spec for the constant side of a comparison:
    ``("lit", v)``, ``("param", slot)``, ``("neg", inner)`` — or None
    when the side is not a bind-time/execute-time constant."""
    if isinstance(expr, b.BoundLiteral):
        value = expr.value
        if isinstance(value, (int, float)) and not isinstance(
            value, bool
        ):
            return ("lit", value)
        if isinstance(value, bool):
            return ("lit", int(value))
        if isinstance(value, str):
            # String constants prune only against dictionary-encoded
            # columns (translated to code space in keep_ranges).
            return ("lit", value)
        return None
    if isinstance(expr, b.BoundParam):
        # Statement parameters (?N) and correlated outer values alike:
        # both resolve from eval-context params at execute time.
        return ("param", expr.slot)
    if isinstance(expr, b.BoundUnary) and expr.op == "-":
        inner = _const_source(expr.operand)
        if inner is None:
            return None
        return ("neg", inner)
    return None


def _resolve_const(source, params: dict):
    kind = source[0]
    if kind == "lit":
        return source[1]
    if kind == "param":
        value = params.get(source[1])
        if isinstance(value, bool):
            return int(value)
        if isinstance(value, (int, float, str)):
            return value
        return None
    inner = _resolve_const(source[1], params)
    return None if inner is None else -inner


class _Conjunct:
    """One prunable conjunct: ``column <op> const`` or ``column IS
    [NOT] NULL``."""

    __slots__ = ("column_name", "op", "const_source")

    def __init__(self, column_name, op, const_source=None):
        self.column_name = column_name
        self.op = op
        self.const_source = const_source

    def prunable_zones(self, zones: ZoneMap, params: dict) -> np.ndarray:
        """Boolean mask over zones: True where *no* row can satisfy
        this conjunct (hence none can satisfy the whole conjunction)."""
        none = np.zeros(zones.n_zones, dtype=np.bool_)
        if self.op == "isnull":
            return zones.null_counts == 0
        if self.op == "isnotnull":
            return zones.valid_counts == 0
        const = _resolve_const(self.const_source, params)
        if not isinstance(const, (int, float)):
            # None, or a string constant that was not translated to
            # code space (raw VARCHAR columns have no zone map).
            return none
        no_finite = zones.finite_counts == 0
        mins, maxs = zones.mins, zones.maxs
        if self.op in ("<>", "!="):
            # NaN <> c is True, so zones with NaN rows never prune.
            nan_free = zones.valid_counts == zones.finite_counts
            exact = (mins == const) & (maxs == const)
            return nan_free & (no_finite | exact)
        if self.op == "=":
            return no_finite | (const < mins) | (const > maxs)
        if self.op == "<":
            return no_finite | (mins >= const)
        if self.op == "<=":
            return no_finite | (mins > const)
        if self.op == ">":
            return no_finite | (maxs <= const)
        if self.op == ">=":
            return no_finite | (maxs < const)
        return none


def _prunable_for_column(
    conjunct: _Conjunct, column, zones: ZoneMap, params: dict
) -> Optional[np.ndarray]:
    """The conjunct's prunable-zone mask against a concrete column,
    translating string constants to dictionary code space when the
    column is dictionary-encoded (its zone map is over codes)."""
    from .encoding import DictionaryColumn

    if conjunct.op in ("isnull", "isnotnull") or not isinstance(
        column, DictionaryColumn
    ):
        return conjunct.prunable_zones(zones, params)
    const = _resolve_const(conjunct.const_source, params)
    if not isinstance(const, str):
        # NULL / unbound parameter: the comparison is never true, but
        # stay conservative and just skip this conjunct.
        return None
    idx, present = column.code_bound(const)
    op = conjunct.op
    if op == "=" and not present:
        # No row can equal an absent dictionary entry: every zone
        # prunes (scan output is provably empty).
        return np.ones(zones.n_zones, dtype=np.bool_)
    if op in ("<>", "!=") and not present:
        # Every valid row differs: only all-NULL zones prune.
        return zones.valid_counts == 0
    # The sorted dictionary makes code order equal value order; the
    # insertion index bounds absent constants exactly.
    if op == "<=" and not present:
        op = "<"
    elif op == ">" and not present:
        op = ">="
    translated = _Conjunct(conjunct.column_name, op, ("lit", idx))
    return translated.prunable_zones(zones, params)


class ScanPruner:
    """Decides, per morsel range, whether zone maps prove the range
    empty under a conjunctive predicate.

    Built from the scan's output columns and the predicate(s) of the
    filter(s) sitting directly on the scan. Unusable predicates (not
    prune-safe, or without any ``col <op> const`` conjunct) yield an
    inactive pruner — ``keep_ranges`` then returns its input."""

    def __init__(self, scan_output, predicates):
        slot_to_name = {col.slot: col.name for col in scan_output}
        self._conjuncts: list[_Conjunct] = []
        if not all(prune_safe(p) for p in predicates):
            return
        for predicate in predicates:
            for conjunct in split_conjuncts(predicate):
                parsed = self._parse(conjunct, slot_to_name)
                if parsed is not None:
                    self._conjuncts.append(parsed)

    @staticmethod
    def _parse(expr, slot_to_name) -> Optional[_Conjunct]:
        if isinstance(expr, b.BoundIsNull) and isinstance(
            expr.operand, b.BoundColumnRef
        ):
            name = slot_to_name.get(expr.operand.slot)
            if name is None:
                return None
            op = "isnotnull" if expr.negated else "isnull"
            return _Conjunct(name, op)
        if not (
            isinstance(expr, b.BoundBinary) and expr.op in _COMPARISONS
        ):
            return None
        left, right, op = expr.left, expr.right, expr.op
        if isinstance(left, b.BoundColumnRef):
            const = _const_source(right)
            if const is None:
                return None
            name = slot_to_name.get(left.slot)
            if name is None:
                return None
            return _Conjunct(name, op, const)
        if isinstance(right, b.BoundColumnRef):
            const = _const_source(left)
            if const is None:
                return None
            name = slot_to_name.get(right.slot)
            if name is None:
                return None
            return _Conjunct(name, _FLIPPED[op], const)
        return None

    @property
    def active(self) -> bool:
        return bool(self._conjuncts)

    def keep_ranges(
        self, data, ranges, params: Optional[dict] = None
    ) -> tuple[list, int]:
        """``(surviving_ranges, n_pruned)`` for one table snapshot.
        Ranges are ``[start, stop)`` row intervals; a range survives
        unless *every* zone it overlaps is prunable by at least one
        conjunct."""
        if not self._conjuncts or not ranges:
            return list(ranges), 0
        params = params or {}
        prunable = None
        for conjunct in self._conjuncts:
            try:
                column = data.column_by_name(conjunct.column_name)
            except Exception:  # noqa: BLE001 — schema drift: no pruning
                continue
            zones = column.zone_map()
            if zones is None or zones.n_rows != data.row_count:
                continue
            mask = _prunable_for_column(conjunct, column, zones, params)
            if mask is None:
                continue
            prunable = mask if prunable is None else (prunable | mask)
        if prunable is None or not prunable.any():
            return list(ranges), 0
        zone_rows = ZONE_ROWS
        kept = []
        pruned = 0
        for start, stop in ranges:
            z0 = start // zone_rows
            z1 = (stop + zone_rows - 1) // zone_rows
            if prunable[z0:z1].all():
                pruned += 1
            else:
                kept.append((start, stop))
        return kept, pruned
