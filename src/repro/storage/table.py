"""Versioned main-memory tables.

A :class:`TableData` is one immutable version of a table's contents: a
tuple of columns plus the row count. A :class:`Table` is a named sequence
of versions, each tagged with the commit timestamp that installed it.
Readers resolve the version visible at their snapshot timestamp; writers
derive a new :class:`TableData` by copy-on-write and install it at commit.

This versioning is what lets long-running analytical queries run against a
consistent snapshot while transactional updates continue — the HyPer
"one system for OLTP and OLAP" story the paper builds on (section 3).
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, Sequence

import numpy as np

from ..errors import CatalogError, ExecutionError
from .column import Column, ColumnBatch
from .schema import TableSchema

#: Default number of rows per batch ("morsel") produced by table scans.
DEFAULT_MORSEL_ROWS = 65_536


#: Process-wide source of :attr:`TableData.version_token` values.
_VERSION_TOKENS = itertools.count(1)


class TableData:
    """One immutable version of a table's contents."""

    __slots__ = ("schema", "columns", "row_count", "version_token")

    def __init__(self, schema: TableSchema, columns: Sequence[Column]):
        if len(columns) != len(schema):
            raise CatalogError(
                f"schema has {len(schema)} columns, got {len(columns)}"
            )
        lengths = {len(c) for c in columns}
        if len(lengths) > 1:
            raise CatalogError(f"ragged table: column lengths {lengths}")
        self.schema = schema
        self.columns = tuple(columns)
        self.row_count = lengths.pop() if lengths else 0
        #: Unique per version (contents are immutable, so equal tokens
        #: imply equal contents) — the key derived caches hang off.
        self.version_token = next(_VERSION_TOKENS)

    @classmethod
    def empty(cls, schema: TableSchema) -> "TableData":
        """A zero-row version conforming to ``schema``."""
        cols = [
            Column(np.zeros(0, dtype=c.sql_type.numpy_dtype()), c.sql_type)
            for c in schema
        ]
        return cls(schema, cols)

    @classmethod
    def from_rows(
        cls, schema: TableSchema, rows: Iterable[Sequence[object]]
    ) -> "TableData":
        """Build a version from Python row tuples (coercing values)."""
        materialised = [tuple(r) for r in rows]
        for r in materialised:
            if len(r) != len(schema):
                raise CatalogError(
                    f"row has {len(r)} values, schema has {len(schema)}"
                )
        cols = []
        for i, col_schema in enumerate(schema):
            values = [r[i] for r in materialised]
            if col_schema.not_null and any(v is None for v in values):
                raise CatalogError(
                    f"NULL in NOT NULL column {col_schema.name!r}"
                )
            cols.append(Column.from_values(values, col_schema.sql_type))
        return cls(schema, cols)

    @classmethod
    def from_batch(cls, schema: TableSchema, batch: ColumnBatch) -> "TableData":
        """Adopt a batch whose columns positionally match ``schema``."""
        names = batch.names()
        if len(names) != len(schema):
            raise CatalogError(
                f"batch has {len(names)} columns, schema has {len(schema)}"
            )
        return cls(schema, [batch[n] for n in names])

    def column_by_name(self, name: str) -> Column:
        return self.columns[self.schema.index_of(name)]

    def to_batch(self) -> ColumnBatch:
        """The whole version as a single batch keyed by schema names."""
        return ColumnBatch(
            dict(zip(self.schema.names(), self.columns))
        )

    def scan(
        self, morsel_rows: int = DEFAULT_MORSEL_ROWS
    ) -> Iterator[ColumnBatch]:
        """Yield the contents as a sequence of bounded-size batches."""
        names = self.schema.names()
        if self.row_count == 0:
            yield ColumnBatch.empty(
                dict(zip(names, self.schema.types()))
            )
            return
        for start in range(0, self.row_count, morsel_rows):
            stop = min(start + morsel_rows, self.row_count)
            yield ColumnBatch(
                {
                    name: col.slice(start, stop)
                    for name, col in zip(names, self.columns)
                }
            )

    def append_rows(self, rows: Iterable[Sequence[object]]) -> "TableData":
        """A new version with ``rows`` appended (copy-on-write)."""
        addition = TableData.from_rows(self.schema, rows)
        return self.append_data(addition)

    def append_data(self, other: "TableData") -> "TableData":
        """A new version with another version's rows appended."""
        if other.row_count == 0:
            return self
        if self.row_count == 0:
            return TableData(self.schema, other.columns)
        cols = [
            Column.concat([mine, theirs])
            for mine, theirs in zip(self.columns, other.columns)
        ]
        return TableData(self.schema, cols)

    def delete_where(self, keep_mask: np.ndarray) -> "TableData":
        """A new version keeping only rows where ``keep_mask`` is True."""
        if len(keep_mask) != self.row_count:
            raise ExecutionError("delete mask length mismatch")
        return TableData(
            self.schema, [c.filter(keep_mask) for c in self.columns]
        )

    def replace_columns(
        self, replacements: dict[int, Column]
    ) -> "TableData":
        """A new version with the given column ordinals replaced (UPDATE)."""
        cols = list(self.columns)
        for i, col in replacements.items():
            if len(col) != self.row_count:
                raise ExecutionError("update column length mismatch")
            cols[i] = col.cast(self.schema.columns[i].sql_type)
        return TableData(self.schema, cols)

    def rows(self) -> Iterator[tuple[object, ...]]:
        """Iterate rows as Python tuples (slow path)."""
        return self.to_batch().rows()


class Table:
    """A named, versioned table.

    ``versions`` is an append-only list of ``(commit_ts, TableData)`` pairs
    in increasing timestamp order. ``created_ts``/``dropped_ts`` scope the
    table's visibility so snapshots see a consistent catalog.
    """

    def __init__(self, name: str, schema: TableSchema, created_ts: int):
        self.name = name
        self.schema = schema
        self.created_ts = created_ts
        self.dropped_ts: int | None = None
        self.versions: list[tuple[int, TableData]] = [
            (created_ts, TableData.empty(schema))
        ]

    def visible_at(self, ts: int) -> bool:
        """Whether the table exists in the snapshot at ``ts``."""
        if ts < self.created_ts:
            return False
        return self.dropped_ts is None or ts < self.dropped_ts

    def data_at(self, ts: int) -> TableData:
        """Latest version committed at or before ``ts``."""
        chosen: TableData | None = None
        for commit_ts, data in self.versions:
            if commit_ts <= ts:
                chosen = data
            else:
                break
        if chosen is None:
            raise CatalogError(
                f"table {self.name!r} not visible at snapshot {ts}"
            )
        return chosen

    def latest(self) -> TableData:
        """The most recently committed version."""
        return self.versions[-1][1]

    def latest_commit_ts(self) -> int:
        return self.versions[-1][0]

    def install(self, commit_ts: int, data: TableData) -> None:
        """Append a new committed version (called by the txn manager)."""
        if commit_ts < self.versions[-1][0]:
            raise CatalogError("non-monotonic version install")
        self.versions.append((commit_ts, data))

    def truncate_history(self, keep_after_ts: int) -> int:
        """Garbage-collect versions no snapshot at or after
        ``keep_after_ts`` can see. Returns the number dropped."""
        # Keep the newest version at or before the horizon plus everything
        # after it; everything older is unreachable.
        idx = 0
        for i, (commit_ts, _) in enumerate(self.versions):
            if commit_ts <= keep_after_ts:
                idx = i
        dropped = idx
        if dropped:
            del self.versions[:idx]
        return dropped
