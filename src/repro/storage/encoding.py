"""Encoded column storage: dictionary, frame-of-reference, run-length.

The paper's premise (and PIMDAL's, PAPERS.md) is that analytical scans
are bound by bytes moved, not cycles spent. This module shrinks the
bytes: each column of a committed table version may be stored in an
*encoded* physical form chosen per column at write time:

* :class:`DictionaryColumn` — VARCHAR values as ``int32`` codes into a
  **sorted** dictionary of distinct strings. Sorting the dictionary is
  what makes every comparison operator evaluable on codes: the code
  order equals the value order, so ``col < 'm'`` becomes an integer
  compare against ``searchsorted(dictionary, 'm')``.
* :class:`FORColumn` — INTEGER/BIGINT/DATE values as a frame-of-
  reference base plus unsigned offsets in the narrowest of
  uint8/uint16/uint32 that spans the column's value range.
* :class:`RLEColumn` — NULL-free columns whose values arrive in long
  runs, stored as (run value, run length) pairs.

Encoded columns subclass :class:`~repro.storage.column.Column` and
shadow its ``values`` slot with a lazy-decode property, so every
existing operator works unchanged — it just pays a decode the first
time it touches ``.values``. The hot paths that matter never do:
``take``/``filter``/``slice`` stay in code space, zone maps build from
codes/offsets/runs, and the expression compiler has predicate-on-codes
fast paths (see ``repro/expr/compiler.py``) that evaluate
``=, <>, <, <=, >, >=, IN, IS NULL`` without decoding a single value.

Selection policy (:func:`encode_column`):

* ``auto`` (default) — dictionary for VARCHAR when the distinct count
  is at most 3/4 of the rows; RLE for NULL-free integrals with at most
  ``n/4`` runs; FOR when the offsets fit a strictly narrower dtype.
* ``dict`` / ``for`` / ``rle`` — force one family (others stay raw).
* ``raw`` — decode everything (the control arm of the differential
  twin checks).

The policy is a property of the session (``Database(encoding=...)`` or
``REPRO_ENCODING``) and is applied inside ``Transaction.write`` — the
single choke point every INSERT/UPDATE/DELETE/CTAS/WAL-replay funnels
through — so encoded state survives DML and rollback for free (table
versions are immutable; rollback just drops the staged version).
"""

from __future__ import annotations

import os
import sys
from typing import Optional, Sequence

import numpy as np

from ..types import INTEGER, SQLType, TypeKind
from .column import Column

#: Valid values of the session encoding policy.
ENCODING_POLICIES = ("auto", "dict", "for", "rle", "raw")

#: Minimum rows before ``auto`` bothers encoding a column.
_AUTO_MIN_ROWS = 4

#: Integral kinds eligible for FOR / RLE.
_INTEGRAL_KINDS = frozenset(
    {TypeKind.INTEGER, TypeKind.BIGINT, TypeKind.DATE}
)


def resolve_encoding(policy: Optional[str]) -> str:
    """The effective session policy: the explicit argument, else the
    ``REPRO_ENCODING`` environment switch, else ``auto``."""
    if policy is None:
        policy = os.environ.get("REPRO_ENCODING") or "auto"
    policy = policy.lower()
    if policy not in ENCODING_POLICIES:
        raise ValueError(
            f"unknown encoding policy {policy!r}; "
            f"expected one of {', '.join(ENCODING_POLICIES)}"
        )
    return policy


def _object_payload_nbytes(values) -> int:
    """Bytes owned by the Python string objects in an object array."""
    return sum(
        sys.getsizeof(v) for v in values if v is not None
    )


class EncodedColumn(Column):
    """Base of the encoded physical layouts.

    Shadows the parent's ``values`` slot with a lazily-decoded, cached
    property. Subclass constructors must NOT call ``Column.__init__``
    (it assigns ``self.values``, which the property forbids); they call
    :meth:`_init_base` instead.
    """

    __slots__ = ("_decoded",)

    @property
    def values(self) -> np.ndarray:
        """The decoded dense value array (built on first access and
        cached on this instance; morsel slices are short-lived, so the
        cache does not pin whole-table decodes)."""
        decoded = self._decoded
        if decoded is None:
            decoded = self._decode()
            self._decoded = decoded
        return decoded

    def _init_base(
        self, sql_type: SQLType, valid: Optional[np.ndarray]
    ) -> None:
        self.sql_type = sql_type
        if valid is not None and bool(valid.all()):
            valid = None
        self.valid = valid
        self._zones = None
        self._decoded = None

    def _decode(self) -> np.ndarray:
        raise NotImplementedError

    #: Short name of the layout ("dict", "for", "rle").
    encoding = "encoded"


class DictionaryColumn(EncodedColumn):
    """VARCHAR column as int32 codes into a sorted string dictionary.

    NULL slots carry code 0 as a filler; the validity mask is
    authoritative, exactly like the unspecified fillers in raw columns.
    Invariants (checked by ``tests/test_encoding.py``): the dictionary
    is sorted, free of duplicates and of NULL, and — on committed table
    versions — every entry is referenced by at least one valid row
    (:func:`compact_dictionary` runs at every ``Transaction.write``).
    """

    __slots__ = ("codes", "dictionary", "_dict_bytes")

    encoding = "dict"

    def __init__(
        self,
        codes: np.ndarray,
        dictionary: np.ndarray,
        sql_type: SQLType,
        valid: Optional[np.ndarray] = None,
        dict_nbytes: Optional[int] = None,
    ):
        self.codes = codes
        self.dictionary = dictionary
        if dict_nbytes is None:
            dict_nbytes = int(dictionary.nbytes) + _object_payload_nbytes(
                dictionary
            )
        self._dict_bytes = dict_nbytes
        self._init_base(sql_type, valid)

    def __len__(self) -> int:
        return len(self.codes)

    @property
    def nbytes(self) -> int:
        total = int(self.codes.nbytes) + self._dict_bytes
        if self.valid is not None:
            total += int(self.valid.nbytes)
        return total

    def _decode(self) -> np.ndarray:
        if len(self.dictionary) == 0:
            out = np.empty(len(self.codes), dtype=object)
        else:
            out = self.dictionary[self.codes]
        if self.valid is not None:
            out[~self.valid] = None
        return out

    def take(self, indices: np.ndarray) -> "DictionaryColumn":
        return DictionaryColumn(
            self.codes[indices],
            self.dictionary,
            self.sql_type,
            None if self.valid is None else self.valid[indices],
            dict_nbytes=self._dict_bytes,
        )

    def filter(self, mask: np.ndarray) -> "DictionaryColumn":
        return DictionaryColumn(
            self.codes[mask],
            self.dictionary,
            self.sql_type,
            None if self.valid is None else self.valid[mask],
            dict_nbytes=self._dict_bytes,
        )

    def slice(self, start: int, stop: int) -> "DictionaryColumn":
        return DictionaryColumn(
            self.codes[start:stop],
            self.dictionary,
            self.sql_type,
            None if self.valid is None else self.valid[start:stop],
            dict_nbytes=self._dict_bytes,
        )

    def zone_map(self):
        """A *code-space* zone map: min/max are dictionary codes, not
        values. Because the dictionary is sorted this is order-faithful;
        :class:`~repro.storage.zonemap.ScanPruner` translates string
        constants to code space before consulting it."""
        zones = self._zones
        if zones is None:
            from .zonemap import build_zone_map

            proxy = Column(self.codes, INTEGER, self.valid)
            zones = build_zone_map(proxy)
            self._zones = zones if zones is not None else False
            return zones
        return zones if zones is not False else None

    # -- predicate-on-codes -------------------------------------------

    def code_bound(self, value: str) -> tuple[int, bool]:
        """``(insertion index, present)`` of ``value`` in the sorted
        dictionary. Codes ``< index`` hold strictly smaller strings."""
        idx = int(np.searchsorted(self.dictionary, value))
        present = (
            idx < len(self.dictionary)
            and self.dictionary[idx] == value
        )
        return idx, bool(present)

    def compare_const(self, op: str, value: str) -> np.ndarray:
        """Evaluate ``column <op> value`` on codes; returns the boolean
        value array (slots invalid per ``self.valid`` are unspecified,
        exactly like raw comparison output)."""
        idx, present = self.code_bound(value)
        codes = self.codes
        if op == "=":
            if not present:
                return np.zeros(len(codes), dtype=np.bool_)
            return codes == idx
        if op in ("<>", "!="):
            if not present:
                return np.ones(len(codes), dtype=np.bool_)
            return codes != idx
        if op == "<":
            return codes < idx
        if op == "<=":
            return codes <= idx if present else codes < idx
        if op == ">":
            return codes > idx if present else codes >= idx
        if op == ">=":
            return codes >= idx
        raise ValueError(f"unknown comparison operator {op!r}")

    def isin_const(self, items: Sequence[str]) -> np.ndarray:
        """Membership of each row in ``items``, evaluated on codes."""
        member = []
        for item in items:
            idx, present = self.code_bound(item)
            if present:
                member.append(idx)
        if not member:
            return np.zeros(len(self.codes), dtype=np.bool_)
        return np.isin(self.codes, np.asarray(member, dtype=np.int64))


class FORColumn(EncodedColumn):
    """Frame-of-reference integers: ``value = base + offset`` with the
    offsets held in the narrowest unsigned dtype spanning the range.
    NULL slots carry offset 0 as a filler."""

    __slots__ = ("offsets", "base")

    encoding = "for"

    def __init__(
        self,
        offsets: np.ndarray,
        base: int,
        sql_type: SQLType,
        valid: Optional[np.ndarray] = None,
    ):
        self.offsets = offsets
        self.base = int(base)
        self._init_base(sql_type, valid)

    def __len__(self) -> int:
        return len(self.offsets)

    @property
    def nbytes(self) -> int:
        total = int(self.offsets.nbytes)
        if self.valid is not None:
            total += int(self.valid.nbytes)
        return total

    def _decode(self) -> np.ndarray:
        wide = self.offsets.astype(np.int64) + self.base
        return wide.astype(self.sql_type.numpy_dtype(), copy=False)

    def take(self, indices: np.ndarray) -> "FORColumn":
        return FORColumn(
            self.offsets[indices],
            self.base,
            self.sql_type,
            None if self.valid is None else self.valid[indices],
        )

    def filter(self, mask: np.ndarray) -> "FORColumn":
        return FORColumn(
            self.offsets[mask],
            self.base,
            self.sql_type,
            None if self.valid is None else self.valid[mask],
        )

    def slice(self, start: int, stop: int) -> "FORColumn":
        return FORColumn(
            self.offsets[start:stop],
            self.base,
            self.sql_type,
            None if self.valid is None else self.valid[start:stop],
        )

    def zone_map(self):
        """Built over the offsets, then shifted by ``base`` — the map
        is in *value* space, so the pruner needs no translation."""
        zones = self._zones
        if zones is None:
            from .zonemap import ZoneMap, build_zone_map

            proxy = Column(self.offsets, self.sql_type, self.valid)
            built = build_zone_map(proxy)
            if built is not None:
                built = ZoneMap(
                    built.zone_rows,
                    built.n_rows,
                    built.mins + self.base,
                    built.maxs + self.base,
                    built.null_counts,
                    built.valid_counts,
                    built.finite_counts,
                )
            self._zones = built if built is not None else False
            return built
        return zones if zones is not False else None

    def compare_const(self, op: str, value) -> np.ndarray:
        """``column <op> value`` evaluated on offsets against the
        base-shifted constant (never materialises the decoded array)."""
        shifted = value - self.base
        off = self.offsets
        if op == "=":
            return off == shifted
        if op in ("<>", "!="):
            return off != shifted
        if op == "<":
            return off < shifted
        if op == "<=":
            return off <= shifted
        if op == ">":
            return off > shifted
        if op == ">=":
            return off >= shifted
        raise ValueError(f"unknown comparison operator {op!r}")


class RLEColumn(EncodedColumn):
    """Run-length encoding of a NULL-free column: parallel arrays of
    run values and run lengths (restricting to NULL-free columns keeps
    every code path branch-free on validity)."""

    __slots__ = ("run_values", "run_lengths", "_ends", "_n")

    encoding = "rle"

    def __init__(
        self,
        run_values: np.ndarray,
        run_lengths: np.ndarray,
        sql_type: SQLType,
    ):
        self.run_values = run_values
        self.run_lengths = run_lengths
        self._ends = np.cumsum(run_lengths)
        self._n = int(self._ends[-1]) if len(run_lengths) else 0
        self._init_base(sql_type, None)

    def __len__(self) -> int:
        return self._n

    @property
    def nbytes(self) -> int:
        return int(self.run_values.nbytes) + int(
            self.run_lengths.nbytes
        )

    def _decode(self) -> np.ndarray:
        return np.repeat(self.run_values, self.run_lengths)

    def take(self, indices: np.ndarray) -> Column:
        # Arbitrary gathers leave run space; fall back to a raw column.
        return Column(self.values[indices], self.sql_type)

    def filter(self, mask: np.ndarray) -> Column:
        return Column(self.values[mask], self.sql_type)

    def slice(self, start: int, stop: int) -> Column:
        """Re-slice in run space (morsel slicing stays encoded)."""
        if stop <= start:
            return Column(
                np.empty(0, dtype=self.run_values.dtype), self.sql_type
            )
        ends = self._ends
        run_starts = ends - self.run_lengths
        i0 = int(np.searchsorted(ends, start, side="right"))
        i1 = int(np.searchsorted(run_starts, stop, side="left"))
        values = self.run_values[i0:i1]
        lengths = (
            np.minimum(ends[i0:i1], stop)
            - np.maximum(run_starts[i0:i1], start)
        )
        return RLEColumn(values, lengths, self.sql_type)

    def zone_map(self):
        """Built run-by-run without decoding: each zone's min/max come
        from the runs overlapping it, counts from the clipped lengths."""
        zones = self._zones
        if zones is None:
            zones = self._build_zone_map()
            self._zones = zones if zones is not None else False
            return zones
        return zones if zones is not False else None

    def _build_zone_map(self):
        from .zonemap import ZONE_ROWS, ZoneMap

        n = self._n
        if n == 0:
            return None
        ends = self._ends
        run_starts = ends - self.run_lengths
        is_float = self.run_values.dtype.kind == "f"
        n_zones = (n + ZONE_ROWS - 1) // ZONE_ROWS
        mins = np.full(n_zones, np.nan)
        maxs = np.full(n_zones, np.nan)
        null_counts = np.zeros(n_zones, dtype=np.int64)
        valid_counts = np.zeros(n_zones, dtype=np.int64)
        finite_counts = np.zeros(n_zones, dtype=np.int64)
        for z in range(n_zones):
            start = z * ZONE_ROWS
            stop = min(start + ZONE_ROWS, n)
            i0 = int(np.searchsorted(ends, start, side="right"))
            i1 = int(np.searchsorted(run_starts, stop, side="left"))
            vals = self.run_values[i0:i1]
            lens = (
                np.minimum(ends[i0:i1], stop)
                - np.maximum(run_starts[i0:i1], start)
            )
            valid_counts[z] = stop - start
            if is_float:
                finite_mask = ~np.isnan(vals)
                finite = vals[finite_mask]
                finite_counts[z] = int(lens[finite_mask].sum())
            else:
                finite = vals
                finite_counts[z] = stop - start
            if len(finite):
                mins[z] = float(finite.min())
                maxs[z] = float(finite.max())
        return ZoneMap(
            ZONE_ROWS, n, mins, maxs,
            null_counts, valid_counts, finite_counts,
        )

    def compare_const(self, op: str, value) -> np.ndarray:
        """``column <op> value`` evaluated once per run, then expanded."""
        rv = self.run_values
        if op == "=":
            runs = rv == value
        elif op in ("<>", "!="):
            runs = rv != value
        elif op == "<":
            runs = rv < value
        elif op == "<=":
            runs = rv <= value
        elif op == ">":
            runs = rv > value
        elif op == ">=":
            runs = rv >= value
        else:
            raise ValueError(f"unknown comparison operator {op!r}")
        return np.repeat(
            np.asarray(runs, dtype=np.bool_), self.run_lengths
        )


# ---------------------------------------------------------------------------
# Encoders
# ---------------------------------------------------------------------------


def dictionary_encode(column: Column) -> Optional[DictionaryColumn]:
    """Dictionary-encode a VARCHAR column; None when it has no valid
    rows (an all-NULL column gains nothing and would need an empty
    dictionary with dangling filler codes)."""
    values = column.values
    valid = column.valid
    n = len(column)
    if valid is None:
        live = values
    else:
        live = values[valid]
    if live.size == 0:
        return None
    dictionary = np.unique(live)
    if valid is None:
        codes = np.searchsorted(dictionary, values).astype(np.int32)
    else:
        codes = np.zeros(n, dtype=np.int32)
        codes[valid] = np.searchsorted(dictionary, live).astype(
            np.int32
        )
    return DictionaryColumn(codes, dictionary, column.sql_type, valid)


def for_encode(column: Column) -> Optional[FORColumn]:
    """Frame-of-reference-encode an integral column; None when the
    offsets would not fit a dtype narrower than the stored values (or
    no valid rows exist to pick a base from)."""
    values = column.values
    valid = column.valid
    live = values if valid is None else values[valid]
    if live.size == 0:
        return None
    lo = int(live.min())
    hi = int(live.max())
    if abs(lo) > 2**53 or abs(hi) > 2**53:
        # Beyond float64's exact-integer range a base-shifted float
        # comparison could round differently from the decoded one.
        return None
    span = hi - lo
    if span < 2**8:
        dtype = np.uint8
    elif span < 2**16:
        dtype = np.uint16
    elif span < 2**32:
        dtype = np.uint32
    else:
        return None
    if np.dtype(dtype).itemsize >= values.dtype.itemsize:
        return None
    wide = values.astype(np.int64) - lo
    if valid is not None:
        wide = np.where(valid, wide, 0)
    return FORColumn(wide.astype(dtype), lo, column.sql_type, valid)


def rle_encode(
    column: Column, max_runs: Optional[int] = None
) -> Optional[RLEColumn]:
    """Run-length-encode a NULL-free column; None when it has NULLs,
    is empty, or has more than ``max_runs`` runs."""
    if column.valid is not None:
        return None
    values = column.values
    n = len(values)
    if n == 0:
        return None
    boundaries = np.flatnonzero(values[1:] != values[:-1]) + 1
    if max_runs is not None and len(boundaries) + 1 > max_runs:
        return None
    starts = np.concatenate(([0], boundaries))
    ends = np.concatenate((boundaries, [n]))
    return RLEColumn(
        values[starts].copy(), ends - starts, column.sql_type
    )


def compact_dictionary(column: DictionaryColumn) -> Column:
    """Re-establish the compaction invariant after row deletions: drop
    dictionary entries no valid row references, remapping codes. An
    all-NULL result degrades to a raw column."""
    dictionary = column.dictionary
    codes = column.codes
    valid = column.valid
    if len(dictionary) == 0:
        return column
    live = codes if valid is None else codes[valid]
    if live.size == 0:
        return Column.all_null(len(column), column.sql_type)
    counts = np.bincount(live, minlength=len(dictionary))
    used = counts > 0
    if bool(used.all()):
        return column
    remap = np.cumsum(used) - 1
    new_codes = remap[codes].astype(np.int32)
    if valid is not None:
        new_codes = np.where(valid, new_codes, 0).astype(np.int32)
    return DictionaryColumn(
        new_codes, dictionary[used], column.sql_type, valid
    )


def decode_column(column: Column) -> Column:
    """The raw physical form of a (possibly encoded) column."""
    if not isinstance(column, EncodedColumn):
        return column
    return Column(column.values, column.sql_type, column.valid)


def encode_column(column: Column, policy: str = "auto") -> Column:
    """The physical form of ``column`` under the session policy.

    Already-encoded inputs pass through (dictionaries are re-compacted
    under ``auto``/``dict``); ``raw`` decodes them. Raw inputs are
    dispatched per type and policy; anything ineligible stays raw.
    """
    if policy == "raw":
        return decode_column(column)
    if isinstance(column, DictionaryColumn):
        if policy in ("auto", "dict"):
            return compact_dictionary(column)
        return column
    if isinstance(column, EncodedColumn):
        return column
    n = len(column)
    if n == 0:
        return column
    kind = column.sql_type.kind

    if kind is TypeKind.VARCHAR:
        if policy == "dict" or (
            policy == "auto" and n >= _AUTO_MIN_ROWS
        ):
            encoded = dictionary_encode(column)
            if encoded is not None and (
                policy == "dict"
                or len(encoded.dictionary) <= max(1, (3 * n) // 4)
            ):
                return encoded
        return column

    if kind in _INTEGRAL_KINDS:
        if policy == "rle":
            return rle_encode(column) or column
        if policy == "for":
            return for_encode(column) or column
        if policy == "auto" and n >= _AUTO_MIN_ROWS * 2:
            encoded = rle_encode(column, max_runs=n // 4)
            if encoded is not None:
                return encoded
            return for_encode(column) or column
        return column

    if policy == "rle" and kind in (
        TypeKind.DOUBLE, TypeKind.BOOLEAN
    ):
        return rle_encode(column) or column
    return column


def encode_table_data(data, policy: str = "auto"):
    """``data`` with every column in its policy-chosen physical form
    (the same object when nothing changes)."""
    from .table import TableData

    columns = [encode_column(c, policy) for c in data.columns]
    if all(a is b for a, b in zip(columns, data.columns)):
        return data
    return TableData(data.schema, columns)


# ---------------------------------------------------------------------------
# Footprint accounting
# ---------------------------------------------------------------------------


def column_raw_nbytes(column: Column) -> int:
    """Bytes a raw columnar layout would spend on this column: the
    dense value array (for VARCHAR: an 8-byte slot plus the string
    payload *per row*, the layout a pointer-free engine would material-
    ise) plus the validity mask."""
    n = len(column)
    total = 0 if column.valid is None else int(column.validity().nbytes)
    kind = column.sql_type.kind
    if kind is not TypeKind.VARCHAR:
        return total + n * column.sql_type.numpy_dtype().itemsize
    total += n * 8
    if isinstance(column, DictionaryColumn):
        # Payload per row = payload of its dictionary entry; weight the
        # per-entry sizes by reference counts instead of decoding.
        if len(column.dictionary) == 0:
            return total
        codes = column.codes
        live = codes if column.valid is None else codes[column.valid]
        counts = np.bincount(live, minlength=len(column.dictionary))
        sizes = np.array(
            [sys.getsizeof(v) for v in column.dictionary],
            dtype=np.int64,
        )
        return total + int((counts * sizes).sum())
    return total + _object_payload_nbytes(column.values)


def column_encoding_of(column: Column) -> str:
    """Short name of a column's physical layout."""
    if isinstance(column, EncodedColumn):
        return column.encoding
    return "raw"
