"""Table schemas: ordered, typed, named column descriptors."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import CatalogError
from ..types import SQLType


@dataclass(frozen=True)
class ColumnSchema:
    """One column: a case-insensitively matched name and a SQL type."""

    name: str
    sql_type: SQLType
    not_null: bool = False

    def __str__(self) -> str:
        suffix = " NOT NULL" if self.not_null else ""
        return f"{self.name} {self.sql_type}{suffix}"


@dataclass(frozen=True)
class TableSchema:
    """An ordered collection of :class:`ColumnSchema`.

    Column lookup is case-insensitive, matching the engine's SQL dialect
    (identifiers are folded to lower case unless quoted).
    """

    columns: tuple[ColumnSchema, ...]
    _index: dict[str, int] = field(
        default_factory=dict, compare=False, repr=False, hash=False
    )

    def __post_init__(self) -> None:
        index: dict[str, int] = {}
        for i, col in enumerate(self.columns):
            key = col.name.lower()
            if key in index:
                raise CatalogError(f"duplicate column name: {col.name!r}")
            index[key] = i
        object.__setattr__(self, "_index", index)

    @classmethod
    def of(cls, *pairs: tuple[str, SQLType]) -> "TableSchema":
        """Convenience constructor from (name, type) pairs."""
        return cls(tuple(ColumnSchema(n, t) for n, t in pairs))

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self):
        return iter(self.columns)

    def names(self) -> list[str]:
        return [c.name for c in self.columns]

    def types(self) -> list[SQLType]:
        return [c.sql_type for c in self.columns]

    def has_column(self, name: str) -> bool:
        return name.lower() in self._index

    def index_of(self, name: str) -> int:
        """Ordinal position of ``name``; raises CatalogError if absent."""
        try:
            return self._index[name.lower()]
        except KeyError:
            raise CatalogError(f"no such column: {name!r}") from None

    def column(self, name: str) -> ColumnSchema:
        return self.columns[self.index_of(name)]

    def __str__(self) -> str:
        return "(" + ", ".join(str(c) for c in self.columns) + ")"
