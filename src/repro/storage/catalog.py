"""The catalog: the authoritative registry of tables.

The catalog owns the global commit timestamp. Snapshot reads resolve
``(name, ts)`` to a :class:`~repro.storage.table.TableData`; the
transaction manager installs new versions through :meth:`Catalog.install`.
"""

from __future__ import annotations

import threading
from typing import Iterable

from ..errors import CatalogError
from .schema import TableSchema
from .table import Table, TableData


class Catalog:
    """Thread-safe registry of versioned tables."""

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}
        self._commit_ts = 0
        self._ddl_version = 0
        self._lock = threading.RLock()

    # -- timestamps --------------------------------------------------------

    @property
    def current_ts(self) -> int:
        """The timestamp of the most recent commit."""
        return self._commit_ts

    @property
    def ddl_version(self) -> int:
        """Monotonic counter bumped by every CREATE/DROP TABLE; cached
        plans are valid only for the version they were built under."""
        return self._ddl_version

    def next_commit_ts(self) -> int:
        """Advance and return the global commit timestamp."""
        with self._lock:
            self._commit_ts += 1
            return self._commit_ts

    # -- DDL ----------------------------------------------------------------

    def create_table(
        self, name: str, schema: TableSchema, if_not_exists: bool = False
    ) -> Table:
        """Register a new empty table; its creation commits immediately."""
        key = name.lower()
        with self._lock:
            existing = self._tables.get(key)
            if existing is not None and existing.dropped_ts is None:
                if if_not_exists:
                    return existing
                raise CatalogError(f"table already exists: {name!r}")
            ts = self.next_commit_ts()
            table = Table(key, schema, ts)
            self._tables[key] = table
            self._ddl_version += 1
            return table

    def drop_table(self, name: str, if_exists: bool = False) -> None:
        """Drop a table; visibility ends at the drop commit timestamp."""
        key = name.lower()
        with self._lock:
            table = self._tables.get(key)
            if table is None or table.dropped_ts is not None:
                if if_exists:
                    return
                raise CatalogError(f"no such table: {name!r}")
            table.dropped_ts = self.next_commit_ts()
            self._ddl_version += 1

    # -- lookup --------------------------------------------------------------

    def has_table(self, name: str, ts: int | None = None) -> bool:
        ts = self._commit_ts if ts is None else ts
        table = self._tables.get(name.lower())
        return table is not None and table.visible_at(ts)

    def table(self, name: str, ts: int | None = None) -> Table:
        """Resolve a table visible at snapshot ``ts`` (default: latest)."""
        ts = self._commit_ts if ts is None else ts
        table = self._tables.get(name.lower())
        if table is None or not table.visible_at(ts):
            raise CatalogError(f"no such table: {name!r}")
        return table

    def data(self, name: str, ts: int | None = None) -> TableData:
        """The table contents visible at snapshot ``ts``."""
        ts = self._commit_ts if ts is None else ts
        return self.table(name, ts).data_at(ts)

    def table_names(self, ts: int | None = None) -> list[str]:
        """Names of all tables visible at ``ts``, sorted."""
        ts = self._commit_ts if ts is None else ts
        return sorted(
            name
            for name, table in self._tables.items()
            if table.visible_at(ts)
        )

    # -- writes ---------------------------------------------------------------

    def install(
        self, updates: Iterable[tuple[str, TableData]]
    ) -> int:
        """Atomically install new versions for several tables under one
        commit timestamp. Returns the commit timestamp used."""
        with self._lock:
            ts = self.next_commit_ts()
            for name, data in updates:
                self.table(name, ts).install(ts, data)
            return ts

    def latest_commit_ts_of(self, name: str) -> int:
        """Commit timestamp of the latest version of ``name`` (conflict
        detection for first-committer-wins)."""
        with self._lock:
            return self.table(name).latest_commit_ts()

    def vacuum(self, oldest_active_ts: int) -> int:
        """Drop versions invisible to every snapshot at or newer than
        ``oldest_active_ts``. Returns the number of versions freed."""
        with self._lock:
            freed = 0
            for table in self._tables.values():
                freed += table.truncate_history(oldest_active_ts)
            # Fully remove dropped tables no active snapshot can see.
            dead = [
                name
                for name, t in self._tables.items()
                if t.dropped_ts is not None
                and t.dropped_ts <= oldest_active_ts
            ]
            for name in dead:
                del self._tables[name]
                freed += 1
            return freed
