"""Typed column vectors and column batches.

A :class:`Column` is a densely typed numpy array plus an optional validity
mask (``None`` means "no NULLs"). Columns are treated as immutable once
constructed; mutation goes through copy-on-write at the table layer.

A :class:`ColumnBatch` is the engine's unit of data flow: an ordered mapping
of column names to :class:`Column` values of equal length. Physical
operators are generators of batches, which is the vectorised analogue of
HyPer's data-centric tuple pipelines.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from ..errors import ExecutionError
from ..types import SQLType, TypeKind, coerce_scalar


class Column:
    """An immutable typed vector of values with NULL tracking.

    Attributes:
        values: numpy array holding the (dense) values. Slots that are NULL
            hold an unspecified filler value and must not be interpreted.
        valid: boolean numpy array, ``True`` where the value is non-NULL,
            or ``None`` when every value is valid.
        sql_type: the SQL type of the column.
    """

    __slots__ = ("values", "valid", "sql_type", "_zones")

    def __init__(
        self,
        values: np.ndarray,
        sql_type: SQLType,
        valid: np.ndarray | None = None,
    ):
        self.values = values
        self.sql_type = sql_type
        if valid is not None and bool(valid.all()):
            valid = None
        self.valid = valid
        # Lazily built zone map (None = not built, False = unbuildable).
        self._zones = None

    def zone_map(self):
        """Per-zone min/max/null statistics for scan pruning, built on
        first demand and cached (columns are immutable). None for
        types without ordered zone statistics (VARCHAR)."""
        zones = self._zones
        if zones is None:
            from .zonemap import build_zone_map

            zones = build_zone_map(self)
            # Benign race: concurrent builders produce equal maps, and
            # the slot assignment is atomic.
            self._zones = zones if zones is not None else False
            return zones
        return zones if zones is not False else None

    # -- constructors -----------------------------------------------------

    @classmethod
    def from_values(
        cls, values: Iterable[object], sql_type: SQLType
    ) -> "Column":
        """Build a column from arbitrary Python values, coercing each to
        ``sql_type`` and tracking NULLs. The slow path; used by INSERT,
        literals, and tests — not by the vectorised execution engine."""
        items = list(values)
        n = len(items)
        dtype = sql_type.numpy_dtype()
        out = np.zeros(n, dtype=dtype)
        valid = np.ones(n, dtype=np.bool_)
        for i, item in enumerate(items):
            if item is None:
                valid[i] = False
                if dtype == object:
                    out[i] = None
            else:
                out[i] = coerce_scalar(item, sql_type)
        return cls(out, sql_type, valid if not valid.all() else None)

    @classmethod
    def all_null(cls, n: int, sql_type: SQLType) -> "Column":
        """A column of ``n`` NULLs."""
        values = np.zeros(n, dtype=sql_type.numpy_dtype())
        return cls(values, sql_type, np.zeros(n, dtype=np.bool_))

    @classmethod
    def constant(cls, value: object, n: int, sql_type: SQLType) -> "Column":
        """A column repeating ``value`` ``n`` times."""
        if value is None:
            return cls.all_null(n, sql_type)
        dtype = sql_type.numpy_dtype()
        coerced = coerce_scalar(value, sql_type)
        values = np.full(n, coerced, dtype=dtype)
        return cls(values, sql_type)

    # -- basic protocol ----------------------------------------------------

    def __len__(self) -> int:
        return len(self.values)

    def __repr__(self) -> str:
        nulls = 0 if self.valid is None else int((~self.valid).sum())
        return (
            f"Column({self.sql_type}, n={len(self)}, nulls={nulls})"
        )

    @property
    def nbytes(self) -> int:
        """Accounted size in bytes (values plus validity mask), as seen
        by the resource governor's memory ledger."""
        total = int(self.values.nbytes)
        if self.valid is not None:
            total += int(self.valid.nbytes)
        return total

    def null_count(self) -> int:
        """Number of NULL slots in the column."""
        if self.valid is None:
            return 0
        return int((~self.valid).sum())

    def validity(self) -> np.ndarray:
        """A materialised validity mask (always an array, never None)."""
        if self.valid is None:
            # len(self), not len(self.values): encoded subclasses know
            # their length without decoding (see storage/encoding.py).
            return np.ones(len(self), dtype=np.bool_)
        return self.valid

    def value_at(self, i: int) -> object:
        """The Python value at row ``i`` (None for NULL)."""
        if self.valid is not None and not self.valid[i]:
            return None
        raw = self.values[i]
        kind = self.sql_type.kind
        if kind is TypeKind.BOOLEAN:
            return bool(raw)
        if kind in (TypeKind.INTEGER, TypeKind.BIGINT, TypeKind.DATE):
            return int(raw)
        if kind is TypeKind.DOUBLE:
            return float(raw)
        return raw

    def to_pylist(self) -> list[object]:
        """All values as a Python list with None for NULLs."""
        return [self.value_at(i) for i in range(len(self))]

    # -- vectorised manipulation -------------------------------------------

    def take(self, indices: np.ndarray) -> "Column":
        """Gather rows by position (used by joins, sorts, filters)."""
        values = self.values[indices]
        valid = None if self.valid is None else self.valid[indices]
        return Column(values, self.sql_type, valid)

    def filter(self, mask: np.ndarray) -> "Column":
        """Keep rows where ``mask`` is True."""
        values = self.values[mask]
        valid = None if self.valid is None else self.valid[mask]
        return Column(values, self.sql_type, valid)

    def slice(self, start: int, stop: int) -> "Column":
        """A contiguous row range as a (view-backed) column."""
        values = self.values[start:stop]
        valid = None if self.valid is None else self.valid[start:stop]
        return Column(values, self.sql_type, valid)

    @classmethod
    def concat(cls, parts: Sequence["Column"]) -> "Column":
        """Concatenate columns of an identical SQL type."""
        if not parts:
            raise ExecutionError("cannot concatenate zero columns")
        sql_type = parts[0].sql_type
        values = np.concatenate([p.values for p in parts])
        if all(p.valid is None for p in parts):
            valid = None
        else:
            valid = np.concatenate([p.validity() for p in parts])
        return cls(values, sql_type, valid)

    def cast(self, target: SQLType) -> "Column":
        """Vectorised cast to ``target``; NULLs stay NULL."""
        if target.kind == self.sql_type.kind:
            return Column(self.values, target, self.valid)
        kind = target.kind
        if kind is TypeKind.VARCHAR:
            out = np.empty(len(self), dtype=object)
            validity = self.validity()
            src_kind = self.sql_type.kind
            for i in range(len(self)):
                if validity[i]:
                    raw = self.values[i]
                    if src_kind is TypeKind.BOOLEAN:
                        out[i] = "true" if raw else "false"
                    elif src_kind is TypeKind.DOUBLE:
                        out[i] = repr(float(raw))
                    else:
                        out[i] = str(raw)
            return Column(out, target, self.valid)
        if self.sql_type.kind is TypeKind.VARCHAR:
            return Column.from_values(
                [
                    None if v is None else coerce_scalar(v, target)
                    for v in self.to_pylist()
                ],
                target,
            )
        try:
            values = self.values.astype(target.numpy_dtype())
        except (TypeError, ValueError) as exc:
            raise ExecutionError(
                f"cannot cast {self.sql_type} to {target}"
            ) from exc
        return Column(values, target, self.valid)


class ColumnBatch:
    """An ordered set of equal-length named columns (a vectorised chunk).

    Column names inside a batch are the *resolved output names* of the
    producing operator; binding has already mapped SQL identifiers to
    unique slot names, so batches never carry ambiguity.
    """

    __slots__ = ("columns", "_length")

    def __init__(self, columns: Mapping[str, Column]):
        self.columns: dict[str, Column] = dict(columns)
        lengths = {len(c) for c in self.columns.values()}
        if len(lengths) > 1:
            raise ExecutionError(
                f"ragged batch: column lengths {sorted(lengths)}"
            )
        self._length = lengths.pop() if lengths else 0

    @classmethod
    def empty(cls, names_and_types: Mapping[str, SQLType]) -> "ColumnBatch":
        """A zero-row batch with the given layout."""
        return cls(
            {
                name: Column(np.zeros(0, dtype=t.numpy_dtype()), t)
                for name, t in names_and_types.items()
            }
        )

    def __len__(self) -> int:
        return self._length

    def __contains__(self, name: str) -> bool:
        return name in self.columns

    def __getitem__(self, name: str) -> Column:
        return self.columns[name]

    def names(self) -> list[str]:
        return list(self.columns)

    @property
    def nbytes(self) -> int:
        """Accounted size in bytes of all columns (governor ledger)."""
        return sum(c.nbytes for c in self.columns.values())

    def take(self, indices: np.ndarray) -> "ColumnBatch":
        return ColumnBatch(
            {n: c.take(indices) for n, c in self.columns.items()}
        )

    def filter(self, mask: np.ndarray) -> "ColumnBatch":
        return ColumnBatch(
            {n: c.filter(mask) for n, c in self.columns.items()}
        )

    def slice(self, start: int, stop: int) -> "ColumnBatch":
        return ColumnBatch(
            {n: c.slice(start, stop) for n, c in self.columns.items()}
        )

    def with_columns(self, extra: Mapping[str, Column]) -> "ColumnBatch":
        """A new batch with additional/overridden columns."""
        merged = dict(self.columns)
        merged.update(extra)
        return ColumnBatch(merged)

    def project(self, names: Sequence[str]) -> "ColumnBatch":
        """Keep only ``names``, in order."""
        return ColumnBatch({n: self.columns[n] for n in names})

    def rename(self, mapping: Mapping[str, str]) -> "ColumnBatch":
        """Rename columns; names absent from ``mapping`` are kept."""
        return ColumnBatch(
            {mapping.get(n, n): c for n, c in self.columns.items()}
        )

    def rows(self) -> Iterator[tuple[object, ...]]:
        """Iterate rows as Python tuples (slow path: results, tests)."""
        cols = list(self.columns.values())
        for i in range(self._length):
            yield tuple(c.value_at(i) for c in cols)

    @classmethod
    def concat(cls, parts: Sequence["ColumnBatch"]) -> "ColumnBatch":
        """Concatenate batches with identical layouts."""
        if not parts:
            raise ExecutionError("cannot concatenate zero batches")
        names = parts[0].names()
        return cls(
            {
                name: Column.concat([p[name] for p in parts])
                for name in names
            }
        )
