"""Main-memory columnar storage engine.

Tables are immutable, versioned sets of typed column vectors. Readers pin a
version (snapshot isolation); writers copy-on-write and install new versions
at commit. The unit of data flow through the execution engine is the
:class:`~repro.storage.column.ColumnBatch`.
"""

from .column import Column, ColumnBatch
from .schema import ColumnSchema, TableSchema
from .table import Table, TableData
from .catalog import Catalog

__all__ = [
    "Column",
    "ColumnBatch",
    "ColumnSchema",
    "TableSchema",
    "Table",
    "TableData",
    "Catalog",
]
