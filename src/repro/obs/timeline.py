"""Chrome-trace (Perfetto) export of span trees.

Converts the tracer's recent root spans into the Chrome trace event
format — the ``{"traceEvents": [...]}`` JSON that ``chrome://tracing``
and https://ui.perfetto.dev load directly. Every span becomes one
complete-duration event (``ph: "X"``) with microsecond timestamps; the
span's ``tid`` (captured at open on whichever thread ran it) lays
coordinator phases and pool-worker morsel spans out on separate tracks,
so a parallel statement renders as the coordinator's parse → bind →
optimize → plan → execute lanes with worker morsels fanned out below.

The exporter is pure: it reads completed spans only, so it can run at
any time without perturbing execution. Surface it with::

    python -m repro.obs.export --chrome-trace trace.json
"""

from __future__ import annotations

import json
from typing import Iterable, Optional

from .trace import Span

#: Process id used for all events (single-process engine).
TRACE_PID = 1


def _span_events(
    span: Span, origin_s: float, events: list[dict]
) -> None:
    start_us = (span.start_s - origin_s) * 1e6
    args = {
        key: value
        for key, value in span.attributes.items()
        if isinstance(value, (str, int, float, bool)) or value is None
    }
    if span.error:
        args["error"] = span.error
    events.append(
        {
            "name": span.name,
            "ph": "X",
            "ts": round(start_us, 3),
            "dur": round(span.duration_s * 1e6, 3),
            "pid": TRACE_PID,
            "tid": span.tid or 0,
            "cat": "span",
            "args": args,
        }
    )
    for child in span.children:
        _span_events(child, origin_s, events)


def spans_to_chrome_trace(
    roots: Iterable[Span], process_name: str = "repro"
) -> dict:
    """Convert completed root spans to one Chrome trace document.

    Timestamps are rebased so the earliest span starts at 0 µs
    (``perf_counter`` origins are arbitrary). Thread tracks get
    human-readable metadata names: the coordinator (the thread that
    opened each root) is labelled, workers keep their OS idents.
    """
    roots = [r for r in roots if r.end_s is not None]
    events: list[dict] = []
    if not roots:
        return {"traceEvents": [], "displayTimeUnit": "ms"}
    origin_s = min(r.start_s for r in roots)
    coordinator_tids = {r.tid for r in roots}
    for root in roots:
        _span_events(root, origin_s, events)
    seen_tids = {e["tid"] for e in events}
    meta: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": TRACE_PID,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    for tid in sorted(seen_tids):
        label = (
            f"coordinator-{tid}"
            if tid in coordinator_tids
            else f"worker-{tid}"
        )
        meta.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": TRACE_PID,
                "tid": tid,
                "args": {"name": label},
            }
        )
    return {
        "traceEvents": meta + events,
        "displayTimeUnit": "ms",
    }


def chrome_trace_json(
    roots: Iterable[Span], process_name: str = "repro"
) -> str:
    """The trace document serialised to JSON text."""
    return json.dumps(
        spans_to_chrome_trace(roots, process_name), indent=1
    )


def validate_chrome_trace(document: dict) -> list[str]:
    """Structural check of an exported document; returns problems
    (empty = well-formed). Used by ``make obs-smoke``."""
    problems: list[str] = []
    if not isinstance(document, dict):
        return ["document is not a JSON object"]
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {i} is not an object")
            continue
        ph = event.get("ph")
        if ph not in ("X", "M"):
            problems.append(f"event {i}: unexpected ph {ph!r}")
            continue
        if "pid" not in event or "tid" not in event:
            problems.append(f"event {i}: missing pid/tid")
        if ph == "X":
            ts = event.get("ts")
            dur = event.get("dur")
            if not isinstance(ts, (int, float)) or ts < 0:
                problems.append(f"event {i}: bad ts {ts!r}")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"event {i}: bad dur {dur!r}")
            if not event.get("name"):
                problems.append(f"event {i}: missing name")
    return problems


def export_chrome_trace(
    tracer,
    path: Optional[str] = None,
    n: int = 32,
    process_name: str = "repro",
) -> str:
    """Export the tracer's recent statements; writes ``path`` when
    given and returns the JSON text either way."""
    text = chrome_trace_json(tracer.recent_roots(n), process_name)
    if path:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text)
    return text
