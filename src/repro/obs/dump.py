"""Render flight-recorder bundles: ``python -m repro.obs.dump``.

With no arguments, renders the newest bundle under the resolved
flight-recorder directory (``REPRO_FLIGHTREC`` or
``results/flightrec``); with paths, renders each in turn. ``--list``
enumerates available bundles instead.
"""

from __future__ import annotations

import argparse
import os
import sys

from .flight import format_bundle, load_bundle, resolve_flight_dir


def _bundles_in(directory: str) -> list[str]:
    try:
        names = sorted(
            n
            for n in os.listdir(directory)
            if n.startswith("flightrec-") and n.endswith(".json")
        )
    except OSError:
        return []
    return [os.path.join(directory, n) for n in names]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.dump",
        description="Render flight-recorder bundles.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="bundle files to render (default: newest in the "
        "flight-recorder directory)",
    )
    parser.add_argument(
        "--dir",
        default=None,
        help="bundle directory (default: REPRO_FLIGHTREC or "
        "results/flightrec)",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="list available bundles instead of rendering",
    )
    args = parser.parse_args(argv)

    directory = resolve_flight_dir(args.dir)
    if args.list:
        bundles = _bundles_in(directory)
        if not bundles:
            print(f"no bundles under {directory}")
            return 1
        for path in bundles:
            print(path)
        return 0

    paths = args.paths
    if not paths:
        bundles = _bundles_in(directory)
        if not bundles:
            print(f"no bundles under {directory}", file=sys.stderr)
            return 1
        paths = bundles[-1:]

    status = 0
    for i, path in enumerate(paths):
        if i:
            print()
        try:
            bundle = load_bundle(path)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            status = 1
            continue
        print(f"== {path}")
        print(format_bundle(bundle))
    return status


if __name__ == "__main__":
    raise SystemExit(main())
