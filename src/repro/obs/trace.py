"""Query-lifecycle tracing: span trees and the statement ring buffer.

One :class:`Tracer` per :class:`~repro.api.database.Database` session.
Every statement becomes a root span (``statement``) whose children are
the lifecycle phases — ``parse`` → ``bind`` → ``optimize`` → ``plan`` →
``execute`` — and iterative executors (ITERATE, recursive CTEs) add one
``iteration`` child span per round under ``execute``. The most recent
root is available as :meth:`Database.last_trace`; a bounded ring buffer
of :class:`QueryLogEntry` summaries (SQL, phase timings, rows, errors)
backs :meth:`Database.query_log`.

Spans are cheap (two ``perf_counter`` calls plus a list append) and
always on; the ring buffer bounds memory for long-lived sessions.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Optional


@dataclass
class Span:
    """One timed region; ``children`` mirrors nesting order.

    ``tid`` is the OS thread identifier the span ran on — the
    coordinator for lifecycle phases, a pool worker for morsel and
    partial-aggregate spans — so timeline exporters
    (:mod:`repro.obs.timeline`) can lay spans out per thread.
    """

    name: str
    attributes: dict = field(default_factory=dict)
    start_s: float = 0.0
    end_s: Optional[float] = None
    children: list["Span"] = field(default_factory=list)
    error: Optional[str] = None
    tid: int = 0

    @property
    def duration_s(self) -> float:
        if self.end_s is None:
            return 0.0
        return self.end_s - self.start_s

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> Optional["Span"]:
        """First span (pre-order) with the given name."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def find_all(self, name: str) -> list["Span"]:
        return [s for s in self.walk() if s.name == name]

    def to_dict(self) -> dict:
        """A JSON-safe tree (attribute values stringified when they are
        not plain scalars) — the form flight-recorder bundles store."""
        safe_attrs = {}
        for key, value in self.attributes.items():
            if isinstance(value, (str, int, float, bool)) or value is None:
                safe_attrs[key] = value
            else:
                safe_attrs[key] = repr(value)
        return {
            "name": self.name,
            "attributes": safe_attrs,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "tid": self.tid,
            "error": self.error,
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Span":
        """Rebuild a span tree from :meth:`to_dict` output (bundle
        rendering; timings come back, thread identity is preserved)."""
        span = cls(
            name=payload.get("name", "?"),
            attributes=dict(payload.get("attributes", {})),
            start_s=float(payload.get("start_s", 0.0)),
            tid=int(payload.get("tid", 0)),
            error=payload.get("error"),
        )
        span.end_s = span.start_s + float(payload.get("duration_s", 0.0))
        span.children = [
            cls.from_dict(child) for child in payload.get("children", [])
        ]
        return span

    def format(self, indent: int = 0) -> str:
        pad = "  " * indent
        attrs = "".join(
            f" {k}={v!r}" for k, v in self.attributes.items()
            if k != "sql"
        )
        tail = f" ERROR: {self.error}" if self.error else ""
        line = (
            f"{pad}{self.name}  {self.duration_s * 1e3:.3f}ms"
            f"{attrs}{tail}"
        )
        parts = [line]
        parts.extend(c.format(indent + 1) for c in self.children)
        return "\n".join(parts)

    def __str__(self) -> str:
        return self.format()


@dataclass
class QueryLogEntry:
    """One ring-buffer line: what a statement was and what it cost."""

    sql: str
    started_at: float  # wall-clock epoch seconds
    duration_s: float
    phases: dict = field(default_factory=dict)
    rows: int = 0
    error: Optional[str] = None

    @classmethod
    def from_span(cls, span: Span, started_at: float) -> "QueryLogEntry":
        phases: dict[str, float] = {}
        for child in span.children:
            phases[child.name] = (
                phases.get(child.name, 0.0) + child.duration_s
            )
        return cls(
            sql=span.attributes.get("sql", ""),
            started_at=started_at,
            duration_s=span.duration_s,
            phases=phases,
            rows=int(span.attributes.get("rows", 0)),
            error=span.error,
        )

    def format(self) -> str:
        phase_text = " ".join(
            f"{name}={seconds * 1e3:.3f}ms"
            for name, seconds in self.phases.items()
        )
        status = f"ERROR: {self.error}" if self.error else f"{self.rows} row(s)"
        return (
            f"[{self.duration_s * 1e3:.3f}ms] {self.sql!r} — {status}"
            + (f" ({phase_text})" if phase_text else "")
        )


class Tracer:
    """Builds span trees; roots of statement spans feed the query log.

    The open-span stack is thread-local so concurrent sessions sharing
    one :class:`~repro.api.database.Database` trace independently;
    ``last_root`` and the ring buffer are shared (last writer wins)."""

    def __init__(self, log_size: int = 256, root_ring_size: int = 32):
        self._local = threading.local()
        self.last_root: Optional[Span] = None
        self._log: deque[QueryLogEntry] = deque(maxlen=log_size)
        #: Recent completed root spans (full trees), oldest first — the
        #: flight recorder's ring and the timeline exporter's source.
        self._roots: deque[Span] = deque(maxlen=root_ring_size)
        #: Guards cross-thread child attachment (worker spans).
        self._attach_lock = threading.Lock()

    @property
    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current(self) -> Optional[Span]:
        """The innermost open span on *this* thread (None between
        statements). The worker pool captures this on the coordinator
        to parent the spans its tasks open on worker threads."""
        stack = self._stack
        return stack[-1] if stack else None

    def current_root(self) -> Optional[Span]:
        """The root of the statement currently open on *this* thread
        (None between statements) — the flight recorder snapshots this
        when a worker crash is survived mid-statement."""
        stack = self._stack
        return stack[0] if stack else None

    # -- spans -------------------------------------------------------------

    def _open(self, name: str, attributes: dict) -> Span:
        span = Span(name, attributes, tid=threading.get_ident())
        stack = self._stack
        if stack:
            stack[-1].children.append(span)
        stack.append(span)
        span.start_s = time.perf_counter()
        return span

    def _close(self, span: Span) -> None:
        span.end_s = time.perf_counter()
        stack = self._stack
        popped = stack.pop()
        assert popped is span, "span close order violated"
        if not stack:
            self.last_root = span
            self._roots.append(span)

    @contextmanager
    def span(self, name: str, **attributes):
        span = self._open(name, attributes)
        try:
            yield span
        except BaseException as exc:
            if span.error is None:
                span.error = f"{type(exc).__name__}: {exc}"
            raise
        finally:
            self._close(span)

    @contextmanager
    def statement(self, sql: str):
        """A root span for one statement; on exit (success *or* error)
        a :class:`QueryLogEntry` is appended to the ring buffer."""
        started_at = time.time()
        span = self._open("statement", {"sql": sql})
        try:
            yield span
        except BaseException as exc:
            if span.error is None:
                span.error = f"{type(exc).__name__}: {exc}"
            raise
        finally:
            self._close(span)
            self._log.append(QueryLogEntry.from_span(span, started_at))

    @contextmanager
    def attached_span(self, parent: Span, name: str, **attributes):
        """A span timed on the *calling* thread but attached under
        ``parent`` (a span owned by another thread).

        This is the trace-context propagation primitive: the worker
        pool captures the coordinator's :meth:`current` span before
        dispatch and opens one attached span per task, so parallel
        morsel and partial-aggregate work stitches under the owning
        statement's tree. The child is appended only on close (under a
        lock), so concurrent readers never see a half-built span and
        every task appears exactly once."""
        span = Span(name, attributes, tid=threading.get_ident())
        span.start_s = time.perf_counter()
        try:
            yield span
        except BaseException as exc:
            if span.error is None:
                span.error = f"{type(exc).__name__}: {exc}"
            raise
        finally:
            span.end_s = time.perf_counter()
            with self._attach_lock:
                parent.children.append(span)

    # -- the query log -----------------------------------------------------

    def log(self, n: int = 20) -> list[QueryLogEntry]:
        """The most recent ``n`` statements, oldest first."""
        if n <= 0:
            return []
        entries = list(self._log)
        return entries[-n:]

    def recent_roots(self, n: int = 32) -> list[Span]:
        """The most recent ``n`` completed root spans (full trees),
        oldest first."""
        if n <= 0:
            return []
        roots = list(self._roots)
        return roots[-n:]
