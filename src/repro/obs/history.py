"""The query history store: per-statement records that survive the
statement (docs/observability.md).

One :class:`QueryHistory` per :class:`~repro.api.database.Database`
(``db.history``). Every statement — successful or aborted — leaves one
:class:`QueryRecord` behind: the plan-cache fingerprint, SQL text, phase
timings from the tracer, per-operator *estimated vs observed*
cardinalities with their q-error, the governor outcome (``ok`` /
``timeout`` / ``cancelled`` / ``oom`` / ``injected_fault``), hot-path
cache flags, worker count, encoding mode, and peak accounted memory.

The store is always on, bounded (a ring plus a bounded per-fingerprint
index), and thread-safe (statements may finish on any thread). The
statement hot path only captures references (span, profiled stats,
governor scalars) — records materialize lazily on first read, keeping
the always-on cost to a few microseconds per statement
(``results/OBSERVABILITY.md``). Three surfaces:

* ``db.history(n)`` — the most recent ``n`` records, oldest first;
* ``db.history.by_fingerprint(fp)`` — every retained record of one
  normalized statement, the surface the feedback-driven optimizer
  consumes (ROADMAP: observed cardinalities keyed by plan fingerprint);
* ``db.history.slow(n)`` — the slow-query log, fed by statements whose
  wall time passed the ``REPRO_SLOW_MS`` / ``Database(slow_ms=...)``
  threshold.

Records can optionally spill to a JSONL file (``Database(history=path)``
or ``REPRO_HISTORY=path``) so history survives the process: one JSON
document per line, append-only, written outside the store's lock.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Optional

#: Environment variables read when the constructor arguments are None.
HISTORY_ENV = "REPRO_HISTORY"
SLOW_MS_ENV = "REPRO_SLOW_MS"

#: Records retained in the ring (and per fingerprint) by default.
DEFAULT_CAPACITY = 512
DEFAULT_PER_FINGERPRINT = 32
#: Distinct fingerprints indexed before the least-recently-updated one
#: is evicted (bounds the index for fingerprint-churning workloads).
DEFAULT_FINGERPRINTS = 256


def resolve_history_path(path: Optional[str] = None) -> Optional[str]:
    """The effective JSONL spill path: an explicit argument wins, then
    ``REPRO_HISTORY``, then None (memory-only)."""
    if path is not None:
        return path or None
    env = os.environ.get(HISTORY_ENV, "").strip()
    return env or None


def resolve_slow_ms(slow_ms: Optional[float] = None) -> Optional[float]:
    """The effective slow-query threshold in milliseconds: an explicit
    argument wins, then ``REPRO_SLOW_MS``, then None (disabled)."""
    if slow_ms is not None:
        return slow_ms if slow_ms > 0 else None
    raw = os.environ.get(SLOW_MS_ENV, "").strip()
    if not raw:
        return None
    try:
        value = float(raw)
    except ValueError as exc:
        raise ValueError(
            f"{SLOW_MS_ENV} must be a number of milliseconds, got {raw!r}"
        ) from exc
    return value if value > 0 else None


@dataclass(slots=True)
class QueryRecord:
    """One statement's afterlife: everything the history store keeps.

    ``operators`` is a list of per-operator dicts —
    ``{"op", "estimated_rows", "observed_rows", "q_error"}`` in plan
    pre-order (main plan first, lazily-built subquery plans after) —
    present whenever the statement ran with operator profiling on.
    """

    sql: str
    fingerprint: Optional[str]
    started_at: float  # wall-clock epoch seconds
    duration_s: float
    phases: dict = field(default_factory=dict)
    rows: int = 0
    error: Optional[str] = None
    #: Governor outcome: ok / timeout / cancelled / oom / injected_fault.
    verdict: str = "ok"
    checkpoints: int = 0
    peak_bytes: int = 0
    operators: list = field(default_factory=list)
    #: Whether the statement was served from the plan cache.
    cache_hit: bool = False
    workers: int = 1
    encoding: str = "auto"
    #: Whether the statement crossed the slow-query threshold.
    slow: bool = False

    def to_dict(self) -> dict:
        return {
            "sql": self.sql,
            "fingerprint": self.fingerprint,
            "started_at": self.started_at,
            "duration_s": self.duration_s,
            "phases": dict(self.phases),
            "rows": self.rows,
            "error": self.error,
            "verdict": self.verdict,
            "checkpoints": self.checkpoints,
            "peak_bytes": self.peak_bytes,
            "operators": list(self.operators),
            "cache_hit": self.cache_hit,
            "workers": self.workers,
            "encoding": self.encoding,
            "slow": self.slow,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "QueryRecord":
        return cls(
            sql=payload.get("sql", ""),
            fingerprint=payload.get("fingerprint"),
            started_at=float(payload.get("started_at", 0.0)),
            duration_s=float(payload.get("duration_s", 0.0)),
            phases=dict(payload.get("phases", {})),
            rows=int(payload.get("rows", 0)),
            error=payload.get("error"),
            verdict=payload.get("verdict", "ok"),
            checkpoints=int(payload.get("checkpoints", 0)),
            peak_bytes=int(payload.get("peak_bytes", 0)),
            operators=list(payload.get("operators", [])),
            cache_hit=bool(payload.get("cache_hit", False)),
            workers=int(payload.get("workers", 1)),
            encoding=payload.get("encoding", "auto"),
            slow=bool(payload.get("slow", False)),
        )

    @property
    def max_q_error(self) -> Optional[float]:
        """The worst per-operator q-error of this execution (None when
        no operator carried an estimate)."""
        worst = None
        for op in self.operators:
            q = op.get("q_error")
            if q is not None and (worst is None or q > worst):
                worst = q
        return worst

    def format(self) -> str:
        status = (
            f"ERROR[{self.verdict}]: {self.error}"
            if self.error
            else f"{self.rows} row(s)"
        )
        flags = []
        if self.cache_hit:
            flags.append("cached")
        if self.slow:
            flags.append("SLOW")
        tail = f" [{', '.join(flags)}]" if flags else ""
        return (
            f"[{self.duration_s * 1e3:.3f}ms] {self.sql!r} — "
            f"{status}{tail}"
        )


def operator_observations(stats_roots) -> list[dict]:
    """Flatten profiled :class:`~repro.exec.physical.OperatorStats`
    trees into the per-operator observation rows a record stores."""
    out: list[dict] = []
    for root in stats_roots:
        for node in root.walk():
            estimated = node.estimated_rows
            if estimated is None:
                q_error = None
            else:
                est = estimated if estimated > 1.0 else 1.0
                obs = node.rows_out if node.rows_out > 1 else 1.0
                q_error = est / obs if est > obs else obs / est
            observation = {
                "op": node.label,
                "estimated_rows": estimated,
                "observed_rows": node.rows_out,
                "q_error": q_error,
            }
            node_key = getattr(node, "node_key", None)
            if node_key is not None:
                observation["key"] = node_key
            source = getattr(node, "estimate_source", None)
            if source is not None:
                observation["source"] = source
            out.append(observation)
    return out


class _LazyRecord:
    """A deferred :class:`QueryRecord`: the statement hot path stores
    the builder closure (references to the finished span, profiled
    stats, governor scalars) and the record materializes on first read.
    Keeps the always-on recording cost to a few microseconds per
    statement — readers, not statements, pay for dict assembly."""

    __slots__ = ("_thunk", "_record", "slow")

    def __init__(self, thunk, slow: bool):
        self._thunk = thunk
        self._record: Optional[QueryRecord] = None
        self.slow = slow

    def get(self) -> QueryRecord:
        record = self._record
        if record is None:
            try:
                record = self._thunk()
            except Exception as exc:  # noqa: BLE001 — reads never raise
                record = QueryRecord(
                    sql="<history record failed>",
                    fingerprint=None,
                    started_at=0.0,
                    duration_s=0.0,
                    error=f"{type(exc).__name__}: {exc}",
                )
            if self.slow:
                record.slow = True
            self._record = record
        return record


class QueryHistory:
    """Bounded, thread-safe per-session statement history.

    Callable for convenience: ``db.history(20)`` is
    ``db.history.recent(20)``.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        per_fingerprint: int = DEFAULT_PER_FINGERPRINT,
        max_fingerprints: int = DEFAULT_FINGERPRINTS,
        spill_path: Optional[str] = None,
        slow_ms: Optional[float] = None,
        metrics=None,
    ):
        self.capacity = max(int(capacity), 1)
        self.per_fingerprint = max(int(per_fingerprint), 1)
        self.max_fingerprints = max(int(max_fingerprints), 1)
        #: JSONL spill target (None = memory only).
        self.spill_path = spill_path
        #: Slow-query threshold in milliseconds (None = disabled).
        self.slow_ms = slow_ms
        self._metrics = metrics
        # Counter children resolved once — record() runs after every
        # statement, so per-record label lookups would be pure waste.
        self._records_counter = (
            metrics.counter("history_records_total")
            if metrics is not None
            else None
        )
        self._slow_counter = (
            metrics.counter("slow_statements_total")
            if metrics is not None
            else None
        )
        self._lock = threading.Lock()
        self._ring: deque[QueryRecord] = deque(maxlen=self.capacity)
        self._by_fp: "OrderedDict[str, deque[QueryRecord]]" = OrderedDict()
        #: Monotone executions-recorded counter per fingerprint (the
        #: deques are bounded, so their length saturates); evicted
        #: alongside ``_by_fp``. The cardinality-feedback cache uses it
        #: as a cheap "anything new?" staleness probe.
        self._fp_counts: dict[str, int] = {}
        self._slow: deque[QueryRecord] = deque(maxlen=self.capacity)
        self._spill_lock = threading.Lock()
        self._spill_error: Optional[str] = None

    def __call__(self, n: int = 20) -> list[QueryRecord]:
        return self.recent(n)

    # -- recording ---------------------------------------------------------

    def record(self, record: QueryRecord) -> QueryRecord:
        """Retain one finished statement (called by the session after
        every ``execute``/``explain_analyze``, success or abort)."""
        if (
            self.slow_ms is not None
            and record.duration_s * 1e3 >= self.slow_ms
        ):
            record.slow = True
        self._store(record, record.fingerprint, record.slow)
        if self.spill_path is not None:
            self._spill(record)
        return record

    def record_deferred(
        self,
        thunk,
        fingerprint: Optional[str] = None,
        duration_s: float = 0.0,
    ) -> None:
        """Retain one finished statement *lazily*: ``thunk`` builds the
        :class:`QueryRecord` on first read. This is the statement hot
        path — the session calls it after every execute, so it only
        does ring/index bookkeeping; dict assembly is deferred to the
        reader. With a JSONL spill configured the record is needed now,
        so it materializes eagerly."""
        slow = (
            self.slow_ms is not None
            and duration_s * 1e3 >= self.slow_ms
        )
        if self.spill_path is not None:
            record = thunk()
            if slow:
                record.slow = True
            self._store(record, fingerprint, slow)
            self._spill(record)
            return
        self._store(_LazyRecord(thunk, slow), fingerprint, slow)

    def _store(self, item, fingerprint: Optional[str], slow: bool) -> None:
        with self._lock:
            self._ring.append(item)
            if fingerprint is not None:
                bucket = self._by_fp.get(fingerprint)
                if bucket is None:
                    bucket = deque(maxlen=self.per_fingerprint)
                    self._by_fp[fingerprint] = bucket
                bucket.append(item)
                self._fp_counts[fingerprint] = (
                    self._fp_counts.get(fingerprint, 0) + 1
                )
                self._by_fp.move_to_end(fingerprint)
                while len(self._by_fp) > self.max_fingerprints:
                    evicted, _ = self._by_fp.popitem(last=False)
                    self._fp_counts.pop(evicted, None)
            if slow:
                self._slow.append(item)
        if self._records_counter is not None:
            self._records_counter.inc()
            if slow:
                self._slow_counter.inc()

    @staticmethod
    def _resolve(item) -> QueryRecord:
        return item.get() if type(item) is _LazyRecord else item

    def _spill(self, record: QueryRecord) -> None:
        """Append one JSONL line; spill failures disable further spill
        (recorded in ``spill_error``) instead of failing statements."""
        if self._spill_error is not None:
            return
        try:
            line = json.dumps(record.to_dict(), sort_keys=True)
            with self._spill_lock:
                with open(self.spill_path, "a", encoding="utf-8") as fh:
                    fh.write(line + "\n")
        except OSError as exc:
            self._spill_error = f"{type(exc).__name__}: {exc}"

    @property
    def spill_error(self) -> Optional[str]:
        """Why JSONL spill stopped (None while healthy)."""
        return self._spill_error

    # -- reading -----------------------------------------------------------

    def recent(self, n: int = 20) -> list[QueryRecord]:
        """The most recent ``n`` records, oldest first."""
        if n <= 0:
            return []
        with self._lock:
            items = list(self._ring)
        return [self._resolve(item) for item in items[-n:]]

    def by_fingerprint(self, fingerprint: str) -> list[QueryRecord]:
        """Every retained record of one normalized statement, oldest
        first. This is the plan-feedback surface: each record carries
        per-operator estimated vs observed cardinalities for the plan
        the fingerprint keys in the plan cache."""
        with self._lock:
            items = list(self._by_fp.get(fingerprint) or ())
        return [self._resolve(item) for item in items]

    def slow(self, n: int = 20) -> list[QueryRecord]:
        """The most recent ``n`` slow statements, oldest first (empty
        while no threshold is configured)."""
        if n <= 0:
            return []
        with self._lock:
            items = list(self._slow)
        return [self._resolve(item) for item in items[-n:]]

    def fingerprints(self) -> list[str]:
        """Indexed fingerprints, least-recently-updated first."""
        with self._lock:
            return list(self._by_fp)

    def execution_count(self, fingerprint: str) -> int:
        """How many executions have ever been recorded for this
        fingerprint (0 for unknown/evicted). O(1) and lock-cheap —
        safe to call on the plan-cache hit path."""
        with self._lock:
            return self._fp_counts.get(fingerprint, 0)

    def observed_cardinalities(self, fingerprint: str) -> dict:
        """Aggregated plan feedback for one fingerprint: per-operator
        label -> ``{"mean_rows", "last_rows", "estimated_rows",
        "mean_q_error", "executions"}`` over every retained record that
        profiled its operators. The feedback-driven optimizer reads
        this to replace static guesses with observed truth."""
        totals: dict[str, dict] = {}
        for record in self.by_fingerprint(fingerprint):
            for op in record.operators:
                label = op["op"]
                slot = totals.setdefault(
                    label,
                    {
                        "rows_sum": 0.0,
                        "q_sum": 0.0,
                        "q_n": 0,
                        "executions": 0,
                        "last_rows": 0,
                        "estimated_rows": None,
                    },
                )
                slot["executions"] += 1
                slot["rows_sum"] += float(op.get("observed_rows", 0))
                slot["last_rows"] = op.get("observed_rows", 0)
                if op.get("estimated_rows") is not None:
                    slot["estimated_rows"] = op["estimated_rows"]
                if op.get("q_error") is not None:
                    slot["q_sum"] += float(op["q_error"])
                    slot["q_n"] += 1
        out = {}
        for label, slot in totals.items():
            executions = slot["executions"]
            out[label] = {
                "mean_rows": slot["rows_sum"] / executions,
                "last_rows": slot["last_rows"],
                "estimated_rows": slot["estimated_rows"],
                "mean_q_error": (
                    slot["q_sum"] / slot["q_n"] if slot["q_n"] else None
                ),
                "executions": executions,
            }
        return out

    def observed_node_cardinalities(self, fingerprint: str) -> dict:
        """Like :meth:`observed_cardinalities` but keyed by the
        structural plan-node key (``Join[a,b]#0``) recorded with each
        observation — the key :mod:`repro.plan.feedback` matches back
        to logical plan nodes across re-optimizations. Observations
        without a node key (pre-upgrade records) are skipped."""
        totals: dict[str, dict] = {}
        for record in self.by_fingerprint(fingerprint):
            for op in record.operators:
                key = op.get("key")
                if key is None:
                    continue
                slot = totals.setdefault(
                    key, {"rows_sum": 0.0, "executions": 0,
                          "last_rows": 0},
                )
                slot["executions"] += 1
                slot["rows_sum"] += float(op.get("observed_rows", 0))
                slot["last_rows"] = op.get("observed_rows", 0)
        return {
            key: {
                "mean_rows": slot["rows_sum"] / slot["executions"],
                "last_rows": slot["last_rows"],
                "executions": slot["executions"],
            }
            for key, slot in totals.items()
        }

    def tail_dicts(self, n: int = 20) -> list[dict]:
        """The most recent ``n`` records as JSON-safe dicts (flight
        recorder bundles embed this)."""
        return [record.to_dict() for record in self.recent(n)]

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()
            self._by_fp.clear()
            self._fp_counts.clear()
            self._slow.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)


def load_jsonl(path: str) -> list[QueryRecord]:
    """Read a JSONL spill file back into records (post-mortem use:
    ``QueryHistory`` itself never reads the file)."""
    records: list[QueryRecord] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            records.append(QueryRecord.from_dict(json.loads(line)))
    return records


def record_from_span(
    span,
    *,
    fingerprint: Optional[str],
    started_at: Optional[float] = None,
    governor: Optional[dict] = None,
    operators: Optional[list] = None,
    cache_hit: bool = False,
    workers: int = 1,
    encoding: str = "auto",
    extra_phases: Optional[dict] = None,
) -> QueryRecord:
    """Assemble a :class:`QueryRecord` from a completed ``statement``
    span plus the statement's governor report and profiled operators.

    ``extra_phases`` merges caller-supplied timings (e.g. the server's
    admission-queue wait) into the span-derived phase map."""
    phases: dict[str, float] = {}
    for child in span.children:
        phases[child.name] = phases.get(child.name, 0.0) + child.duration_s
    for name, seconds in (extra_phases or {}).items():
        phases[name] = phases.get(name, 0.0) + float(seconds)
    governor = governor or {}
    return QueryRecord(
        sql=span.attributes.get("sql", ""),
        fingerprint=fingerprint,
        started_at=(
            started_at if started_at is not None else time.time()
        ),
        duration_s=span.duration_s,
        phases=phases,
        rows=int(span.attributes.get("rows", 0)),
        error=span.error,
        verdict=governor.get("verdict", "ok"),
        checkpoints=int(governor.get("checkpoints", 0)),
        peak_bytes=int(governor.get("peak_bytes", 0)),
        operators=operators or [],
        cache_hit=cache_hit,
        workers=workers,
        encoding=encoding,
    )
