"""The flight recorder: post-mortem bundles for statements that die.

A :class:`FlightRecorder` rides along with every
:class:`~repro.api.database.Database`. In normal operation it costs
nothing beyond the tracer's existing ring of recent span trees; when a
statement dies — a :class:`~repro.errors.ResourceGovernorError`
(timeout, cancel, memory budget), a chaos-injected fault, or a worker
crash survived by serial retry — it dumps one **self-contained
diagnostic bundle** to disk:

* the failing statement's full span tree plus the recent-trace ring,
* the governor's final report (verdict, checkpoints, peak bytes),
* the tail of the query history store,
* a metrics snapshot,
* the session configuration (workers, encoding, budgets, cache state).

Bundles are plain JSON under ``results/flightrec/`` (override with
``Database(flight_dir=...)`` or ``REPRO_FLIGHTREC``); the directory is
pruned to the newest :data:`DEFAULT_KEEP` bundles so an abort storm
cannot fill the disk. Render one with::

    python -m repro.obs.dump results/flightrec/<bundle>.json

The chaos harness (:mod:`repro.testing.chaos`) asserts that every
injected abort produces a loadable bundle — the flight recorder is part
of the engine's failure contract, not best-effort logging.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Optional

#: Environment override for the bundle directory.
FLIGHTREC_ENV = "REPRO_FLIGHTREC"

#: Default bundle directory (relative to the working directory).
DEFAULT_DIR = os.path.join("results", "flightrec")

#: Newest bundles kept per directory; older ones are pruned on write.
DEFAULT_KEEP = 50

#: Bundle schema identifier (bumped on incompatible layout changes).
BUNDLE_SCHEMA = "repro-flightrec-v1"

#: Keys every loadable bundle must carry.
REQUIRED_KEYS = (
    "schema",
    "created_at",
    "reason",
    "error",
    "governor",
    "trace",
    "recent_traces",
    "history",
    "metrics",
    "config",
)


def resolve_flight_dir(directory: Optional[str] = None) -> str:
    """The effective bundle directory: an explicit argument wins, then
    ``REPRO_FLIGHTREC``, then ``results/flightrec``."""
    if directory:
        return directory
    env = os.environ.get(FLIGHTREC_ENV, "").strip()
    return env or DEFAULT_DIR


class FlightRecorder:
    """Dumps diagnostic bundles when statements die.

    ``tracer`` / ``history`` / ``metrics`` are the session's live
    objects — the recorder snapshots them at dump time, so a bundle
    reflects the session as it was at the moment of death. ``config``
    is a plain dict of session settings embedded verbatim.
    """

    def __init__(
        self,
        tracer=None,
        history=None,
        metrics=None,
        config: Optional[dict] = None,
        directory: Optional[str] = None,
        keep: int = DEFAULT_KEEP,
        history_tail: int = 20,
    ):
        self.directory = resolve_flight_dir(directory)
        self.keep = max(int(keep), 1)
        self.history_tail = history_tail
        self.tracer = tracer
        self.history = history
        self.metrics = metrics
        self.config = dict(config or {})
        #: Path of the most recent bundle written (None before any).
        self.last_bundle_path: Optional[str] = None
        #: The most recent bundle as a dict (kept even if the disk
        #: write failed — in-memory post-mortems always work).
        self.last_bundle: Optional[dict] = None
        #: Why the last disk write failed (None while healthy).
        self.last_write_error: Optional[str] = None
        self.bundles_written = 0
        self._lock = threading.Lock()
        self._seq = 0

    # -- bundle assembly ---------------------------------------------------

    def build_bundle(
        self,
        reason: str,
        error: Optional[BaseException] = None,
        governor: Optional[dict] = None,
        trace=None,
    ) -> dict:
        """Assemble (but do not write) one bundle dict."""
        trace_dict = None
        if trace is not None:
            trace_dict = trace.to_dict()
        elif self.tracer is not None and self.tracer.last_root is not None:
            trace_dict = self.tracer.last_root.to_dict()
        recent = []
        if self.tracer is not None:
            recent = [
                root.to_dict() for root in self.tracer.recent_roots(8)
            ]
        history_tail = []
        if self.history is not None:
            history_tail = self.history.tail_dicts(self.history_tail)
        metrics_snapshot = {}
        if self.metrics is not None:
            metrics_snapshot = self.metrics.snapshot()
        error_info = None
        if error is not None:
            error_info = {
                "type": type(error).__name__,
                "message": str(error),
            }
        return {
            "schema": BUNDLE_SCHEMA,
            "created_at": time.time(),
            "reason": reason,
            "error": error_info,
            "governor": governor or {},
            "trace": trace_dict,
            "recent_traces": recent,
            "history": history_tail,
            "metrics": metrics_snapshot,
            "config": dict(self.config),
        }

    # -- dumping -----------------------------------------------------------

    def dump(
        self,
        reason: str,
        error: Optional[BaseException] = None,
        governor: Optional[dict] = None,
        trace=None,
    ) -> Optional[str]:
        """Write one bundle; returns its path (None when the write
        failed — the bundle is still retained on ``last_bundle``).
        Never raises: the flight recorder must not turn one failure
        into two."""
        bundle = self.build_bundle(
            reason, error=error, governor=governor, trace=trace
        )
        with self._lock:
            self._seq += 1
            seq = self._seq
        name = (
            f"flightrec-{int(bundle['created_at'] * 1e3)}"
            f"-{os.getpid()}-{seq:04d}-{reason}.json"
        )
        path = os.path.join(self.directory, name)
        try:
            os.makedirs(self.directory, exist_ok=True)
            with open(path, "w", encoding="utf-8") as fh:
                json.dump(bundle, fh, indent=1, sort_keys=True)
            self._prune()
        except OSError as exc:
            self.last_write_error = f"{type(exc).__name__}: {exc}"
            path = None
        with self._lock:
            self.last_bundle = bundle
            if path is not None:
                self.last_bundle_path = path
                self.bundles_written += 1
        if self.metrics is not None and path is not None:
            self.metrics.counter(
                "flightrec_bundles_total", reason=reason
            ).inc()
        return path

    def _prune(self) -> None:
        """Keep only the newest ``keep`` bundles (best-effort; bundle
        names embed a millisecond timestamp, so name order is age
        order)."""
        try:
            names = sorted(
                n
                for n in os.listdir(self.directory)
                if n.startswith("flightrec-") and n.endswith(".json")
            )
        except OSError:
            return
        for stale in names[: -self.keep]:
            try:
                os.unlink(os.path.join(self.directory, stale))
            except OSError:
                pass


# ---------------------------------------------------------------------------
# Loading / validation
# ---------------------------------------------------------------------------


def validate_bundle(bundle: dict) -> list[str]:
    """Structural check of a bundle dict; returns problems (empty =
    loadable)."""
    problems = []
    if not isinstance(bundle, dict):
        return ["bundle is not a JSON object"]
    for key in REQUIRED_KEYS:
        if key not in bundle:
            problems.append(f"missing key {key!r}")
    if bundle.get("schema") != BUNDLE_SCHEMA:
        problems.append(
            f"unknown schema {bundle.get('schema')!r} "
            f"(expected {BUNDLE_SCHEMA!r})"
        )
    trace = bundle.get("trace")
    if trace is not None and "name" not in trace:
        problems.append("trace is not a span tree")
    if not isinstance(bundle.get("recent_traces", []), list):
        problems.append("recent_traces is not a list")
    if not isinstance(bundle.get("history", []), list):
        problems.append("history is not a list")
    return problems


def load_bundle(path: str) -> dict:
    """Read and validate one bundle; raises ``ValueError`` with the
    problem list when the file is not a loadable bundle."""
    with open(path, "r", encoding="utf-8") as fh:
        bundle = json.load(fh)
    problems = validate_bundle(bundle)
    if problems:
        raise ValueError(
            f"{path}: not a loadable flight-recorder bundle: "
            + "; ".join(problems)
        )
    return bundle


def format_bundle(bundle: dict) -> str:
    """Human-readable rendering (the ``repro.obs.dump`` CLI)."""
    from .trace import Span

    lines = []
    created = bundle.get("created_at", 0.0)
    stamp = time.strftime(
        "%Y-%m-%d %H:%M:%S", time.localtime(created)
    )
    lines.append(
        f"flight-recorder bundle — reason={bundle.get('reason')!r} "
        f"at {stamp}"
    )
    error = bundle.get("error")
    if error:
        lines.append(f"error: {error.get('type')}: {error.get('message')}")
    gov = bundle.get("governor") or {}
    if gov:
        lines.append(
            f"governor: verdict={gov.get('verdict')} "
            f"checkpoints={gov.get('checkpoints')} "
            f"elapsed_ms={gov.get('elapsed_ms', 0):.3f} "
            f"peak_bytes={gov.get('peak_bytes')}"
        )
    config = bundle.get("config") or {}
    if config:
        rendered = ", ".join(
            f"{k}={v}" for k, v in sorted(config.items())
        )
        lines.append(f"config: {rendered}")
    trace = bundle.get("trace")
    if trace:
        lines.append("")
        lines.append("failing statement trace:")
        lines.append(Span.from_dict(trace).format(indent=1))
    history = bundle.get("history") or []
    if history:
        lines.append("")
        lines.append(f"history tail ({len(history)} statement(s)):")
        from .history import QueryRecord

        for payload in history:
            lines.append(
                "  " + QueryRecord.from_dict(payload).format()
            )
    recent = bundle.get("recent_traces") or []
    if recent:
        lines.append("")
        lines.append(f"recent traces: {len(recent)} retained")
    metrics = bundle.get("metrics") or {}
    counters = metrics.get("counters") or {}
    if counters:
        lines.append("")
        lines.append(f"metrics: {len(counters)} counter series; e.g.")
        for name in sorted(counters)[:8]:
            lines.append(f"  {name} = {counters[name]:g}")
    return "\n".join(lines)
