"""The metrics registry: counters, gauges, fixed-bucket histograms.

Every :class:`~repro.api.database.Database` owns one
:class:`MetricsRegistry` (``db.metrics``) that the transaction layer,
storage layer, and executor update as statements run. Registries form a
two-level hierarchy: a session registry mirrors every update into the
process-wide :func:`global_registry`, so a benchmark sweep or fuzz run
that opens hundreds of sessions still produces one cumulative view —
the shape MADlib-style systems use to defend per-phase numbers.

Metric families are typed at first registration; re-registering a name
with a different kind is an error. Labels are plain keyword arguments
(``registry.counter("statements_total", kind="SelectStatement")``);
each distinct label set is its own time series within the family.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Iterator, Optional

#: Default fixed buckets for duration histograms, in seconds. Log-ish
#: spacing from 10µs to 10s covers a single operator batch up to a full
#: analytics sweep on laptop-sized data.
DEFAULT_TIME_BUCKETS = (
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, object]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def format_series(name: str, key: LabelKey) -> str:
    """``name{k="v",...}`` — the Prometheus series spelling, also used
    as the flat key in :meth:`MetricsRegistry.snapshot`."""
    if not key:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in key)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count.

    Updates take a per-metric lock: morsel workers increment shared
    counters concurrently, and ``value += amount`` is a read-modify-
    write that would otherwise lose updates under contention.
    """

    __slots__ = ("value", "_mirror", "_lock")

    def __init__(self, mirror: Optional["Counter"] = None):
        self.value = 0.0
        self._mirror = mirror
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        with self._lock:
            self.value += amount
        if self._mirror is not None:
            self._mirror.inc(amount)


class Gauge:
    """A value that can go up and down (or be set outright)."""

    __slots__ = ("value", "_mirror", "_lock")

    def __init__(self, mirror: Optional["Gauge"] = None):
        self.value = 0.0
        self._mirror = mirror
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)
        if self._mirror is not None:
            self._mirror.set(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount
        if self._mirror is not None:
            self._mirror.inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)


class Histogram:
    """Fixed-bucket histogram: cumulative counts are computed at export
    time; observation is one bisect plus two adds (under the metric's
    lock, so concurrent workers never drop an observation or leave
    ``sum``/``count``/bucket counts mutually inconsistent)."""

    __slots__ = ("buckets", "counts", "sum", "count", "_mirror", "_lock")

    def __init__(
        self,
        buckets: tuple[float, ...] = DEFAULT_TIME_BUCKETS,
        mirror: Optional["Histogram"] = None,
    ):
        if not buckets or list(buckets) != sorted(set(buckets)):
            raise ValueError("histogram buckets must be sorted and unique")
        self.buckets = tuple(float(b) for b in buckets)
        self.counts = [0] * (len(self.buckets) + 1)  # +1 for +Inf
        self.sum = 0.0
        self.count = 0
        self._mirror = mirror
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.counts[bisect_left(self.buckets, value)] += 1
            self.sum += value
            self.count += 1
        if self._mirror is not None:
            self._mirror.observe(value)

    def cumulative(self) -> list[int]:
        """Per-bucket cumulative counts, ending with the +Inf total."""
        out, running = [], 0
        for count in self.counts:
            running += count
            out.append(running)
        return out

    def quantile(self, q: float) -> Optional[float]:
        """The estimated ``q``-quantile (``0 <= q <= 1``) by linear
        interpolation inside the containing bucket — the same estimate
        ``histogram_quantile`` computes server-side in Prometheus.
        Observations in the +Inf bucket clamp to the highest finite
        bound. None while the histogram is empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            counts = list(self.counts)
            total = self.count
        if total == 0:
            return None
        rank = q * total
        running = 0
        for i, count in enumerate(counts):
            if count == 0:
                continue
            if running + count >= rank:
                if i >= len(self.buckets):
                    return self.buckets[-1]
                lower = self.buckets[i - 1] if i > 0 else 0.0
                upper = self.buckets[i]
                fraction = (rank - running) / count
                return lower + (upper - lower) * max(fraction, 0.0)
            running += count
        return self.buckets[-1]


class _Family:
    """One metric name: its kind plus one child per label set."""

    __slots__ = ("name", "kind", "children", "buckets")

    def __init__(self, name: str, kind: str, buckets=None):
        self.name = name
        self.kind = kind
        self.children: dict[LabelKey, object] = {}
        self.buckets = buckets


class MetricsRegistry:
    """Thread-safe registry of metric families.

    ``parent`` links a session registry to a shared aggregate: every
    update to a child metric is mirrored into the same-named metric of
    the parent (gauges mirror by re-applying the operation, so a
    parent gauge reflects the *last* writer).
    """

    def __init__(self, parent: Optional["MetricsRegistry"] = None):
        self._families: dict[str, _Family] = {}
        self._lock = threading.RLock()
        self.parent = parent

    # -- registration ------------------------------------------------------

    def _child(self, name: str, kind: str, labels: dict, buckets=None):
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(name, kind, buckets)
                self._families[name] = family
            elif family.kind != kind:
                raise ValueError(
                    f"metric {name!r} is a {family.kind}, not a {kind}"
                )
            key = _label_key(labels)
            child = family.children.get(key)
            if child is None:
                mirror = None
                if self.parent is not None:
                    mirror = self.parent._child(
                        name, kind, labels, buckets
                    )
                if kind == "counter":
                    child = Counter(mirror)
                elif kind == "gauge":
                    child = Gauge(mirror)
                else:
                    child = Histogram(
                        family.buckets or DEFAULT_TIME_BUCKETS, mirror
                    )
                family.children[key] = child
            return child

    def counter(self, name: str, **labels) -> Counter:
        return self._child(name, "counter", labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._child(name, "gauge", labels)

    def histogram(
        self,
        name: str,
        buckets: tuple[float, ...] | None = None,
        **labels,
    ) -> Histogram:
        return self._child(name, "histogram", labels, buckets)

    # -- reading -----------------------------------------------------------

    def families(self) -> Iterator[tuple[str, str, dict]]:
        """(name, kind, {label_key: metric}) per family, name-sorted."""
        with self._lock:
            for name in sorted(self._families):
                family = self._families[name]
                yield name, family.kind, dict(family.children)

    def snapshot(self) -> dict:
        """A plain-data dump: flat series name -> value (counters and
        gauges) or ``{buckets, counts, sum, count}`` (histograms)."""
        out: dict[str, dict] = {
            "counters": {}, "gauges": {}, "histograms": {},
        }
        for name, kind, children in self.families():
            for key, metric in sorted(children.items()):
                series = format_series(name, key)
                if kind == "counter":
                    out["counters"][series] = metric.value
                elif kind == "gauge":
                    out["gauges"][series] = metric.value
                else:
                    out["histograms"][series] = {
                        "buckets": list(metric.buckets),
                        "counts": list(metric.counts),
                        "sum": metric.sum,
                        "count": metric.count,
                    }
        return out

    def reset(self) -> None:
        """Drop every family (scoping helper for sweeps and tests)."""
        with self._lock:
            self._families.clear()


_GLOBAL = MetricsRegistry()


def global_registry() -> MetricsRegistry:
    """The process-wide aggregate every session registry mirrors into."""
    return _GLOBAL
